"""Query-result caching for warehouse front-ends.

A dashboard re-issues the same group-bys constantly; caching their
results is the standard tier above any OLAP engine.  The cache keys on
the :class:`~repro.olap.query.Query` itself (hashable since its filters
normalise to an immutable mapping) *plus the store generation that
answered it* — cubes are immutable once built, but an incremental
refresh (:func:`~repro.olap.refresh.refresh_store`) publishes a new
generation of the same logical cube, and a result computed against
generation N must never satisfy a query against generation N+1.
Keying by ``(generation, query)`` makes stale hits structurally
impossible without any flush coordination; superseded generations'
entries simply age out of the LRU.

Eviction is *byte-budgeted*: every entry is charged its actual array
payload and the cache evicts least-recently-used entries until it fits
the budget, so a thousand point lookups and three giant roll-ups are
costed honestly against the same memory.  An **admission threshold**
keeps any single result larger than ``admit_fraction`` of the budget
out entirely — one huge slice scan must not flush the whole working set
of small hot results (the classic scan-resistance rule).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable

from repro.core.cube import CubeResult
from repro.olap.query import Query, QueryEngine
from repro.storage.table import Relation

__all__ = ["CacheStats", "CachedQueryEngine", "ResultCache", "result_nbytes"]


def result_nbytes(result: Relation) -> int:
    """The array payload of one cached result, in bytes."""
    return int(result.dims.nbytes) + int(result.measure.nbytes)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Results denied admission (larger than the admit threshold).
    rejected: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """Byte-budgeted LRU with admission control.

    ``byte_budget`` bounds the total payload bytes held (``None`` means
    unbounded); ``capacity`` additionally bounds the entry count
    (``None`` means unbounded).  A value larger than ``admit_fraction *
    byte_budget`` is never admitted — it would evict many small entries
    to cache one result that is cheap to recompute relative to its
    footprint.
    """

    def __init__(
        self,
        byte_budget: int | None = None,
        capacity: int | None = None,
        admit_fraction: float = 0.25,
    ):
        if byte_budget is not None and byte_budget < 1:
            raise ValueError(
                f"byte_budget must be >= 1, got {byte_budget}"
            )
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 < admit_fraction <= 1.0:
            raise ValueError(
                f"admit_fraction must be in (0, 1], got {admit_fraction}"
            )
        self.byte_budget = byte_budget
        self.capacity = capacity
        self.admit_fraction = float(admit_fraction)
        self.stats = CacheStats()
        self.bytes_held = 0
        self._entries: OrderedDict[Hashable, tuple[object, int]] = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable):
        """The cached value or ``None`` (counts a hit/miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry[0]

    def admits(self, nbytes: int) -> bool:
        """Would a value of this size be admitted at all?"""
        if self.byte_budget is None:
            return True
        return nbytes <= self.byte_budget * self.admit_fraction

    def put(self, key: Hashable, value, nbytes: int) -> bool:
        """Insert (or refresh) an entry; returns False when denied
        admission.  Evicts LRU entries until budget and capacity hold."""
        nbytes = int(nbytes)
        if not self.admits(nbytes):
            self.stats.rejected += 1
            return False
        old = self._entries.pop(key, None)
        if old is not None:
            self.bytes_held -= old[1]
        self._entries[key] = (value, nbytes)
        self.bytes_held += nbytes
        while self._entries and (
            (
                self.byte_budget is not None
                and self.bytes_held > self.byte_budget
            )
            or (
                self.capacity is not None
                and len(self._entries) > self.capacity
            )
        ):
            evicted_key, (_, evicted_bytes) = self._entries.popitem(
                last=False
            )
            self.bytes_held -= evicted_bytes
            self.stats.evictions += 1
            if evicted_key == key:
                # The new entry itself fell out (budget smaller than the
                # entry but admission allowed it, e.g. unbounded budget
                # with capacity pressure cannot reach here; keep safe).
                return False
        return True

    def clear(self) -> None:
        self._entries.clear()
        self.bytes_held = 0

    def snapshot(self) -> dict:
        return {
            "entries": len(self._entries),
            "bytes_held": self.bytes_held,
            "byte_budget": self.byte_budget,
            "capacity": self.capacity,
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "evictions": self.stats.evictions,
            "rejected": self.stats.rejected,
            "hit_rate": self.stats.hit_rate,
        }


class CachedQueryEngine:
    """A result cache in front of :class:`~repro.olap.query.QueryEngine`.

    ``capacity`` keeps the original entry-count bound; ``byte_budget``
    adds size-aware eviction and admission control on top (both bounds
    apply when both are given).
    """

    def __init__(
        self,
        cube: CubeResult,
        capacity: int = 128,
        byte_budget: int | None = None,
        admit_fraction: float = 0.25,
        generation: int = 0,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._cache = ResultCache(
            byte_budget=byte_budget,
            capacity=capacity,
            admit_fraction=admit_fraction,
        )
        self._generation = int(generation)
        self._engine = QueryEngine(cube)

    def _cache_key(self, query: Query) -> tuple[int, Query]:
        # Query is hashable (filters normalise to an immutable mapping);
        # pairing it with the attached cube's generation makes an entry
        # cached against a superseded cube unreachable, never stale.
        return (self._generation, query)

    @property
    def engine(self) -> QueryEngine:
        return self._engine

    @property
    def generation(self) -> int:
        """The generation entries are currently keyed under."""
        return self._generation

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    @property
    def bytes_held(self) -> int:
        return self._cache.bytes_held

    def attach(
        self, cube: CubeResult, generation: int | None = None
    ) -> None:
        """Swap in a freshly built cube.

        ``generation`` stamps the new cube's snapshot identity (e.g.
        :attr:`~repro.olap.store.OpenCube.generation` for a reopened
        store); omitted, the previous generation is bumped by one.
        Either way old entries become unreachable immediately — the
        cache is also cleared eagerly to release their bytes.
        """
        self._engine = QueryEngine(cube)
        self._generation = (
            self._generation + 1 if generation is None else int(generation)
        )
        self._cache.clear()

    def answer(self, query: Query) -> Relation:
        key = self._cache_key(query)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._engine.answer(query)
        self._cache.put(key, result, result_nbytes(result))
        return result

    def explain(self, query: Query):
        return self._engine.explain(query)

    def __len__(self) -> int:
        return len(self._cache)
