"""Query-result caching for warehouse front-ends.

A dashboard re-issues the same group-bys constantly; caching their
results is the standard tier above any OLAP engine.  The cache keys on
the full query (group-by + filters + HAVING) and is safe because cubes
are immutable once built — invalidation only happens when a new cube is
swapped in (``attach``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.cube import CubeResult
from repro.olap.query import Query, QueryEngine
from repro.storage.table import Relation

__all__ = ["CachedQueryEngine", "CacheStats"]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _cache_key(query: Query):
    return (
        query.group_by,
        tuple(sorted(query.filters.items())),
        query.having,
    )


class CachedQueryEngine:
    """An LRU cache in front of :class:`~repro.olap.query.QueryEngine`."""

    def __init__(self, cube: CubeResult, capacity: int = 128):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple, Relation] = OrderedDict()
        self._engine = QueryEngine(cube)

    @property
    def engine(self) -> QueryEngine:
        return self._engine

    def attach(self, cube: CubeResult) -> None:
        """Swap in a freshly built cube; drops every cached result."""
        self._engine = QueryEngine(cube)
        self._entries.clear()

    def answer(self, query: Query) -> Relation:
        key = _cache_key(query)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return cached
        self.stats.misses += 1
        result = self._engine.answer(query)
        self._entries[key] = result
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return result

    def explain(self, query: Query):
        return self._engine.explain(query)

    def __len__(self) -> int:
        return len(self._entries)
