"""A supervised, fault-tolerant OLAP query service over a stored cube.

:class:`QueryService` fronts one :class:`~repro.olap.store.CubeStore`
directory with a pool of **worker processes**.  Each worker mmap-opens
the store read-only (the OS page cache shares the bytes between
workers), answers queries through the index-accelerated
:class:`~repro.olap.query.QueryEngine`, and ships results back through
the pooled shared-memory data plane of :mod:`repro.mpi.shm` — the same
:class:`~repro.mpi.shm.SegmentArena` / :func:`~repro.mpi.shm.encode`
machinery the SPMD backend uses for collectives, so large results cross
the process boundary without a pickle copy of their arrays.

The pool runs under a :class:`~repro.olap.supervise.ServiceSupervisor`
with the same failure taxonomy as the build engine's degraded-mode
runtime (:func:`~repro.mpi.errors.classify_failure`):

* a SIGKILLed or crashed worker is detected as
  :class:`~repro.mpi.errors.RankDead` within about one heartbeat
  interval, its in-flight queries are **reassigned** with bounded
  retries and exponential backoff, and a replacement is spawned into
  its slot up to the restart budget;
* a worker silent past ``suspect_after`` while holding work is a
  straggler declared :class:`~repro.mpi.errors.RankHung`, killed, and
  replaced — slow workers are failures, not a special case;
* every result blob carries a CRC over its arrays; a corrupt blob (or
  one whose segments died with its worker) is re-executed elsewhere;
* queries that repeatedly kill workers trip a **poison circuit
  breaker** (:class:`~repro.olap.supervise.PoisonQuery`) instead of
  felling the whole pool;
* per-query **deadlines** are enforced on both sides (worker-side shed
  of already-expired tasks, coordinator-side
  :class:`~repro.olap.supervise.QueryTimeout`), and a bounded task
  queue sheds load explicitly
  (:class:`~repro.olap.supervise.ServiceOverloaded`).

The coordinator keeps a byte-budgeted, admission-controlled
:class:`~repro.olap.cache.ResultCache` in front of the pool and dedups
identical in-flight queries, so a dashboard stampede on one hot query
costs one worker execution.  Segment recycling is explicit: after the
coordinator decodes a result it acks the segment names back to the
owning worker, which returns them to its arena pool — steady-state
serving creates no new segments.

The service is **refresh-aware**: the store directory may gain new
generations while queries are flowing
(:func:`~repro.olap.refresh.refresh_store`).  Each worker pins the
generation it has open for the duration of every query, re-reads the
store's ``CURRENT`` pointer between queries (every
``policy.current_poll_interval``), and swaps to the new generation by
simply reopening the store — no restart, no coordination, and no
reader ever blocks on a refresh because the old generation's files
stay mapped until the swap.  Result-cache entries are keyed by
``(store generation, query)`` so a result computed against generation
N can never satisfy a query once the coordinator has observed N+1.
Superseded generation directories are garbage-collected once no live
worker still has them pinned (``policy.gc_generations``).

The API is deliberately queue-shaped for closed-loop benchmarking
(``benchmarks/bench_serving.py``, ``benchmarks/bench_serving_chaos.py``):
``submit`` enqueues and returns a ticket, ``wait`` collects, ``answer``
is the synchronous round trip.
"""

from __future__ import annotations

import builtins
import heapq
import multiprocessing as mp
import os
import queue as queue_mod
import signal
import time
import zlib
from collections import deque
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.mpi import errors as mpi_errors
from repro.mpi.errors import CorruptPayload, RankDead, classify_failure
from repro.mpi.faults import ServeFaultPlan
from repro.mpi.shm import SegmentArena, _attach, decode, encode, sweep_orphans
from repro.olap.cache import ResultCache, result_nbytes
from repro.olap.query import Query
from repro.olap.supervise import (
    PoisonQuery,
    QueryTimeout,
    ServiceOverloaded,
    ServicePolicy,
    ServiceSupervisor,
    WorkerHandle,
)
from repro.storage.table import Relation

__all__ = [
    "PoisonQuery",
    "QueryService",
    "QueryTimeout",
    "ServiceOverloaded",
    "ServicePolicy",
]

_SHUTDOWN = None  # task-queue sentinel
_ACK_GRACE_SECONDS = 0.25


def _result_crc(dims: np.ndarray, measure: np.ndarray) -> int:
    """Integrity stamp over a result's canonical bytes."""
    crc = zlib.crc32(repr((dims.shape, measure.shape)).encode())
    crc = zlib.crc32(np.ascontiguousarray(dims).tobytes(), crc)
    return zlib.crc32(np.ascontiguousarray(measure).tobytes(), crc)


def _flip_result_blob(blob):
    """Corrupt an encoded result after its CRC was stamped.

    Packed blobs get one byte flipped inside the shared segment (decode
    succeeds, the CRC check catches it); inline blobs get a byte flipped
    in the pickle stream (decode itself fails — also caught)."""
    if blob.segments and blob.arrays:
        _, offset, _, _ = blob.arrays[0]
        seg = _attach(blob.segments[0])
        try:
            seg.buf[offset] ^= 0xFF
        finally:
            seg.close()
        return blob
    data = bytearray(blob.data)
    if data:
        data[len(data) // 2] ^= 0xFF
    return replace(blob, data=bytes(data))


def _rebuild_exception(type_name: str, message: str) -> Exception:
    """Re-raise a worker-side failure as its original exception type.

    Workers relay ``(type name, str(exc))``; the coordinator rebuilds
    the matching class from builtins or the MPI error taxonomy so a
    caller can distinguish a ``KeyError`` in its query from an engine
    bug, falling back to ``RuntimeError`` for exotic types."""
    cls = getattr(builtins, type_name, None)
    if cls is None:
        cls = getattr(mpi_errors, type_name, None)
    if not (isinstance(cls, type) and issubclass(cls, Exception)):
        cls = RuntimeError
    try:
        return cls(message)
    except Exception:  # pragma: no cover - constructor-picky type
        return RuntimeError(message)


def _drain_acks(ack_q, arena: SegmentArena) -> None:
    """Recycle every segment the coordinator has released so far."""
    while True:
        try:
            names = ack_q.get_nowait()
        except (queue_mod.Empty, OSError, EOFError):
            return
        if names:
            arena.recycle(names)


def _worker_main(
    worker_id: int,
    generation: int,
    store_path: str,
    index: bool,
    task_q,
    result_q,
    ack_q,
    heartbeats,
    heartbeat_interval: float,
    serve_faults: ServeFaultPlan | None,
    store_gens=None,
    current_poll_interval: float = 0.25,
) -> None:
    """One serving worker: open the store, answer until the sentinel.

    The worker stamps its heartbeat slot every pass through the loop —
    while idle it beats every poll slice; inside a query it goes silent,
    which is the straggler signal the supervisor watches for.  Tasks
    whose deadline already passed are shed without execution (the soft,
    between-tasks half of deadline enforcement).

    Every query is answered entirely by the store generation the worker
    had open when it dequeued the task; *between* tasks the worker
    re-reads ``CURRENT`` (time-gated by ``current_poll_interval``) and
    reopens the store when a refresh published a new generation,
    advertising the pinned generation through the shared ``store_gens``
    slot so the coordinator's GC never deletes a directory a live
    worker still serves from.  (POSIX keeps unlinked-but-mapped files
    readable, so even a racing GC cannot break an open generation.)
    """
    from repro.olap.store import CubeStore

    handle = CubeStore.open(store_path)
    # Through the handle so a recorded attribute-value reorder wraps
    # the engine transparently (workers keep mmap-only access either
    # way — dense chunks and sparse columns alike open read-only).
    engine = handle.query_engine(index=index)
    store_gen = handle.generation
    if store_gens is not None:
        store_gens[worker_id] = store_gen
    gen_poll_at = time.monotonic() + current_poll_interval

    def _maybe_rotate() -> None:
        """Pick up a refreshed generation between tasks (never during)."""
        nonlocal handle, engine, store_gen, gen_poll_at
        now = time.monotonic()
        if now < gen_poll_at:
            return
        gen_poll_at = now + current_poll_interval
        try:
            if CubeStore.current_generation(store_path) == store_gen:
                return
            fresh = CubeStore.open(store_path)
            fresh_engine = fresh.query_engine(index=index)
        except (OSError, ValueError, KeyError):
            return  # mid-swap or torn state; retry next poll
        handle, engine, store_gen = fresh, fresh_engine, fresh.generation
        if store_gens is not None:
            store_gens[worker_id] = store_gen

    arena = SegmentArena(pooled=True)
    faults = (
        serve_faults.schedule(worker_id, generation)
        if serve_faults is not None
        else None
    )
    poll_s = max(heartbeat_interval / 2.0, 0.005)
    executed = 0
    try:
        while True:
            heartbeats[worker_id] = time.monotonic()
            _maybe_rotate()
            try:
                task = task_q.get(timeout=poll_s)
            except queue_mod.Empty:
                _drain_acks(ack_q, arena)
                continue
            _drain_acks(ack_q, arena)
            if task is _SHUTDOWN:
                break
            seq, attempt, query, deadline = task
            heartbeats[worker_id] = time.monotonic()
            if deadline is not None and time.monotonic() >= deadline:
                result_q.put(
                    (
                        worker_id,
                        generation,
                        seq,
                        attempt,
                        store_gen,
                        None,
                        0,
                        (
                            "QueryTimeout",
                            f"deadline already passed when worker "
                            f"{worker_id} dequeued the task",
                        ),
                    )
                )
                continue
            query_index = executed
            executed += 1
            if faults is not None:
                hang = faults.hang_seconds(query_index)
                if hang is not None:
                    time.sleep(hang)
                if query_index in faults.kill_at:
                    os.kill(os.getpid(), signal.SIGKILL)
            try:
                result = engine.answer(query)
                crc = _result_crc(result.dims, result.measure)
                blob = encode((result.dims, result.measure), arena)
                if faults is not None and query_index in faults.corrupt_at:
                    blob = _flip_result_blob(blob)
                result_q.put(
                    (
                        worker_id,
                        generation,
                        seq,
                        attempt,
                        store_gen,
                        blob,
                        crc,
                        None,
                    )
                )
            except Exception as exc:  # noqa: BLE001 - relayed to caller
                result_q.put(
                    (
                        worker_id,
                        generation,
                        seq,
                        attempt,
                        store_gen,
                        None,
                        0,
                        (type(exc).__name__, str(exc)),
                    )
                )
            heartbeats[worker_id] = time.monotonic()
    finally:
        # Give in-flight acks a moment to land, then drop the arena —
        # close() unlinks anything never recycled, and the coordinator
        # collects all pending results before sending the sentinel.
        deadline = time.monotonic() + _ACK_GRACE_SECONDS
        while arena._in_flight and time.monotonic() < deadline:
            _drain_acks(ack_q, arena)
            time.sleep(0.01)
        _drain_acks(ack_q, arena)
        arena.close()


@dataclass
class _Flight:
    """One in-flight query execution (shared by all its waiters)."""

    seq: int
    query: Query
    attempt: int = 0
    assigned: WorkerHandle | None = None
    submitted_at: float = 0.0
    deadline: float | None = None
    #: The ``(store generation, query)`` key its waiters registered
    #: under (the generation the coordinator saw at submit time).
    wkey: tuple[int, Query] | None = None
    #: Waiters already failed with QueryTimeout; the flight lingers only
    #: so a late result / worker death can be reconciled cleanly.
    zombie: bool = False


class QueryService:
    """A supervised pool of store-backed query workers behind a cache.

    Parameters
    ----------
    store_path:
        A :class:`~repro.olap.store.CubeStore` directory (either
        format); every worker opens it independently.
    workers:
        Pool size (>= 1).
    byte_budget / admit_fraction:
        Result-cache sizing (see :class:`~repro.olap.cache.ResultCache`);
        ``byte_budget=None`` disables caching entirely.
    index:
        ``False`` pins every worker to the scan path — the A/B lever of
        the serving benchmark.
    policy:
        The service's failure posture — supervision cadence, deadlines,
        retry/backoff bounds, queue depth, poison threshold, restart
        budget (see :class:`~repro.olap.supervise.ServicePolicy`).
    serve_faults:
        Optional :class:`~repro.mpi.faults.ServeFaultPlan` injected into
        the workers (chaos testing; see the ``--serve-faults`` CLI
        grammar).
    """

    def __init__(
        self,
        store_path: str,
        workers: int = 2,
        byte_budget: int | None = 64 << 20,
        admit_fraction: float = 0.25,
        index: bool = True,
        start_method: str = "fork",
        policy: ServicePolicy | None = None,
        serve_faults: ServeFaultPlan | None = None,
    ):
        # Bookkeeping __del__ touches is initialised before anything can
        # raise, so a failed construction tears down silently.
        self._closed = True
        self._sup: ServiceSupervisor | None = None
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        # Validate the store before forking anything: a bad path should
        # fail the constructor, not crash-loop every worker through the
        # restart budget.  (Local import: store is a sibling serving
        # module, imported lazily like the workers do.)
        from repro.olap.store import CubeStore

        CubeStore._read_manifest(CubeStore.resolve(store_path)[0])
        self.store_path = store_path
        self.workers = int(workers)
        self.index = bool(index)
        self.policy = policy if policy is not None else ServicePolicy()
        #: The store generation the coordinator currently believes is
        #: CURRENT; cache lookups key on it, so one observed bump makes
        #: every older entry unreachable.
        self._store_gen = CubeStore.current_generation(store_path)
        self._gen_poll_at = (
            time.monotonic() + self.policy.current_poll_interval
        )
        self.generation_bumps = 0
        self.generations_removed = 0
        self.serve_faults = serve_faults
        self._cache = (
            ResultCache(byte_budget, admit_fraction=admit_fraction)
            if byte_budget is not None
            else None
        )
        ctx = mp.get_context(start_method)
        self._result_q = ctx.Queue()
        # One slot per worker advertising the generation it has pinned
        # (-1 until the worker opens the store); GC consults this so no
        # directory a live worker serves from is ever removed.
        self._store_gens = ctx.Array("l", self.workers, lock=False)
        for i in range(self.workers):
            self._store_gens[i] = -1
        self._seq = 0
        self._flights: dict[int, _Flight] = {}
        #: (store generation, query) -> tickets; the generation in the
        #: key keeps a waiter joined before a refresh from being fed a
        #: result computed against a different snapshot than it joined.
        self._waiters: dict[tuple[int, Query], list[int]] = {}
        self._results: dict[int, Relation | Exception] = {}
        self._dispatchq: deque[int] = deque()
        self._retry_heap: list[tuple[float, int]] = []
        self._death_counts: dict[Query, int] = {}
        self._quarantined: set[Query] = set()
        #: Monotonic completion time per resolved ticket (for latency
        #: measurement by the closed-loop benchmark; popped with wait).
        self.completed_at: dict[int, float] = {}
        self.submitted = 0
        self.executed = 0
        self.shed = 0
        self.retries = 0
        self.timeouts = 0
        self.worker_deaths = 0
        self.worker_hangs = 0
        self.poisoned = 0
        self.corrupt_results = 0

        def start_worker(slot, generation, task_q, ack_q, heartbeats):
            return ctx.Process(
                target=_worker_main,
                args=(
                    slot,
                    generation,
                    store_path,
                    self.index,
                    task_q,
                    self._result_q,
                    ack_q,
                    heartbeats,
                    self.policy.heartbeat_interval,
                    serve_faults,
                    self._store_gens,
                    self.policy.current_poll_interval,
                ),
                daemon=True,
            )

        self._sup = ServiceSupervisor(
            ctx, self.workers, self.policy, start_worker
        )
        self._closed = False

    @property
    def _procs(self) -> list:
        """Live worker processes (compatibility shim for callers that
        enumerated the pool before supervision existed)."""
        return [h.proc for h in self._sup.live()] if self._sup else []

    # -- submission --------------------------------------------------------

    def submit(
        self, query: Query, deadline_s: float | None = None
    ) -> int:
        """Enqueue a query; returns a ticket for :meth:`wait`.

        Cache hits resolve immediately; an identical query already in
        flight is joined rather than re-executed.  ``deadline_s``
        overrides the policy's default per-query deadline.  Raises
        :class:`ServiceOverloaded` when the in-flight queue is at
        ``policy.max_queue_depth`` — callers should back off.
        """
        if self._closed:
            raise RuntimeError("QueryService is closed")
        self._poll_generation(time.monotonic())
        if query in self._quarantined:
            self._seq += 1
            ticket = self._seq
            self.submitted += 1
            self._results[ticket] = PoisonQuery(
                f"{query.describe()} is quarantined: it killed "
                f"{self._death_counts.get(query, 0)} workers"
            )
            self.completed_at[ticket] = time.monotonic()
            return ticket
        wkey = (self._store_gen, query)
        if self._cache is not None:
            cached = self._cache.get(wkey)
            if cached is not None:
                self._seq += 1
                ticket = self._seq
                self.submitted += 1
                self._results[ticket] = cached
                self.completed_at[ticket] = time.monotonic()
                return ticket
        waiters = self._waiters.get(wkey)
        if waiters is not None:
            self._seq += 1
            ticket = self._seq
            self.submitted += 1
            waiters.append(ticket)
            return ticket
        if len(self._flights) >= self.policy.max_queue_depth:
            self.shed += 1
            raise ServiceOverloaded(
                f"{len(self._flights)} queries in flight >= "
                f"max_queue_depth {self.policy.max_queue_depth}; "
                "back off and retry"
            )
        self._seq += 1
        ticket = self._seq
        self.submitted += 1
        now = time.monotonic()
        if deadline_s is None:
            deadline_s = self.policy.deadline_s
        flight = _Flight(
            seq=ticket,
            query=query,
            submitted_at=now,
            deadline=None if deadline_s is None else now + deadline_s,
            wkey=wkey,
        )
        self._waiters[wkey] = [ticket]
        self._flights[ticket] = flight
        self._dispatchq.append(ticket)
        self._dispatch()
        return ticket

    # -- the event loop ----------------------------------------------------

    def _pump(self, budget: float) -> None:
        """One event-loop slice: collect results (blocking up to
        ``budget``), supervise workers, enforce deadlines, release
        backed-off retries, and dispatch ready work."""
        self._drain_results(budget)
        now = time.monotonic()
        self._poll_generation(now)
        self._supervise(now)
        self._enforce_deadlines(now)
        self._release_retries(now)
        self._dispatch()

    def _drain_results(self, budget: float) -> None:
        """Collect every available worker result; the first receive may
        block up to ``budget`` seconds."""
        timeout = budget
        while True:
            try:
                if timeout > 0:
                    msg = self._result_q.get(timeout=timeout)
                else:
                    msg = self._result_q.get_nowait()
            except queue_mod.Empty:
                return
            except (EOFError, OSError):  # pragma: no cover - torn pipe
                # A worker SIGKILLed mid-send can tear the stream; the
                # lost message is reconciled by the death path.
                return
            timeout = 0.0
            self._on_result(msg)

    def _on_result(self, msg) -> None:
        slot, generation, seq, attempt, store_gen, blob, crc, err = msg
        handle = self._sup.slots[slot]
        current = (
            handle is not None and handle.generation == generation
        )
        if current:
            handle.outstanding.pop(seq, None)
        flight = self._flights.get(seq)
        stale = flight is None or flight.attempt != attempt
        if err is not None:
            if stale:
                return
            if flight.zombie:
                self._flights.pop(seq, None)
                return
            if err[0] == "QueryTimeout":
                # Worker-side shed: the deadline passed in queue.
                self._fail_flight(
                    flight,
                    QueryTimeout(
                        f"{flight.query.describe()} shed by worker "
                        f"{slot}: {err[1]}"
                    ),
                )
                self.timeouts += 1
                return
            # A query error from a healthy worker is deterministic —
            # re-raise the original type to all waiters, no retry.
            self._fail_flight(
                flight,
                _rebuild_exception(
                    err[0],
                    f"worker {slot} failed on "
                    f"{flight.query.describe()}: {err[1]}",
                ),
            )
            return
        outcome = None
        try:
            dims, measure = decode(blob)
            if _result_crc(dims, measure) != crc:
                raise CorruptPayload(
                    f"result blob from worker {slot} failed its CRC "
                    f"check (stamped {crc:#010x})",
                    rank=slot,
                )
            outcome = Relation(dims, measure)
        except Exception as exc:
            # Decode blew up (corrupted stream, or segments that died
            # with their worker) or the CRC mismatched: the *transport*
            # failed, not the query — retry it elsewhere.
            if blob.segments and current and handle.alive():
                self._ack(handle, blob)
            if stale:
                return
            self.corrupt_results += 1
            self._retry_or_fail(
                flight,
                exc
                if isinstance(exc, CorruptPayload)
                else CorruptPayload(
                    f"result blob from worker {slot} unreadable: "
                    f"{type(exc).__name__}: {exc}",
                    rank=slot,
                ),
            )
            return
        if blob.segments and current and handle.alive():
            self._ack(handle, blob)
        if stale or flight.zombie:
            if flight is not None and flight.zombie:
                self._flights.pop(seq, None)
            return
        self.executed += 1
        if self._cache is not None:
            # Keyed by the generation that *computed* the result (the
            # worker's pinned generation), not the submit-time one — a
            # worker that rotated ahead of the coordinator must not
            # poison the old generation's namespace, and vice versa.
            self._cache.put(
                (store_gen, flight.query), outcome, result_nbytes(outcome)
            )
        self._resolve(flight, outcome)

    @staticmethod
    def _ack(handle: WorkerHandle, blob) -> None:
        try:
            handle.ack_q.put(blob.segments)
        except Exception:  # pragma: no cover - racing a fresh death
            pass

    def _resolve(self, flight: _Flight, outcome) -> None:
        """Fulfil every waiter of a flight and forget it."""
        self._flights.pop(flight.seq, None)
        done = time.monotonic()
        for ticket in self._waiters.pop(flight.wkey, []):
            self._results[ticket] = outcome
            self.completed_at[ticket] = done

    def _fail_flight(self, flight: _Flight, exc: Exception) -> None:
        self._resolve(flight, exc)

    def _retry_or_fail(self, flight: _Flight, exc: Exception) -> None:
        """Reassign a flight after a worker failure, within budget."""
        flight.assigned = None
        if flight.zombie:
            self._flights.pop(flight.seq, None)
            return
        if flight.attempt >= self.policy.max_retries:
            self._fail_flight(
                flight,
                type(exc)(
                    f"{flight.query.describe()} failed after "
                    f"{flight.attempt + 1} attempts: {exc}"
                ),
            )
            return
        flight.attempt += 1
        self.retries += 1
        ready = time.monotonic() + self.policy.backoff(flight.attempt)
        heapq.heappush(self._retry_heap, (ready, flight.seq))

    def _supervise(self, now: float) -> None:
        """Detect dead / hung workers and absorb the failures."""
        if self._sup is None:
            return
        for handle, exc in self._sup.check(now):
            self._on_worker_failure(handle, exc)

    def _on_worker_failure(
        self, handle: WorkerHandle, exc: Exception
    ) -> None:
        # RankHung classifies transient (the node is alive, merely
        # slow), RankDead permanent — the same taxonomy degraded-mode
        # recovery uses.  Either way the worker is replaced; the labels
        # feed the counters and the restart log.
        kind, _culprit = classify_failure(exc)
        hung = kind != mpi_errors.PERMANENT
        if hung:
            self.worker_hangs += 1
            # A straggler past its deadline is replaced, not waited on.
            self._sup.kill(handle)
        else:
            self.worker_deaths += 1
        # Collect anything the worker managed to flush before dying so
        # completed queries are not needlessly re-executed.
        self._drain_results(0.0)
        self._sup.retire(handle)
        for seq, attempt in list(handle.outstanding.items()):
            flight = self._flights.get(seq)
            if flight is None or flight.attempt != attempt:
                continue
            if flight.zombie:
                self._flights.pop(seq, None)
                continue
            deaths = self._death_counts.get(flight.query, 0) + 1
            self._death_counts[flight.query] = deaths
            if deaths >= self.policy.poison_threshold:
                # Circuit breaker: retrying would only fell the next
                # replacement too.
                self._quarantined.add(flight.query)
                self.poisoned += 1
                self._fail_flight(
                    flight,
                    PoisonQuery(
                        f"{flight.query.describe()} killed {deaths} "
                        f"workers (threshold "
                        f"{self.policy.poison_threshold}); quarantined "
                        f"and failed to all waiters"
                    ),
                )
                continue
            self._retry_or_fail(flight, exc)
        handle.outstanding.clear()
        if handle.pid is not None:
            # Anything the dead worker never recycled.  Undecoded
            # results referencing a swept segment fail decode and are
            # retried — handled above.
            sweep_orphans([handle.pid])
        if not self._closed:
            cause = "hung" if hung else "died"
            if self._sup.respawn(handle.slot, cause) is None and not (
                self._sup.live()
            ):
                # Pool extinct and the restart budget is spent: fail
                # everything queued rather than stranding the waiters.
                for seq in list(self._flights):
                    flight = self._flights.get(seq)
                    if flight is not None:
                        self._fail_flight(
                            flight,
                            RankDead(
                                "no live serving workers left and the "
                                f"restart budget "
                                f"({self.policy.max_restarts}) is "
                                f"exhausted: {exc}"
                            ),
                        )
                self._dispatchq.clear()
                self._retry_heap.clear()

    def _enforce_deadlines(self, now: float) -> None:
        """Coordinator-side hard deadline: fail the waiters, keep the
        ticket bookkeeping consistent for the late result."""
        for seq in list(self._flights):
            flight = self._flights.get(seq)
            if (
                flight is None
                or flight.zombie
                or flight.deadline is None
                or now < flight.deadline
            ):
                continue
            self.timeouts += 1
            done = time.monotonic()
            exc = QueryTimeout(
                f"{flight.query.describe()} missed its "
                f"{flight.deadline - flight.submitted_at:.3f}s deadline "
                f"(attempt {flight.attempt + 1})"
            )
            for ticket in self._waiters.pop(flight.wkey, []):
                self._results[ticket] = exc
                self.completed_at[ticket] = done
            if flight.assigned is None:
                # Never dispatched (queued or backing off): nothing to
                # reconcile later, drop it now.
                self._flights.pop(seq, None)
            else:
                flight.zombie = True

    # -- refresh awareness -------------------------------------------------

    def _poll_generation(self, now: float) -> None:
        """Time-gated CURRENT re-read (every
        ``policy.current_poll_interval``)."""
        if now < self._gen_poll_at:
            return
        self._gen_poll_at = now + self.policy.current_poll_interval
        self.check_generation()

    def check_generation(self) -> int:
        """Re-read the store's ``CURRENT`` pointer immediately.

        Bumps the coordinator's cache-keying generation when a refresh
        published a new one (making every older cache entry
        unreachable), then garbage-collects superseded generation
        directories no live worker still has pinned.  Returns the
        generation now in effect.  Called automatically from the event
        loop; exposed so a refresher can force the pickup without
        waiting out the poll interval.
        """
        from repro.olap.store import CubeStore

        try:
            gen = CubeStore.current_generation(self.store_path)
        except (OSError, ValueError):
            return self._store_gen  # torn mid-swap; retry next poll
        if gen != self._store_gen:
            self._store_gen = gen
            self.generation_bumps += 1
        self._maybe_gc()
        return self._store_gen

    def _maybe_gc(self) -> None:
        """Remove superseded generations once every live worker has
        rotated up to (at least) the coordinator's generation."""
        if (
            not self.policy.gc_generations
            or self._store_gen == 0
            or self._sup is None
        ):
            return
        pinned = [
            int(self._store_gens[h.slot]) for h in self._sup.live()
        ]
        if not pinned or min(pinned) < self._store_gen:
            # A worker still serves an older generation (or has not
            # advertised yet, slot -1): deleting now would race it.
            return
        from repro.olap.store import CubeStore

        try:
            removed = CubeStore.gc_generations(
                self.store_path, keep=pinned
            )
        except OSError:  # pragma: no cover - racing a refresh publish
            return
        self.generations_removed += len(removed)

    def _release_retries(self, now: float) -> None:
        while self._retry_heap and self._retry_heap[0][0] <= now:
            _, seq = heapq.heappop(self._retry_heap)
            if seq in self._flights:
                self._dispatchq.append(seq)

    def _dispatch(self) -> None:
        """Assign queued flights to the least-loaded live workers."""
        if self._sup is None:
            return
        while self._dispatchq:
            seq = self._dispatchq[0]
            flight = self._flights.get(seq)
            if (
                flight is None
                or flight.zombie
                or flight.assigned is not None
            ):
                self._dispatchq.popleft()
                continue
            live = self._sup.live()
            if not live:
                # Wait for a respawn; extinction is handled by the
                # failure path, which clears this queue.
                return
            handle = min(live, key=lambda h: (len(h.outstanding), h.slot))
            self._dispatchq.popleft()
            flight.assigned = handle
            handle.outstanding[seq] = flight.attempt
            try:
                handle.task_q.put(
                    (seq, flight.attempt, flight.query, flight.deadline)
                )
            except Exception:  # pragma: no cover - racing a fresh death
                # The supervisor will observe the death and requeue.
                pass

    # -- collection --------------------------------------------------------

    def wait(self, ticket: int, timeout: float | None = None) -> Relation:
        """The result for ``ticket`` (collecting others on the way).

        ``timeout`` bounds the **total** wait: even while other tickets'
        results keep arriving, ``TimeoutError`` is raised once the
        deadline passes.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while ticket not in self._results:
            if ticket > self._seq:
                raise KeyError(f"unknown ticket {ticket}")
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                raise TimeoutError(
                    f"ticket {ticket} unresolved after {timeout:.3f}s "
                    f"({len(self._flights)} queries in flight)"
                )
            budget = self.policy.heartbeat_interval
            if deadline is not None:
                budget = min(budget, max(deadline - now, 0.001))
            self._pump(budget)
        outcome = self._results.pop(ticket)
        self.completed_at.pop(ticket, None)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    def poll(self) -> list[int]:
        """Collect every already-available result without blocking;
        returns the tickets now resolvable via :meth:`wait`."""
        self._pump(0.0)
        return list(self._results)

    # -- convenience -------------------------------------------------------

    def answer(self, query: Query, timeout: float | None = None) -> Relation:
        """Synchronous round trip through cache + pool."""
        return self.wait(self.submit(query), timeout)

    def answer_many(
        self, queries: Sequence[Query], timeout: float | None = None
    ) -> list[Relation]:
        """Answer a batch, overlapping execution across the pool."""
        tickets = [self.submit(q) for q in queries]
        return [self.wait(t, timeout) for t in tickets]

    # -- lifecycle ---------------------------------------------------------

    def stats(self) -> dict:
        """Coordinator-side counters (cache, dedup, and failure
        handling effectiveness)."""
        out = {
            "workers": self.workers,
            "live_workers": len(self._sup.live()) if self._sup else 0,
            "index": self.index,
            "submitted": self.submitted,
            "executed": self.executed,
            "in_flight": len(self._flights),
            "shed": self.shed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_deaths": self.worker_deaths,
            "worker_hangs": self.worker_hangs,
            "restarts": self._sup.restarts if self._sup else 0,
            "poisoned": self.poisoned,
            "corrupt_results": self.corrupt_results,
            "store_generation": self._store_gen,
            "worker_store_generations": [
                int(g) for g in self._store_gens
            ],
            "generation_bumps": self.generation_bumps,
            "generations_removed": self.generations_removed,
        }
        if self._cache is not None:
            out["cache"] = self._cache.snapshot()
        return out

    def close(self, timeout: float = 10.0) -> None:
        """Drain in-flight work, stop the pool, sweep leaked segments.

        Outstanding queries that cannot finish before ``timeout`` — or
        at all, because every worker is gone — fail their waiters with
        ``RuntimeError`` instead of stranding them.
        """
        if self._closed:
            return
        self._closed = True
        deadline = time.monotonic() + timeout
        try:
            while self._flights and time.monotonic() < deadline:
                self._pump(0.05)
                if self._flights and not self._sup.live():
                    break  # nobody left to finish the work
        except Exception:  # pragma: no cover - teardown is best-effort
            pass
        for seq in list(self._flights):
            flight = self._flights.get(seq)
            if flight is not None:
                self._fail_flight(
                    flight,
                    RuntimeError(
                        f"QueryService closed with "
                        f"{flight.query.describe()} unfinished"
                    ),
                )
        self._dispatchq.clear()
        self._retry_heap.clear()
        live = self._sup.live() if self._sup else []
        for handle in live:
            try:
                handle.task_q.put(_SHUTDOWN)
            except Exception:  # pragma: no cover - racing a death
                pass
        for handle in live:
            handle.proc.join(max(deadline - time.monotonic(), 0.5))
            if handle.proc.is_alive():  # pragma: no cover - stuck worker
                handle.proc.terminate()
                handle.proc.join(1.0)
        # Anything any worker generation ever leaked.
        if self._sup is not None:
            sweep_orphans(self._sup.all_pids)
        queues = [self._result_q]
        for handle in live:
            queues.extend([handle.task_q, handle.ack_q])
        for q in queues:
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:  # pragma: no cover - already closed
                pass

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            if getattr(self, "_closed", True):
                return
            sup = getattr(self, "_sup", None)
            if sup is not None and sup.live():
                self.close(timeout=2.0)
        except Exception:
            pass
