"""A concurrent OLAP query service over a stored cube.

:class:`QueryService` fronts one :class:`~repro.olap.store.CubeStore`
directory with a pool of **worker processes**.  Each worker mmap-opens
the store read-only (the OS page cache shares the bytes between
workers), answers queries through the index-accelerated
:class:`~repro.olap.query.QueryEngine`, and ships results back through
the pooled shared-memory data plane of :mod:`repro.mpi.shm` — the same
:class:`~repro.mpi.shm.SegmentArena` / :func:`~repro.mpi.shm.encode`
machinery the SPMD backend uses for collectives, so large results cross
the process boundary without a pickle copy of their arrays.

The coordinator keeps a byte-budgeted, admission-controlled
:class:`~repro.olap.cache.ResultCache` in front of the pool and dedups
identical in-flight queries, so a dashboard stampede on one hot query
costs one worker execution.  Segment recycling is explicit: after the
coordinator decodes a result it acks the segment names back to the
owning worker, which returns them to its arena pool — steady-state
serving creates no new segments.

The API is deliberately queue-shaped for closed-loop benchmarking
(``benchmarks/bench_serving.py``): ``submit`` enqueues and returns a
ticket, ``wait`` collects, ``answer`` is the synchronous round trip.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import time
from typing import Iterable, Sequence

from repro.mpi.shm import SegmentArena, decode, encode, sweep_orphans
from repro.olap.cache import ResultCache, result_nbytes
from repro.olap.query import Query, QueryEngine
from repro.storage.table import Relation

__all__ = ["QueryService"]

_SHUTDOWN = None  # task-queue sentinel
_ACK_GRACE_SECONDS = 0.25


def _drain_acks(ack_q, arena: SegmentArena) -> None:
    """Recycle every segment the coordinator has released so far."""
    while True:
        try:
            names = ack_q.get_nowait()
        except queue_mod.Empty:
            return
        if names:
            arena.recycle(names)


def _worker_main(
    worker_id: int,
    store_path: str,
    index: bool,
    task_q,
    result_q,
    ack_q,
) -> None:
    """One serving worker: open the store, answer until the sentinel."""
    from repro.olap.store import CubeStore

    handle = CubeStore.open(store_path)
    engine = QueryEngine(
        handle.cube,
        sorted_views=handle.sorted_views,
        index=index,
    )
    arena = SegmentArena(pooled=True)
    try:
        while True:
            task = task_q.get()
            _drain_acks(ack_q, arena)
            if task is _SHUTDOWN:
                break
            seq, query = task
            try:
                result = engine.answer(query)
                blob = encode((result.dims, result.measure), arena)
                result_q.put((worker_id, seq, blob, None))
            except Exception as exc:  # noqa: BLE001 - relayed to caller
                result_q.put((worker_id, seq, None, repr(exc)))
    finally:
        # Give in-flight acks a moment to land, then drop the arena —
        # close() unlinks anything never recycled, and the coordinator
        # collects all pending results before sending the sentinel.
        deadline = time.monotonic() + _ACK_GRACE_SECONDS
        while arena._in_flight and time.monotonic() < deadline:
            _drain_acks(ack_q, arena)
            time.sleep(0.01)
        _drain_acks(ack_q, arena)
        arena.close()


class QueryService:
    """A pool of store-backed query workers behind a result cache.

    Parameters
    ----------
    store_path:
        A :class:`~repro.olap.store.CubeStore` directory (either
        format); every worker opens it independently.
    workers:
        Pool size (>= 1).
    byte_budget / admit_fraction:
        Result-cache sizing (see :class:`~repro.olap.cache.ResultCache`);
        ``byte_budget=None`` disables caching entirely.
    index:
        ``False`` pins every worker to the scan path — the A/B lever of
        the serving benchmark.
    """

    def __init__(
        self,
        store_path: str,
        workers: int = 2,
        byte_budget: int | None = 64 << 20,
        admit_fraction: float = 0.25,
        index: bool = True,
        start_method: str = "fork",
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.store_path = store_path
        self.workers = int(workers)
        self.index = bool(index)
        self._cache = (
            ResultCache(byte_budget, admit_fraction=admit_fraction)
            if byte_budget is not None
            else None
        )
        ctx = mp.get_context(start_method)
        self._task_q = ctx.Queue()
        self._result_q = ctx.Queue()
        self._ack_qs = [ctx.Queue() for _ in range(self.workers)]
        self._procs = []
        self._seq = 0
        self._pending: dict[int, Query] = {}  # sent seq -> query
        self._waiters: dict[Query, list[int]] = {}  # query -> tickets
        self._results: dict[int, Relation | Exception] = {}
        #: Monotonic completion time per resolved ticket (for latency
        #: measurement by the closed-loop benchmark; popped with wait).
        self.completed_at: dict[int, float] = {}
        self.submitted = 0
        self.executed = 0
        self._closed = False
        for wid in range(self.workers):
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    wid,
                    store_path,
                    self.index,
                    self._task_q,
                    self._result_q,
                    self._ack_qs[wid],
                ),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)

    # -- submission --------------------------------------------------------

    def submit(self, query: Query) -> int:
        """Enqueue a query; returns a ticket for :meth:`wait`.

        Cache hits resolve immediately; an identical query already in
        flight is joined rather than re-executed.
        """
        if self._closed:
            raise RuntimeError("QueryService is closed")
        self._seq += 1
        ticket = self._seq
        self.submitted += 1
        if self._cache is not None:
            cached = self._cache.get(query)
            if cached is not None:
                self._results[ticket] = cached
                self.completed_at[ticket] = time.monotonic()
                return ticket
        waiters = self._waiters.get(query)
        if waiters is not None:
            waiters.append(ticket)
            return ticket
        self._waiters[query] = [ticket]
        self._pending[ticket] = query
        self._task_q.put((ticket, query))
        return ticket

    # -- collection --------------------------------------------------------

    def _collect_one(self, timeout: float | None) -> None:
        """Block for one worker result and fulfill its waiters."""
        try:
            worker_id, seq, blob, err = self._result_q.get(
                timeout=timeout
            )
        except queue_mod.Empty:
            raise TimeoutError(
                f"no result within {timeout:.3f}s "
                f"({len(self._pending)} queries in flight)"
            ) from None
        query = self._pending.pop(seq)
        if err is not None:
            outcome: Relation | Exception = RuntimeError(
                f"worker {worker_id} failed on {query.describe()}: {err}"
            )
        else:
            dims, measure = decode(blob)
            if blob.segments:
                self._ack_qs[worker_id].put(blob.segments)
            outcome = Relation(dims, measure)
            self.executed += 1
            if self._cache is not None:
                self._cache.put(query, outcome, result_nbytes(outcome))
        done = time.monotonic()
        for ticket in self._waiters.pop(query):
            self._results[ticket] = outcome
            self.completed_at[ticket] = done

    def wait(self, ticket: int, timeout: float | None = None) -> Relation:
        """The result for ``ticket`` (collecting others on the way)."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while ticket not in self._results:
            remaining = (
                None
                if deadline is None
                else max(deadline - time.monotonic(), 0.001)
            )
            self._collect_one(remaining)
        outcome = self._results.pop(ticket)
        self.completed_at.pop(ticket, None)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    def poll(self) -> list[int]:
        """Collect every already-available result without blocking;
        returns the tickets now resolvable via :meth:`wait`."""
        while self._pending:
            try:
                self._collect_one(timeout=0.001)
            except TimeoutError:
                break
        return list(self._results)

    # -- convenience -------------------------------------------------------

    def answer(self, query: Query, timeout: float | None = None) -> Relation:
        """Synchronous round trip through cache + pool."""
        return self.wait(self.submit(query), timeout)

    def answer_many(
        self, queries: Sequence[Query], timeout: float | None = None
    ) -> list[Relation]:
        """Answer a batch, overlapping execution across the pool."""
        tickets = [self.submit(q) for q in queries]
        return [self.wait(t, timeout) for t in tickets]

    # -- lifecycle ---------------------------------------------------------

    def stats(self) -> dict:
        """Coordinator-side counters (cache + dedup effectiveness)."""
        out = {
            "workers": self.workers,
            "index": self.index,
            "submitted": self.submitted,
            "executed": self.executed,
            "in_flight": len(self._pending),
        }
        if self._cache is not None:
            out["cache"] = self._cache.snapshot()
        return out

    def close(self, timeout: float = 10.0) -> None:
        """Drain in-flight work, stop the pool, sweep leaked segments."""
        if self._closed:
            return
        self._closed = True
        deadline = time.monotonic() + timeout
        try:
            while self._pending and time.monotonic() < deadline:
                try:
                    self._collect_one(timeout=0.2)
                except TimeoutError:
                    continue
        except Exception:  # pragma: no cover - teardown is best-effort
            pass
        for _ in self._procs:
            self._task_q.put(_SHUTDOWN)
        pids = [proc.pid for proc in self._procs]
        for proc in self._procs:
            proc.join(max(deadline - time.monotonic(), 0.5))
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(1.0)
        # Anything a killed worker never unlinked.
        sweep_orphans([pid for pid in pids if pid is not None])
        for q in (self._task_q, self._result_q, *self._ack_qs):
            q.close()
            q.join_thread()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            if not self._closed and any(
                p.is_alive() for p in self._procs
            ):
                self.close(timeout=2.0)
        except Exception:
            pass
