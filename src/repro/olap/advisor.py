"""Greedy view selection for partial cubes (Harinarayan-Rajaraman-Ullman).

The paper's partial cubes (Section 3) assume the user supplies the
selected view set.  Where does that set come from?  The classic answer —
from the paper's own reference [12], "Implementing data cubes
efficiently" — is the greedy benefit algorithm: starting from the raw
view, repeatedly materialise the view with the highest *benefit per unit
space*, where a view's benefit is the total query-cost reduction it gives
every view in the workload's closure.

:func:`select_views` implements that algorithm over this repository's
size estimates and hands back a set ready for
:func:`repro.core.cube.build_partial_cube`.

Cost model (HRU's): answering a group-by costs the row count of the
smallest materialised ancestor view.  Before anything is selected every
query pays the raw data set's size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.views import View, canonical_view, is_subset, view_name

__all__ = ["AdvisorResult", "select_views", "workload_cost"]


@dataclass
class AdvisorResult:
    """Outcome of one greedy selection run."""

    #: Views chosen, in selection order (the raw view is implicit).
    selected: list[View]
    #: Estimated total workload cost before any selection.
    base_cost: float
    #: Estimated total workload cost with the selection materialised.
    final_cost: float
    #: Per-step log: (view, benefit, benefit_per_row).
    steps: list[tuple[View, float, float]] = field(default_factory=list)

    @property
    def saving(self) -> float:
        return self.base_cost - self.final_cost

    def describe(self) -> str:
        lines = [
            f"selected {len(self.selected)} views, workload cost "
            f"{self.base_cost:,.0f} -> {self.final_cost:,.0f} rows scanned "
            f"({self.saving / max(self.base_cost, 1e-9):.0%} saved)"
        ]
        for view, benefit, per_row in self.steps:
            lines.append(
                f"  + {view_name(view):10s} benefit {benefit:12,.0f}"
                f"  ({per_row:8.2f} per stored row)"
            )
        return "\n".join(lines)


def workload_cost(
    workload: Sequence[View],
    materialised: Sequence[View],
    sizes: Mapping[View, float],
    top: View,
) -> float:
    """HRU cost: each query scans its smallest materialised ancestor."""
    total = 0.0
    for query in workload:
        candidates = [
            sizes[v]
            for v in materialised
            if is_subset(query, v)
        ]
        candidates.append(sizes[top])
        total += min(candidates)
    return total


def select_views(
    workload: Sequence[View],
    sizes: Mapping[View, float],
    budget_rows: float | None = None,
    max_views: int | None = None,
) -> AdvisorResult:
    """Pick views to materialise for ``workload`` by greedy benefit.

    Parameters
    ----------
    workload:
        The group-bys the warehouse must answer (duplicates express
        frequency: a query listed twice counts double).
    sizes:
        Estimated row counts per view; must contain every workload view,
        every candidate, and the top view (the largest view present is
        taken as the raw data set stand-in).
    budget_rows:
        Optional storage budget: stop when the next pick would exceed it.
    max_views:
        Optional cap on the number of selected views.

    Returns
    -------
    :class:`AdvisorResult`; ``result.selected`` feeds
    ``build_partial_cube`` (queries not covered by the selection fall
    back to the raw view at query time).
    """
    sizes = {canonical_view(v): float(s) for v, s in sizes.items()}
    workload = [canonical_view(v) for v in workload]
    for query in workload:
        if query not in sizes:
            raise KeyError(f"no size estimate for workload view {view_name(query)}")
    top = max(sizes, key=lambda v: (len(v), sizes[v]))
    candidates = [
        v for v in sizes
        if v != top and any(is_subset(q, v) for q in workload)
    ]

    selected: list[View] = []
    steps: list[tuple[View, float, float]] = []
    base_cost = workload_cost(workload, [], sizes, top)
    current = base_cost
    spent = 0.0
    while candidates:
        if max_views is not None and len(selected) >= max_views:
            break
        best, best_benefit = None, 0.0
        for cand in candidates:
            cost = workload_cost(workload, selected + [cand], sizes, top)
            benefit = current - cost
            if benefit <= 0:
                continue
            if best is None or benefit / sizes[cand] > best_benefit:
                best, best_benefit = cand, benefit / sizes[cand]
        if best is None:
            break
        if budget_rows is not None and spent + sizes[best] > budget_rows:
            candidates.remove(best)
            continue
        selected.append(best)
        candidates.remove(best)
        spent += sizes[best]
        new_cost = workload_cost(workload, selected, sizes, top)
        steps.append((best, current - new_cost, (current - new_cost) / sizes[best]))
        current = new_cost
    return AdvisorResult(
        selected=selected,
        base_cost=base_cost,
        final_cost=current,
        steps=steps,
    )
