"""Group-by queries answered from materialised views.

A :class:`Query` asks for an aggregate grouped by some dimensions with
optional per-dimension range filters.  The :class:`QueryPlanner` picks the
cheapest materialised view that *covers* the query — it must contain every
group-by dimension and every filtered dimension, and the smallest such
view (fewest rows) costs the least to scan (Harinarayan-Rajaraman-Ullman's
classic view-selection argument, which the paper's partial cubes feed).
Among equal-sized candidates the planner prefers the view whose *sort
order* gives the query the best access path (see below).

:class:`QueryEngine` executes the plan either on the gathered cube or in
parallel on the virtual cluster.  The gathered path has two lanes:

* **index** — when the chosen view's sort order makes the query's
  filtered dimensions a key prefix, the filters collapse to one
  ``searchsorted`` range over the packed keys (fence-index narrowed for
  store-backed views) and the group-by aggregates on the already-sorted
  slice: no decode, no argsort (:mod:`repro.olap.index`).
* **scan** — the original decode-filter-sort fallback for queries the
  order cannot help.

``explain()`` reports which lane a query takes.  The parallel path is
the payoff of the paper's γ balance contract: every view is spread
evenly across the ranks' disks, so a parallel scan costs ``rows/p`` —
a deliberately unbalanced cube answers the same query slower, which
``benchmarks/bench_query_latency.py`` measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.config import MachineSpec
from repro.core.cube import CubeResult
from repro.core.viewdata import codec_for_order
from repro.core.views import View, canonical_view, view_name
from repro.mpi.engine import run_spmd
from repro.olap.hybrid import HybridView
from repro.olap.index import (
    AccessPlan,
    SortedView,
    aggregate_slice,
    classify_access,
    key_bounds,
)
from repro.storage.codec import KeyCodec
from repro.storage.reorder import ValueReorder
from repro.storage.scan import aggregate_sorted_keys
from repro.storage.sortkernels import is_sorted_int64
from repro.storage.table import Relation

__all__ = [
    "Query",
    "QueryEngine",
    "QueryPlan",
    "QueryPlanner",
    "ReorderedQueryEngine",
]


_HAVING_OPS = {
    ">=": np.greater_equal,
    "<=": np.less_equal,
    ">": np.greater,
    "<": np.less,
}


class _FrozenFilters(dict):
    """An immutable, hashable filter mapping (dim -> (lo, hi)).

    Built from dim-sorted items so iteration order, repr, equality and
    the hash are all canonical; a :class:`Query` holding one is a valid
    dict/set key (the result-cache keys on the query object directly).
    """

    def __hash__(self) -> int:  # items are already dim-sorted
        return hash(tuple(self.items()))

    def _immutable(self, *args, **kwargs):
        raise TypeError("Query filters are immutable")

    __setitem__ = _immutable
    __delitem__ = _immutable
    clear = _immutable
    pop = _immutable
    popitem = _immutable
    setdefault = _immutable
    update = _immutable

    def __reduce__(self):
        return (_rebuild_filters, (tuple(self.items()),))


def _rebuild_filters(items) -> "_FrozenFilters":
    ff = _FrozenFilters()
    dict.update(ff, items)
    return ff


@dataclass(frozen=True)
class Query:
    """``SELECT <group_by>, AGG(measure) WHERE <filters> GROUP BY ...
    HAVING AGG(measure) <op> <threshold>``.

    ``filters`` maps a dimension index to an inclusive ``(lo, hi)`` code
    range (a single value filters as ``(v, v)``).  ``having`` is an
    optional ``(op, threshold)`` applied to each group's aggregate — the
    iceberg-query form, e.g. ``(">=", 1000.0)``.

    Instances are hashable (filters normalise to an immutable dim-sorted
    mapping), so a query can key a cache or a set directly.
    """

    group_by: View
    filters: Mapping[int, tuple[int, int]] = field(default_factory=dict)
    having: tuple[str, float] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "group_by", canonical_view(self.group_by))
        norm = []
        for dim, bounds in dict(self.filters).items():
            if isinstance(bounds, (int, np.integer)):
                bounds = (int(bounds), int(bounds))
            lo, hi = int(bounds[0]), int(bounds[1])
            if lo > hi:
                raise ValueError(
                    f"filter on dim {dim}: lo {lo} > hi {hi}"
                )
            norm.append((int(dim), (lo, hi)))
        object.__setattr__(
            self, "filters", _rebuild_filters(sorted(norm))
        )
        if self.having is not None:
            op, threshold = self.having
            if op not in _HAVING_OPS:
                raise ValueError(
                    f"having op must be one of {sorted(_HAVING_OPS)}, "
                    f"got {op!r}"
                )
            object.__setattr__(self, "having", (op, float(threshold)))

    @property
    def required_dims(self) -> View:
        """Dimensions the answering view must contain."""
        return canonical_view(tuple(self.group_by) + tuple(self.filters))

    def describe(self) -> str:
        parts = [f"GROUP BY {view_name(self.group_by)}"]
        if self.filters:
            conds = ", ".join(
                f"D{dim} in [{lo},{hi}]"
                for dim, (lo, hi) in sorted(self.filters.items())
            )
            parts.append(f"WHERE {conds}")
        if self.having is not None:
            parts.append(f"HAVING agg {self.having[0]} {self.having[1]:g}")
        return " ".join(parts)


@dataclass(frozen=True)
class QueryPlan:
    """A chosen materialised view, its scan cost, and the access path."""

    query: Query
    view: View
    scan_rows: int
    #: ``"index"`` | ``"index+sort"`` | ``"scan"``, or — against a
    #: format-3 store when the whole key range lies in dense blocks —
    #: ``"dense"`` (index semantics, direct offset arithmetic).
    access_path: str = "scan"
    #: The view's sort order, when one is known to the planner.
    order: tuple[int, ...] | None = None
    #: Structural classification backing ``access_path``.
    access: AccessPlan | None = field(default=None, compare=False)

    def describe(self) -> str:
        return (
            f"{self.query.describe()}  <-  {self.access_path} view "
            f"{view_name(self.view)} ({self.scan_rows:,} rows)"
        )


#: Preference rank of each access path at equal view size.
_PATH_RANK = {"index": 0, "index+sort": 1, "scan": 2}


class QueryPlanner:
    """Smallest-covering-view selection over the materialised set.

    ``view_orders`` (optional) maps views to their sort orders; with it
    the planner breaks row-count ties toward the view whose order gives
    the cheapest access path, and every plan carries its classification.
    Per-view dimension bitmasks are precomputed once, so each ``plan``
    call is a constant-space mask test per view.
    """

    def __init__(
        self,
        view_rows: Mapping[View, int],
        view_orders: Mapping[View, Sequence[int]] | None = None,
    ):
        self.view_rows = {
            canonical_view(v): int(n) for v, n in view_rows.items()
        }
        self.view_orders: dict[View, tuple[int, ...]] = {}
        for v, order in (view_orders or {}).items():
            self.view_orders[canonical_view(v)] = tuple(
                int(i) for i in order
            )
        self._masks = {
            view: self._bitmask(view) for view in self.view_rows
        }

    @staticmethod
    def _bitmask(dims: Sequence[int]) -> int:
        mask = 0
        for dim in dims:
            mask |= 1 << int(dim)
        return mask

    def _classify(self, view: View, query: Query) -> tuple[str, AccessPlan | None]:
        order = self.view_orders.get(view)
        if order is None:
            return "scan", None
        access = classify_access(order, query.group_by, query.filters)
        return access.kind, access

    def plan(self, query: Query) -> QueryPlan:
        need = self._bitmask(query.required_dims)
        best: View | None = None
        best_rows = -1
        for view, rows in self.view_rows.items():
            if need & ~self._masks[view]:
                continue
            if best is None or rows < best_rows:
                best, best_rows = view, rows
        if best is None:
            raise LookupError(
                f"no materialised view covers {view_name(query.required_dims)}"
                " (partial cube without this ancestor?)"
            )
        # Tie-break among equal-sized candidates: the order-compatible
        # view (cheapest access path), then the lexicographically first.
        ties = [
            view
            for view, rows in self.view_rows.items()
            if rows == best_rows and not (need & ~self._masks[view])
        ]
        best_key = None
        chosen, chosen_kind, chosen_access = best, "scan", None
        for view in ties:
            kind, access = self._classify(view, query)
            key = (_PATH_RANK[kind], view)
            if best_key is None or key < best_key:
                best_key = key
                chosen, chosen_kind, chosen_access = view, kind, access
        return QueryPlan(
            query=query,
            view=chosen,
            scan_rows=best_rows,
            access_path=chosen_kind,
            order=self.view_orders.get(chosen),
            access=chosen_access,
        )


def _filter_mask(
    dims: np.ndarray, view: View, filters: Mapping[int, tuple[int, int]]
) -> np.ndarray:
    mask = np.ones(dims.shape[0], dtype=bool)
    col_of = {dim: pos for pos, dim in enumerate(view)}
    for dim, (lo, hi) in filters.items():
        col = dims[:, col_of[dim]]
        mask &= (col >= lo) & (col <= hi)
    return mask


def _apply_having(
    keys: np.ndarray,
    measure: np.ndarray,
    having: tuple[str, float] | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Filter aggregated groups by the HAVING predicate (iceberg form).

    Applied after full aggregation, so it is only valid on completely
    combined groups — all engine paths satisfy that.
    """
    if having is None:
        return keys, measure
    op, threshold = having
    mask = _HAVING_OPS[op](measure, threshold)
    return keys[mask], measure[mask]


def _aggregate(
    dims: np.ndarray,
    measure: np.ndarray,
    view: View,
    group_by: View,
    cards: Sequence[int],
    agg: str,
) -> tuple[np.ndarray, np.ndarray]:
    """Aggregate filtered view rows onto the group-by dims (packed keys)."""
    col_of = {dim: pos for pos, dim in enumerate(view)}
    cols = [col_of[dim] for dim in group_by]
    codec = KeyCodec([cards[dim] for dim in group_by])
    keys = (
        codec.pack(dims[:, cols])
        if cols
        else np.zeros(dims.shape[0], dtype=np.int64)
    )
    order = np.argsort(keys, kind="stable")
    return aggregate_sorted_keys(keys[order], measure[order], agg)


class QueryEngine:
    """Answer queries from a built :class:`~repro.core.cube.CubeResult`.

    ``sorted_views`` (usually from :meth:`repro.olap.store.CubeStore.
    open`) supplies mmap-backed sorted view handles for the index path;
    without them the engine builds in-memory sorted handles lazily from
    the cube's own pieces (every builder in this repository leaves views
    globally sorted in rank order, so this is a cheap concatenation).
    ``index=False`` pins every query to the scan path — the A/B lever
    the serving benchmark uses.
    """

    def __init__(
        self,
        cube: CubeResult,
        sorted_views: Mapping[View, SortedView] | None = None,
        index: bool = True,
    ):
        self.cube = cube
        self._store_views: dict[View, SortedView] = dict(sorted_views or {})
        self._index_enabled = bool(index)
        self._local_views: dict[View, SortedView | None] = {}
        view_orders: dict[View, tuple[int, ...]] = {}
        for view in cube.views:
            if view in self._store_views:
                view_orders[view] = self._store_views[view].order
                continue
            orders = {rv[view].order for rv in cube.rank_views}
            if len(orders) == 1:
                view_orders[view] = next(iter(orders))
        self.planner = QueryPlanner(
            {view: cube.view_rows(view) for view in cube.views},
            view_orders if self._index_enabled else None,
        )

    # -- sorted-view access ------------------------------------------------

    def _sorted_view(self, view: View) -> SortedView | None:
        """A sorted handle for ``view``: the store's mmap handle when
        open, else a lazily built in-memory one (``None`` when the
        rank concatenation is not globally sorted — then only the scan
        path preserves bit-identical float summation order)."""
        sv = self._store_views.get(view)
        if sv is not None:
            return sv
        if view in self._local_views:
            return self._local_views[view]
        pieces = [rv[view] for rv in self.cube.rank_views]
        orders = {piece.order for piece in pieces}
        built: SortedView | None = None
        if len(orders) == 1:
            keys = np.concatenate([piece.keys for piece in pieces])
            if is_sorted_int64(keys):
                measure = np.concatenate(
                    [piece.measure for piece in pieces]
                )
                built = SortedView(next(iter(orders)), keys, measure)
        self._local_views[view] = built
        return built

    def explain(self, query: Query) -> QueryPlan:
        """The chosen view plus the access path the engine will take."""
        plan = self.planner.plan(query)
        if plan.access_path != "scan" and (
            not self._index_enabled or self._sorted_view(plan.view) is None
        ):
            plan = QueryPlan(
                query=plan.query,
                view=plan.view,
                scan_rows=plan.scan_rows,
                access_path="scan",
                order=plan.order,
            )
        elif plan.access_path != "scan" and plan.access is not None:
            # Against a hybrid view, report the dense path when the
            # whole key range resolves by block-offset arithmetic.
            sv = self._sorted_view(plan.view)
            if isinstance(sv, HybridView):
                lo_key, hi_key = key_bounds(
                    sv.order, self.cube.cardinalities,
                    plan.access, query.filters,
                )
                if sv.range_kind(lo_key, hi_key) == "dense":
                    plan = QueryPlan(
                        query=plan.query,
                        view=plan.view,
                        scan_rows=plan.scan_rows,
                        access_path="dense",
                        order=plan.order,
                        access=plan.access,
                    )
        return plan

    # -- gathered execution ------------------------------------------------

    def answer(self, query: Query) -> Relation:
        """Gathered (single-host) execution; returns canonical columns."""
        plan = self.explain(query)
        cards = self.cube.cardinalities
        if plan.access_path != "scan" and plan.access is not None:
            sv = self._sorted_view(plan.view)
            lo_key, hi_key = key_bounds(
                sv.order, cards, plan.access, query.filters
            )
            start, stop = sv.range(lo_key, hi_key)
            keys, measure = sv.read(start, stop)
            out_keys, out_measure = aggregate_slice(
                keys, measure, sv.order, cards, plan.access,
                query.group_by, self.cube.agg,
            )
        else:
            rel = self.cube.view_relation(plan.view)
            mask = _filter_mask(rel.dims, plan.view, query.filters)
            out_keys, out_measure = _aggregate(
                rel.dims[mask],
                rel.measure[mask],
                plan.view,
                query.group_by,
                cards,
                self.cube.agg,
            )
        out_keys, out_measure = _apply_having(
            out_keys, out_measure, query.having
        )
        codec = KeyCodec([cards[dim] for dim in query.group_by])
        return Relation(codec.unpack(out_keys), out_measure)

    # -- parallel execution ------------------------------------------------

    def answer_parallel(
        self, query: Query, spec: MachineSpec | None = None
    ) -> tuple[Relation, float]:
        """Execute the plan across the virtual cluster.

        Each rank scans its local piece of the chosen view (charging disk
        and modelled CPU), partial aggregates travel to rank 0 in one
        gather, and rank 0 combines.  Returns the result plus the
        *simulated* latency — which is bounded below by the largest
        per-rank piece of the view, i.e. by the γ balance the construction
        paid for.
        """
        plan = self.planner.plan(query)
        spec = spec or MachineSpec(p=len(self.cube.rank_views))
        if spec.p != len(self.cube.rank_views):
            raise ValueError(
                f"cube is distributed over {len(self.cube.rank_views)} "
                f"ranks but spec has p={spec.p}"
            )
        cube, cards, agg = self.cube, self.cube.cardinalities, self.cube.agg
        group_by, filters, view = query.group_by, query.filters, plan.view
        # One codec per distinct rank order, derived once up front —
        # the rank closures share them instead of re-deriving per rank
        # per query.
        codecs = {
            rv[view].order: codec_for_order(rv[view].order, cards)
            for rv in cube.rank_views
        }

        def rank_program(comm):
            data = cube.rank_views[comm.rank][view]
            comm.set_phase("query-scan")
            comm.disk.charge_scan(data.nrows)
            comm.disk.work.charge_scan(data.nrows)
            dims_local = codecs[data.order].unpack(data.keys)
            col_of = {dim: pos for pos, dim in enumerate(data.order)}
            canon_cols = [col_of[dim] for dim in view]
            dims_local = dims_local[:, canon_cols] if canon_cols else dims_local
            mask = _filter_mask(dims_local, view, filters)
            keys, measure = _aggregate(
                dims_local[mask], data.measure[mask], view, group_by,
                cards, agg,
            )
            comm.set_phase("query-gather")
            parts = comm.gather((keys, measure), root=0)
            if comm.rank != 0:
                return None
            all_keys = np.concatenate([k for k, _ in parts])
            all_measure = np.concatenate([m for _, m in parts])
            order = np.argsort(all_keys, kind="stable")
            return aggregate_sorted_keys(
                all_keys[order], all_measure[order], agg
            )

        result = run_spmd(rank_program, spec)
        keys, measure = result.rank_results[0]
        keys, measure = _apply_having(keys, measure, query.having)
        codec = KeyCodec([cards[dim] for dim in group_by])
        return (
            Relation(codec.unpack(keys), measure),
            result.simulated_seconds,
        )


class ReorderedQueryEngine:
    """Answer queries in *original* attribute values against a cube
    built under a :class:`~repro.storage.reorder.ValueReorder`.

    The store holds reordered codes; callers keep speaking the labels
    the raw data used.  Per query the wrapper:

    1. maps each filter's value range through the permutation — a point
       stays a point and a full range stays full, so those pass through
       as (contiguous) inner filters; a partial range whose image is
       non-contiguous becomes its covering range plus a membership
       post-filter, and the filtered dimension joins the inner group-by
       so the membership test can run on the (small) aggregated groups
       instead of per row;
    2. runs the translated query on the wrapped engine unchanged —
       index, dense, and scan paths all apply;
    3. drops groups failing a membership post-filter, maps group codes
       back through the inverse permutations, re-aggregates onto the
       requested group-by (a no-op when no auxiliary dims were added),
       applies HAVING, and returns rows sorted by the canonical
       original-value packed keys.

    Every step after the inner answer is a deterministic function of
    that answer, so two stores of the same reordered cube (e.g. format
    2 and format 3) return bit-identical results through this wrapper,
    and HAVING only ever sees completely combined groups.
    """

    def __init__(self, inner: QueryEngine, reorder: ValueReorder):
        if reorder.width != len(inner.cube.cardinalities):
            raise ValueError(
                f"reorder covers {reorder.width} dims but the cube has "
                f"{len(inner.cube.cardinalities)}"
            )
        self.inner = inner
        self.reorder = reorder
        self.cube = inner.cube

    @property
    def planner(self) -> QueryPlanner:
        return self.inner.planner

    # -- translation -------------------------------------------------------

    def _translate(
        self, query: Query
    ) -> tuple[Query | None, tuple[tuple[int, np.ndarray], ...]]:
        """The inner (reordered-space) query plus membership
        post-filters; inner query ``None`` when a filter range clamps
        to nothing (the answer is empty)."""
        cards = self.cube.cardinalities
        inner_filters: dict[int, tuple[int, int]] = {}
        post: list[tuple[int, np.ndarray]] = []
        for dim, (lo, hi) in query.filters.items():
            mapped = self.reorder.map_range(dim, lo, hi)
            if mapped.size == 0:
                return None, ()
            mlo, mhi = int(mapped[0]), int(mapped[-1])
            inner_filters[dim] = (mlo, mhi)
            if mhi - mlo + 1 != mapped.size:
                keep = np.zeros(int(cards[dim]), dtype=bool)
                keep[mapped] = True
                post.append((int(dim), keep))
        aux = tuple(
            dim for dim, _ in post if dim not in query.group_by
        )
        inner_group = canonical_view(tuple(query.group_by) + aux)
        return (
            Query(group_by=inner_group, filters=inner_filters),
            tuple(post),
        )

    def _finish(
        self,
        query: Query,
        inner_group: View,
        post: tuple[tuple[int, np.ndarray], ...],
        rel: Relation,
    ) -> Relation:
        cards = self.cube.cardinalities
        dims, measure = rel.dims, rel.measure
        if post:
            col_of = {dim: pos for pos, dim in enumerate(inner_group)}
            mask = np.ones(dims.shape[0], dtype=bool)
            for dim, keep in post:
                mask &= keep[dims[:, col_of[dim]]]
            dims, measure = dims[mask], measure[mask]
        cols = [inner_group.index(dim) for dim in query.group_by]
        orig = self.reorder.invert_dims(
            dims[:, cols], dims_of=query.group_by
        )
        codec = KeyCodec([cards[dim] for dim in query.group_by])
        keys = (
            codec.pack(orig)
            if query.group_by
            else np.zeros(orig.shape[0], dtype=np.int64)
        )
        order = np.argsort(keys, kind="stable")
        out_keys, out_measure = aggregate_sorted_keys(
            keys[order], measure[order], self.cube.agg
        )
        out_keys, out_measure = _apply_having(
            out_keys, out_measure, query.having
        )
        return Relation(codec.unpack(out_keys), out_measure)

    def _empty(self, query: Query) -> Relation:
        return Relation(
            np.empty((0, len(query.group_by)), dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )

    # -- QueryEngine API ---------------------------------------------------

    def explain(self, query: Query) -> QueryPlan:
        """The inner plan of the translated query."""
        inner_query, _ = self._translate(query)
        return self.inner.explain(
            inner_query if inner_query is not None else query
        )

    def answer(self, query: Query) -> Relation:
        inner_query, post = self._translate(query)
        if inner_query is None:
            return self._empty(query)
        rel = self.inner.answer(inner_query)
        return self._finish(query, inner_query.group_by, post, rel)

    def answer_parallel(
        self, query: Query, spec: MachineSpec | None = None
    ) -> tuple[Relation, float]:
        inner_query, post = self._translate(query)
        if inner_query is None:
            return self._empty(query), 0.0
        rel, seconds = self.inner.answer_parallel(inner_query, spec)
        return (
            self._finish(query, inner_query.group_by, post, rel),
            seconds,
        )
