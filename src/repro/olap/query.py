"""Group-by queries answered from materialised views.

A :class:`Query` asks for an aggregate grouped by some dimensions with
optional per-dimension range filters.  The :class:`QueryPlanner` picks the
cheapest materialised view that *covers* the query — it must contain every
group-by dimension and every filtered dimension, and the smallest such
view (fewest rows) costs the least to scan (Harinarayan-Rajaraman-Ullman's
classic view-selection argument, which the paper's partial cubes feed).

:class:`QueryEngine` executes the plan either on the gathered cube or in
parallel on the virtual cluster.  The parallel path is the payoff of the
paper's γ balance contract: every view is spread evenly across the ranks'
disks, so a parallel scan costs ``rows/p`` — a deliberately unbalanced
cube answers the same query slower, which
``benchmarks/bench_query_latency.py`` measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.config import MachineSpec
from repro.core.cube import CubeResult
from repro.core.views import View, canonical_view, view_name
from repro.mpi.engine import run_spmd
from repro.storage.codec import KeyCodec
from repro.storage.scan import aggregate_sorted_keys
from repro.storage.table import Relation

__all__ = ["Query", "QueryEngine", "QueryPlan", "QueryPlanner"]


_HAVING_OPS = {
    ">=": np.greater_equal,
    "<=": np.less_equal,
    ">": np.greater,
    "<": np.less,
}


@dataclass(frozen=True)
class Query:
    """``SELECT <group_by>, AGG(measure) WHERE <filters> GROUP BY ...
    HAVING AGG(measure) <op> <threshold>``.

    ``filters`` maps a dimension index to an inclusive ``(lo, hi)`` code
    range (a single value filters as ``(v, v)``).  ``having`` is an
    optional ``(op, threshold)`` applied to each group's aggregate — the
    iceberg-query form, e.g. ``(">=", 1000.0)``.
    """

    group_by: View
    filters: Mapping[int, tuple[int, int]] = field(default_factory=dict)
    having: tuple[str, float] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "group_by", canonical_view(self.group_by))
        norm = {}
        for dim, bounds in dict(self.filters).items():
            if isinstance(bounds, (int, np.integer)):
                bounds = (int(bounds), int(bounds))
            lo, hi = int(bounds[0]), int(bounds[1])
            if lo > hi:
                raise ValueError(
                    f"filter on dim {dim}: lo {lo} > hi {hi}"
                )
            norm[int(dim)] = (lo, hi)
        object.__setattr__(self, "filters", norm)
        if self.having is not None:
            op, threshold = self.having
            if op not in _HAVING_OPS:
                raise ValueError(
                    f"having op must be one of {sorted(_HAVING_OPS)}, "
                    f"got {op!r}"
                )
            object.__setattr__(self, "having", (op, float(threshold)))

    @property
    def required_dims(self) -> View:
        """Dimensions the answering view must contain."""
        return canonical_view(tuple(self.group_by) + tuple(self.filters))

    def describe(self) -> str:
        parts = [f"GROUP BY {view_name(self.group_by)}"]
        if self.filters:
            conds = ", ".join(
                f"D{dim} in [{lo},{hi}]"
                for dim, (lo, hi) in sorted(self.filters.items())
            )
            parts.append(f"WHERE {conds}")
        if self.having is not None:
            parts.append(f"HAVING agg {self.having[0]} {self.having[1]:g}")
        return " ".join(parts)


@dataclass(frozen=True)
class QueryPlan:
    """A chosen materialised view plus its scan cost."""

    query: Query
    view: View
    scan_rows: int

    def describe(self) -> str:
        return (
            f"{self.query.describe()}  <-  scan view "
            f"{view_name(self.view)} ({self.scan_rows:,} rows)"
        )


class QueryPlanner:
    """Smallest-covering-view selection over the materialised set."""

    def __init__(self, view_rows: Mapping[View, int]):
        self.view_rows = {canonical_view(v): int(n) for v, n in view_rows.items()}

    def plan(self, query: Query) -> QueryPlan:
        need = set(query.required_dims)
        best: View | None = None
        best_rows = -1
        for view, rows in self.view_rows.items():
            if need <= set(view):
                if best is None or rows < best_rows or (
                    rows == best_rows and view < best
                ):
                    best, best_rows = view, rows
        if best is None:
            raise LookupError(
                f"no materialised view covers {view_name(query.required_dims)}"
                " (partial cube without this ancestor?)"
            )
        return QueryPlan(query=query, view=best, scan_rows=best_rows)


def _filter_mask(
    dims: np.ndarray, view: View, filters: Mapping[int, tuple[int, int]]
) -> np.ndarray:
    mask = np.ones(dims.shape[0], dtype=bool)
    col_of = {dim: pos for pos, dim in enumerate(view)}
    for dim, (lo, hi) in filters.items():
        col = dims[:, col_of[dim]]
        mask &= (col >= lo) & (col <= hi)
    return mask


def _apply_having(
    keys: np.ndarray,
    measure: np.ndarray,
    having: tuple[str, float] | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Filter aggregated groups by the HAVING predicate (iceberg form).

    Applied after full aggregation, so it is only valid on completely
    combined groups — both engine paths satisfy that.
    """
    if having is None:
        return keys, measure
    op, threshold = having
    mask = _HAVING_OPS[op](measure, threshold)
    return keys[mask], measure[mask]


def _aggregate(
    dims: np.ndarray,
    measure: np.ndarray,
    view: View,
    group_by: View,
    cards: Sequence[int],
    agg: str,
) -> tuple[np.ndarray, np.ndarray]:
    """Aggregate filtered view rows onto the group-by dims (packed keys)."""
    col_of = {dim: pos for pos, dim in enumerate(view)}
    cols = [col_of[dim] for dim in group_by]
    codec = KeyCodec([cards[dim] for dim in group_by])
    keys = (
        codec.pack(dims[:, cols])
        if cols
        else np.zeros(dims.shape[0], dtype=np.int64)
    )
    order = np.argsort(keys, kind="stable")
    return aggregate_sorted_keys(keys[order], measure[order], agg)


class QueryEngine:
    """Answer queries from a built :class:`~repro.core.cube.CubeResult`."""

    def __init__(self, cube: CubeResult):
        self.cube = cube
        self.planner = QueryPlanner(
            {view: cube.view_rows(view) for view in cube.views}
        )

    def explain(self, query: Query) -> QueryPlan:
        return self.planner.plan(query)

    def answer(self, query: Query) -> Relation:
        """Gathered (single-host) execution; returns canonical columns."""
        plan = self.planner.plan(query)
        rel = self.cube.view_relation(plan.view)
        mask = _filter_mask(rel.dims, plan.view, query.filters)
        keys, measure = _aggregate(
            rel.dims[mask],
            rel.measure[mask],
            plan.view,
            query.group_by,
            self.cube.cardinalities,
            self.cube.agg,
        )
        keys, measure = _apply_having(keys, measure, query.having)
        codec = KeyCodec(
            [self.cube.cardinalities[dim] for dim in query.group_by]
        )
        return Relation(codec.unpack(keys), measure)

    def answer_parallel(
        self, query: Query, spec: MachineSpec | None = None
    ) -> tuple[Relation, float]:
        """Execute the plan across the virtual cluster.

        Each rank scans its local piece of the chosen view (charging disk
        and modelled CPU), partial aggregates travel to rank 0 in one
        gather, and rank 0 combines.  Returns the result plus the
        *simulated* latency — which is bounded below by the largest
        per-rank piece of the view, i.e. by the γ balance the construction
        paid for.
        """
        plan = self.planner.plan(query)
        spec = spec or MachineSpec(p=len(self.cube.rank_views))
        if spec.p != len(self.cube.rank_views):
            raise ValueError(
                f"cube is distributed over {len(self.cube.rank_views)} "
                f"ranks but spec has p={spec.p}"
            )
        cube, cards, agg = self.cube, self.cube.cardinalities, self.cube.agg
        group_by, filters, view = query.group_by, query.filters, plan.view

        def rank_program(comm):
            data = cube.rank_views[comm.rank][view]
            comm.set_phase("query-scan")
            comm.disk.charge_scan(data.nrows)
            comm.disk.work.charge_scan(data.nrows)
            from repro.core.viewdata import codec_for_order

            dims_local = codec_for_order(data.order, cards).unpack(data.keys)
            col_of = {dim: pos for pos, dim in enumerate(data.order)}
            canon_cols = [col_of[dim] for dim in view]
            dims_local = dims_local[:, canon_cols] if canon_cols else dims_local
            mask = _filter_mask(dims_local, view, filters)
            keys, measure = _aggregate(
                dims_local[mask], data.measure[mask], view, group_by,
                cards, agg,
            )
            comm.set_phase("query-gather")
            parts = comm.gather((keys, measure), root=0)
            if comm.rank != 0:
                return None
            all_keys = np.concatenate([k for k, _ in parts])
            all_measure = np.concatenate([m for _, m in parts])
            order = np.argsort(all_keys, kind="stable")
            return aggregate_sorted_keys(
                all_keys[order], all_measure[order], agg
            )

        result = run_spmd(rank_program, spec)
        keys, measure = result.rank_results[0]
        keys, measure = _apply_having(keys, measure, query.having)
        codec = KeyCodec([cards[dim] for dim in group_by])
        return (
            Relation(codec.unpack(keys), measure),
            result.simulated_seconds,
        )
