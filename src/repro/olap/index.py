"""Fence indexes and access-path planning over sorted packed-key views.

The paper builds views precisely so queries do not scan raw data; this
module makes the stored views earn that on the serving side.  Every
format-2 view (:mod:`repro.olap.store`) is one globally sorted array of
packed int64 keys (most-significant dimension first, per the view's sort
order), so

* a **fence index** — every ``stride``-th key, persisted in the store
  manifest — narrows any key range to a small block window before a
  single page of the column is touched, and two ``searchsorted`` calls
  inside that window finish the job (the classic sparse index of
  sorted-string-table storage);
* an **access plan** classifies a query against the view's sort order:
  when the filtered dimensions form an order prefix the filters become
  one contiguous key range, and when the group-by dimensions are the
  next varying positions the slice aggregates with *no decode and no
  argsort* — :func:`repro.storage.scan.aggregate_sorted_keys` straight
  over remapped keys.

Both pieces are deliberately arithmetic-only (divmods against the
codec's mixed-radix weights); nothing here unpacks an ``(n, d)`` code
matrix.  :class:`SortedView` bundles a view's columns (mmap-backed or
in-memory) with its fence so the query engine has one object to range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.viewdata import codec_for_order
from repro.storage.mmapio import MappedColumn, MmapMeter
from repro.storage.scan import aggregate_sorted_keys
from repro.storage.sortkernels import sort_pairs

__all__ = [
    "AccessPlan",
    "FenceIndex",
    "SortedView",
    "aggregate_slice",
    "classify_access",
    "key_bounds",
]

#: Default fence stride: 512 int64 keys = one 4 KiB page per fence block.
DEFAULT_STRIDE = 512


# ---------------------------------------------------------------------------
# fence index
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FenceIndex:
    """Every ``stride``-th key of a sorted column (plus the last key).

    Small enough to live in the JSON manifest (a 1M-row view at the
    default stride is ~2k sampled keys), big enough that a lookup
    touches only the fence blocks that can contain the range.
    """

    stride: int
    nrows: int
    keys: np.ndarray  # sampled keys, ascending

    @staticmethod
    def build(keys: np.ndarray, stride: int | None = None) -> "FenceIndex":
        stride = int(stride or DEFAULT_STRIDE)
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        n = int(keys.shape[0])
        if n == 0:
            return FenceIndex(stride, 0, np.empty(0, dtype=np.int64))
        samples = np.array(keys[::stride], dtype=np.int64)
        return FenceIndex(stride, n, samples)

    def window(self, lo_key: int, hi_key: int) -> tuple[int, int]:
        """Conservative row window covering every key in ``[lo, hi]``.

        Block-granular: the caller refines with ``searchsorted`` inside
        the window, touching only those pages.
        """
        if self.nrows == 0 or hi_key < lo_key:
            return 0, 0
        # Last block whose sample is < lo can still contain keys >= lo;
        # side="left" keeps boundary duplicates of lo inside the window.
        b_lo = int(np.searchsorted(self.keys, lo_key, side="left")) - 1
        b_lo = max(b_lo, 0)
        # Last block that can contain a key <= hi.
        b_hi = int(np.searchsorted(self.keys, hi_key, side="right"))
        row_lo = b_lo * self.stride
        row_hi = min((b_hi + 1) * self.stride, self.nrows)
        return row_lo, max(row_hi, row_lo)

    def to_manifest(self) -> dict:
        return {
            "stride": self.stride,
            "nrows": self.nrows,
            "keys": [int(k) for k in self.keys],
        }

    @staticmethod
    def from_manifest(entry: Mapping) -> "FenceIndex":
        return FenceIndex(
            int(entry["stride"]),
            int(entry["nrows"]),
            np.asarray(entry["keys"], dtype=np.int64),
        )


# ---------------------------------------------------------------------------
# access-path classification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AccessPlan:
    """How a query maps onto one sorted view.

    ``kind`` is the access path:

    * ``"index"`` — contiguous key range (two binary searches) and the
      slice aggregates already sorted: no decode, no argsort.
    * ``"index+sort"`` — contiguous key range, but the group projection
      is not monotone inside it, so the (narrowed) slice pays one
      stable sort of its projected keys.
    * ``"scan"`` — no usable prefix structure; full-view filter+sort.
    """

    kind: str
    #: Leading order positions folded into the key range bounds.
    prefix_len: int
    #: True iff projected group keys are non-decreasing over the slice.
    monotone: bool
    #: Group-by dims in their order of occurrence in the view order.
    group_occ: tuple[int, ...]
    #: Row-level residual filters (dim -> (lo, hi)) applied by digit
    #: arithmetic on the packed keys inside the slice.
    residual: tuple[tuple[int, tuple[int, int]], ...] = ()
    #: Filters on group-by dims outside the prefix, applied to the
    #: (small) aggregated groups instead of per row.
    group_filters: tuple[tuple[int, tuple[int, int]], ...] = ()

    @property
    def uses_index(self) -> bool:
        return self.kind != "scan"


def classify_access(
    order: Sequence[int],
    group_by: Sequence[int],
    filters: Mapping[int, tuple[int, int]],
) -> AccessPlan:
    """Classify a (group_by, filters) query against a view sort order.

    The contiguous-range prefix extends while order positions carry
    point filters, plus at most one final range-filtered position (a
    range at a more significant digit than an unfiltered one would
    shatter the slice).  Beyond the prefix, filters on group-by dims
    move to the aggregated groups and everything else becomes a
    residual digit mask.  The slice's group projection is monotone iff
    the group-by dims occupy the leading *varying* positions.
    """
    order = tuple(int(i) for i in order)
    gset = {int(d) for d in group_by}
    fdict = {int(d): (int(lo), int(hi)) for d, (lo, hi) in filters.items()}

    prefix_len = 0
    for dim in order:
        bounds = fdict.get(dim)
        if bounds is None:
            break
        prefix_len += 1
        if bounds[0] != bounds[1]:
            break  # a true range closes the prefix

    # Positions whose digit varies inside the slice: a range-filtered
    # last prefix position plus everything beyond the prefix.
    varying: list[int] = []
    if prefix_len:
        last = order[prefix_len - 1]
        lo, hi = fdict[last]
        if lo != hi:
            varying.append(prefix_len - 1)
    varying.extend(range(prefix_len, len(order)))

    group_positions = sorted(
        pos for pos, dim in enumerate(order) if dim in gset
    )
    # Constant (point-fixed) digits never break monotonicity; only the
    # varying positions of the group-by matter.
    group_varying = [pos for pos in group_positions if pos in set(varying)]
    monotone = group_varying == varying[: len(group_varying)]

    residual = tuple(
        sorted(
            (dim, bounds)
            for dim, bounds in fdict.items()
            if order.index(dim) >= prefix_len and dim not in gset
        )
    )
    group_filters = tuple(
        sorted(
            (dim, bounds)
            for dim, bounds in fdict.items()
            if order.index(dim) >= prefix_len and dim in gset
        )
    )
    if monotone:
        kind = "index"
    elif prefix_len:
        kind = "index+sort"
    else:
        kind = "scan"
    return AccessPlan(
        kind=kind,
        prefix_len=prefix_len,
        monotone=monotone,
        group_occ=tuple(dim for dim in order if dim in gset),
        residual=residual,
        group_filters=group_filters,
    )


def key_bounds(
    order: Sequence[int],
    cardinalities: Sequence[int],
    plan: AccessPlan,
    filters: Mapping[int, tuple[int, int]],
) -> tuple[int, int]:
    """Inclusive packed-key bounds ``[lo_key, hi_key]`` for the plan's
    prefix; unconstrained positions open to ``[0, card-1]``."""
    codec = codec_for_order(order, cardinalities)
    order = tuple(int(i) for i in order)
    lo = 0
    hi = 0
    for pos, dim in enumerate(order):
        card = int(codec.cardinalities[pos])
        w = int(codec.weights[pos])
        if pos < plan.prefix_len:
            flo, fhi = filters[dim]
            lo += max(int(flo), 0) * w
            hi += min(int(fhi), card - 1) * w
        else:
            hi += (card - 1) * w
    return lo, hi


# ---------------------------------------------------------------------------
# sorted view handle
# ---------------------------------------------------------------------------


class SortedView:
    """One globally sorted view: packed keys + measure + fence + order.

    Columns may be :class:`~repro.storage.mmapio.MappedColumn` handles
    (store-backed, metered) or plain in-memory arrays (engine-local
    acceleration).  ``range`` touches only the fence window; ``read``
    materialises exactly the requested rows.
    """

    def __init__(
        self,
        order: Sequence[int],
        keys,
        measure,
        fence: FenceIndex | None = None,
    ):
        self.order = tuple(int(i) for i in order)
        self._keys = keys
        self._measure = measure
        if fence is None:
            raw = keys.array if isinstance(keys, MappedColumn) else keys
            fence = FenceIndex.build(raw)
        self.fence = fence

    @property
    def nrows(self) -> int:
        return self.fence.nrows

    def range(self, lo_key: int, hi_key: int) -> tuple[int, int]:
        """Exact row range holding keys in ``[lo_key, hi_key]``."""
        row_lo, row_hi = self.fence.window(lo_key, hi_key)
        if row_hi <= row_lo:
            return 0, 0
        if isinstance(self._keys, MappedColumn):
            window = self._keys.read(row_lo, row_hi)
        else:
            window = self._keys[row_lo:row_hi]
        start = row_lo + int(np.searchsorted(window, lo_key, side="left"))
        stop = row_lo + int(np.searchsorted(window, hi_key, side="right"))
        return start, stop

    def read(self, start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        """Materialise rows ``[start, stop)`` of both columns."""
        if isinstance(self._keys, MappedColumn):
            return (
                self._keys.read(start, stop),
                self._measure.read(start, stop),
            )
        return (
            np.asarray(self._keys[start:stop]),
            np.asarray(self._measure[start:stop]),
        )


# ---------------------------------------------------------------------------
# indexed execution
# ---------------------------------------------------------------------------


def _digit_mask(
    keys: np.ndarray,
    codec,
    pos: int,
    lo: int,
    hi: int,
) -> np.ndarray:
    """Row mask for ``lo <= digit(pos) <= hi`` via weight arithmetic."""
    w = int(codec.weights[pos])
    card = int(codec.cardinalities[pos])
    digit = keys // w
    digit %= card
    return (digit >= lo) & (digit <= hi)


def aggregate_slice(
    keys: np.ndarray,
    measure: np.ndarray,
    order: Sequence[int],
    cardinalities: Sequence[int],
    plan: AccessPlan,
    group_by: Sequence[int],
    agg: str,
) -> tuple[np.ndarray, np.ndarray]:
    """Aggregate a key-sorted slice onto ``group_by`` (canonical order).

    Returns ``(group_keys, measures)`` where the keys are packed under
    the *canonical* group-by codec and ascending — bit-identical to the
    scan path's output for the same rows (stable sort of an already
    monotone projection is the identity, so within-group float
    summation order matches).
    """
    order = tuple(int(i) for i in order)
    group_by = tuple(int(d) for d in group_by)
    codec = codec_for_order(order, cardinalities)

    mask: np.ndarray | None = None
    for dim, (lo, hi) in plan.residual:
        m = _digit_mask(keys, codec, order.index(dim), lo, hi)
        mask = m if mask is None else mask & m
    if mask is not None:
        keys = keys[mask]
        measure = measure[mask]

    g_occ = plan.group_occ
    gkeys, _ = codec.remap(keys, order, g_occ)
    if not plan.monotone:
        g_codec = codec_for_order(g_occ, cardinalities)
        gkeys, measure = sort_pairs(
            gkeys, measure, key_bound=g_codec.capacity
        )
    out_keys, out_measure = aggregate_sorted_keys(gkeys, measure, agg)

    if g_occ != group_by:
        # Re-pack the (small) group keys into the canonical dim order
        # and restore ascending key order.
        g_codec = codec_for_order(g_occ, cardinalities)
        out_keys, _ = g_codec.remap(out_keys, g_occ, group_by)
        reorder = np.argsort(out_keys, kind="stable")
        out_keys = out_keys[reorder]
        out_measure = out_measure[reorder]

    if plan.group_filters:
        canon_codec = codec_for_order(group_by, cardinalities)
        gmask: np.ndarray | None = None
        for dim, (lo, hi) in plan.group_filters:
            m = _digit_mask(
                out_keys, canon_codec, group_by.index(dim), lo, hi
            )
            gmask = m if gmask is None else gmask & m
        if gmask is not None:
            out_keys = out_keys[gmask]
            out_measure = out_measure[gmask]
    return out_keys, out_measure
