"""Incremental cube maintenance: fold new fact rows into a built cube.

Warehouses append facts continuously; rebuilding 2^d views from scratch
for every batch wastes exactly the work the paper's algorithm went to
such lengths to organise.  Distributive aggregates make increments cheap:

1. build the *delta cube* of the new rows with the ordinary parallel
   algorithm (small input → fast),
2. for every view, combine the old and delta pieces rank-by-rank and
   re-agglomerate across ranks — which is precisely Merge-Partitions'
   job, so the combine step *is* Procedure 3 run over the union pieces.

``refresh_cube`` returns a new :class:`~repro.core.cube.CubeResult`
equivalent to rebuilding from the concatenated input (tests assert
equality), at the cost of a delta build plus one merge sweep.

MIN/MAX also work (insert-only maintenance; deletions would need
re-computation, as everywhere).  COUNT cubes carry SUM-of-ones measures,
so they compose like SUM.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.config import CubeConfig, MachineSpec, RunResult
from repro.core.cube import CubeResult, build_data_cube
from repro.core.merge import merge_partitions
from repro.core.pipesort import ScheduleTree
from repro.core.viewdata import ViewData
from repro.core.views import View
from repro.mpi.engine import run_spmd
from repro.storage.scan import aggregate_sorted_keys, merge_sorted
from repro.storage.table import Relation

__all__ = ["refresh_cube"]


def _combine_program(
    comm,
    old_views: list[dict[View, ViewData]],
    delta_views: list[dict[View, ViewData]],
    cards: tuple[int, ...],
    config: CubeConfig,
    memory_budget: int,
):
    rank = comm.rank
    comm.set_phase("refresh-combine")
    merged_in: dict[View, ViewData] = {}
    for view in sorted(old_views[rank], key=lambda v: (-len(v), v)):
        old = old_views[rank][view]
        delta = delta_views[rank].get(view)
        # bring both pieces to the canonical order so every rank agrees
        old_c = _to_canonical(old, cards)
        if delta is None or delta.nrows == 0:
            piece = old_c
        else:
            delta_c = _to_canonical(delta, cards)
            keys, measure = merge_sorted(
                old_c.keys, old_c.measure, delta_c.keys, delta_c.measure
            )
            comm.disk.work.charge_scan(keys.shape[0])
            keys, measure = aggregate_sorted_keys(keys, measure, config.agg)
            piece = ViewData(old_c.order, keys, measure)
        comm.disk.charge_scan(piece.nrows)
        merged_in[view] = piece

    # Cross-rank agglomeration.  The combined pieces are locally sorted
    # but NOT globally sorted across ranks (old and delta cubes each had
    # their own boundaries), so the case-1 fast path is off the table:
    # everything goes through ownership routing / re-sort.
    d = len(cards)
    tree = ScheduleTree(tuple(range(d)), tuple(range(d)))
    merged, report = merge_partitions(
        comm, merged_in, tree, config, memory_budget,
        force_nonprefix=True,
    )
    for data in merged.values():
        comm.disk.charge_store(data.nrows)
    return merged, report


def _to_canonical(data: ViewData, cards: tuple[int, ...]) -> ViewData:
    canon = data.view
    if tuple(data.order) == canon:
        return data
    from repro.core.viewdata import codec_for_order

    codec = codec_for_order(data.order, cards)
    dims = codec.unpack(data.keys)
    col_of = {dim: pos for pos, dim in enumerate(data.order)}
    cols = [col_of[dim] for dim in canon]
    canon_codec = codec_for_order(canon, cards)
    keys = canon_codec.pack(dims[:, cols]) if cols else data.keys * 0
    order = np.argsort(keys, kind="stable")
    return ViewData(canon, keys[order], data.measure[order])


def refresh_cube(
    cube: CubeResult,
    new_rows: Relation,
    spec: MachineSpec | None = None,
    config: CubeConfig | None = None,
) -> CubeResult:
    """Fold ``new_rows`` into ``cube`` without rebuilding from scratch.

    The cube must be a *full* cube (partial cubes lack the ancestors the
    delta build produces; refresh them by re-running their partial
    build).  Returns a new cube; the input cube is left untouched.
    """
    p = len(cube.rank_views)
    spec = (spec or MachineSpec()).with_processors(p)
    config = config or CubeConfig(agg=cube.agg)
    # COUNT cubes carry SUM-of-ones internally (cube.agg == "sum"); a
    # refresh declared as COUNT is therefore compatible with them.
    internal = "sum" if config.agg == "count" else config.agg
    if internal != cube.agg:
        raise ValueError(
            f"cube carries {cube.agg!r} aggregates; refresh config says "
            f"{config.agg!r}"
        )
    expected = 2 ** len(cube.cardinalities)
    if cube.view_count != expected:
        raise ValueError(
            "refresh_cube needs a full cube "
            f"({cube.view_count} views != {expected}); rebuild partial "
            "cubes instead"
        )

    delta = build_data_cube(
        new_rows, cube.cardinalities, spec, config
    )
    # The combine re-aggregates *partial aggregates*, so COUNT must add
    # (its internal SUM-of-ones form), never re-count rows.
    combine_config = replace(config, agg=internal)
    cluster = run_spmd(
        _combine_program,
        spec,
        args=(
            cube.rank_views,
            delta.rank_views,
            cube.cardinalities,
            combine_config,
            spec.memory_budget,
        ),
    )
    rank_views = [result[0] for result in cluster.rank_results]
    reports = [cluster.rank_results[0][1]]
    output_rows = sum(
        data.nrows for rv in rank_views for data in rv.values()
    )
    metrics = RunResult(
        simulated_seconds=delta.metrics.simulated_seconds
        + cluster.simulated_seconds,
        host_seconds=delta.metrics.host_seconds + cluster.host_seconds,
        output_rows=output_rows,
        view_count=len(rank_views[0]),
        comm_bytes=delta.metrics.comm_bytes + cluster.stats.total_bytes,
        disk_blocks=delta.metrics.disk_blocks
        + cluster.total_disk_blocks(),
        phase_seconds={
            **delta.metrics.phase_seconds,
            **cluster.clock.phase_breakdown(),
        },
        phase_comm_seconds={
            **delta.metrics.phase_comm_seconds,
            **cluster.clock.phase_comm_breakdown(),
        },
        superstep_log=list(cluster.clock.log),
    )
    return CubeResult(
        rank_views=rank_views,
        cardinalities=cube.cardinalities,
        metrics=metrics,
        merge_reports=reports,
        agg=cube.agg,
    )
