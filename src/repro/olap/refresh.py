"""Incremental cube maintenance: fold new fact rows into a built cube.

Warehouses append facts continuously; rebuilding 2^d views from scratch
for every batch wastes exactly the work the paper's algorithm went to
such lengths to organise.  Distributive aggregates make increments cheap:

1. build the *delta cube* of the new rows with the ordinary parallel
   algorithm (small input → fast),
2. for every view, combine the old and delta pieces rank-by-rank and
   re-agglomerate across ranks — which is precisely Merge-Partitions'
   job, so the combine step *is* Procedure 3 run over the union pieces.

``refresh_cube`` returns a new :class:`~repro.core.cube.CubeResult`
equivalent to rebuilding from the concatenated input (tests assert
equality), at the cost of a delta build plus one merge sweep.

**The insert-only contract.**  Refresh maintains the distributive
aggregates (SUM, COUNT, MIN, MAX) under *insertions only*: a delta row
combines into an existing partial with one ``combine`` step.  Deletions
and updates would need re-computation of the affected groups, and
AVG-style / holistic aggregates have no combine at all — every refresh
entry point rejects those up front
(:func:`repro.core.aggregate.require_insert_maintainable`) instead of
silently writing wrong totals.  COUNT cubes carry SUM-of-ones measures,
so they compose like SUM.

``refresh_store`` lifts the same merge to *persisted* stores: the delta
cube's sorted runs are folded directly into the mmap'd view columns of
a :class:`~repro.olap.store.CubeStore` (formats 2 and 3), written as a
new immutable generation next to the old one with every untouched file
hard-linked — refresh cost scales with the delta, not the cube — and
published with an atomic ``CURRENT`` pointer swap so live readers never
block and never see a half-written store.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.config import CubeConfig, MachineSpec, RunResult
from repro.core.aggregate import require_insert_maintainable
from repro.core.cube import CubeResult, build_data_cube
from repro.core.merge import merge_partitions
from repro.core.pipesort import ScheduleTree
from repro.core.viewdata import ViewData, codec_for_order
from repro.core.views import View, canonical_view
from repro.mpi.engine import run_spmd
from repro.olap.hybrid import HybridView, merge_hybrid
from repro.olap.index import DEFAULT_STRIDE, FenceIndex
from repro.olap.store import (
    CubeStore,
    _MANIFEST,
    _gen_name,
    _view_file,
    _view_stem,
)
from repro.storage.mmapio import write_npy
from repro.storage.scan import aggregate_sorted_keys, merge_sorted
from repro.storage.sortkernels import sort_pairs
from repro.storage.table import Relation

__all__ = ["refresh_cube", "refresh_store", "RefreshReport"]


def _combine_program(
    comm,
    old_views: list[dict[View, ViewData]],
    delta_views: list[dict[View, ViewData]],
    cards: tuple[int, ...],
    config: CubeConfig,
    memory_budget: int,
):
    rank = comm.rank
    comm.set_phase("refresh-combine")
    merged_in: dict[View, ViewData] = {}
    for view in sorted(old_views[rank], key=lambda v: (-len(v), v)):
        old = old_views[rank][view]
        delta = delta_views[rank].get(view)
        # bring both pieces to the canonical order so every rank agrees
        old_c = _to_canonical(old, cards)
        if delta is None or delta.nrows == 0:
            piece = old_c
        else:
            delta_c = _to_canonical(delta, cards)
            keys, measure = merge_sorted(
                old_c.keys, old_c.measure, delta_c.keys, delta_c.measure
            )
            comm.disk.work.charge_scan(keys.shape[0])
            keys, measure = aggregate_sorted_keys(keys, measure, config.agg)
            piece = ViewData(old_c.order, keys, measure)
        comm.disk.charge_scan(piece.nrows)
        merged_in[view] = piece

    # Cross-rank agglomeration.  The combined pieces are locally sorted
    # but NOT globally sorted across ranks (old and delta cubes each had
    # their own boundaries), so the case-1 fast path is off the table:
    # everything goes through ownership routing / re-sort.
    d = len(cards)
    tree = ScheduleTree(tuple(range(d)), tuple(range(d)))
    merged, report = merge_partitions(
        comm, merged_in, tree, config, memory_budget,
        force_nonprefix=True,
    )
    for data in merged.values():
        comm.disk.charge_store(data.nrows)
    return merged, report


def _to_canonical(data: ViewData, cards: tuple[int, ...]) -> ViewData:
    canon = data.view
    if tuple(data.order) == canon:
        return data
    from repro.core.viewdata import codec_for_order

    codec = codec_for_order(data.order, cards)
    dims = codec.unpack(data.keys)
    col_of = {dim: pos for pos, dim in enumerate(data.order)}
    cols = [col_of[dim] for dim in canon]
    canon_codec = codec_for_order(canon, cards)
    keys = canon_codec.pack(dims[:, cols]) if cols else data.keys * 0
    order = np.argsort(keys, kind="stable")
    return ViewData(canon, keys[order], data.measure[order])


def refresh_cube(
    cube: CubeResult,
    new_rows: Relation,
    spec: MachineSpec | None = None,
    config: CubeConfig | None = None,
) -> CubeResult:
    """Fold ``new_rows`` into ``cube`` without rebuilding from scratch.

    The cube must be a *full* cube (partial cubes lack the ancestors the
    delta build produces; refresh them by re-running their partial
    build).  Returns a new cube; the input cube is left untouched.
    """
    p = len(cube.rank_views)
    spec = (spec or MachineSpec()).with_processors(p)
    config = config or CubeConfig(agg=cube.agg)
    require_insert_maintainable(config.agg, "refresh_cube")
    # COUNT cubes carry SUM-of-ones internally (cube.agg == "sum"); a
    # refresh declared as COUNT is therefore compatible with them.
    internal = "sum" if config.agg == "count" else config.agg
    if internal != cube.agg:
        raise ValueError(
            f"cube carries {cube.agg!r} aggregates; refresh config says "
            f"{config.agg!r}"
        )
    expected = 2 ** len(cube.cardinalities)
    if cube.view_count != expected:
        raise ValueError(
            "refresh_cube needs a full cube "
            f"({cube.view_count} views != {expected}); rebuild partial "
            "cubes instead"
        )

    if new_rows.nrows == 0:
        # Fast path: nothing to fold in.  The combine sweep routes every
        # row through ownership re-sort (force_nonprefix), which costs a
        # full cube's worth of sort + comm to produce the input cube
        # unchanged — skip it entirely.
        output_rows = sum(
            data.nrows for rv in cube.rank_views for data in rv.values()
        )
        return CubeResult(
            rank_views=[dict(rv) for rv in cube.rank_views],
            cardinalities=cube.cardinalities,
            metrics=RunResult(
                simulated_seconds=0.0,
                host_seconds=0.0,
                output_rows=output_rows,
                view_count=cube.view_count,
                comm_bytes=0,
                disk_blocks=0,
            ),
            agg=cube.agg,
        )

    delta = build_data_cube(
        new_rows, cube.cardinalities, spec, config
    )
    # The combine re-aggregates *partial aggregates*, so COUNT must add
    # (its internal SUM-of-ones form), never re-count rows.
    combine_config = replace(config, agg=internal)
    cluster = run_spmd(
        _combine_program,
        spec,
        args=(
            cube.rank_views,
            delta.rank_views,
            cube.cardinalities,
            combine_config,
            spec.memory_budget,
        ),
    )
    rank_views = [result[0] for result in cluster.rank_results]
    reports = [cluster.rank_results[0][1]]
    output_rows = sum(
        data.nrows for rv in rank_views for data in rv.values()
    )
    metrics = RunResult(
        simulated_seconds=delta.metrics.simulated_seconds
        + cluster.simulated_seconds,
        host_seconds=delta.metrics.host_seconds + cluster.host_seconds,
        output_rows=output_rows,
        view_count=len(rank_views[0]),
        comm_bytes=delta.metrics.comm_bytes + cluster.stats.total_bytes,
        disk_blocks=delta.metrics.disk_blocks
        + cluster.total_disk_blocks(),
        phase_seconds={
            **delta.metrics.phase_seconds,
            **cluster.clock.phase_breakdown(),
        },
        phase_comm_seconds={
            **delta.metrics.phase_comm_seconds,
            **cluster.clock.phase_comm_breakdown(),
        },
        superstep_log=list(cluster.clock.log),
    )
    return CubeResult(
        rank_views=rank_views,
        cardinalities=cube.cardinalities,
        metrics=metrics,
        merge_reports=reports,
        agg=cube.agg,
    )


# ---------------------------------------------------------------------------
# Store-level refresh: delta-merge generations
# ---------------------------------------------------------------------------


@dataclass
class RefreshReport:
    """What one :func:`refresh_store` call did."""

    root: str                   #: store root directory
    generation: int             #: the generation this refresh published
    previous_generation: int    #: the generation it merged into
    path: str                   #: directory of the new generation
    delta_rows: int             #: fact rows folded in
    rows_added: int             #: net new view rows across all views
    views_merged: int           #: views whose columns were rewritten
    views_linked: int           #: views hard-linked untouched
    blocks_promoted: int        #: hybrid blocks promoted sparse -> dense
    files_linked: int
    files_written: int
    delta_build_seconds: float  #: wall time of the parallel delta build
    merge_seconds: float        #: wall time of the column merges + write
    metrics: RunResult | None = None  #: delta build metering


def _link_file(src: str, dst: str, counts: dict) -> None:
    """Hard-link ``src`` into the new generation (copy as fallback)."""
    os.makedirs(os.path.dirname(dst), exist_ok=True)
    try:
        os.link(src, dst)
    except OSError:
        shutil.copy2(src, dst)
    counts["linked"] += 1


def _delta_run(
    delta_cube: CubeResult,
    view: View,
    order: tuple[int, ...],
    cards: tuple[int, ...],
    agg: str,
) -> tuple[np.ndarray, np.ndarray]:
    """One view's delta rows as a sorted-unique run in ``order``.

    The delta cube's rank pieces are key-disjoint (cross-rank
    uniqueness), and re-encoding to the stored order is bijective, so
    concatenate + sort yields a unique run; the aggregate pass is a
    defensive no-op on unique keys.
    """
    parts_k: list[np.ndarray] = []
    parts_v: list[np.ndarray] = []
    for rv in delta_cube.rank_views:
        piece = rv.get(view)
        if piece is None or piece.nrows == 0:
            continue
        if tuple(piece.order) == order:
            keys = piece.keys
        else:
            codec = codec_for_order(piece.order, cards)
            keys, _ = codec.remap(piece.keys, piece.order, order)
        parts_k.append(keys)
        parts_v.append(piece.measure)
    if not parts_k:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    codec = codec_for_order(order, cards)
    keys, vals = sort_pairs(
        np.concatenate(parts_k),
        np.concatenate(parts_v),
        key_bound=int(codec.capacity),
    )
    return aggregate_sorted_keys(keys, vals, agg)


def _merged_offsets(
    old_keys: np.ndarray,
    old_offsets: Sequence,
    merged_keys: np.ndarray,
    p: int,
) -> list[int]:
    """Rank offsets for the merged column, preserving the old rank
    boundary *keys* so the reconstructed distributed cube keeps its
    key-range partitioning (delta rows land in the rank that owns their
    range)."""
    n_old = int(old_keys.shape[0])
    n_new = int(merged_keys.shape[0])
    offsets = [0]
    for rank in range(1, p):
        o = int(old_offsets[rank])
        if o >= n_old:
            offsets.append(n_new)
        else:
            offsets.append(
                int(np.searchsorted(merged_keys, int(old_keys[o]), "left"))
            )
    offsets.append(n_new)
    return offsets


def refresh_store(
    store_dir: str,
    delta: Relation,
    spec: MachineSpec | None = None,
    config: CubeConfig | None = None,
    gc: bool = False,
) -> RefreshReport:
    """Fold ``delta`` into a persisted cube store as a new generation.

    Builds the delta cube with the ordinary parallel algorithm, merges
    each delta view's sorted run directly into the store's mmap'd
    columns (format 2: one ``merge_sorted`` + aggregate per touched
    view; format 3: :func:`~repro.olap.hybrid.merge_hybrid`, touching
    only delta blocks and re-promoting blocks whose occupancy crosses
    the density threshold), and writes the result as generation N+1
    next to the live generation N.  Views (and for hybrid views, the
    dense payload / sparse residue individually) that the delta never
    touches are hard-linked, not rewritten, so refresh cost scales
    with the delta.  The new generation becomes live via an atomic
    ``CURRENT`` pointer swap — readers of generation N are never
    blocked and never see partial state.  Format-1 stores fall back to
    an in-memory :func:`refresh_cube` + full save (no linking).

    Insert-only: see :func:`require_insert_maintainable`.  A store
    saved with an attribute-value reorder expects ``delta`` in
    *original* values; the manifest's permutations are applied before
    the delta build.  An empty delta is a no-op (no new generation).
    A COUNT cube persists as SUM-of-ones, indistinguishable on disk
    from a genuine SUM cube — pass ``config=CubeConfig(agg="count")``
    when refreshing one, or the delta's measures would be summed
    instead of counted.

    ``gc=True`` deletes superseded generations after the swap (only
    safe when no reader may still be pinned to them — the serving tier
    does its own pinned-aware GC instead).
    """
    src = CubeStore.open(store_dir)
    manifest = src.manifest
    cards = src.cardinalities
    p = src.p
    # Check the *store's* aggregate before CubeConfig gets a chance to
    # reject it with a generic message — a store whose manifest carries
    # a non-maintainable aggregate must fail with the refresh contract.
    require_insert_maintainable(src.agg, "refresh_store")
    config = config or CubeConfig(agg=src.agg)
    require_insert_maintainable(config.agg, "refresh_store")
    internal = "sum" if config.agg == "count" else config.agg
    if internal != src.agg:
        raise ValueError(
            f"store carries {src.agg!r} aggregates; refresh config says "
            f"{config.agg!r}"
        )
    if delta.dims.shape[1] != len(cards):
        raise ValueError(
            f"delta has {delta.dims.shape[1]} dimensions, store has "
            f"{len(cards)}"
        )
    cur_gen = src.generation
    n_views = len(manifest["views"])
    if delta.nrows == 0:
        return RefreshReport(
            root=store_dir,
            generation=cur_gen,
            previous_generation=cur_gen,
            path=src.path,
            delta_rows=0,
            rows_added=0,
            views_merged=0,
            views_linked=n_views,
            blocks_promoted=0,
            files_linked=0,
            files_written=0,
            delta_build_seconds=0.0,
            merge_seconds=0.0,
        )

    next_gen = cur_gen + 1
    final_dir = os.path.join(store_dir, _gen_name(next_gen))
    tmp_dir = os.path.join(
        store_dir, f".{_gen_name(next_gen)}.tmp-{os.getpid()}"
    )
    if os.path.exists(tmp_dir):
        shutil.rmtree(tmp_dir)

    spec = (spec or MachineSpec()).with_processors(p)
    delta_r = src.reorder.apply(delta) if src.reorder is not None else delta
    counts = {"linked": 0, "written": 0}

    if src.format == 1:
        # Per-rank npz layout: no mmap columns to merge into — fall
        # back to the in-memory refresh and save the result whole.
        t0 = time.perf_counter()
        refreshed = refresh_cube(src.cube, delta_r, spec, config)
        t1 = time.perf_counter()
        old_rows = sum(
            data.nrows for rv in src.cube.rank_views for data in rv.values()
        )
        CubeStore._save_v1(refreshed, tmp_dir, src.reorder)
        mpath = os.path.join(tmp_dir, _MANIFEST)
        with open(mpath) as fh:
            new_manifest = json.load(fh)
        new_manifest["generation"] = next_gen
        new_manifest["parent"] = cur_gen
        new_manifest["refresh"] = {"delta_rows": int(delta.nrows)}
        with open(mpath, "w") as fh:
            json.dump(new_manifest, fh, indent=1)
        report = RefreshReport(
            root=store_dir,
            generation=next_gen,
            previous_generation=cur_gen,
            path=final_dir,
            delta_rows=int(delta.nrows),
            rows_added=int(refreshed.metrics.output_rows) - old_rows,
            views_merged=n_views,
            views_linked=0,
            blocks_promoted=0,
            files_linked=0,
            files_written=n_views * p,
            delta_build_seconds=t1 - t0,
            merge_seconds=time.perf_counter() - t1,
            metrics=refreshed.metrics,
        )
        if os.path.exists(final_dir):
            shutil.rmtree(final_dir)  # orphan of a crashed refresh
        os.rename(tmp_dir, final_dir)
        CubeStore.set_current(store_dir, next_gen)
        if gc:
            CubeStore.gc_generations(store_dir)
        return report

    t0 = time.perf_counter()
    delta_cube = build_data_cube(delta_r, cards, spec, config)
    t1 = time.perf_counter()

    stride = int(manifest.get("fence_stride") or DEFAULT_STRIDE)
    dthr = manifest.get("density_threshold")
    os.makedirs(os.path.join(tmp_dir, "views"), exist_ok=True)
    src_views = os.path.join(src.path, "views")
    dst_views = os.path.join(tmp_dir, "views")
    entries = []
    views_merged = views_linked = promoted = rows_added = 0

    for entry in manifest["views"]:
        view = canonical_view(entry["dims"])
        layout_kind = entry.get("layout")
        new_entry = dict(entry)
        stem = _view_stem(view)

        if layout_kind == "sorted":
            order = tuple(entry["order"])
            dk, dv = _delta_run(delta_cube, view, order, cards, internal)
            if dk.shape[0] == 0:
                for suffix in (".keys.npy", ".measure.npy"):
                    _link_file(
                        os.path.join(src_views, stem + suffix),
                        os.path.join(dst_views, stem + suffix),
                        counts,
                    )
                views_linked += 1
            else:
                sv = src.sorted_views[view]
                old_keys = sv._keys.array
                mk, mv = merge_sorted(old_keys, sv._measure.array, dk, dv)
                mk, mv = aggregate_sorted_keys(mk, mv, internal)
                write_npy(os.path.join(dst_views, stem + ".keys.npy"), mk)
                write_npy(
                    os.path.join(dst_views, stem + ".measure.npy"), mv
                )
                counts["written"] += 2
                new_entry.update(
                    rows=int(mk.shape[0]),
                    rank_offsets=_merged_offsets(
                        old_keys, entry["rank_offsets"], mk, p
                    ),
                    fence=FenceIndex.build(mk, stride).to_manifest(),
                )
                rows_added += int(mk.shape[0]) - int(old_keys.shape[0])
                views_merged += 1

        elif layout_kind == "hybrid":
            order = tuple(entry["order"])
            dk, dv = _delta_run(delta_cube, view, order, cards, internal)
            hybrid_files = [".sparse.keys.npy", ".sparse.measure.npy"]
            dense_files = [".dense.values.npy", ".dense.mask.npy"]
            if dk.shape[0] == 0:
                for suffix in hybrid_files + dense_files:
                    fp = os.path.join(src_views, stem + suffix)
                    if os.path.exists(fp):
                        _link_file(
                            fp, os.path.join(dst_views, stem + suffix),
                            counts,
                        )
                views_linked += 1
            else:
                hv = src.sorted_views[view]
                new_layout, stats = merge_hybrid(
                    hv, dk, dv, agg=internal, threshold=dthr
                )
                promoted += stats["promoted"]
                if stats["sparse_changed"]:
                    write_npy(
                        os.path.join(dst_views, stem + ".sparse.keys.npy"),
                        new_layout.sparse_keys,
                    )
                    write_npy(
                        os.path.join(
                            dst_views, stem + ".sparse.measure.npy"
                        ),
                        new_layout.sparse_measure,
                    )
                    counts["written"] += 2
                    fence = FenceIndex.build(
                        new_layout.sparse_keys, stride
                    ).to_manifest()
                else:
                    for suffix in hybrid_files:
                        _link_file(
                            os.path.join(src_views, stem + suffix),
                            os.path.join(dst_views, stem + suffix),
                            counts,
                        )
                    fence = entry["fence"]
                if stats["dense_changed"]:
                    if new_layout.dense_values.size:
                        write_npy(
                            os.path.join(
                                dst_views, stem + ".dense.values.npy"
                            ),
                            new_layout.dense_values,
                        )
                        counts["written"] += 1
                    if new_layout.dense_mask.size:
                        write_npy(
                            os.path.join(
                                dst_views, stem + ".dense.mask.npy"
                            ),
                            new_layout.dense_mask,
                        )
                        counts["written"] += 1
                else:
                    for suffix in dense_files:
                        fp = os.path.join(src_views, stem + suffix)
                        if os.path.exists(fp):
                            _link_file(
                                fp,
                                os.path.join(dst_views, stem + suffix),
                                counts,
                            )
                nv = HybridView.from_layout(order, new_layout)
                old_off = entry["rank_offsets"]
                offsets = [0]
                for rank in range(1, p):
                    o = int(old_off[rank])
                    if o >= hv.nrows:
                        offsets.append(int(new_layout.nrows))
                    else:
                        bkey = int(hv.read(o, o + 1)[0][0])
                        offsets.append(int(nv._locate(bkey, "left")))
                offsets.append(int(new_layout.nrows))
                new_entry.update(
                    rows=int(new_layout.nrows),
                    rank_offsets=offsets,
                    capacity=int(new_layout.capacity),
                    sparse_rows=new_layout.n_sparse_rows,
                    dense=[
                        [
                            int(new_layout.dense_blocks[i]),
                            int(new_layout.dense_rows[i]),
                            int(new_layout.dense_full[i]),
                            int(new_layout.sparse_before[i]),
                        ]
                        for i in range(new_layout.dense_blocks.shape[0])
                    ],
                    fence=fence,
                )
                rows_added += stats["rows_added"]
                views_merged += 1

        else:
            # Degenerate per-rank ("ranked") view: normalise to one
            # sorted column pair while we're rewriting anyway — the
            # refreshed generation serves it through the index path.
            dk, dv = _delta_run(delta_cube, view, view, cards, internal)
            if dk.shape[0] == 0:
                for rank in range(p):
                    _link_file(
                        os.path.join(
                            src.path, f"rank{rank:02d}", _view_file(view)
                        ),
                        os.path.join(
                            tmp_dir, f"rank{rank:02d}", _view_file(view)
                        ),
                        counts,
                    )
                views_linked += 1
            else:
                pieces = []
                for rank in range(p):
                    fp = os.path.join(
                        src.path, f"rank{rank:02d}", _view_file(view)
                    )
                    with np.load(fp) as npz:
                        pieces.append(
                            _to_canonical(
                                ViewData(
                                    tuple(entry["orders"][rank]),
                                    npz["keys"],
                                    npz["measure"],
                                ),
                                cards,
                            )
                        )
                codec = codec_for_order(view, cards)
                mk, mv = sort_pairs(
                    np.concatenate([pc.keys for pc in pieces]),
                    np.concatenate([pc.measure for pc in pieces]),
                    key_bound=int(codec.capacity),
                )
                mk, mv = aggregate_sorted_keys(mk, mv, internal)
                mk, mv = merge_sorted(mk, mv, dk, dv)
                mk, mv = aggregate_sorted_keys(mk, mv, internal)
                write_npy(os.path.join(dst_views, stem + ".keys.npy"), mk)
                write_npy(
                    os.path.join(dst_views, stem + ".measure.npy"), mv
                )
                counts["written"] += 2
                n_new = int(mk.shape[0])
                new_entry = {
                    "dims": list(entry["dims"]),
                    "name": entry["name"],
                    "rows": n_new,
                    "layout": "sorted",
                    "order": list(view),
                    "rank_offsets": [
                        round(rank * n_new / p) for rank in range(p + 1)
                    ],
                    "fence": FenceIndex.build(mk, stride).to_manifest(),
                }
                rows_added += n_new - int(entry["rows"])
                views_merged += 1

        entries.append(new_entry)

    new_manifest = {k: v for k, v in manifest.items() if k != "views"}
    new_manifest["views"] = entries
    new_manifest["generation"] = next_gen
    new_manifest["parent"] = cur_gen
    new_manifest["refresh"] = {"delta_rows": int(delta.nrows)}
    with open(os.path.join(tmp_dir, _MANIFEST), "w") as fh:
        json.dump(new_manifest, fh, indent=1)
    counts["written"] += 1

    if os.path.exists(final_dir):
        shutil.rmtree(final_dir)  # orphan of a crashed refresh
    os.rename(tmp_dir, final_dir)
    CubeStore.set_current(store_dir, next_gen)
    if gc:
        CubeStore.gc_generations(store_dir)

    return RefreshReport(
        root=store_dir,
        generation=next_gen,
        previous_generation=cur_gen,
        path=final_dir,
        delta_rows=int(delta.nrows),
        rows_added=int(rows_added),
        views_merged=views_merged,
        views_linked=views_linked,
        blocks_promoted=promoted,
        files_linked=counts["linked"],
        files_written=counts["written"],
        delta_build_seconds=t1 - t0,
        merge_seconds=time.perf_counter() - t1,
        metrics=delta_cube.metrics,
    )
