"""Serving-side handle for hybrid dense/sparse views (store format 3).

:class:`HybridView` duck-types :class:`repro.olap.index.SortedView` —
``order`` / ``nrows`` / ``range`` / ``read`` / ``fence`` — so the query
engine's index path works against a format-3 view unchanged, but the
row arithmetic underneath differs per block kind:

* keys inside a **dense block** resolve by direct offset arithmetic:
  ``cell = key - block_id * block_cells`` and the logical row index is
  the block's base row plus a popcount of the occupancy mask up to that
  cell.  No ``searchsorted``, no key-column pages touched.
* keys in **sparse territory** fall back to the familiar fence-window
  + ``searchsorted`` over the sparse residue columns.

Either way, :meth:`range`/:meth:`read` speak *logical* rows — the rows
of the equivalent fully sorted view — so a caller cannot tell the
representations apart except by speed.  ``range_kind`` classifies a key
range as ``"dense"`` / ``"sparse"`` / ``"mixed"``, which is how the
query engine's ``explain`` reports the dense access path and how the
benchmarks split their latency matrices.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.olap.index import FenceIndex
from repro.storage.dense import HybridLayout
from repro.storage.mmapio import MappedColumn

__all__ = ["HybridView"]


def _col_read(col, start: int, stop: int) -> np.ndarray:
    """Materialise ``[start, stop)`` of a MappedColumn or ndarray."""
    if isinstance(col, MappedColumn):
        return col.read(start, stop)
    return np.asarray(col[start:stop])


class HybridView:
    """One hybrid view: dense block chunks + a sorted sparse residue.

    Parameters mirror the format-3 manifest entry: the per-dense-block
    arrays (``blocks``/``rows``/``full``/``sparse_before``) come from
    the manifest, the payload columns (``values``/``mask``/
    ``sparse_keys``/``sparse_measure``) are mmap-backed
    :class:`MappedColumn` handles (or plain arrays for in-memory use).
    """

    def __init__(
        self,
        order: Sequence[int],
        *,
        block_cells: int,
        capacity: int,
        nrows: int,
        blocks: np.ndarray,
        rows: np.ndarray,
        full: np.ndarray,
        sparse_before: np.ndarray,
        values,
        mask,
        sparse_keys,
        sparse_measure,
        fence: FenceIndex | None = None,
    ):
        self.order = tuple(int(i) for i in order)
        self.block_cells = int(block_cells)
        self.capacity = int(capacity)
        self._nrows = int(nrows)
        self.blocks = np.asarray(blocks, dtype=np.int64)
        self.rows = np.asarray(rows, dtype=np.int64)
        self.full = np.asarray(full, dtype=bool)
        self.sparse_before = np.asarray(sparse_before, dtype=np.int64)
        self._values = values
        self._mask = mask
        self._sparse_keys = sparse_keys
        self._sparse_measure = sparse_measure
        if fence is None:
            raw = (
                sparse_keys.array
                if isinstance(sparse_keys, MappedColumn)
                else np.asarray(sparse_keys)
            )
            fence = FenceIndex.build(raw)
        #: Fence over the *sparse residue* keys (dense blocks need none).
        self.fence = fence

        # Derived per-block geometry (python-int safe prefix sums).
        self.cells = np.minimum(
            self.block_cells, self.capacity - self.blocks * self.block_cells
        ).astype(np.int64)
        # Exclusive prefixes: dense rows / value cells / mask bytes
        # consumed before block i.
        self._dense_prefix = np.concatenate(
            ([0], np.cumsum(self.rows))
        ).astype(np.int64)
        self._voff = np.concatenate(
            ([0], np.cumsum(self.cells))
        ).astype(np.int64)
        mask_bytes = np.where(self.full, 0, (self.cells + 7) // 8)
        self._moff = np.concatenate(
            ([0], np.cumsum(mask_bytes))
        ).astype(np.int64)
        # Logical row of each block's first row / one past its last.
        self._row_lo = self.sparse_before + self._dense_prefix[:-1]
        self._row_hi = self._row_lo + self.rows

    @classmethod
    def from_layout(
        cls,
        order: Sequence[int],
        layout: HybridLayout,
        fence: FenceIndex | None = None,
    ) -> "HybridView":
        """In-memory view over a freshly built layout (tests, save path)."""
        return cls(
            order,
            block_cells=layout.block_cells,
            capacity=layout.capacity,
            nrows=layout.nrows,
            blocks=layout.dense_blocks,
            rows=layout.dense_rows,
            full=layout.dense_full,
            sparse_before=layout.sparse_before,
            values=layout.dense_values,
            mask=layout.dense_mask,
            sparse_keys=layout.sparse_keys,
            sparse_measure=layout.sparse_measure,
            fence=fence,
        )

    # -- geometry ----------------------------------------------------------

    @property
    def nrows(self) -> int:
        return self._nrows

    @property
    def n_dense_blocks(self) -> int:
        return int(self.blocks.shape[0])

    @property
    def n_dense_rows(self) -> int:
        return int(self._dense_prefix[-1])

    @property
    def n_sparse_rows(self) -> int:
        return self._nrows - self.n_dense_rows

    def range_kind(self, lo_key: int, hi_key: int) -> str:
        """Classify ``[lo_key, hi_key]``: every covering grid block
        dense -> ``"dense"``; none dense -> ``"sparse"``; else
        ``"mixed"`` (``"empty"`` for a vacuous range)."""
        lo_key = max(int(lo_key), 0)
        hi_key = min(int(hi_key), self.capacity - 1)
        if hi_key < lo_key or self._nrows == 0:
            return "empty"
        b_lo = lo_key // self.block_cells
        b_hi = hi_key // self.block_cells
        covered = int(
            np.searchsorted(self.blocks, b_hi, side="right")
            - np.searchsorted(self.blocks, b_lo, side="left")
        )
        if covered == b_hi - b_lo + 1:
            return "dense"
        if covered == 0:
            return "sparse"
        return "mixed"

    # -- internals ---------------------------------------------------------

    def _occupied_before(self, i: int, local: int) -> int:
        """Occupied cells of dense block ``i`` with cell index < local."""
        cells = int(self.cells[i])
        local = min(max(local, 0), cells)
        if self.full[i] or local == 0:
            return local
        nbytes = (cells + 7) // 8
        moff = int(self._moff[i])
        mask = _col_read(self._mask, moff, moff + nbytes)
        return int(np.unpackbits(mask, count=local).sum())

    def _occupied_cells(self, i: int) -> np.ndarray:
        """Cell indices of dense block ``i``'s occupied cells, ascending."""
        cells = int(self.cells[i])
        if self.full[i]:
            return np.arange(cells, dtype=np.int64)
        nbytes = (cells + 7) // 8
        moff = int(self._moff[i])
        mask = _col_read(self._mask, moff, moff + nbytes)
        return np.flatnonzero(
            np.unpackbits(mask, count=cells)
        ).astype(np.int64)

    def _sparse_locate(self, key: int, side: str) -> int:
        """``searchsorted`` position of ``key`` in the sparse residue,
        touching only the fence window."""
        row_lo, row_hi = self.fence.window(key, key)
        if row_hi <= row_lo:
            return row_lo
        window = _col_read(self._sparse_keys, row_lo, row_hi)
        return row_lo + int(np.searchsorted(window, key, side=side))

    def _locate(self, key: int, side: str) -> int:
        """Logical rows strictly before ``key`` (side='left') or before
        and including it (side='right')."""
        if self._nrows == 0:
            return 0
        if key < 0:
            return 0
        if key >= self.capacity:
            return self._nrows
        b = key // self.block_cells
        i = int(np.searchsorted(self.blocks, b, side="left"))
        if i < self.blocks.shape[0] and int(self.blocks[i]) == b:
            # Dense block: direct offset arithmetic, no searchsorted
            # against any key column.
            local = key - b * self.block_cells
            upto = local if side == "left" else local + 1
            return int(self._row_lo[i]) + self._occupied_before(i, upto)
        dense_before = int(self._dense_prefix[i])
        return self._sparse_locate(key, side) + dense_before

    # -- SortedView API ----------------------------------------------------

    def range(self, lo_key: int, hi_key: int) -> tuple[int, int]:
        """Exact logical row range holding keys in ``[lo_key, hi_key]``."""
        if self._nrows == 0 or hi_key < lo_key:
            return 0, 0
        start = self._locate(lo_key, "left")
        stop = self._locate(hi_key, "right")
        if stop <= start:
            return 0, 0
        return start, stop

    def read(self, start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        """Materialise logical rows ``[start, stop)`` of both columns.

        Bit-identical to the same read against the equivalent sorted
        view: dense cells re-expand to exactly the rows they absorbed,
        interleaved with the sparse residue in key order.
        """
        start = max(int(start), 0)
        stop = min(int(stop), self._nrows)
        if stop <= start:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        keys_parts: list[np.ndarray] = []
        meas_parts: list[np.ndarray] = []
        k = self.blocks.shape[0]
        # First dense block whose rows are not entirely before `start`.
        i = int(np.searchsorted(self._row_hi, start, side="right"))
        pos = start
        while pos < stop:
            if i < k and pos >= int(self._row_lo[i]):
                # Inside dense block i.
                base = int(self._row_lo[i])
                r0 = pos - base
                r1 = min(stop - base, int(self.rows[i]))
                occ = self._occupied_cells(i)
                sel = occ[r0:r1]
                if sel.size:
                    bid = int(self.blocks[i])
                    voff = int(self._voff[i])
                    lo_c, hi_c = int(sel[0]), int(sel[-1]) + 1
                    vals = _col_read(
                        self._values, voff + lo_c, voff + hi_c
                    )
                    keys_parts.append(bid * self.block_cells + sel)
                    meas_parts.append(vals[sel - lo_c])
                pos = base + r1
                if r1 == int(self.rows[i]):
                    i += 1
            else:
                # Sparse gap up to the next dense block (or the end).
                seg_end = min(
                    stop, int(self._row_lo[i]) if i < k else self._nrows
                )
                dense_before = int(self._dense_prefix[i])
                s0 = pos - dense_before
                s1 = seg_end - dense_before
                keys_parts.append(_col_read(self._sparse_keys, s0, s1))
                meas_parts.append(_col_read(self._sparse_measure, s0, s1))
                pos = seg_end
        if len(keys_parts) == 1:
            return (
                keys_parts[0].astype(np.int64, copy=False),
                meas_parts[0].astype(np.float64, copy=False),
            )
        return (
            np.concatenate(keys_parts).astype(np.int64, copy=False),
            np.concatenate(meas_parts).astype(np.float64, copy=False),
        )
