"""Serving-side handle for hybrid dense/sparse views (store format 3).

:class:`HybridView` duck-types :class:`repro.olap.index.SortedView` —
``order`` / ``nrows`` / ``range`` / ``read`` / ``fence`` — so the query
engine's index path works against a format-3 view unchanged, but the
row arithmetic underneath differs per block kind:

* keys inside a **dense block** resolve by direct offset arithmetic:
  ``cell = key - block_id * block_cells`` and the logical row index is
  the block's base row plus a popcount of the occupancy mask up to that
  cell.  No ``searchsorted``, no key-column pages touched.
* keys in **sparse territory** fall back to the familiar fence-window
  + ``searchsorted`` over the sparse residue columns.

Either way, :meth:`range`/:meth:`read` speak *logical* rows — the rows
of the equivalent fully sorted view — so a caller cannot tell the
representations apart except by speed.  ``range_kind`` classifies a key
range as ``"dense"`` / ``"sparse"`` / ``"mixed"``, which is how the
query engine's ``explain`` reports the dense access path and how the
benchmarks split their latency matrices.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.olap.index import FenceIndex
from repro.storage.dense import (
    HybridLayout,
    density_threshold,
    scatter_dense_block,
)
from repro.storage.mmapio import MappedColumn

__all__ = ["HybridView", "merge_hybrid"]


def _col_read(col, start: int, stop: int) -> np.ndarray:
    """Materialise ``[start, stop)`` of a MappedColumn or ndarray."""
    if isinstance(col, MappedColumn):
        return col.read(start, stop)
    return np.asarray(col[start:stop])


class HybridView:
    """One hybrid view: dense block chunks + a sorted sparse residue.

    Parameters mirror the format-3 manifest entry: the per-dense-block
    arrays (``blocks``/``rows``/``full``/``sparse_before``) come from
    the manifest, the payload columns (``values``/``mask``/
    ``sparse_keys``/``sparse_measure``) are mmap-backed
    :class:`MappedColumn` handles (or plain arrays for in-memory use).
    """

    def __init__(
        self,
        order: Sequence[int],
        *,
        block_cells: int,
        capacity: int,
        nrows: int,
        blocks: np.ndarray,
        rows: np.ndarray,
        full: np.ndarray,
        sparse_before: np.ndarray,
        values,
        mask,
        sparse_keys,
        sparse_measure,
        fence: FenceIndex | None = None,
    ):
        self.order = tuple(int(i) for i in order)
        self.block_cells = int(block_cells)
        self.capacity = int(capacity)
        self._nrows = int(nrows)
        self.blocks = np.asarray(blocks, dtype=np.int64)
        self.rows = np.asarray(rows, dtype=np.int64)
        self.full = np.asarray(full, dtype=bool)
        self.sparse_before = np.asarray(sparse_before, dtype=np.int64)
        self._values = values
        self._mask = mask
        self._sparse_keys = sparse_keys
        self._sparse_measure = sparse_measure
        if fence is None:
            raw = (
                sparse_keys.array
                if isinstance(sparse_keys, MappedColumn)
                else np.asarray(sparse_keys)
            )
            fence = FenceIndex.build(raw)
        #: Fence over the *sparse residue* keys (dense blocks need none).
        self.fence = fence

        # Derived per-block geometry (python-int safe prefix sums).
        self.cells = np.minimum(
            self.block_cells, self.capacity - self.blocks * self.block_cells
        ).astype(np.int64)
        # Exclusive prefixes: dense rows / value cells / mask bytes
        # consumed before block i.
        self._dense_prefix = np.concatenate(
            ([0], np.cumsum(self.rows))
        ).astype(np.int64)
        self._voff = np.concatenate(
            ([0], np.cumsum(self.cells))
        ).astype(np.int64)
        mask_bytes = np.where(self.full, 0, (self.cells + 7) // 8)
        self._moff = np.concatenate(
            ([0], np.cumsum(mask_bytes))
        ).astype(np.int64)
        # Logical row of each block's first row / one past its last.
        self._row_lo = self.sparse_before + self._dense_prefix[:-1]
        self._row_hi = self._row_lo + self.rows

    @classmethod
    def from_layout(
        cls,
        order: Sequence[int],
        layout: HybridLayout,
        fence: FenceIndex | None = None,
    ) -> "HybridView":
        """In-memory view over a freshly built layout (tests, save path)."""
        return cls(
            order,
            block_cells=layout.block_cells,
            capacity=layout.capacity,
            nrows=layout.nrows,
            blocks=layout.dense_blocks,
            rows=layout.dense_rows,
            full=layout.dense_full,
            sparse_before=layout.sparse_before,
            values=layout.dense_values,
            mask=layout.dense_mask,
            sparse_keys=layout.sparse_keys,
            sparse_measure=layout.sparse_measure,
            fence=fence,
        )

    # -- geometry ----------------------------------------------------------

    @property
    def nrows(self) -> int:
        return self._nrows

    @property
    def n_dense_blocks(self) -> int:
        return int(self.blocks.shape[0])

    @property
    def n_dense_rows(self) -> int:
        return int(self._dense_prefix[-1])

    @property
    def n_sparse_rows(self) -> int:
        return self._nrows - self.n_dense_rows

    def range_kind(self, lo_key: int, hi_key: int) -> str:
        """Classify ``[lo_key, hi_key]``: every covering grid block
        dense -> ``"dense"``; none dense -> ``"sparse"``; else
        ``"mixed"`` (``"empty"`` for a vacuous range)."""
        lo_key = max(int(lo_key), 0)
        hi_key = min(int(hi_key), self.capacity - 1)
        if hi_key < lo_key or self._nrows == 0:
            return "empty"
        b_lo = lo_key // self.block_cells
        b_hi = hi_key // self.block_cells
        covered = int(
            np.searchsorted(self.blocks, b_hi, side="right")
            - np.searchsorted(self.blocks, b_lo, side="left")
        )
        if covered == b_hi - b_lo + 1:
            return "dense"
        if covered == 0:
            return "sparse"
        return "mixed"

    # -- internals ---------------------------------------------------------

    def _occupied_before(self, i: int, local: int) -> int:
        """Occupied cells of dense block ``i`` with cell index < local."""
        cells = int(self.cells[i])
        local = min(max(local, 0), cells)
        if self.full[i] or local == 0:
            return local
        nbytes = (cells + 7) // 8
        moff = int(self._moff[i])
        mask = _col_read(self._mask, moff, moff + nbytes)
        return int(np.unpackbits(mask, count=local).sum())

    def _occupied_cells(self, i: int) -> np.ndarray:
        """Cell indices of dense block ``i``'s occupied cells, ascending."""
        cells = int(self.cells[i])
        if self.full[i]:
            return np.arange(cells, dtype=np.int64)
        nbytes = (cells + 7) // 8
        moff = int(self._moff[i])
        mask = _col_read(self._mask, moff, moff + nbytes)
        return np.flatnonzero(
            np.unpackbits(mask, count=cells)
        ).astype(np.int64)

    def _sparse_locate(self, key: int, side: str) -> int:
        """``searchsorted`` position of ``key`` in the sparse residue,
        touching only the fence window."""
        row_lo, row_hi = self.fence.window(key, key)
        if row_hi <= row_lo:
            return row_lo
        window = _col_read(self._sparse_keys, row_lo, row_hi)
        return row_lo + int(np.searchsorted(window, key, side=side))

    def _locate(self, key: int, side: str) -> int:
        """Logical rows strictly before ``key`` (side='left') or before
        and including it (side='right')."""
        if self._nrows == 0:
            return 0
        if key < 0:
            return 0
        if key >= self.capacity:
            return self._nrows
        b = key // self.block_cells
        i = int(np.searchsorted(self.blocks, b, side="left"))
        if i < self.blocks.shape[0] and int(self.blocks[i]) == b:
            # Dense block: direct offset arithmetic, no searchsorted
            # against any key column.
            local = key - b * self.block_cells
            upto = local if side == "left" else local + 1
            return int(self._row_lo[i]) + self._occupied_before(i, upto)
        dense_before = int(self._dense_prefix[i])
        return self._sparse_locate(key, side) + dense_before

    # -- SortedView API ----------------------------------------------------

    def range(self, lo_key: int, hi_key: int) -> tuple[int, int]:
        """Exact logical row range holding keys in ``[lo_key, hi_key]``."""
        if self._nrows == 0 or hi_key < lo_key:
            return 0, 0
        start = self._locate(lo_key, "left")
        stop = self._locate(hi_key, "right")
        if stop <= start:
            return 0, 0
        return start, stop

    def read(self, start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        """Materialise logical rows ``[start, stop)`` of both columns.

        Bit-identical to the same read against the equivalent sorted
        view: dense cells re-expand to exactly the rows they absorbed,
        interleaved with the sparse residue in key order.
        """
        start = max(int(start), 0)
        stop = min(int(stop), self._nrows)
        if stop <= start:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        keys_parts: list[np.ndarray] = []
        meas_parts: list[np.ndarray] = []
        k = self.blocks.shape[0]
        # First dense block whose rows are not entirely before `start`.
        i = int(np.searchsorted(self._row_hi, start, side="right"))
        pos = start
        while pos < stop:
            if i < k and pos >= int(self._row_lo[i]):
                # Inside dense block i.
                base = int(self._row_lo[i])
                r0 = pos - base
                r1 = min(stop - base, int(self.rows[i]))
                occ = self._occupied_cells(i)
                sel = occ[r0:r1]
                if sel.size:
                    bid = int(self.blocks[i])
                    voff = int(self._voff[i])
                    lo_c, hi_c = int(sel[0]), int(sel[-1]) + 1
                    vals = _col_read(
                        self._values, voff + lo_c, voff + hi_c
                    )
                    keys_parts.append(bid * self.block_cells + sel)
                    meas_parts.append(vals[sel - lo_c])
                pos = base + r1
                if r1 == int(self.rows[i]):
                    i += 1
            else:
                # Sparse gap up to the next dense block (or the end).
                seg_end = min(
                    stop, int(self._row_lo[i]) if i < k else self._nrows
                )
                dense_before = int(self._dense_prefix[i])
                s0 = pos - dense_before
                s1 = seg_end - dense_before
                keys_parts.append(_col_read(self._sparse_keys, s0, s1))
                meas_parts.append(_col_read(self._sparse_measure, s0, s1))
                pos = seg_end
        if len(keys_parts) == 1:
            return (
                keys_parts[0].astype(np.int64, copy=False),
                meas_parts[0].astype(np.float64, copy=False),
            )
        return (
            np.concatenate(keys_parts).astype(np.int64, copy=False),
            np.concatenate(meas_parts).astype(np.float64, copy=False),
        )


def merge_hybrid(
    view: HybridView,
    delta_keys: np.ndarray,
    delta_measure: np.ndarray,
    agg: str = "sum",
    threshold: float | None = None,
) -> tuple[HybridLayout, dict]:
    """Fold a sorted-unique delta run into a hybrid view, incrementally.

    Only blocks the delta touches are re-decided: each touched block's
    old rows (dense cells or a sparse-residue window) are merged with
    its delta rows and the block is re-classified against the density
    threshold.  Inserts only ever *grow* occupancy, so an old dense
    block stays dense and the only transitions are sparse->dense
    promotions — which is why the result is provably identical to
    :func:`~repro.storage.dense.build_hybrid` run from scratch on the
    expanded merged columns (same per-block rows, same classification
    formula, same :func:`scatter_dense_block` payloads).

    Untouched payloads are reused by reference (zero-copy slices of the
    view's mmap-backed columns), and the returned stats say whether the
    dense payload / sparse residue changed at all — when they did not,
    the store refresh hard-links the corresponding files instead of
    rewriting them.

    ``threshold`` must be the one the view was built with (the store
    manifest records it); mixing thresholds would re-decide untouched
    blocks differently from the stored layout.

    Returns ``(layout, stats)`` with stats keys ``touched_blocks``,
    ``promoted``, ``dense_changed``, ``sparse_changed``, ``rows_added``.
    """
    bc = view.block_cells
    cap = view.capacity
    thr = density_threshold() if threshold is None else float(threshold)
    from repro.storage.scan import aggregate_sorted_keys, merge_sorted

    delta_keys = np.ascontiguousarray(delta_keys, dtype=np.int64)
    delta_measure = np.ascontiguousarray(delta_measure, dtype=np.float64)
    if delta_keys.shape != delta_measure.shape or delta_keys.ndim != 1:
        raise ValueError("delta keys/measure must be matching 1-d columns")
    n_delta = int(delta_keys.shape[0])
    if n_delta and (delta_keys[0] < 0 or delta_keys[-1] >= cap):
        raise ValueError(
            f"delta keys outside [0, {cap}): "
            f"[{int(delta_keys[0])}, {int(delta_keys[-1])}]"
        )

    k_old = view.blocks.shape[0]
    n_sparse = view.n_sparse_rows

    def _whole(col, n):
        if isinstance(col, MappedColumn):
            return col.array
        return np.asarray(col)[:n]

    stats = {
        "touched_blocks": 0,
        "promoted": 0,
        "dense_changed": False,
        "sparse_changed": False,
        "rows_added": 0,
    }
    if n_delta == 0:
        layout = HybridLayout(
            block_cells=bc,
            capacity=cap,
            nrows=view.nrows,
            dense_blocks=view.blocks,
            dense_rows=view.rows,
            dense_full=view.full,
            sparse_before=view.sparse_before,
            dense_values=_whole(view._values, int(view._voff[-1]) if k_old else 0),
            dense_mask=_whole(view._mask, int(view._moff[-1]) if k_old else 0),
            sparse_keys=_whole(view._sparse_keys, n_sparse),
            sparse_measure=_whole(view._sparse_measure, n_sparse),
        )
        return layout, stats

    # Group delta rows by the grid block they land in.
    dbids = delta_keys // bc
    t_starts = np.flatnonzero(np.r_[True, dbids[1:] != dbids[:-1]])
    t_ends = np.r_[t_starts[1:], n_delta]
    touched = dbids[t_starts]
    n_touch = int(touched.shape[0])
    stats["touched_blocks"] = n_touch

    # Old dense membership of each touched block.
    if k_old:
        pos = np.searchsorted(view.blocks, touched).astype(np.int64)
        in_rng = pos < k_old
        was_dense = np.zeros(n_touch, dtype=bool)
        was_dense[in_rng] = view.blocks[pos[in_rng]] == touched[in_rng]
    else:
        pos = np.zeros(n_touch, dtype=np.int64)
        was_dense = np.zeros(n_touch, dtype=bool)

    merged: dict[int, tuple[np.ndarray, np.ndarray, bool]] = {}
    windows: dict[int, tuple[int, int]] = {}  # touched-sparse residue spans
    for t in range(n_touch):
        bid = int(touched[t])
        dk = delta_keys[int(t_starts[t]):int(t_ends[t])]
        dv = delta_measure[int(t_starts[t]):int(t_ends[t])]
        cells = int(min(bc, cap - bid * bc))
        if was_dense[t]:
            i = int(pos[t])
            occ = view._occupied_cells(i)
            ok = bid * bc + occ
            voff = int(view._voff[i])
            ov = _col_read(view._values, voff, voff + int(view.cells[i]))[occ]
        else:
            w0 = view._sparse_locate(bid * bc, "left")
            w1 = view._sparse_locate(bid * bc + cells - 1, "right")
            windows[t] = (w0, w1)
            ok = _col_read(view._sparse_keys, w0, w1)
            ov = _col_read(view._sparse_measure, w0, w1)
        mk, mv = merge_sorted(ok, ov, dk, dv)
        mk, mv = aggregate_sorted_keys(mk, mv, agg)
        dense_new = mk.shape[0] >= thr * cells
        if dense_new and not was_dense[t]:
            stats["promoted"] += 1
        merged[bid] = (mk, mv, bool(dense_new))

    stats["dense_changed"] = bool(was_dense.any()) or stats["promoted"] > 0
    stats["sparse_changed"] = bool((~was_dense).any())

    # -- new sparse residue ------------------------------------------------
    if stats["sparse_changed"]:
        old_sk = _whole(view._sparse_keys, n_sparse)
        old_sv = _whole(view._sparse_measure, n_sparse)
        sk_parts: list[np.ndarray] = []
        sv_parts: list[np.ndarray] = []
        spos = 0
        for t in range(n_touch):
            if was_dense[t]:
                continue
            w0, w1 = windows[t]
            if w0 > spos:
                sk_parts.append(old_sk[spos:w0])
                sv_parts.append(old_sv[spos:w0])
            spos = w1
            mk, mv, dense_new = merged[int(touched[t])]
            if not dense_new:
                sk_parts.append(mk)
                sv_parts.append(mv)
        if spos < n_sparse:
            sk_parts.append(old_sk[spos:])
            sv_parts.append(old_sv[spos:])
        new_sk = (
            np.concatenate(sk_parts)
            if sk_parts else np.empty(0, dtype=np.int64)
        ).astype(np.int64, copy=False)
        new_sv = (
            np.concatenate(sv_parts)
            if sv_parts else np.empty(0, dtype=np.float64)
        ).astype(np.float64, copy=False)
    else:
        new_sk = _whole(view._sparse_keys, n_sparse)
        new_sv = _whole(view._sparse_measure, n_sparse)

    # -- new dense payload -------------------------------------------------
    if stats["dense_changed"]:
        touched_dense = {
            bid: (mk, mv)
            for bid, (mk, mv, dense_new) in merged.items()
            if dense_new
        }
        out_bids = sorted(
            {int(b) for b in view.blocks} | set(touched_dense)
        )
        blocks_l: list[int] = []
        rows_l: list[int] = []
        full_l: list[bool] = []
        values_parts: list[np.ndarray] = []
        mask_parts: list[np.ndarray] = []
        for bid in out_bids:
            cells = int(min(bc, cap - bid * bc))
            if bid in touched_dense:
                mk, mv = touched_dense[bid]
                vals, mask = scatter_dense_block(mk, mv, bid, bc, cells)
                rows_l.append(int(mk.shape[0]))
            else:
                j = int(np.searchsorted(view.blocks, bid))
                voff = int(view._voff[j])
                vals = _col_read(view._values, voff, voff + cells)
                if view.full[j]:
                    mask = None
                else:
                    m0 = int(view._moff[j])
                    mask = _col_read(view._mask, m0, int(view._moff[j + 1]))
                rows_l.append(int(view.rows[j]))
            blocks_l.append(bid)
            full_l.append(mask is None)
            values_parts.append(vals)
            if mask is not None:
                mask_parts.append(mask)
        dense_blocks = np.asarray(blocks_l, dtype=np.int64)
        dense_rows = np.asarray(rows_l, dtype=np.int64)
        dense_full = np.asarray(full_l, dtype=bool)
        dense_values = (
            np.concatenate(values_parts)
            if values_parts else np.empty(0, dtype=np.float64)
        )
        dense_mask = (
            np.concatenate(mask_parts)
            if mask_parts else np.empty(0, dtype=np.uint8)
        )
    else:
        dense_blocks = view.blocks
        dense_rows = view.rows
        dense_full = view.full
        dense_values = _whole(view._values, int(view._voff[-1]) if k_old else 0)
        dense_mask = _whole(view._mask, int(view._moff[-1]) if k_old else 0)

    sparse_before = np.searchsorted(
        new_sk, dense_blocks * bc, side="left"
    ).astype(np.int64)
    nrows = int(new_sk.shape[0]) + int(dense_rows.sum())
    stats["rows_added"] = nrows - view.nrows

    layout = HybridLayout(
        block_cells=bc,
        capacity=cap,
        nrows=nrows,
        dense_blocks=dense_blocks,
        dense_rows=dense_rows,
        dense_full=dense_full,
        sparse_before=sparse_before,
        dense_values=dense_values,
        dense_mask=dense_mask,
        sparse_keys=new_sk,
        sparse_measure=new_sv,
    )
    return layout, stats
