"""OLAP query layer over a constructed data cube.

The paper's point of building the cube is "the fast execution of
subsequent OLAP queries": a GROUP-BY becomes a lookup in the smallest
materialised view that covers it.  This package supplies that downstream
surface:

* :mod:`repro.olap.query` — query objects, the view-selection planner
  (smallest covering view), and a query engine that answers group-bys
  either from the gathered cube or *in parallel* across the virtual
  cluster, which makes the paper's balance argument measurable: each
  view's per-rank distribution bounds parallel scan latency.
* :mod:`repro.olap.store` — persist a built cube to disk (one spill file
  per rank per view plus a manifest) and reopen it later.
* :mod:`repro.olap.advisor` — greedy view selection (the paper's
  reference [12], Harinarayan-Rajaraman-Ullman) that produces the
  ``selected`` set a partial cube build consumes.
"""

from repro.olap.advisor import AdvisorResult, select_views
from repro.olap.query import Query, QueryEngine, QueryPlan, QueryPlanner
from repro.olap.store import CubeStore

__all__ = [
    "AdvisorResult",
    "CubeStore",
    "Query",
    "QueryEngine",
    "QueryPlan",
    "QueryPlanner",
    "select_views",
]
