"""OLAP query layer over a constructed data cube.

The paper's point of building the cube is "the fast execution of
subsequent OLAP queries": a GROUP-BY becomes a lookup in the smallest
materialised view that covers it.  This package supplies that downstream
surface:

* :mod:`repro.olap.query` — query objects, the view-selection planner
  (smallest covering view), and a query engine that answers group-bys
  either from the gathered cube or *in parallel* across the virtual
  cluster, which makes the paper's balance argument measurable: each
  view's per-rank distribution bounds parallel scan latency.
* :mod:`repro.olap.index` — fence indexes over the stored sorted views
  and the access-path classifier that turns prefix-compatible filters
  into one ``searchsorted`` key range (no decode, no argsort).
* :mod:`repro.olap.store` — persist a built cube to disk and reopen it;
  format 2 lays each view out as memory-mapped sorted columns the index
  path serves from, format 3 adds per-block dense/sparse hybrid storage
  (:mod:`repro.olap.hybrid`) with recorded attribute-value reorders.
* :mod:`repro.olap.cache` — byte-budgeted, admission-controlled result
  caching in front of an engine, keyed by (store generation, query) so
  a refresh can never serve a stale hit.
* :mod:`repro.olap.refresh` — incremental maintenance: fold an
  insert-only delta into a stored cube as a new immutable generation
  (:func:`refresh_store`) instead of rebuilding from scratch, with a
  non-blocking atomic ``CURRENT`` swap live readers pick up between
  queries.
* :mod:`repro.olap.service` — a supervised pool of store-backed worker
  processes over the pooled shared-memory data plane, with retries,
  deadlines, load shedding, and a poison-query circuit breaker.
* :mod:`repro.olap.supervise` — worker supervision (heartbeats,
  dead/hung detection, restart budget) and the serving failure surface
  (:class:`ServicePolicy`, :class:`QueryTimeout`,
  :class:`ServiceOverloaded`, :class:`PoisonQuery`).
* :mod:`repro.olap.advisor` — greedy view selection (the paper's
  reference [12], Harinarayan-Rajaraman-Ullman) that produces the
  ``selected`` set a partial cube build consumes.
"""

from repro.olap.advisor import AdvisorResult, select_views
from repro.olap.cache import CachedQueryEngine, ResultCache
from repro.olap.hybrid import HybridView
from repro.olap.index import AccessPlan, FenceIndex, SortedView
from repro.olap.query import (
    Query,
    QueryEngine,
    QueryPlan,
    QueryPlanner,
    ReorderedQueryEngine,
)
from repro.olap.refresh import RefreshReport, refresh_cube, refresh_store
from repro.olap.service import QueryService
from repro.olap.store import CubeStore, OpenCube
from repro.olap.supervise import (
    PoisonQuery,
    QueryTimeout,
    ServiceOverloaded,
    ServicePolicy,
)

__all__ = [
    "AccessPlan",
    "AdvisorResult",
    "CachedQueryEngine",
    "CubeStore",
    "FenceIndex",
    "HybridView",
    "OpenCube",
    "PoisonQuery",
    "Query",
    "QueryEngine",
    "QueryPlan",
    "QueryPlanner",
    "QueryService",
    "QueryTimeout",
    "RefreshReport",
    "ReorderedQueryEngine",
    "ResultCache",
    "ServiceOverloaded",
    "ServicePolicy",
    "SortedView",
    "refresh_cube",
    "refresh_store",
    "select_views",
]
