"""Worker supervision for the fault-tolerant serving runtime.

The build engine learnt to survive node loss in two steps: fault
injection with checkpointed recovery, then elastic degraded-mode
execution with a heartbeat :class:`~repro.mpi.backends.Supervisor`.
This module gives the *serving* tier the same failure taxonomy.  A
:class:`ServiceSupervisor` owns the pool of
:class:`~repro.olap.service.QueryService` worker processes:

* **Heartbeats via a shared array** — every worker stamps
  ``time.monotonic()`` into its slot of a lock-free shared double array
  each time it passes through its task loop (Linux's
  ``CLOCK_MONOTONIC`` is system-wide, so coordinator and workers read
  the same clock).  An idle worker beats every queue-poll slice; a
  worker stuck inside a query goes silent — which is exactly the signal
  the straggler policy needs.
* **Dead vs hung** — a worker whose process exited (or was SIGKILLed)
  is reported as :class:`~repro.mpi.errors.RankDead` with its exit
  cause; a worker still alive but silent past ``suspect_after`` while
  holding work is declared :class:`~repro.mpi.errors.RankHung`.  Both
  feed :func:`~repro.mpi.errors.classify_failure`, the same taxonomy
  degraded-mode recovery uses — slow workers are first-class failures,
  not a special case.
* **Restart budget** — replacements are spawned into the dead worker's
  slot (generation + 1) until ``max_restarts`` is exhausted; after that
  the pool shrinks, and when the last worker is gone the service fails
  queries instead of stalling them.

The coordinator-side *policy* knobs — deadlines, retry/backoff bounds,
queue depth, poison threshold — live in :class:`ServicePolicy` so one
object configures a service's whole failure posture.
"""

from __future__ import annotations

import os
import signal as _signal
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.mpi.errors import RankDead, RankHung
from repro.mpi.shm import share_resource_tracker

__all__ = [
    "PoisonQuery",
    "QueryTimeout",
    "ServiceOverloaded",
    "ServicePolicy",
    "ServiceSupervisor",
    "WorkerHandle",
]


# ---------------------------------------------------------------------------
# serving-side failure surface
# ---------------------------------------------------------------------------


class QueryTimeout(TimeoutError):
    """A query missed its deadline.

    Raised to every waiter of the query: either the coordinator's hard
    per-query deadline passed with the result still outstanding, or a
    worker shed the task because the deadline had already expired when
    it was dequeued.  The ticket bookkeeping stays consistent — a late
    result arriving afterwards is discarded and its segments recycled.
    """


class ServiceOverloaded(RuntimeError):
    """``submit`` refused a query because the service is at its
    configured queue depth (:attr:`ServicePolicy.max_queue_depth`).
    Explicit load shedding: the caller should back off and retry, and
    the shed count is surfaced in ``stats()``."""


class PoisonQuery(RuntimeError):
    """A query was quarantined by the poison circuit breaker.

    After :attr:`ServicePolicy.poison_threshold` worker deaths
    attributable to the same query, retrying it would only keep killing
    replacements — the query is failed to all its waiters and every
    later submission fails fast with this exception."""


# ---------------------------------------------------------------------------
# policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServicePolicy:
    """Failure posture of one :class:`~repro.olap.service.QueryService`.

    Parameters
    ----------
    heartbeat_interval:
        Supervision slice: how often the coordinator checks worker
        liveness, and the worker-side queue-poll period (workers beat at
        half this interval while idle).
    suspect_after:
        A worker holding in-flight work whose heartbeat is older than
        this is declared hung (:class:`~repro.mpi.errors.RankHung`),
        SIGKILLed, and replaced.  Must comfortably exceed the longest
        legitimate query.
    deadline_s:
        Default per-query deadline (``None`` = no deadline).  Enforced
        on both sides: workers shed tasks that are already expired when
        dequeued, the coordinator hard-fails waiters with
        :class:`QueryTimeout` once the deadline passes.
    max_retries:
        Re-executions allowed per query after worker failures (death,
        hang, corrupt or lost result).  Query *errors* relayed from a
        healthy worker are deterministic and never retried.
    backoff_base / backoff_growth:
        Exponential backoff before re-dispatching a failed query:
        attempt ``n`` waits ``backoff_base * backoff_growth**(n-1)``.
    max_queue_depth:
        In-flight query cap; ``submit`` past it raises
        :class:`ServiceOverloaded`.
    poison_threshold:
        Worker deaths attributable to one query before the circuit
        breaker quarantines it.
    max_restarts:
        Total replacement workers the supervisor may spawn over the
        service lifetime.
    current_poll_interval:
        How often workers (between queries) and the coordinator
        (between supervision slices) re-read the store's ``CURRENT``
        pointer to pick up a freshly refreshed generation.  Workers
        never switch mid-query — each query is answered entirely by the
        generation its worker had open when it dequeued the task.
    gc_generations:
        When True the coordinator deletes superseded generation
        directories once no live worker still has them open (pinned
        generations are never removed; the flat generation-0 layout is
        never removed either).
    """

    heartbeat_interval: float = 0.05
    suspect_after: float = 5.0
    deadline_s: float | None = None
    max_retries: int = 3
    backoff_base: float = 0.02
    backoff_growth: float = 2.0
    max_queue_depth: int = 1024
    poison_threshold: int = 3
    max_restarts: int = 16
    current_poll_interval: float = 0.25
    gc_generations: bool = True

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if self.current_poll_interval <= 0:
            raise ValueError("current_poll_interval must be > 0")
        if self.suspect_after <= self.heartbeat_interval:
            raise ValueError(
                "suspect_after must exceed heartbeat_interval"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be > 0 (or None)")
        if self.max_retries < 0 or self.max_restarts < 0:
            raise ValueError("retry/restart budgets must be >= 0")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.poison_threshold < 1:
            raise ValueError("poison_threshold must be >= 1")

    def backoff(self, attempt: int) -> float:
        """Delay before dispatching retry ``attempt`` (1-based)."""
        return self.backoff_base * self.backoff_growth ** max(
            attempt - 1, 0
        )


# ---------------------------------------------------------------------------
# worker handles
# ---------------------------------------------------------------------------


@dataclass
class WorkerHandle:
    """One worker process generation occupying a pool slot.

    ``outstanding`` maps dispatched sequence numbers to their attempt
    index — the reassignment set when this worker fails.  A respawned
    replacement reuses the slot with ``generation + 1`` and fresh
    queues, so stale traffic from an earlier generation can never be
    confused with the replacement's.
    """

    slot: int
    generation: int
    proc: object
    task_q: object
    ack_q: object
    pid: int | None = None
    outstanding: dict[int, int] = field(default_factory=dict)
    retired: bool = False

    def alive(self) -> bool:
        return not self.retired and self.proc.is_alive()


class ServiceSupervisor:
    """Spawns, watches, kills, and replaces serving workers.

    ``start_worker(slot, generation, task_q, ack_q, heartbeats)`` must
    return an *unstarted* process object; the supervisor starts it and
    tracks its pid (every pid ever spawned is kept for the final shm
    orphan sweep).  Detection (:meth:`check`) only *reports* failures —
    acting on them (reassignment, retry, poison accounting) is the
    service's job, so the supervisor stays reusable.
    """

    def __init__(
        self,
        ctx,
        workers: int,
        policy: ServicePolicy,
        start_worker: Callable,
    ):
        self.policy = policy
        self.workers = int(workers)
        self._ctx = ctx
        self._start_worker = start_worker
        #: Lock-free shared heartbeat array, one slot per worker; single
        #: writer per slot so torn reads are not a concern in practice.
        self.heartbeats = ctx.Array("d", self.workers, lock=False)
        self.slots: list[WorkerHandle | None] = [None] * self.workers
        self._generation = [0] * self.workers
        self.all_pids: list[int] = []
        self.restarts = 0
        #: One entry per replacement spawned: slot, failure kind, and
        #: detection -> ready timestamps (recovery-time measurement).
        self.restart_log: list[dict] = []
        # Start the resource tracker before the first fork so every
        # worker inherits it; a worker that lazily spawns its own
        # tracker strands segment registrations the coordinator's
        # post-SIGKILL sweep can never unregister.
        share_resource_tracker()
        for slot in range(self.workers):
            self._spawn(slot)

    # -- lifecycle ----------------------------------------------------------

    def _spawn(self, slot: int) -> WorkerHandle:
        generation = self._generation[slot]
        self._generation[slot] += 1
        task_q = self._ctx.Queue()
        ack_q = self._ctx.Queue()
        # A fresh worker gets a fresh heartbeat: it must not be born
        # already-suspect because the slot's previous tenant went silent.
        self.heartbeats[slot] = time.monotonic()
        proc = self._start_worker(
            slot, generation, task_q, ack_q, self.heartbeats
        )
        proc.start()
        handle = WorkerHandle(
            slot=slot,
            generation=generation,
            proc=proc,
            task_q=task_q,
            ack_q=ack_q,
            pid=proc.pid,
        )
        if proc.pid is not None:
            self.all_pids.append(proc.pid)
        self.slots[slot] = handle
        return handle

    def respawn(self, slot: int, cause: str) -> WorkerHandle | None:
        """Replace a failed slot within the restart budget.

        Returns the replacement handle, or ``None`` when the budget is
        exhausted (the pool shrinks).
        """
        if self.restarts >= self.policy.max_restarts:
            return None
        self.restarts += 1
        detected = time.monotonic()
        handle = self._spawn(slot)
        self.restart_log.append(
            {
                "slot": slot,
                "generation": handle.generation,
                "cause": cause,
                "detected_at": detected,
                "ready_at": time.monotonic(),
            }
        )
        return handle

    def retire(self, handle: WorkerHandle) -> None:
        """Drop a failed worker: free its slot and its queues.

        The queues may still hold undelivered tasks/acks; nothing will
        ever read them, so the feeder threads must not block close."""
        handle.retired = True
        if self.slots[handle.slot] is handle:
            self.slots[handle.slot] = None
        for q in (handle.task_q, handle.ack_q):
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:  # pragma: no cover - teardown best-effort
                pass

    def kill(self, handle: WorkerHandle) -> None:
        """SIGKILL a hung worker (it is about to be replaced)."""
        try:
            if handle.pid is not None and handle.proc.is_alive():
                os.kill(handle.pid, _signal.SIGKILL)
            handle.proc.join(0.5)
        except Exception:  # pragma: no cover - already-dead race
            pass

    # -- observation --------------------------------------------------------

    def live(self) -> list[WorkerHandle]:
        return [h for h in self.slots if h is not None and h.alive()]

    def beat_age(self, slot: int, now: float) -> float:
        return now - self.heartbeats[slot]

    def check(self, now: float) -> list[tuple[WorkerHandle, Exception]]:
        """Detect failed workers; returns ``(handle, failure)`` pairs.

        Death is unconditional (an exited process serves nothing); a
        hung verdict additionally requires in-flight work, so an idle
        worker starved of CPU on a loaded host is never killed for it.
        """
        events: list[tuple[WorkerHandle, Exception]] = []
        for handle in self.slots:
            if handle is None or handle.retired:
                continue
            if not handle.proc.is_alive():
                events.append((handle, self.post_mortem(handle)))
            elif (
                handle.outstanding
                and self.beat_age(handle.slot, now)
                > self.policy.suspect_after
            ):
                events.append(
                    (
                        handle,
                        RankHung(
                            f"serving worker {handle.slot} (generation "
                            f"{handle.generation}) silent for "
                            f"{self.beat_age(handle.slot, now):.2f}s with "
                            f"{len(handle.outstanding)} queries in flight "
                            f"(suspect_after="
                            f"{self.policy.suspect_after:.2f}s)",
                            rank=handle.slot,
                        ),
                    )
                )
        return events

    def post_mortem(self, handle: WorkerHandle) -> RankDead:
        """Describe a dead worker with its exit code / fatal signal."""
        try:
            handle.proc.join(timeout=0.5)  # let the exit code settle
            code = handle.proc.exitcode
        except Exception:  # pragma: no cover - defensive
            code = None
        if code is None:
            cause = "exit status unknown"
        elif code < 0:
            try:
                cause = f"killed by {_signal.Signals(-code).name}"
            except ValueError:  # pragma: no cover - exotic signal
                cause = f"killed by signal {-code}"
        else:
            cause = f"exit code {code}"
        return RankDead(
            f"serving worker {handle.slot} (generation "
            f"{handle.generation}, pid {handle.pid}) died with "
            f"{len(handle.outstanding)} queries in flight ({cause})",
            rank=handle.slot,
        )
