"""Persist a constructed cube to disk and reopen it for querying.

Two on-disk formats share one manifest schema:

**Format 1** (the seed layout, still fully readable and writable)::

    <path>/manifest.json          cardinalities, aggregate, p, view index
    <path>/rank00/v_<name>.npz    keys + measure of rank 0's piece
    <path>/rank01/...

**Format 2** (the serving layout, default) lays each view out as raw
contiguous ``.npy`` columns of *globally sorted* packed int64 keys plus
the parallel measure::

    <path>/manifest.json          + per-view order, rank offsets, fence
    <path>/views/v_<name>.keys.npy
    <path>/views/v_<name>.measure.npy

After every build mode in this repository, a view's per-rank pieces
share one sort order and concatenate (rank 0 first) into a globally
sorted, key-disjoint array — the γ-balanced sample-sort merge guarantees
key-range partitioning — so format 2 stores that concatenation once and
keeps the rank boundaries as offsets: :meth:`CubeStore.load` rebuilds
the exact distributed cube as zero-copy slices of the memory-mapped
columns, while :meth:`CubeStore.open` hands the serving tier
:class:`~repro.olap.index.SortedView` handles whose fence index (every
Nth key, persisted in the manifest) lets a reader touch only the pages
a query needs.  A view that violates the sorted-concatenation invariant
(none of the shipped builders produce one, but the format stays honest)
falls back to per-rank ``ranked`` storage inside the same format-2
manifest and serves through the scan path.

**Format 3** (hybrid) keeps format 2's manifest schema and global sort
invariant but stores each eligible view as dense blocks + a sparse
residue (:mod:`repro.storage.dense`)::

    <path>/views/v_<name>.sparse.keys.npy     sorted sparse residue
    <path>/views/v_<name>.sparse.measure.npy
    <path>/views/v_<name>.dense.values.npy    concatenated dense cells
    <path>/views/v_<name>.dense.mask.npy      packed occupancy bits

The manifest lists only the dense blocks (id, rows, full-flag, sparse
rows before the block), so logical-row arithmetic is O(1) per block and
the fence index covers just the sparse residue.  Readers get
:class:`~repro.olap.hybrid.HybridView` handles with the same API as
:class:`SortedView`; ``CubeStore.load`` re-expands the blocks into the
exact distributed cube.  A store saved with an attribute-value reorder
(:mod:`repro.storage.reorder`) records the permutations under the
manifest's ``reorder`` key — any format — and ``query_engine()``
transparently translates queries back to original attribute values.

**Generations** (incremental refresh).  A store directory may hold a
*sequence* of immutable snapshots instead of one flat layout::

    <path>/CURRENT                 name of the live generation, e.g.
                                   ``gen-000002`` (atomically swapped)
    <path>/gen-000001/manifest.json + views/ ...
    <path>/gen-000002/...

Each generation is a complete, self-contained format-1/2/3 store;
:func:`~repro.olap.refresh.refresh_store` creates the next one by
merging a delta into its predecessor, hard-linking every untouched
view file so a generation costs only the bytes its delta touched.  A
flat store (no ``CURRENT``) is implicitly generation 0 and is never
garbage-collected — the first refresh leaves it in place as the seed
snapshot and writes ``gen-000001`` next to it.  ``CURRENT`` is swapped
with ``os.replace`` (write temp + rename), so a reader either sees the
old pointer or the new one, never a torn state; readers that already
hold a generation open keep serving it (their mmaps pin the inodes)
even after :meth:`CubeStore.gc_generations` unlinks the directory.
"""

from __future__ import annotations

import json
import os
import shutil
from typing import Sequence

import numpy as np

from repro.config import RunResult
from repro.core.cube import CubeResult
from repro.core.viewdata import ViewData, codec_for_order
from repro.core.views import View, canonical_view, view_name
from repro.olap.hybrid import HybridView
from repro.olap.index import DEFAULT_STRIDE, FenceIndex, SortedView
from repro.storage.dense import DEFAULT_BLOCK_CELLS, build_hybrid
from repro.storage.mmapio import MappedColumn, MmapMeter, write_npy
from repro.storage.reorder import ValueReorder
from repro.storage.sortkernels import is_sorted_int64

__all__ = ["CubeStore", "OpenCube"]

_MANIFEST = "manifest.json"
_CURRENT = "CURRENT"
_GEN_PREFIX = "gen-"


def _gen_name(generation: int) -> str:
    return f"{_GEN_PREFIX}{generation:06d}"


def _view_file(view: View) -> str:
    return "v_" + ("_".join(str(i) for i in view) if view else "all") + ".npz"


def _view_stem(view: View) -> str:
    return "v_" + ("_".join(str(i) for i in view) if view else "all")


def _zero_metrics(total_rows: int, view_count: int) -> RunResult:
    """Reopened cubes carry no construction cost (it was paid at build)."""
    return RunResult(
        simulated_seconds=0.0,
        host_seconds=0.0,
        output_rows=total_rows,
        view_count=view_count,
        comm_bytes=0,
        disk_blocks=0,
    )


class CubeStore:
    """Directory-backed cube persistence (formats 1, 2 and 3)."""

    @staticmethod
    def save(
        cube: CubeResult,
        path: str,
        format: int = 2,
        fence_stride: int | None = None,
        reorder: ValueReorder | None = None,
        block_cells: int | None = None,
        density_threshold: float | None = None,
    ) -> str:
        """Write ``cube`` under ``path`` (created if needed).

        ``reorder`` records the attribute-value permutations the cube
        was built under (any format); ``block_cells`` and
        ``density_threshold`` tune the format-3 hybrid layout.
        """
        if format == 1:
            return CubeStore._save_v1(cube, path, reorder)
        if format == 2:
            return CubeStore._save_v2(cube, path, fence_stride, reorder)
        if format == 3:
            return CubeStore._save_v3(
                cube, path, fence_stride, reorder,
                block_cells, density_threshold,
            )
        raise ValueError(f"unknown cube store format: {format!r}")

    @staticmethod
    def _write_manifest(
        path: str, manifest: dict, reorder: ValueReorder | None
    ) -> None:
        if reorder is not None and not reorder.is_identity:
            manifest["reorder"] = reorder.to_manifest()
        with open(os.path.join(path, _MANIFEST), "w") as fh:
            json.dump(manifest, fh, indent=1)

    @staticmethod
    def _save_v1(
        cube: CubeResult, path: str, reorder: ValueReorder | None = None
    ) -> str:
        os.makedirs(path, exist_ok=True)
        views = cube.views
        manifest = {
            "format": 1,
            "cardinalities": list(cube.cardinalities),
            "agg": cube.agg,
            "p": len(cube.rank_views),
            "views": [
                {
                    "dims": list(view),
                    "name": view_name(view),
                    "rows": cube.view_rows(view),
                    "orders": [
                        list(rank_views[view].order)
                        for rank_views in cube.rank_views
                    ],
                }
                for view in views
            ],
        }
        CubeStore._write_manifest(path, manifest, reorder)
        for rank, rank_views in enumerate(cube.rank_views):
            rank_dir = os.path.join(path, f"rank{rank:02d}")
            os.makedirs(rank_dir, exist_ok=True)
            for view in views:
                data = rank_views[view]
                np.savez(
                    os.path.join(rank_dir, _view_file(view)),
                    keys=data.keys,
                    measure=data.measure,
                )
        return path

    @staticmethod
    def _save_v2(
        cube: CubeResult,
        path: str,
        fence_stride: int | None,
        reorder: ValueReorder | None = None,
    ) -> str:
        os.makedirs(path, exist_ok=True)
        stride = int(fence_stride or DEFAULT_STRIDE)
        views_dir = os.path.join(path, "views")
        entries = []
        for view in cube.views:
            pieces = [rv[view] for rv in cube.rank_views]
            orders = {piece.order for piece in pieces}
            keys = np.concatenate([piece.keys for piece in pieces])
            entry = {
                "dims": list(view),
                "name": view_name(view),
                "rows": int(keys.shape[0]),
            }
            if len(orders) == 1 and is_sorted_int64(keys):
                # The serving layout: one sorted column pair per view,
                # rank pieces recoverable as offset slices.
                order = pieces[0].order
                measure = np.concatenate(
                    [piece.measure for piece in pieces]
                )
                offsets = np.zeros(len(pieces) + 1, dtype=np.int64)
                np.cumsum(
                    [piece.nrows for piece in pieces], out=offsets[1:]
                )
                stem = os.path.join(views_dir, _view_stem(view))
                write_npy(stem + ".keys.npy", keys)
                write_npy(stem + ".measure.npy", measure)
                entry.update(
                    layout="sorted",
                    order=list(order),
                    rank_offsets=[int(o) for o in offsets],
                    fence=FenceIndex.build(keys, stride).to_manifest(),
                )
            else:
                # Degenerate cube (mixed orders or unsorted global
                # concatenation): keep the faithful per-rank layout;
                # this view serves through the scan path.
                entry.update(
                    layout="ranked",
                    orders=[list(piece.order) for piece in pieces],
                )
                for rank, piece in enumerate(pieces):
                    rank_dir = os.path.join(path, f"rank{rank:02d}")
                    os.makedirs(rank_dir, exist_ok=True)
                    np.savez(
                        os.path.join(rank_dir, _view_file(view)),
                        keys=piece.keys,
                        measure=piece.measure,
                    )
            entries.append(entry)
        manifest = {
            "format": 2,
            "cardinalities": list(cube.cardinalities),
            "agg": cube.agg,
            "p": len(cube.rank_views),
            "fence_stride": stride,
            "views": entries,
        }
        CubeStore._write_manifest(path, manifest, reorder)
        return path

    @staticmethod
    def _save_v3(
        cube: CubeResult,
        path: str,
        fence_stride: int | None,
        reorder: ValueReorder | None,
        block_cells: int | None,
        density_threshold: float | None,
    ) -> str:
        os.makedirs(path, exist_ok=True)
        stride = int(fence_stride or DEFAULT_STRIDE)
        bc = int(block_cells or DEFAULT_BLOCK_CELLS)
        views_dir = os.path.join(path, "views")
        cards = cube.cardinalities
        entries = []
        for view in cube.views:
            pieces = [rv[view] for rv in cube.rank_views]
            orders = {piece.order for piece in pieces}
            keys = np.concatenate([piece.keys for piece in pieces])
            entry = {
                "dims": list(view),
                "name": view_name(view),
                "rows": int(keys.shape[0]),
            }
            if len(orders) == 1 and is_sorted_int64(keys):
                order = pieces[0].order
                measure = np.concatenate(
                    [piece.measure for piece in pieces]
                )
                offsets = np.zeros(len(pieces) + 1, dtype=np.int64)
                np.cumsum(
                    [piece.nrows for piece in pieces], out=offsets[1:]
                )
                capacity = int(codec_for_order(order, cards).capacity)
                layout = build_hybrid(
                    keys, measure, capacity,
                    block_cells=bc, threshold=density_threshold,
                )
                stem = os.path.join(views_dir, _view_stem(view))
                write_npy(stem + ".sparse.keys.npy", layout.sparse_keys)
                write_npy(
                    stem + ".sparse.measure.npy", layout.sparse_measure
                )
                if layout.dense_values.size:
                    write_npy(
                        stem + ".dense.values.npy", layout.dense_values
                    )
                if layout.dense_mask.size:
                    write_npy(stem + ".dense.mask.npy", layout.dense_mask)
                entry.update(
                    layout="hybrid",
                    order=list(order),
                    rank_offsets=[int(o) for o in offsets],
                    capacity=capacity,
                    sparse_rows=layout.n_sparse_rows,
                    dense=[
                        [
                            int(layout.dense_blocks[i]),
                            int(layout.dense_rows[i]),
                            int(layout.dense_full[i]),
                            int(layout.sparse_before[i]),
                        ]
                        for i in range(layout.dense_blocks.shape[0])
                    ],
                    fence=FenceIndex.build(
                        layout.sparse_keys, stride
                    ).to_manifest(),
                )
            else:
                entry.update(
                    layout="ranked",
                    orders=[list(piece.order) for piece in pieces],
                )
                for rank, piece in enumerate(pieces):
                    rank_dir = os.path.join(path, f"rank{rank:02d}")
                    os.makedirs(rank_dir, exist_ok=True)
                    np.savez(
                        os.path.join(rank_dir, _view_file(view)),
                        keys=piece.keys,
                        measure=piece.measure,
                    )
            entries.append(entry)
        manifest = {
            "format": 3,
            "cardinalities": list(cards),
            "agg": cube.agg,
            "p": len(cube.rank_views),
            "fence_stride": stride,
            "block_cells": bc,
            "density_threshold": density_threshold,
            "views": entries,
        }
        CubeStore._write_manifest(path, manifest, reorder)
        return path

    # -- reading -----------------------------------------------------------

    @staticmethod
    def _read_manifest(path: str) -> dict:
        manifest_path = os.path.join(path, _MANIFEST)
        if not os.path.exists(manifest_path):
            raise FileNotFoundError(f"no cube manifest at {manifest_path}")
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        if manifest.get("format") not in (1, 2, 3):
            raise ValueError(
                f"unsupported cube store format: {manifest.get('format')!r}"
            )
        return manifest

    @staticmethod
    def load(path: str, generation: int | None = None) -> CubeResult:
        """Reopen a saved cube as a :class:`CubeResult`.

        Format-2 pieces are zero-copy slices of the memory-mapped view
        columns — the distributed layout (per-rank rows and orders) is
        exactly what was saved, for either format.
        """
        return CubeStore.open(path, generation=generation).cube

    @staticmethod
    def open(path: str, generation: int | None = None) -> "OpenCube":
        """Open a store for serving: mmap-backed cube + sorted views.

        ``path`` may be a flat store or a generational root; by default
        the live generation (``CURRENT``, else the flat layout) is
        opened.  Pass ``generation`` to pin a specific snapshot.
        """
        gen_dir, gen = CubeStore.resolve(path, generation)
        manifest = CubeStore._read_manifest(gen_dir)
        cube = OpenCube(gen_dir, manifest)
        cube.root = path
        cube.generation = gen
        return cube

    @staticmethod
    def exists(path: str) -> bool:
        if os.path.exists(os.path.join(path, _MANIFEST)):
            return True
        try:
            gen_dir, _ = CubeStore.resolve(path)
        except FileNotFoundError:
            return False
        return os.path.exists(os.path.join(gen_dir, _MANIFEST))

    # -- generations -------------------------------------------------------

    @staticmethod
    def resolve(path: str, generation: int | None = None) -> tuple[str, int]:
        """Map a store root to the directory holding one generation.

        Returns ``(manifest_dir, generation)``.  Generation 0 is the
        flat root itself; generation N >= 1 lives in ``gen-NNNNNN``.
        With ``generation=None`` the live generation is chosen: the one
        named by ``CURRENT`` when the pointer file exists, else the
        flat layout (generation 0).
        """
        if generation is None:
            generation = CubeStore.current_generation(path)
        generation = int(generation)
        if generation < 0:
            raise ValueError(f"generation must be >= 0, got {generation}")
        gen_dir = (
            path if generation == 0 else os.path.join(path, _gen_name(generation))
        )
        return gen_dir, generation

    @staticmethod
    def current_generation(path: str) -> int:
        """The live generation of a store root (0 for a flat store)."""
        current = os.path.join(path, _CURRENT)
        try:
            with open(current) as fh:
                name = fh.read().strip()
        except FileNotFoundError:
            return 0
        if not name.startswith(_GEN_PREFIX):
            raise ValueError(f"malformed CURRENT pointer at {current}: {name!r}")
        return int(name[len(_GEN_PREFIX):])

    @staticmethod
    def set_current(path: str, generation: int) -> None:
        """Atomically point ``CURRENT`` at ``generation``.

        Written to a temp file, fsynced, then ``os.replace``d — a
        concurrent reader sees either the old pointer or the new one,
        never a torn write.
        """
        generation = int(generation)
        if generation < 1:
            raise ValueError(
                f"CURRENT can only name generation >= 1, got {generation}"
            )
        target = os.path.join(path, _CURRENT)
        tmp = target + f".tmp-{os.getpid()}"
        with open(tmp, "w") as fh:
            fh.write(_gen_name(generation) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)

    @staticmethod
    def generations(path: str) -> list[int]:
        """All generations present under a store root, ascending.

        Includes 0 when the flat layout exists and every complete
        ``gen-NNNNNN`` directory (one with a manifest inside).
        """
        gens = []
        if os.path.exists(os.path.join(path, _MANIFEST)):
            gens.append(0)
        try:
            names = os.listdir(path)
        except FileNotFoundError:
            return gens
        for name in names:
            if not name.startswith(_GEN_PREFIX):
                continue
            suffix = name[len(_GEN_PREFIX):]
            if not suffix.isdigit():
                continue  # temp dirs of an in-flight refresh
            if os.path.exists(os.path.join(path, name, _MANIFEST)):
                gens.append(int(suffix))
        return sorted(gens)

    @staticmethod
    def gc_generations(
        path: str, keep: Sequence[int] = ()
    ) -> list[int]:
        """Delete superseded generation directories under ``path``.

        Removes every generation strictly below the current one except
        generation 0 (the flat seed layout is never touched) and any
        listed in ``keep`` (e.g. generations a reader still has pinned).
        Never removes generations >= current — a concurrent refresh may
        have created its directory but not yet swapped ``CURRENT``.
        Readers that already mmap'd a removed generation keep working:
        POSIX keeps the inodes alive until their maps close.

        Returns the generations removed, ascending.
        """
        current = CubeStore.current_generation(path)
        protected = {0, current, *(int(g) for g in keep)}
        removed = []
        for gen in CubeStore.generations(path):
            if gen >= current or gen in protected:
                continue
            shutil.rmtree(
                os.path.join(path, _gen_name(gen)), ignore_errors=True
            )
            removed.append(gen)
        return removed


class OpenCube:
    """A read-only handle on one stored cube.

    * :attr:`cube` — the faithful distributed :class:`CubeResult`
      (formats 2/3: mmap-backed; format 1: eager ``.npz`` loads).
    * :attr:`sorted_views` — per-view serving handles
      (:class:`SortedView` for format-2 ``sorted`` layouts,
      :class:`~repro.olap.hybrid.HybridView` for format-3 ``hybrid``
      layouts; empty for format 1).
    * :attr:`reorder` — the attribute-value permutations the cube was
      built under, or ``None`` (original labels).
    * :attr:`meter` — mmap read accounting shared by every column.

    Handles are safe to open in many processes at once: each worker of
    the query service opens its own and the OS page cache shares the
    underlying bytes.
    """

    def __init__(self, path: str, manifest: dict):
        self.path = path
        #: Store root and pinned snapshot (set by :meth:`CubeStore.open`;
        #: a directly-constructed handle is its own root at generation 0).
        self.root = path
        self.generation = 0
        self.manifest = manifest
        self.format = int(manifest["format"])
        self.cardinalities = tuple(
            int(c) for c in manifest["cardinalities"]
        )
        self.agg = manifest.get("agg", "sum")
        self.p = int(manifest["p"])
        self.block_cells = int(
            manifest.get("block_cells") or DEFAULT_BLOCK_CELLS
        )
        self.reorder = (
            ValueReorder.from_manifest(manifest["reorder"])
            if "reorder" in manifest
            else None
        )
        self.meter = MmapMeter()
        self._cube: CubeResult | None = None
        self._sorted: dict[View, SortedView | HybridView] | None = None

    # -- sorted serving views ---------------------------------------------

    def _hybrid_view(self, entry: dict, view: View) -> HybridView:
        stem = os.path.join(self.path, "views", _view_stem(view))
        dense = entry.get("dense") or []
        cols = np.asarray(dense, dtype=np.int64).reshape(len(dense), 4)
        # Mask/values files are omitted when no block needs them.
        values = (
            MappedColumn(stem + ".dense.values.npy", self.meter)
            if os.path.exists(stem + ".dense.values.npy")
            else np.empty(0, dtype=np.float64)
        )
        mask = (
            MappedColumn(stem + ".dense.mask.npy", self.meter)
            if os.path.exists(stem + ".dense.mask.npy")
            else np.empty(0, dtype=np.uint8)
        )
        return HybridView(
            tuple(entry["order"]),
            block_cells=self.block_cells,
            capacity=int(entry["capacity"]),
            nrows=int(entry["rows"]),
            blocks=cols[:, 0],
            rows=cols[:, 1],
            full=cols[:, 2].astype(bool),
            sparse_before=cols[:, 3],
            values=values,
            mask=mask,
            sparse_keys=MappedColumn(stem + ".sparse.keys.npy", self.meter),
            sparse_measure=MappedColumn(
                stem + ".sparse.measure.npy", self.meter
            ),
            fence=FenceIndex.from_manifest(entry["fence"]),
        )

    @property
    def sorted_views(self) -> dict[View, SortedView | HybridView]:
        if self._sorted is None:
            self._sorted = {}
            if self.format in (2, 3):
                for entry in self.manifest["views"]:
                    layout = entry.get("layout")
                    view = canonical_view(entry["dims"])
                    if layout == "sorted":
                        stem = os.path.join(
                            self.path, "views", _view_stem(view)
                        )
                        self._sorted[view] = SortedView(
                            tuple(entry["order"]),
                            MappedColumn(stem + ".keys.npy", self.meter),
                            MappedColumn(
                                stem + ".measure.npy", self.meter
                            ),
                            FenceIndex.from_manifest(entry["fence"]),
                        )
                    elif layout == "hybrid":
                        self._sorted[view] = self._hybrid_view(entry, view)
        return self._sorted

    def view_index(self, view: View) -> FenceIndex | None:
        """The manifest-persisted fence index of one view (or ``None``
        when the view is stored ranked / format 1)."""
        sv = self.sorted_views.get(canonical_view(view))
        return sv.fence if sv is not None else None

    # -- the distributed cube ---------------------------------------------

    @property
    def cube(self) -> CubeResult:
        if self._cube is None:
            self._cube = (
                self._load_v1() if self.format == 1 else self._load_v23()
            )
        return self._cube

    def _load_v1(self) -> CubeResult:
        manifest = self.manifest
        p = self.p
        rank_views: list[dict[View, ViewData]] = [dict() for _ in range(p)]
        total_rows = 0
        for entry in manifest["views"]:
            view = canonical_view(entry["dims"])
            total_rows += int(entry["rows"])
            for rank in range(p):
                file_path = os.path.join(
                    self.path, f"rank{rank:02d}", _view_file(view)
                )
                with np.load(file_path) as npz:
                    data = ViewData(
                        tuple(entry["orders"][rank]),
                        npz["keys"],
                        npz["measure"],
                    )
                rank_views[rank][view] = data
        return CubeResult(
            rank_views=rank_views,
            cardinalities=self.cardinalities,
            metrics=_zero_metrics(total_rows, len(manifest["views"])),
            agg=self.agg,
        )

    def _load_v23(self) -> CubeResult:
        manifest = self.manifest
        p = self.p
        rank_views: list[dict[View, ViewData]] = [dict() for _ in range(p)]
        total_rows = 0
        for entry in manifest["views"]:
            view = canonical_view(entry["dims"])
            total_rows += int(entry["rows"])
            layout = entry.get("layout")
            if layout == "sorted":
                sv = self.sorted_views[view]
                keys = sv._keys.array  # the shared mapping
                measure = sv._measure.array
                offsets = entry["rank_offsets"]
                order = tuple(entry["order"])
                for rank in range(p):
                    lo, hi = int(offsets[rank]), int(offsets[rank + 1])
                    rank_views[rank][view] = ViewData(
                        order, keys[lo:hi], measure[lo:hi]
                    )
            elif layout == "hybrid":
                # Re-expand the blocks into the full sorted columns;
                # rank pieces are offset slices exactly as for format 2.
                hv = self.sorted_views[view]
                keys, measure = hv.read(0, hv.nrows)
                offsets = entry["rank_offsets"]
                order = tuple(entry["order"])
                for rank in range(p):
                    lo, hi = int(offsets[rank]), int(offsets[rank + 1])
                    rank_views[rank][view] = ViewData(
                        order, keys[lo:hi], measure[lo:hi]
                    )
            else:
                for rank in range(p):
                    file_path = os.path.join(
                        self.path, f"rank{rank:02d}", _view_file(view)
                    )
                    with np.load(file_path) as npz:
                        rank_views[rank][view] = ViewData(
                            tuple(entry["orders"][rank]),
                            npz["keys"],
                            npz["measure"],
                        )
        return CubeResult(
            rank_views=rank_views,
            cardinalities=self.cardinalities,
            metrics=_zero_metrics(total_rows, len(manifest["views"])),
            agg=self.agg,
        )

    # -- convenience -------------------------------------------------------

    def query_engine(self, index: bool = True):
        """A query engine over this store (index-accelerated where
        sorted/hybrid views exist).

        When the manifest records an attribute-value reorder the engine
        is wrapped in a :class:`~repro.olap.query.ReorderedQueryEngine`,
        so callers always query in original attribute values no matter
        how the store is labelled.
        """
        from repro.olap.query import QueryEngine, ReorderedQueryEngine

        engine = QueryEngine(
            self.cube, sorted_views=self.sorted_views, index=index
        )
        if self.reorder is not None and not self.reorder.is_identity:
            return ReorderedQueryEngine(engine, self.reorder)
        return engine
