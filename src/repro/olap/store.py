"""Persist a constructed cube to disk and reopen it for querying.

Two on-disk formats share one manifest schema:

**Format 1** (the seed layout, still fully readable and writable)::

    <path>/manifest.json          cardinalities, aggregate, p, view index
    <path>/rank00/v_<name>.npz    keys + measure of rank 0's piece
    <path>/rank01/...

**Format 2** (the serving layout, default) lays each view out as raw
contiguous ``.npy`` columns of *globally sorted* packed int64 keys plus
the parallel measure::

    <path>/manifest.json          + per-view order, rank offsets, fence
    <path>/views/v_<name>.keys.npy
    <path>/views/v_<name>.measure.npy

After every build mode in this repository, a view's per-rank pieces
share one sort order and concatenate (rank 0 first) into a globally
sorted, key-disjoint array — the γ-balanced sample-sort merge guarantees
key-range partitioning — so format 2 stores that concatenation once and
keeps the rank boundaries as offsets: :meth:`CubeStore.load` rebuilds
the exact distributed cube as zero-copy slices of the memory-mapped
columns, while :meth:`CubeStore.open` hands the serving tier
:class:`~repro.olap.index.SortedView` handles whose fence index (every
Nth key, persisted in the manifest) lets a reader touch only the pages
a query needs.  A view that violates the sorted-concatenation invariant
(none of the shipped builders produce one, but the format stays honest)
falls back to per-rank ``ranked`` storage inside the same format-2
manifest and serves through the scan path.
"""

from __future__ import annotations

import json
import os
from typing import Sequence

import numpy as np

from repro.config import RunResult
from repro.core.cube import CubeResult
from repro.core.viewdata import ViewData
from repro.core.views import View, canonical_view, view_name
from repro.olap.index import DEFAULT_STRIDE, FenceIndex, SortedView
from repro.storage.mmapio import MappedColumn, MmapMeter, write_npy
from repro.storage.sortkernels import is_sorted_int64

__all__ = ["CubeStore", "OpenCube"]

_MANIFEST = "manifest.json"


def _view_file(view: View) -> str:
    return "v_" + ("_".join(str(i) for i in view) if view else "all") + ".npz"


def _view_stem(view: View) -> str:
    return "v_" + ("_".join(str(i) for i in view) if view else "all")


def _zero_metrics(total_rows: int, view_count: int) -> RunResult:
    """Reopened cubes carry no construction cost (it was paid at build)."""
    return RunResult(
        simulated_seconds=0.0,
        host_seconds=0.0,
        output_rows=total_rows,
        view_count=view_count,
        comm_bytes=0,
        disk_blocks=0,
    )


class CubeStore:
    """Directory-backed cube persistence (formats 1 and 2)."""

    @staticmethod
    def save(
        cube: CubeResult,
        path: str,
        format: int = 2,
        fence_stride: int | None = None,
    ) -> str:
        """Write ``cube`` under ``path`` (created if needed)."""
        if format == 1:
            return CubeStore._save_v1(cube, path)
        if format != 2:
            raise ValueError(f"unknown cube store format: {format!r}")
        return CubeStore._save_v2(cube, path, fence_stride)

    @staticmethod
    def _save_v1(cube: CubeResult, path: str) -> str:
        os.makedirs(path, exist_ok=True)
        views = cube.views
        manifest = {
            "format": 1,
            "cardinalities": list(cube.cardinalities),
            "agg": cube.agg,
            "p": len(cube.rank_views),
            "views": [
                {
                    "dims": list(view),
                    "name": view_name(view),
                    "rows": cube.view_rows(view),
                    "orders": [
                        list(rank_views[view].order)
                        for rank_views in cube.rank_views
                    ],
                }
                for view in views
            ],
        }
        with open(os.path.join(path, _MANIFEST), "w") as fh:
            json.dump(manifest, fh, indent=1)
        for rank, rank_views in enumerate(cube.rank_views):
            rank_dir = os.path.join(path, f"rank{rank:02d}")
            os.makedirs(rank_dir, exist_ok=True)
            for view in views:
                data = rank_views[view]
                np.savez(
                    os.path.join(rank_dir, _view_file(view)),
                    keys=data.keys,
                    measure=data.measure,
                )
        return path

    @staticmethod
    def _save_v2(
        cube: CubeResult, path: str, fence_stride: int | None
    ) -> str:
        os.makedirs(path, exist_ok=True)
        stride = int(fence_stride or DEFAULT_STRIDE)
        views_dir = os.path.join(path, "views")
        entries = []
        for view in cube.views:
            pieces = [rv[view] for rv in cube.rank_views]
            orders = {piece.order for piece in pieces}
            keys = np.concatenate([piece.keys for piece in pieces])
            entry = {
                "dims": list(view),
                "name": view_name(view),
                "rows": int(keys.shape[0]),
            }
            if len(orders) == 1 and is_sorted_int64(keys):
                # The serving layout: one sorted column pair per view,
                # rank pieces recoverable as offset slices.
                order = pieces[0].order
                measure = np.concatenate(
                    [piece.measure for piece in pieces]
                )
                offsets = np.zeros(len(pieces) + 1, dtype=np.int64)
                np.cumsum(
                    [piece.nrows for piece in pieces], out=offsets[1:]
                )
                stem = os.path.join(views_dir, _view_stem(view))
                write_npy(stem + ".keys.npy", keys)
                write_npy(stem + ".measure.npy", measure)
                entry.update(
                    layout="sorted",
                    order=list(order),
                    rank_offsets=[int(o) for o in offsets],
                    fence=FenceIndex.build(keys, stride).to_manifest(),
                )
            else:
                # Degenerate cube (mixed orders or unsorted global
                # concatenation): keep the faithful per-rank layout;
                # this view serves through the scan path.
                entry.update(
                    layout="ranked",
                    orders=[list(piece.order) for piece in pieces],
                )
                for rank, piece in enumerate(pieces):
                    rank_dir = os.path.join(path, f"rank{rank:02d}")
                    os.makedirs(rank_dir, exist_ok=True)
                    np.savez(
                        os.path.join(rank_dir, _view_file(view)),
                        keys=piece.keys,
                        measure=piece.measure,
                    )
            entries.append(entry)
        manifest = {
            "format": 2,
            "cardinalities": list(cube.cardinalities),
            "agg": cube.agg,
            "p": len(cube.rank_views),
            "fence_stride": stride,
            "views": entries,
        }
        with open(os.path.join(path, _MANIFEST), "w") as fh:
            json.dump(manifest, fh, indent=1)
        return path

    # -- reading -----------------------------------------------------------

    @staticmethod
    def _read_manifest(path: str) -> dict:
        manifest_path = os.path.join(path, _MANIFEST)
        if not os.path.exists(manifest_path):
            raise FileNotFoundError(f"no cube manifest at {manifest_path}")
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        if manifest.get("format") not in (1, 2):
            raise ValueError(
                f"unsupported cube store format: {manifest.get('format')!r}"
            )
        return manifest

    @staticmethod
    def load(path: str) -> CubeResult:
        """Reopen a saved cube as a :class:`CubeResult`.

        Format-2 pieces are zero-copy slices of the memory-mapped view
        columns — the distributed layout (per-rank rows and orders) is
        exactly what was saved, for either format.
        """
        return CubeStore.open(path).cube

    @staticmethod
    def open(path: str) -> "OpenCube":
        """Open a store for serving: mmap-backed cube + sorted views."""
        manifest = CubeStore._read_manifest(path)
        return OpenCube(path, manifest)

    @staticmethod
    def exists(path: str) -> bool:
        return os.path.exists(os.path.join(path, _MANIFEST))


class OpenCube:
    """A read-only handle on one stored cube.

    * :attr:`cube` — the faithful distributed :class:`CubeResult`
      (format 2: zero-copy mmap slices; format 1: eager ``.npz`` loads).
    * :attr:`sorted_views` — per-view :class:`SortedView` serving
      handles (format-2 ``sorted`` layouts only; empty for format 1).
    * :attr:`meter` — mmap read accounting shared by every column.

    Handles are safe to open in many processes at once: each worker of
    the query service opens its own and the OS page cache shares the
    underlying bytes.
    """

    def __init__(self, path: str, manifest: dict):
        self.path = path
        self.manifest = manifest
        self.format = int(manifest["format"])
        self.cardinalities = tuple(
            int(c) for c in manifest["cardinalities"]
        )
        self.agg = manifest.get("agg", "sum")
        self.p = int(manifest["p"])
        self.meter = MmapMeter()
        self._cube: CubeResult | None = None
        self._sorted: dict[View, SortedView] | None = None

    # -- sorted serving views ---------------------------------------------

    @property
    def sorted_views(self) -> dict[View, SortedView]:
        if self._sorted is None:
            self._sorted = {}
            if self.format == 2:
                for entry in self.manifest["views"]:
                    if entry.get("layout") != "sorted":
                        continue
                    view = canonical_view(entry["dims"])
                    stem = os.path.join(
                        self.path, "views", _view_stem(view)
                    )
                    self._sorted[view] = SortedView(
                        tuple(entry["order"]),
                        MappedColumn(stem + ".keys.npy", self.meter),
                        MappedColumn(stem + ".measure.npy", self.meter),
                        FenceIndex.from_manifest(entry["fence"]),
                    )
        return self._sorted

    def view_index(self, view: View) -> FenceIndex | None:
        """The manifest-persisted fence index of one view (or ``None``
        when the view is stored ranked / format 1)."""
        sv = self.sorted_views.get(canonical_view(view))
        return sv.fence if sv is not None else None

    # -- the distributed cube ---------------------------------------------

    @property
    def cube(self) -> CubeResult:
        if self._cube is None:
            self._cube = (
                self._load_v1() if self.format == 1 else self._load_v2()
            )
        return self._cube

    def _load_v1(self) -> CubeResult:
        manifest = self.manifest
        p = self.p
        rank_views: list[dict[View, ViewData]] = [dict() for _ in range(p)]
        total_rows = 0
        for entry in manifest["views"]:
            view = canonical_view(entry["dims"])
            total_rows += int(entry["rows"])
            for rank in range(p):
                file_path = os.path.join(
                    self.path, f"rank{rank:02d}", _view_file(view)
                )
                with np.load(file_path) as npz:
                    data = ViewData(
                        tuple(entry["orders"][rank]),
                        npz["keys"],
                        npz["measure"],
                    )
                rank_views[rank][view] = data
        return CubeResult(
            rank_views=rank_views,
            cardinalities=self.cardinalities,
            metrics=_zero_metrics(total_rows, len(manifest["views"])),
            agg=self.agg,
        )

    def _load_v2(self) -> CubeResult:
        manifest = self.manifest
        p = self.p
        rank_views: list[dict[View, ViewData]] = [dict() for _ in range(p)]
        total_rows = 0
        for entry in manifest["views"]:
            view = canonical_view(entry["dims"])
            total_rows += int(entry["rows"])
            if entry.get("layout") == "sorted":
                sv = self.sorted_views[view]
                keys = sv._keys.array  # the shared mapping
                measure = sv._measure.array
                offsets = entry["rank_offsets"]
                order = tuple(entry["order"])
                for rank in range(p):
                    lo, hi = int(offsets[rank]), int(offsets[rank + 1])
                    rank_views[rank][view] = ViewData(
                        order, keys[lo:hi], measure[lo:hi]
                    )
            else:
                for rank in range(p):
                    file_path = os.path.join(
                        self.path, f"rank{rank:02d}", _view_file(view)
                    )
                    with np.load(file_path) as npz:
                        rank_views[rank][view] = ViewData(
                            tuple(entry["orders"][rank]),
                            npz["keys"],
                            npz["measure"],
                        )
        return CubeResult(
            rank_views=rank_views,
            cardinalities=self.cardinalities,
            metrics=_zero_metrics(total_rows, len(manifest["views"])),
            agg=self.agg,
        )

    # -- convenience -------------------------------------------------------

    def query_engine(self):
        """A :class:`~repro.olap.query.QueryEngine` over this store
        (index-accelerated where sorted views exist)."""
        from repro.olap.query import QueryEngine

        return QueryEngine(self.cube, sorted_views=self.sorted_views)
