"""Persist a constructed cube to disk and reopen it for querying.

Layout (one directory per cube)::

    <path>/manifest.json          cardinalities, aggregate, p, view index
    <path>/rank00/v_<name>.npz    keys + measure of rank 0's piece
    <path>/rank01/...

Views keep their per-rank pieces and sort orders, so a reopened cube is
exactly as distributed (and as balanced) as the one that was saved — the
parallel query path works unchanged on it.
"""

from __future__ import annotations

import json
import os
from typing import Sequence

import numpy as np

from repro.config import RunResult
from repro.core.cube import CubeResult
from repro.core.viewdata import ViewData
from repro.core.views import View, canonical_view, view_name

__all__ = ["CubeStore"]

_MANIFEST = "manifest.json"


def _view_file(view: View) -> str:
    return "v_" + ("_".join(str(i) for i in view) if view else "all") + ".npz"


class CubeStore:
    """Directory-backed cube persistence."""

    @staticmethod
    def save(cube: CubeResult, path: str) -> str:
        """Write ``cube`` under ``path`` (created if needed)."""
        os.makedirs(path, exist_ok=True)
        views = cube.views
        manifest = {
            "format": 1,
            "cardinalities": list(cube.cardinalities),
            "agg": cube.agg,
            "p": len(cube.rank_views),
            "views": [
                {
                    "dims": list(view),
                    "name": view_name(view),
                    "rows": cube.view_rows(view),
                    "orders": [
                        list(rank_views[view].order)
                        for rank_views in cube.rank_views
                    ],
                }
                for view in views
            ],
        }
        with open(os.path.join(path, _MANIFEST), "w") as fh:
            json.dump(manifest, fh, indent=1)
        for rank, rank_views in enumerate(cube.rank_views):
            rank_dir = os.path.join(path, f"rank{rank:02d}")
            os.makedirs(rank_dir, exist_ok=True)
            for view in views:
                data = rank_views[view]
                np.savez(
                    os.path.join(rank_dir, _view_file(view)),
                    keys=data.keys,
                    measure=data.measure,
                )
        return path

    @staticmethod
    def load(path: str) -> CubeResult:
        """Reopen a saved cube as a :class:`CubeResult` (metrics zeroed —
        construction cost belongs to the original build)."""
        manifest_path = os.path.join(path, _MANIFEST)
        if not os.path.exists(manifest_path):
            raise FileNotFoundError(f"no cube manifest at {manifest_path}")
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        if manifest.get("format") != 1:
            raise ValueError(
                f"unsupported cube store format: {manifest.get('format')!r}"
            )
        cards = tuple(int(c) for c in manifest["cardinalities"])
        p = int(manifest["p"])
        rank_views: list[dict[View, ViewData]] = [dict() for _ in range(p)]
        total_rows = 0
        for entry in manifest["views"]:
            view = canonical_view(entry["dims"])
            total_rows += int(entry["rows"])
            for rank in range(p):
                file_path = os.path.join(
                    path, f"rank{rank:02d}", _view_file(view)
                )
                with np.load(file_path) as npz:
                    data = ViewData(
                        tuple(entry["orders"][rank]),
                        npz["keys"],
                        npz["measure"],
                    )
                rank_views[rank][view] = data
        metrics = RunResult(
            simulated_seconds=0.0,
            host_seconds=0.0,
            output_rows=total_rows,
            view_count=len(manifest["views"]),
            comm_bytes=0,
            disk_blocks=0,
        )
        return CubeResult(
            rank_views=rank_views,
            cardinalities=cards,
            metrics=metrics,
            agg=manifest.get("agg", "sum"),
        )

    @staticmethod
    def exists(path: str) -> bool:
        return os.path.exists(os.path.join(path, _MANIFEST))
