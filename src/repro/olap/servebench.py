"""Workload synthesis and closed-loop measurement for the serving tier.

Shared by ``benchmarks/bench_serving.py`` and the ``serve-bench`` CLI
subcommand.  Three pieces:

* :func:`synthetic_serving_cube` — a serving-scale cube built directly
  (sorted unique packed keys + codec-remap roll-ups), so a ≥1M-row view
  exists in seconds without running the full construction engine;
* :func:`serving_workload` — a seeded mixed workload of point lookups,
  roll-ups, and slice scans, the three access shapes the index path
  treats differently;
* :func:`run_at_rate` — one rung of a closed-loop offered-QPS ladder
  against a :class:`~repro.olap.service.QueryService`: queries are
  submitted on a fixed arrival schedule, latency is measured from the
  *scheduled* arrival to completion (so queueing delay under overload
  is charged, not hidden), and the rung reports achieved QPS plus
  p50/p95/p99.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.config import RunResult
from repro.core.cube import CubeResult
from repro.core.viewdata import ViewData, codec_for_order
from repro.core.views import View, canonical_view
from repro.olap.query import Query
from repro.olap.service import QueryService
from repro.storage.scan import aggregate_sorted_keys
from repro.storage.sortkernels import sort_pairs

__all__ = [
    "latency_percentiles",
    "run_at_rate",
    "run_chaos",
    "run_with_refresh",
    "serving_workload",
    "synthetic_serving_cube",
]


def synthetic_serving_cube(
    n_rows: int,
    cardinalities: Sequence[int],
    p: int = 4,
    seed: int = 0,
    views: Sequence[View] | None = None,
) -> CubeResult:
    """A serving-scale cube built arithmetically, not via the engine.

    The base view gets ``n_rows`` sorted *unique* packed keys (random
    gaps over the full key capacity) with random positive measures;
    every other view is the exact roll-up of the base (codec remap +
    sort + aggregate).  Each view splits contiguously into ``p`` rank
    pieces, so the store's sorted-concatenation invariant holds by
    construction and query answers are identical to what a real build
    of the same relation would serve.
    """
    cards = tuple(int(c) for c in cardinalities)
    d = len(cards)
    base = tuple(range(d))
    capacity = int(np.prod([np.int64(c) for c in cards]))
    if n_rows > capacity:
        raise ValueError(
            f"n_rows {n_rows} exceeds key capacity {capacity}"
        )
    if views is None:
        views = [base]
        views += [(i,) for i in range(d)]
        views += [(i, i + 1) for i in range(d - 1)]
    views = [canonical_view(v) for v in views]

    rng = np.random.default_rng(seed)
    gap = max(capacity // n_rows, 1)
    gaps = rng.integers(1, gap + 1, size=n_rows, dtype=np.int64)
    base_keys = np.cumsum(gaps) - 1
    base_measure = rng.random(n_rows)

    rank_views: list[dict[View, ViewData]] = [dict() for _ in range(p)]
    total_rows = 0
    codec = codec_for_order(base, cards)
    for view in views:
        if view == base:
            vkeys, vmeasure = base_keys, base_measure
        else:
            keys, _ = codec.remap(base_keys, base, view)
            g_codec = codec_for_order(view, cards)
            keys, measure = sort_pairs(
                keys, base_measure, key_bound=g_codec.capacity
            )
            vkeys, vmeasure = aggregate_sorted_keys(keys, measure, "sum")
        n = int(vkeys.shape[0])
        total_rows += n
        cuts = [round(rank * n / p) for rank in range(p + 1)]
        for rank in range(p):
            lo, hi = cuts[rank], cuts[rank + 1]
            rank_views[rank][view] = ViewData(
                view, vkeys[lo:hi], vmeasure[lo:hi]
            )
    metrics = RunResult(
        simulated_seconds=0.0,
        host_seconds=0.0,
        output_rows=total_rows,
        view_count=len(views),
        comm_bytes=0,
        disk_blocks=0,
    )
    return CubeResult(
        rank_views=rank_views,
        cardinalities=cards,
        metrics=metrics,
        agg="sum",
    )


def serving_workload(
    cardinalities: Sequence[int],
    n: int = 256,
    seed: int = 0,
    mix: tuple[float, float, float] = (0.5, 0.3, 0.2),
) -> list[tuple[str, Query]]:
    """A seeded mixed workload: ``(kind, query)`` pairs.

    * ``point`` — every dimension point-filtered, no group-by: one key
      range of at most a fence block on the base view;
    * ``rollup`` — one or two group-by dims, unfiltered: an aggregated
      small view answers it;
    * ``slice`` — a range filter on the base view's leading dimension
      plus a group-by: a contiguous slice of the sorted base.
    """
    cards = tuple(int(c) for c in cardinalities)
    d = len(cards)
    rng = np.random.default_rng(seed)
    kinds = rng.choice(
        ["point", "rollup", "slice"], size=n, p=list(mix)
    )
    out: list[tuple[str, Query]] = []
    for kind in kinds:
        if kind == "point":
            filters = {
                dim: (int(v), int(v))
                for dim, v in enumerate(
                    rng.integers(0, cards, size=d)
                )
            }
            query = Query(group_by=(), filters=filters)
        elif kind == "rollup":
            k = int(rng.integers(1, 3))
            dims = tuple(
                sorted(rng.choice(d, size=k, replace=False).tolist())
            )
            query = Query(group_by=dims)
        else:
            lo = int(rng.integers(0, cards[0] - 1))
            hi = int(rng.integers(lo, cards[0]))
            gdim = int(rng.integers(1, d))
            query = Query(group_by=(gdim,), filters={0: (lo, hi)})
        out.append((str(kind), query))
    return out


def latency_percentiles(samples: Sequence[float]) -> dict[str, float]:
    """p50/p95/p99 of latency samples, in milliseconds."""
    arr = np.asarray(samples, dtype=np.float64) * 1e3
    if arr.size == 0:
        return {"p50_ms": None, "p95_ms": None, "p99_ms": None}
    return {
        "p50_ms": float(np.percentile(arr, 50)),
        "p95_ms": float(np.percentile(arr, 95)),
        "p99_ms": float(np.percentile(arr, 99)),
    }


def run_at_rate(
    service: QueryService,
    queries: Sequence[Query],
    offered_qps: float,
    duration_s: float,
    drain_timeout_s: float = 60.0,
) -> dict:
    """Drive one rung of the offered-QPS ladder (closed loop).

    Submissions follow the fixed arrival schedule ``t0 + i/qps`` (we
    never skip an arrival, so falling behind shows up as queueing
    latency, not as a silently lowered offered rate).  Latency is
    scheduled-arrival → completion.  ``achieved_qps`` counts completions
    over the span from ``t0`` to the last completion.

    Failure outcomes are split the way the supervised service splits
    them: ``shed`` counts submissions refused by load shedding
    (:class:`~repro.olap.supervise.ServiceOverloaded` — an arrival was
    offered but never enqueued), ``deadline_timeouts`` counts tickets
    failed with :class:`~repro.olap.supervise.QueryTimeout`, and
    ``errors`` everything else.
    """
    from repro.olap.supervise import QueryTimeout, ServiceOverloaded

    n_offered = max(int(offered_qps * duration_s), 1)
    interval = 1.0 / float(offered_qps)
    tickets: dict[int, float] = {}
    latencies: list[float] = []
    errors = 0
    shed = 0
    deadline_timeouts = 0
    last_done = t0 = time.monotonic()

    def harvest() -> None:
        nonlocal errors, deadline_timeouts, last_done
        for ticket in service.poll():
            sched = tickets.pop(ticket, None)
            if sched is None:
                continue
            done = service.completed_at.get(ticket, time.monotonic())
            try:
                service.wait(ticket)
            except QueryTimeout:
                deadline_timeouts += 1
                continue
            except Exception:
                errors += 1
                continue
            latencies.append(done - sched)
            last_done = max(last_done, done)

    submitted = 0
    while submitted < n_offered:
        sched = t0 + submitted * interval
        now = time.monotonic()
        if now < sched:
            harvest()
            time.sleep(min(sched - now, 0.002))
            continue
        query = queries[submitted % len(queries)]
        try:
            tickets[service.submit(query)] = sched
        except ServiceOverloaded:
            shed += 1
        submitted += 1
        harvest()
    deadline = time.monotonic() + drain_timeout_s
    while tickets and time.monotonic() < deadline:
        harvest()
        time.sleep(0.001)
    span = max(last_done - t0, 1e-9)
    completed = len(latencies)
    result = {
        "offered_qps": float(offered_qps),
        "duration_s": float(duration_s),
        "submitted": submitted,
        "completed": completed,
        "errors": errors,
        "shed": shed,
        "deadline_timeouts": deadline_timeouts,
        "timed_out": len(tickets),
        "achieved_qps": completed / span,
    }
    result.update(latency_percentiles(latencies))
    return result


def run_with_refresh(
    service: QueryService,
    queries: Sequence[Query],
    delta_batches: Sequence,
    offered_qps: float,
    n_queries: int,
    refresh_every: int,
    probe: Query | None = None,
    spec=None,
    config=None,
    drain_timeout_s: float = 120.0,
    rotate_timeout_s: float = 30.0,
) -> dict:
    """Serve a workload while the store is refreshed *live* underneath.

    Every ``refresh_every`` submissions the next batch from
    ``delta_batches`` is folded into the store by
    :func:`~repro.olap.refresh.refresh_store` **in a background
    thread** — queries keep flowing while the new generation is built,
    exactly the deployment the non-blocking snapshot swap exists for.
    When a refresh publishes, the coordinator is told immediately
    (:meth:`~repro.olap.service.QueryService.check_generation`) so its
    cache keying bumps without waiting out the poll interval; workers
    rotate on their own cadence.

    Scoring: **availability** is the fraction of offered queries
    answered within their deadline (shed, timed-out, and errored
    submissions all count against it), with latency percentiles
    reported both overall and restricted to queries whose lifetime
    overlapped a refresh window — the p99-during-refresh number that
    shows whether a swap ever blocks readers.

    ``probe``, when given, is the staleness sentinel: it is answered
    (and cached) *before* the first refresh, then re-answered after the
    final refresh once every live worker has rotated, and compared
    bit-for-bit against an inline engine opened fresh on the final
    generation.  A stale cache hit or a worker stuck on an old
    generation makes ``probe_fresh`` false.
    """
    import threading

    from repro.olap.supervise import QueryTimeout, ServiceOverloaded

    if refresh_every < 1:
        raise ValueError(
            f"refresh_every must be >= 1, got {refresh_every}"
        )
    interval = 1.0 / float(offered_qps)
    tickets: dict[int, float] = {}
    completions: list[tuple[float, float]] = []  # (scheduled, done)
    errors = shed = deadline_timeouts = 0
    windows: list[tuple[float, float]] = []
    window_lock = threading.Lock()
    reports: list = []
    refresh_failures: list[str] = []
    bump_pending = threading.Event()
    generation_start = service.check_generation()

    def _refresh(delta) -> None:
        from repro.olap.refresh import refresh_store

        start = time.monotonic()
        try:
            reports.append(
                refresh_store(
                    service.store_path, delta, spec=spec, config=config
                )
            )
        except Exception as exc:  # noqa: BLE001 - scored, not fatal
            refresh_failures.append(f"{type(exc).__name__}: {exc}")
        finally:
            with window_lock:
                windows.append((start, time.monotonic()))
            bump_pending.set()

    def harvest() -> None:
        nonlocal errors, deadline_timeouts
        for ticket in service.poll():
            sched = tickets.pop(ticket, None)
            if sched is None:
                continue
            done = service.completed_at.get(ticket, time.monotonic())
            try:
                service.wait(ticket)
            except QueryTimeout:
                deadline_timeouts += 1
                continue
            except Exception:
                errors += 1
                continue
            completions.append((sched, done))

    probe_before = None
    if probe is not None:
        try:
            probe_before = service.answer(probe)
            service.answer(probe)  # second hit seeds/exercises the cache
        except Exception:  # pragma: no cover - probe best-effort
            probe_before = None

    refresh_thread: threading.Thread | None = None
    next_batch = 0
    next_refresh_at = refresh_every
    submitted = 0
    t0 = time.monotonic()
    while submitted < n_queries:
        if bump_pending.is_set():
            bump_pending.clear()
            service.check_generation()
        if (
            submitted >= next_refresh_at
            and next_batch < len(delta_batches)
            and (refresh_thread is None or not refresh_thread.is_alive())
        ):
            refresh_thread = threading.Thread(
                target=_refresh,
                args=(delta_batches[next_batch],),
                daemon=True,
            )
            refresh_thread.start()
            next_batch += 1
            next_refresh_at += refresh_every
        sched = t0 + submitted * interval
        now = time.monotonic()
        if now < sched:
            harvest()
            time.sleep(min(sched - now, 0.002))
            continue
        query = queries[submitted % len(queries)]
        try:
            tickets[service.submit(query)] = sched
        except ServiceOverloaded:
            shed += 1
        submitted += 1
        harvest()
    if refresh_thread is not None:
        refresh_thread.join(drain_timeout_s)
    if bump_pending.is_set():
        bump_pending.clear()
    drain_deadline = time.monotonic() + drain_timeout_s
    while tickets and time.monotonic() < drain_deadline:
        harvest()
        time.sleep(0.001)

    # Force the final generation pickup, then wait for every advertised
    # worker slot to rotate up before judging freshness.
    generation_end = service.check_generation()
    rotate_deadline = time.monotonic() + rotate_timeout_s
    while time.monotonic() < rotate_deadline:
        gens = [
            g
            for g in service.stats()["worker_store_generations"]
            if g >= 0
        ]
        if gens and min(gens) >= generation_end:
            break
        service.poll()
        time.sleep(0.01)
    probe_fresh = None
    if probe is not None and probe_before is not None:
        from repro.olap.store import CubeStore

        want = (
            CubeStore.open(service.store_path)
            .query_engine(index=service.index)
            .answer(probe)
        )
        try:
            got = service.answer(probe)
            probe_fresh = bool(
                np.array_equal(want.dims, got.dims)
                and np.array_equal(want.measure, got.measure)
            )
        except Exception:  # pragma: no cover - probe best-effort
            probe_fresh = False

    overall = [done - sched for sched, done in completions]
    in_window = [
        done - sched
        for sched, done in completions
        if any(sched <= e and s <= done for s, e in windows)
    ]
    result = {
        "offered": submitted,
        "completed": len(completions),
        "errors": errors,
        "shed": shed,
        "deadline_timeouts": deadline_timeouts,
        "undrained": len(tickets),
        "availability": len(completions) / max(submitted, 1),
        "refreshes": len(reports),
        "refresh_failures": refresh_failures,
        "refresh_seconds": [round(e - s, 4) for s, e in windows],
        "rows_refreshed": int(sum(r.delta_rows for r in reports)),
        "generation_start": generation_start,
        "generation_end": generation_end,
        "probe_fresh": probe_fresh,
    }
    result.update(latency_percentiles(overall))
    window_stats = {"completed": len(in_window)}
    window_stats.update(latency_percentiles(in_window))
    result["refresh_window"] = window_stats
    return result


def run_chaos(
    service: QueryService,
    queries: Sequence[Query],
    expected: dict,
    offered_qps: float,
    n_queries: int,
    drain_timeout_s: float = 120.0,
) -> dict:
    """Drive a seeded workload against a (fault-injected) service and
    score **availability**: the fraction of offered queries answered
    *correctly* within their deadline.

    Every harvested result is compared bit-for-bit against ``expected``
    (the inline :class:`~repro.olap.query.QueryEngine` answers for the
    same queries), so a retry that silently returned wrong bytes counts
    against availability, not for it.  Shed submissions, deadline
    misses, and errors are all unavailability — the denominator is
    everything offered.
    """
    from repro.olap.supervise import (
        PoisonQuery,
        QueryTimeout,
        ServiceOverloaded,
    )

    interval = 1.0 / float(offered_qps)
    tickets: dict[int, tuple[float, Query]] = {}
    latencies: list[float] = []
    correct = mismatched = errors = shed = 0
    deadline_timeouts = poisoned = 0
    t0 = time.monotonic()

    def harvest() -> None:
        nonlocal correct, mismatched, errors, deadline_timeouts, poisoned
        for ticket in service.poll():
            entry = tickets.pop(ticket, None)
            if entry is None:
                continue
            sched, query = entry
            done = service.completed_at.get(ticket, time.monotonic())
            try:
                got = service.wait(ticket)
            except QueryTimeout:
                deadline_timeouts += 1
                continue
            except PoisonQuery:
                poisoned += 1
                continue
            except Exception:
                errors += 1
                continue
            want = expected[query]
            if np.array_equal(want.dims, got.dims) and np.array_equal(
                want.measure, got.measure
            ):
                correct += 1
                latencies.append(done - sched)
            else:
                mismatched += 1

    submitted = 0
    while submitted < n_queries:
        sched = t0 + submitted * interval
        now = time.monotonic()
        if now < sched:
            harvest()
            time.sleep(min(sched - now, 0.002))
            continue
        query = queries[submitted % len(queries)]
        try:
            tickets[service.submit(query)] = (sched, query)
        except ServiceOverloaded:
            shed += 1
        submitted += 1
        harvest()
    drain_deadline = time.monotonic() + drain_timeout_s
    while tickets and time.monotonic() < drain_deadline:
        harvest()
        time.sleep(0.001)
    wall_s = time.monotonic() - t0
    result = {
        "offered": submitted,
        "correct_within_deadline": correct,
        "mismatched": mismatched,
        "errors": errors,
        "shed": shed,
        "deadline_timeouts": deadline_timeouts,
        "poisoned": poisoned,
        "undrained": len(tickets),
        "availability": correct / max(submitted, 1),
        "wall_seconds": round(wall_s, 3),
    }
    result.update(latency_percentiles(latencies))
    return result
