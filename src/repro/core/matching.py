"""The classic Pipesort level matching, by parent replication.

:mod:`repro.core.pipesort` solves each level pair with a compact
max-savings matching.  This module implements the *original* formulation
from Sarawagi-Agrawal-Gupta (the paper's [20]) for cross-validation: every
parent vertex is replicated once per potential child — the original copy
offers production by **scan** (cost ``A(u)``), the replicas offer
production by **sort** (cost ``A(u)·(1+log A(u))``) — and a minimum-cost
assignment of children to parent copies is computed.

Both formulations are exactly equivalent (the savings matching is the
replicated LP after subtracting each child's cheapest sort cost);
``tests/test_matching.py`` asserts equal optimal cost on randomized
instances, which pins the production matcher to the textbook definition.
The replicated form costs ``O(|children|·|parents|)`` columns and is kept
out of the hot path.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.pipesort import scan_cost, sort_cost
from repro.core.views import View

__all__ = ["match_level_replicated", "level_cost"]


def match_level_replicated(
    children: Sequence[View],
    parents: Sequence[View],
    estimates: Mapping[View, float],
    scan_allowed: Mapping[View, set[View]] | None = None,
) -> list[tuple[View, View, str]]:
    """Assign every child a ``(parent, mode)`` by the replicated matching.

    Parameters
    ----------
    children, parents:
        Views of the lower and upper lattice level.
    estimates:
        Estimated sizes (parents only are used).
    scan_allowed:
        Optional restriction: ``scan_allowed[u]`` is the set of children
        ``u`` may feed by scan (used for the pinned root chain); ``None``
        allows any subset child.

    Returns
    -------
    ``[(child, parent, mode)]`` with minimum total cost; raises if some
    child has no parent.
    """
    n_c = len(children)
    if n_c == 0:
        return []
    child_sets = [set(v) for v in children]
    psize = [max(estimates.get(u, 1.0), 1.0) for u in parents]

    # Columns: for each parent, one scan copy + n_c sort copies (a parent
    # can sort-produce every child in the worst case).
    col_parent: list[int] = []
    col_mode: list[str] = []
    for pi in range(len(parents)):
        col_parent.append(pi)
        col_mode.append("scan")
        for _ in range(n_c):
            col_parent.append(pi)
            col_mode.append("sort")

    big = 1e18
    cost = np.full((n_c, len(col_parent)), big)
    for ci, vset in enumerate(child_sets):
        for col, (pi, mode) in enumerate(zip(col_parent, col_mode)):
            u = parents[pi]
            if not vset < set(u):
                continue
            if mode == "scan":
                allowed = (
                    scan_allowed is None
                    or u not in scan_allowed
                    or children[ci] in scan_allowed[u]
                )
                if allowed:
                    cost[ci, col] = scan_cost(psize[pi])
            else:
                cost[ci, col] = sort_cost(psize[pi])

    rows, cols = linear_sum_assignment(cost)
    out: list[tuple[View, View, str]] = []
    for ci, col in zip(rows, cols):
        if cost[ci, col] >= big:
            raise ValueError(
                f"child {children[ci]} has no feasible parent"
            )
        out.append((children[ci], parents[col_parent[col]], col_mode[col]))
    return out


def level_cost(
    assignment: Sequence[tuple[View, View, str]],
    estimates: Mapping[View, float],
) -> float:
    """Total production cost of one level's assignment."""
    total = 0.0
    for _, parent, mode in assignment:
        size = max(estimates.get(parent, 1.0), 1.0)
        total += scan_cost(size) if mode == "scan" else sort_cost(size)
    return total
