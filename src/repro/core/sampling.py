"""The in-memory decimation sample of Section 2.4.

Merge-Partitions needs the post-overlap sizes ``|v'_j|`` only to ~1/p %
accuracy to evaluate the imbalance test, so instead of re-scanning a view
from disk, each rank keeps an ``a = 100·p``-slot sample array ``A`` that is
filled *while the view is written*:

    While the first ``a`` elements of ``v_j`` are written to disk, each of
    them is also copied into ``A``.  While the second ``a`` elements are
    written, every second is written into every second location of ``A``,
    overwriting the previous element.  While the third and fourth groups
    are written, every fourth is written into every second location, and
    so on.

The resulting ``A`` always holds an equally spaced (stride ``2^g``) sample
of the rows seen so far without knowing the final size in advance.
:class:`DecimationSampler` implements the streaming procedure verbatim;
:func:`decimation_sample` produces the identical result in one vectorised
shot when the data is already in memory (the two are cross-checked by
property tests).  :func:`estimate_range_count` turns a sample into the
range-count estimates the merge phase consumes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DecimationSampler", "decimation_sample", "estimate_range_count"]


class DecimationSampler:
    """Streaming equal-spaced sampler with a fixed slot budget.

    After feeding ``n`` keys the sample holds every ``2^g``-th key
    (``g = ceil(log2(max(n/a, 1)))``), i.e. between ``a/2`` and ``a``
    entries once ``n >= a``.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._slots = np.empty(capacity, dtype=np.int64)
        self._filled = 0  # slots currently meaningful
        self._stride = 1  # keep every _stride-th input element
        self._seen = 0  # total elements fed

    def feed(self, keys: np.ndarray) -> None:
        """Absorb the next chunk of the view being written (in order).

        Invariant: after ``seen`` elements the sample holds exactly the
        elements at input indices ``0, stride, 2·stride, ...``.
        """
        keys = np.asarray(keys, dtype=np.int64).ravel()
        for key in keys:  # a is tiny (100·p); per-element cost is fine
            if self._seen % self._stride == 0:
                if self._filled == self.capacity:
                    # Capacity exhausted: keep every second slot, double
                    # the stride ("every fourth into every second ...").
                    kept = self._slots[: self._filled : 2].copy()
                    self._filled = kept.size
                    self._slots[: self._filled] = kept
                    self._stride *= 2
                if self._seen % self._stride == 0:
                    self._slots[self._filled] = key
                    self._filled += 1
            self._seen += 1

    @property
    def seen(self) -> int:
        return self._seen

    @property
    def stride(self) -> int:
        return self._stride

    def sample(self) -> np.ndarray:
        """The current equally spaced sample (copy)."""
        return self._slots[: self._filled].copy()


def decimation_sample(keys: np.ndarray, capacity: int) -> np.ndarray:
    """Vectorised equivalent of streaming ``keys`` through the sampler:
    every ``2^g``-th element with the smallest ``g`` fitting ``capacity``."""
    keys = np.asarray(keys, dtype=np.int64).ravel()
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    n = keys.shape[0]
    stride = 1
    while -(-n // stride) > capacity:
        stride *= 2
    return keys[::stride].copy()


def estimate_range_count(
    sample: np.ndarray,
    total: int,
    boundaries: np.ndarray,
) -> np.ndarray:
    """Estimate how many of ``total`` sorted rows fall in each bucket.

    ``boundaries`` are the ``p-1`` ascending upper bounds; bucket ``k``
    holds keys in ``(boundaries[k-1], boundaries[k]]`` with the last bucket
    unbounded — the ownership rule of Merge-Partitions.  The sample must be
    sorted (it is, being an equally spaced sample of sorted data).

    Returns ``p`` float counts summing to ``total``.
    """
    sample = np.asarray(sample, dtype=np.int64)
    boundaries = np.asarray(boundaries, dtype=np.int64)
    p = boundaries.shape[0] + 1
    if total == 0 or sample.size == 0:
        return np.zeros(p)
    cuts = np.searchsorted(sample, boundaries, side="right")
    counts = np.diff(np.concatenate(([0], cuts, [sample.size])))
    return counts * (total / sample.size)
