"""The data cube lattice (Figure 1a of the paper).

Nodes are view identifiers; an edge runs from ``u`` (parent) down to ``v``
(child) when ``v`` can be computed from ``u`` by aggregating along exactly
one dimension (``v ⊂ u``, ``|v| = |u| - 1``).  The lattice for ``d``
dimensions has ``2^d`` nodes arranged in ``d+1`` levels, level ``k`` holding
the views with ``k`` attributes.

The class also serves restricted lattices (a subset of views, as needed for
``Di``-partitions and partial cubes): pass ``views=`` and parent/child
relations are computed within the subset, with ``ancestors_of`` available
for level-skipping edges in partial schedule trees.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations
from typing import Iterable, Sequence

from repro.core.views import View, all_views, canonical_view, is_subset

__all__ = ["Lattice"]


class Lattice:
    """A (possibly restricted) view lattice.

    Parameters
    ----------
    d:
        Number of dimensions of the raw data set.
    views:
        Optional subset of views to restrict to; defaults to all ``2^d``.
    """

    def __init__(self, d: int, views: Iterable[View] | None = None):
        if d < 0:
            raise ValueError(f"d must be >= 0, got {d}")
        self.d = d
        if views is None:
            self.views = all_views(d)
        else:
            seen = set()
            normed = []
            for view in views:
                view = canonical_view(view)
                if view and max(view) >= d:
                    raise ValueError(
                        f"view {view} references dimension >= d={d}"
                    )
                if view not in seen:
                    seen.add(view)
                    normed.append(view)
            self.views = sorted(normed, key=lambda v: (len(v), v))
        self._view_set = set(self.views)
        self._levels: dict[int, list[View]] = defaultdict(list)
        for view in self.views:
            self._levels[len(view)].append(view)

    # -- membership / levels ------------------------------------------------

    def __contains__(self, view: View) -> bool:
        return canonical_view(view) in self._view_set

    def __len__(self) -> int:
        return len(self.views)

    @property
    def top_level(self) -> int:
        """Highest populated level."""
        return max(self._levels) if self._levels else 0

    def level(self, k: int) -> list[View]:
        """Views with exactly ``k`` attributes (may be empty)."""
        return list(self._levels.get(k, []))

    def levels(self) -> list[tuple[int, list[View]]]:
        """All populated ``(k, views)`` pairs, ascending ``k``."""
        return sorted((k, list(vs)) for k, vs in self._levels.items())

    # -- lattice edges ---------------------------------------------------------

    def children_of(self, view: View) -> list[View]:
        """Views in the lattice obtainable from ``view`` by dropping one dim."""
        view = canonical_view(view)
        out = []
        for drop in range(len(view)):
            child = view[:drop] + view[drop + 1 :]
            if child in self._view_set:
                out.append(child)
        return out

    def parents_of(self, view: View) -> list[View]:
        """Views in the lattice from which ``view`` is one aggregation away."""
        view = canonical_view(view)
        out = []
        members = set(view)
        for extra in range(self.d):
            if extra in members:
                continue
            parent = canonical_view(view + (extra,))
            if parent in self._view_set:
                out.append(parent)
        return out

    def ancestors_of(self, view: View) -> list[View]:
        """All proper supersets of ``view`` present in the lattice."""
        view = canonical_view(view)
        return [
            u for u in self.views if len(u) > len(view) and is_subset(view, u)
        ]

    def descendants_of(self, view: View) -> list[View]:
        """All proper subsets of ``view`` present in the lattice."""
        view = canonical_view(view)
        return [
            v for v in self.views if len(v) < len(view) and is_subset(v, view)
        ]

    def edge_count(self) -> int:
        """Number of one-step aggregation edges in the (restricted) lattice."""
        return sum(len(self.children_of(view)) for view in self.views)

    # -- convenience constructors ------------------------------------------------

    @staticmethod
    def full(d: int) -> "Lattice":
        """The complete ``2^d``-view lattice."""
        return Lattice(d)

    @staticmethod
    def below(root: View, d: int) -> "Lattice":
        """The sub-lattice of all subsets of ``root``."""
        root = canonical_view(root)
        views = [
            tuple(c)
            for k in range(len(root) + 1)
            for c in combinations(root, k)
        ]
        return Lattice(d, views)
