"""Per-rank checkpointing of the parallel cube build (Procedure 1).

The build iterates over dimension partitions ``Di``; each iteration is a
natural consistency point: the partition has been globally sorted, its
``Ti`` pipes executed and its Procedure-3 merge completed, so each rank
holds a finished piece of every view of that partition.  With a
checkpoint directory configured, every rank persists exactly that state
after each iteration:

* the iteration's merged view pieces (``ViewData`` per view),
* the current ``Di``-root (what ``incremental_roots`` derives the next
  root from) and its dimension index,
* rank 0's merge report and schedule tree for the iteration,
* a meter snapshot (disk counters, modelled-work seconds, phase label) —
  the rank-local clock state, kept for diagnostics and recovery tests.

Layout (one sub-directory per rank, mirroring the shared-nothing model —
a rank checkpoints to *its own* local disk)::

    <checkpoint_dir>/rank03/
        manifest.json        ordered entries {ordinal, dim, file, crc, rows, meters}
        iter000.ckpt         pickled payload for iteration ordinal 0
        ...

Integrity: every payload file's CRC-32 is recorded in the manifest and
re-verified on load; the manifest itself is written atomically
(tmp + rename) in a line-oriented format (one JSON header line + one JSON
line per iteration) parsed *tolerantly*: a torn or corrupted tail line
truncates the chain at the last intact entry instead of discarding the
whole manifest.  A damaged or missing entry likewise truncates the usable
chain — :meth:`RankCheckpoint.last_complete` never returns an ordinal
whose predecessors are not all loadable.  The recovery driver then agrees
a *global* resume point via an ``allreduce(min)`` across ranks, so every
rank skips the same prefix of iterations and the collective schedule
stays aligned.

Degraded-mode recovery adds :class:`ReshardPlan`: when a rank is lost
permanently, its checkpoint *directory* survives (the shared-nothing
model's disk outlives the process — disk-attached recovery), so the
survivors re-partition the dead rank's saved rows among themselves and
continue at reduced width.  Each degrade event starts a fresh *epoch*
directory; the resharded chains are re-saved there, keeping every epoch's
chains self-sufficient so multiple failures compose.
"""

from __future__ import annotations

import json
import os
import pickle
import zlib
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.mpi.errors import CheckpointError

__all__ = ["RankCheckpoint", "ReshardPlan", "share_bounds"]

_MANIFEST = "manifest.json"
_VERSION = 2


class RankCheckpoint:
    """One rank's checkpoint chain under a shared checkpoint directory."""

    def __init__(self, root: str, rank: int):
        self.rank = rank
        self.dir = os.path.join(root, f"rank{rank:02d}")
        os.makedirs(self.dir, exist_ok=True)

    # -- manifest ----------------------------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self.dir, _MANIFEST)

    def _read_manifest(self) -> list[dict[str, Any]]:
        """Parse the manifest tolerantly: stop at the first damaged line.

        The v2 format is line-oriented (a JSON header line, then one JSON
        object per iteration), so a torn tail — a partially flushed write,
        appended garbage, a half-truncated last line — loses only the
        entries at and after the damage, never the intact prefix.  The
        legacy v1 single-document format is still readable (all-or-
        nothing, as before).
        """
        try:
            with open(self._manifest_path(), "r", encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except OSError:
            return []
        if not lines:
            return []
        try:
            head = json.loads(lines[0])
        except json.JSONDecodeError:
            return []
        if not isinstance(head, dict):
            return []
        if head.get("version") == 1:
            entries = head.get("iterations", [])
            return entries if isinstance(entries, list) else []
        if head.get("version") != _VERSION:
            return []
        entries = []
        for line in lines[1:]:
            line = line.strip()
            if not line:
                break
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail: keep the intact prefix
            if not isinstance(entry, dict):
                break
            entries.append(entry)
        return entries

    def _write_manifest(self, entries: list[dict[str, Any]]) -> None:
        tmp = self._manifest_path() + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"version": _VERSION}) + "\n")
            for entry in entries:
                fh.write(json.dumps(entry) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._manifest_path())

    # -- chain state -------------------------------------------------------

    def last_complete(self) -> int:
        """Highest ordinal ``k`` such that iterations ``0..k`` are all
        present and pass their CRC checks; ``-1`` for an empty/damaged
        chain.  Damage mid-chain truncates (later entries are unusable —
        the build could not have produced them without the earlier state)."""
        entries = self._read_manifest()
        last = -1
        for expected, entry in enumerate(entries):
            if entry.get("ordinal") != expected:
                break
            try:
                self._verified_bytes(entry)
            except CheckpointError:
                break
            last = expected
        return last

    def entry(self, ordinal: int) -> dict[str, Any] | None:
        """The manifest entry for one iteration (meters included)."""
        for e in self._read_manifest():
            if e.get("ordinal") == ordinal:
                return e
        return None

    # -- save / load -------------------------------------------------------

    def save(
        self,
        ordinal: int,
        dim: int,
        payload: dict[str, Any],
        meters: dict[str, Any] | None = None,
    ) -> int:
        """Persist one completed iteration; returns the row count saved
        (the caller charges it to the rank's disk meter, so checkpoint
        I/O is an honest part of simulated time).

        Re-saving an ordinal (a recovery attempt redoing the iteration it
        crashed in) overwrites the entry and truncates anything after it.
        """
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        fname = f"iter{ordinal:03d}.ckpt"
        tmp = os.path.join(self.dir, fname + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, os.path.join(self.dir, fname))
        rows = _payload_rows(payload)
        entries = [
            e for e in self._read_manifest() if e.get("ordinal", -1) < ordinal
        ]
        entries.append(
            {
                "ordinal": ordinal,
                "dim": dim,
                "file": fname,
                "crc": zlib.crc32(blob),
                "rows": rows,
                "meters": meters or {},
            }
        )
        self._write_manifest(entries)
        return rows

    def load(self, ordinal: int) -> tuple[dict[str, Any], int]:
        """Load one iteration's payload; returns ``(payload, rows)``.

        Raises :class:`CheckpointError` on a missing or corrupt entry —
        callers resolve the resume point with :meth:`last_complete`
        *before* loading, so this only fires on filesystem races."""
        entry = self.entry(ordinal)
        if entry is None:
            raise CheckpointError(
                f"rank {self.rank}: no checkpoint for iteration {ordinal}"
            )
        blob = self._verified_bytes(entry)
        return pickle.loads(blob), int(entry.get("rows", 0))

    def _verified_bytes(self, entry: dict[str, Any]) -> bytes:
        path = os.path.join(self.dir, str(entry.get("file", "")))
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            raise CheckpointError(
                f"rank {self.rank}: checkpoint file {entry.get('file')!r} "
                "unreadable"
            ) from None
        if zlib.crc32(blob) != entry.get("crc"):
            raise CheckpointError(
                f"rank {self.rank}: checkpoint file {entry.get('file')!r} "
                "failed its CRC check"
            )
        return blob


# ---------------------------------------------------------------------------
# elastic resume
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReshardPlan:
    """How the survivors of a permanent rank loss re-partition state.

    After losing ``k`` ranks at width ``old_width``, the build restarts
    at ``new_width = old_width - k``.  Every *new* rank ``j`` adopts the
    checkpoint chain of old rank ``survivors[j]`` and additionally takes
    a contiguous 1/new_width share (see :func:`share_bounds`) of every
    dead rank's saved rows.  The merged prefix is re-saved under
    ``target_root`` (a fresh epoch directory), so the new epoch's chains
    are self-sufficient: a second loss reshards from the new epoch
    without ever touching the old one again.

    Reading a dead rank's chain models *disk-attached recovery*: in the
    paper's shared-nothing cluster the node died but its disk did not.
    """

    #: Width the failed epoch ran at.
    old_width: int
    #: Width the next epoch runs at (``old_width - len(dead)``).
    new_width: int
    #: Old-numbering ranks lost permanently this epoch.
    dead: tuple[int, ...]
    #: ``survivors[j]`` = the old rank whose chain new rank ``j`` adopts.
    survivors: tuple[int, ...]
    #: Checkpoint root of the failed epoch (source chains, dead included).
    source_root: str
    #: Checkpoint root of the new epoch (resharded chains land here).
    target_root: str
    #: Optional per-new-rank share weights (length ``new_width``): the
    #: surviving ranks' measured relative speeds, so a fast survivor
    #: adopts a larger slice of the dead ranks' rows.  ``None`` keeps the
    #: uniform 1/new_width split.
    weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.new_width != self.old_width - len(self.dead):
            raise ValueError(
                f"inconsistent reshard: {self.old_width} -> "
                f"{self.new_width} with {len(self.dead)} dead"
            )
        if len(self.survivors) != self.new_width:
            raise ValueError(
                f"need {self.new_width} survivors, got {len(self.survivors)}"
            )
        if set(self.survivors) & set(self.dead):
            raise ValueError("a rank cannot be both survivor and dead")
        if self.weights is not None:
            if len(self.weights) != self.new_width:
                raise ValueError(
                    f"need {self.new_width} share weights, "
                    f"got {len(self.weights)}"
                )
            if any(w <= 0 for w in self.weights):
                raise ValueError("share weights must all be positive")

    @staticmethod
    def after_loss(
        width: int,
        dead: Sequence[int],
        source_root: str,
        target_root: str,
        weights: Sequence[float] | None = None,
    ) -> "ReshardPlan":
        """Plan the reshard after losing ``dead`` ranks at ``width``."""
        dead_t = tuple(sorted(set(int(r) for r in dead)))
        for r in dead_t:
            if not 0 <= r < width:
                raise ValueError(f"dead rank {r} outside width {width}")
        survivors = tuple(r for r in range(width) if r not in dead_t)
        return ReshardPlan(
            old_width=width,
            new_width=width - len(dead_t),
            dead=dead_t,
            survivors=survivors,
            source_root=source_root,
            target_root=target_root,
            weights=tuple(float(w) for w in weights) if weights else None,
        )


def share_bounds(
    nrows: int,
    parts: int,
    index: int,
    weights: Sequence[float] | None = None,
) -> tuple[int, int]:
    """Contiguous ``[lo, hi)`` bounds of share ``index`` of ``nrows`` rows
    split into ``parts`` near-equal pieces — the same arithmetic as
    :func:`repro.core.cube.split_even`, without materialising slices.
    Used to deal a dead rank's sorted rows out to the survivors while
    preserving sortedness and key disjointness.

    With ``weights`` (positive per-part speed weights) the cut points
    move to the rounded cumulative weight fractions instead — shares stay
    contiguous, disjoint and covering, but part ``index`` receives
    ``~weights[index]/sum(weights)`` of the rows."""
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if not 0 <= index < parts:
        raise ValueError(f"share index {index} outside 0..{parts - 1}")
    if weights is None:
        base, rem = divmod(int(nrows), parts)
        lo = index * base + min(index, rem)
        hi = lo + base + (1 if index < rem else 0)
        return lo, hi
    w = np.asarray(weights, dtype=np.float64)
    if w.size != parts:
        raise ValueError(f"need {parts} weights, got {w.size}")
    if (w <= 0).any():
        raise ValueError("share weights must all be positive")
    # Rounded cumulative cuts: monotone (cumsum of positives), last cut
    # pinned to nrows, so shares partition [0, nrows) exactly.
    cuts = np.floor(np.cumsum(w) / w.sum() * int(nrows) + 0.5).astype(
        np.int64
    )
    cuts[-1] = int(nrows)
    lo = 0 if index == 0 else int(cuts[index - 1])
    hi = int(cuts[index])
    return lo, hi


def _payload_rows(payload: dict[str, Any]) -> int:
    rows = 0
    for data in payload.get("views", {}).values():
        rows += data.nrows
    root = payload.get("root")
    if root is not None:
        rows += root.nrows
    return rows
