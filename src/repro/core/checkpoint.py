"""Per-rank checkpointing of the parallel cube build (Procedure 1).

The build iterates over dimension partitions ``Di``; each iteration is a
natural consistency point: the partition has been globally sorted, its
``Ti`` pipes executed and its Procedure-3 merge completed, so each rank
holds a finished piece of every view of that partition.  With a
checkpoint directory configured, every rank persists exactly that state
after each iteration:

* the iteration's merged view pieces (``ViewData`` per view),
* the current ``Di``-root (what ``incremental_roots`` derives the next
  root from) and its dimension index,
* rank 0's merge report and schedule tree for the iteration,
* a meter snapshot (disk counters, modelled-work seconds, phase label) —
  the rank-local clock state, kept for diagnostics and recovery tests.

Layout (one sub-directory per rank, mirroring the shared-nothing model —
a rank checkpoints to *its own* local disk)::

    <checkpoint_dir>/rank03/
        manifest.json        ordered entries {ordinal, dim, file, crc, rows, meters}
        iter000.ckpt         pickled payload for iteration ordinal 0
        ...

Integrity: every payload file's CRC-32 is recorded in the manifest and
re-verified on load; the manifest itself is written atomically
(tmp + rename).  A damaged or missing entry truncates the usable chain at
the last intact iteration — :meth:`RankCheckpoint.last_complete` never
returns an ordinal whose predecessors are not all loadable.  The recovery
driver then agrees a *global* resume point via an ``allreduce(min)``
across ranks, so every rank skips the same prefix of iterations and the
collective schedule stays aligned.
"""

from __future__ import annotations

import json
import os
import pickle
import zlib
from typing import Any

from repro.mpi.errors import CheckpointError

__all__ = ["RankCheckpoint"]

_MANIFEST = "manifest.json"
_VERSION = 1


class RankCheckpoint:
    """One rank's checkpoint chain under a shared checkpoint directory."""

    def __init__(self, root: str, rank: int):
        self.rank = rank
        self.dir = os.path.join(root, f"rank{rank:02d}")
        os.makedirs(self.dir, exist_ok=True)

    # -- manifest ----------------------------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self.dir, _MANIFEST)

    def _read_manifest(self) -> list[dict[str, Any]]:
        try:
            with open(self._manifest_path(), "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return []
        if not isinstance(doc, dict) or doc.get("version") != _VERSION:
            return []
        entries = doc.get("iterations", [])
        return entries if isinstance(entries, list) else []

    def _write_manifest(self, entries: list[dict[str, Any]]) -> None:
        tmp = self._manifest_path() + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump({"version": _VERSION, "iterations": entries}, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._manifest_path())

    # -- chain state -------------------------------------------------------

    def last_complete(self) -> int:
        """Highest ordinal ``k`` such that iterations ``0..k`` are all
        present and pass their CRC checks; ``-1`` for an empty/damaged
        chain.  Damage mid-chain truncates (later entries are unusable —
        the build could not have produced them without the earlier state)."""
        entries = self._read_manifest()
        last = -1
        for expected, entry in enumerate(entries):
            if entry.get("ordinal") != expected:
                break
            try:
                self._verified_bytes(entry)
            except CheckpointError:
                break
            last = expected
        return last

    def entry(self, ordinal: int) -> dict[str, Any] | None:
        """The manifest entry for one iteration (meters included)."""
        for e in self._read_manifest():
            if e.get("ordinal") == ordinal:
                return e
        return None

    # -- save / load -------------------------------------------------------

    def save(
        self,
        ordinal: int,
        dim: int,
        payload: dict[str, Any],
        meters: dict[str, Any] | None = None,
    ) -> int:
        """Persist one completed iteration; returns the row count saved
        (the caller charges it to the rank's disk meter, so checkpoint
        I/O is an honest part of simulated time).

        Re-saving an ordinal (a recovery attempt redoing the iteration it
        crashed in) overwrites the entry and truncates anything after it.
        """
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        fname = f"iter{ordinal:03d}.ckpt"
        tmp = os.path.join(self.dir, fname + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, os.path.join(self.dir, fname))
        rows = _payload_rows(payload)
        entries = [
            e for e in self._read_manifest() if e.get("ordinal", -1) < ordinal
        ]
        entries.append(
            {
                "ordinal": ordinal,
                "dim": dim,
                "file": fname,
                "crc": zlib.crc32(blob),
                "rows": rows,
                "meters": meters or {},
            }
        )
        self._write_manifest(entries)
        return rows

    def load(self, ordinal: int) -> tuple[dict[str, Any], int]:
        """Load one iteration's payload; returns ``(payload, rows)``.

        Raises :class:`CheckpointError` on a missing or corrupt entry —
        callers resolve the resume point with :meth:`last_complete`
        *before* loading, so this only fires on filesystem races."""
        entry = self.entry(ordinal)
        if entry is None:
            raise CheckpointError(
                f"rank {self.rank}: no checkpoint for iteration {ordinal}"
            )
        blob = self._verified_bytes(entry)
        return pickle.loads(blob), int(entry.get("rows", 0))

    def _verified_bytes(self, entry: dict[str, Any]) -> bytes:
        path = os.path.join(self.dir, str(entry.get("file", "")))
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            raise CheckpointError(
                f"rank {self.rank}: checkpoint file {entry.get('file')!r} "
                "unreadable"
            ) from None
        if zlib.crc32(blob) != entry.get("crc"):
            raise CheckpointError(
                f"rank {self.rank}: checkpoint file {entry.get('file')!r} "
                "failed its CRC check"
            )
        return blob


def _payload_rows(payload: dict[str, Any]) -> int:
    rows = 0
    for data in payload.get("views", {}).values():
        rows += data.nrows
    root = payload.get("root")
    if root is not None:
        rows += root.nrows
    return rows
