"""``Di``-partitions of the data cube (Figure 3 of the paper).

With dimensions ordered by non-increasing cardinality, ``Si ⊂ S`` is the
set of view identifiers *starting with* ``Di`` — i.e. views that contain
``Di`` and no dimension of smaller index.  The ``Di``-root is the view over
all dimensions appearing in ``Si``'s views, namely ``(Di, Di+1, ..., Dd-1)``.

The partitions tile the full cube::

    d = 4:  A-partition {ABCD, ABC, ABD, ACD, AB, AC, AD, A}   root ABCD
            B-partition {BCD, BC, BD, B}                        root BCD
            C-partition {CD, C}                                 root CD
            D-partition {D}                                      root D

The ALL view (empty identifier) starts with no dimension; following the
paper's Figure 3 (which draws it below the D-partition) we attach it to the
last partition, where it is one scan away from ``(Dd-1,)``.

For partial cubes the same partitioning applies to the *selected* subset
``S``; a partition may then be empty and is skipped.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.views import View, all_views, canonical_view

__all__ = ["partition_index", "partition_root", "partition_views", "partition_all"]


def partition_index(view: View, d: int) -> int:
    """Index ``i`` of the partition that owns ``view``.

    The ALL view belongs to partition ``d-1`` by convention (see module
    docstring).
    """
    view = canonical_view(view)
    if view and max(view) >= d:
        raise ValueError(f"view {view} out of range for d={d}")
    if not view:
        if d == 0:
            raise ValueError("d=0 has no partitions")
        return d - 1
    return view[0]


def partition_root(i: int, d: int) -> View:
    """The ``Di``-root: view over dimensions ``i..d-1``."""
    if not 0 <= i < d:
        raise ValueError(f"partition index {i} out of range for d={d}")
    return tuple(range(i, d))


def partition_views(
    i: int, d: int, selected: Iterable[View] | None = None
) -> list[View]:
    """Views of the ``Di``-partition, largest first.

    Parameters
    ----------
    i, d:
        Partition index and dimensionality.
    selected:
        Restrict to this set of selected views (partial cube).  ``None``
        means the full cube.  The partition root is *not* implicitly added;
        callers that need it as a computation source handle that
        (see :mod:`repro.core.partial`).
    """
    if selected is None:
        pool: Sequence[View] = all_views(d)
    else:
        pool = [canonical_view(v) for v in selected]
    out = [v for v in pool if partition_index(v, d) == i]
    out.sort(key=lambda v: (-len(v), v))
    return out


def partition_all(
    d: int, selected: Iterable[View] | None = None
) -> list[tuple[int, View, list[View]]]:
    """All non-empty partitions as ``(i, root, views)``, ascending ``i``."""
    if selected is not None:
        selected = [canonical_view(v) for v in selected]
    out = []
    for i in range(d):
        views = partition_views(i, d, selected)
        if views:
            out.append((i, partition_root(i, d), views))
    return out
