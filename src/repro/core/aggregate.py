"""Measure algebra shared by the aggregation kernels and the merge phase.

The distributive aggregate functions of the paper's setting (SUM, COUNT,
MIN, MAX) are the ones a ROLAP cube can compute by merging partial
aggregates; COUNT merges by addition.  Scalar combination is needed at the
few places (boundary agglomeration) where two already-aggregated rows for
the same key meet.
"""

from __future__ import annotations

import numpy as np

from repro.storage.table import Relation

__all__ = [
    "SUPPORTED_AGGS",
    "INSERT_MAINTAINABLE_AGGS",
    "combine_scalar",
    "combine_arrays",
    "prepare_measure",
    "require_insert_maintainable",
]

SUPPORTED_AGGS = ("sum", "count", "min", "max")

#: Aggregates a cube can maintain under *insert-only* deltas by
#: combining partial aggregates (the distributive functions).  AVG-style
#: algebraic aggregates would need auxiliary columns (sum + count), and
#: holistic ones (MEDIAN, DISTINCT) can't be maintained at all — both
#: must be rebuilt, never refreshed.
INSERT_MAINTAINABLE_AGGS = ("sum", "count", "min", "max")


def require_insert_maintainable(agg: str, context: str = "refresh") -> str:
    """Reject aggregates that cannot absorb a delta by combination.

    Every refresh entry point calls this before touching any state, so a
    non-maintainable aggregate fails loudly instead of silently writing
    wrong totals.  Returns ``agg`` unchanged when it is maintainable.
    """
    if agg not in INSERT_MAINTAINABLE_AGGS:
        raise ValueError(
            f"{context} requires an insert-maintainable aggregate "
            f"(one of {INSERT_MAINTAINABLE_AGGS}); got {agg!r}. "
            "AVG-style or custom aggregates without a combine rule "
            "cannot fold deltas into existing partials - rebuild the "
            "cube from the full input instead."
        )
    return agg


def prepare_measure(relation: Relation, agg: str) -> tuple[Relation, str]:
    """Normalise COUNT into SUM-of-ones at ingestion.

    COUNT is only a row count at the *first* aggregation; every
    re-aggregation (pipeline steps, merges) must add the partial counts.
    Swapping the measure for 1.0 and aggregating with SUM gives exactly
    that semantics everywhere downstream.
    """
    if agg == "count":
        return (
            Relation(relation.dims, np.ones(relation.nrows, dtype=np.float64)),
            "sum",
        )
    if agg not in SUPPORTED_AGGS:
        raise ValueError(f"unsupported aggregate: {agg!r}")
    return relation, agg


def combine_scalar(a: float, b: float, agg: str) -> float:
    """Combine two partial aggregates of the same key."""
    if agg in ("sum", "count"):
        return a + b
    if agg == "min":
        return min(a, b)
    if agg == "max":
        return max(a, b)
    raise ValueError(f"unsupported aggregate: {agg!r}")


def combine_arrays(a: np.ndarray, b: np.ndarray, agg: str) -> np.ndarray:
    """Element-wise partial-aggregate combination."""
    if agg in ("sum", "count"):
        return a + b
    if agg == "min":
        return np.minimum(a, b)
    if agg == "max":
        return np.maximum(a, b)
    raise ValueError(f"unsupported aggregate: {agg!r}")
