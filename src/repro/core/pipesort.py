"""Pipesort: the sequential top-down cube building block (both phases).

Phase 1 (:func:`build_schedule_tree`) turns a view lattice plus view-size
estimates into a *schedule tree* (Figure 1b): every non-root view gets one
parent and an edge mode — ``scan`` (the view is a prefix of its parent's
sort order and falls out of a single linear pass) or ``sort`` (the parent
must be re-sorted first).  Following the paper's description of Pipesort,
the tree is built by scanning the lattice level by level from the raw data
set and solving a minimum-cost bipartite matching between adjacent levels.

Matching formulation.  Every child view must be produced from some parent
one level up.  Sort production has no capacity limit (a parent can be
re-sorted arbitrarily often), while each parent can feed exactly one child
by scan.  Classic Pipesort replicates each parent node once per potential
child to express this; an equivalent but smaller formulation is used here:
give every child its cheapest *sort* parent by default, then compute a
maximum-weight bipartite matching of (parent, child) pairs where the weight
is the *saving* of turning that child into the parent's scan child
(``cheapest_sort_cost(child) - scan_cost(parent)``, clipped at 0).  The
scipy LAPJV solver (``linear_sum_assignment``) handles each level pair.

Sort orders are a consequence of the tree: a pipeline (maximal chain of
scan edges) fixes each member's order to a prefix of its parent's, and the
head of a pipeline is free to choose its order — except the *root*, whose
order is pinned to the global sort order established by the partitioning
phase.  The level-wise matcher therefore tracks the root's scan chain and
only offers prefix-compatible children as its scan candidates.

Phase 2 (:func:`execute_schedule`) materialises every view of the tree
from the root's data: scan edges cascade a prefix aggregation down each
pipeline in one pass (on packed keys this is an integer division plus a
``reduceat``), sort edges re-sort the parent through the external-memory
sorter, charging the owning rank's disk accordingly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.viewdata import ViewData, codec_for_order
from repro.core.views import View, canonical_view, is_prefix, view_name
from repro.storage.disk import LocalDisk
from repro.storage.external_sort import external_sort
from repro.storage.scan import aggregate_sorted_keys

__all__ = [
    "ScheduleNode",
    "ScheduleTree",
    "build_schedule_tree",
    "execute_schedule",
    "scan_cost",
    "sort_cost",
]


# ---------------------------------------------------------------------------
# cost model of the matcher
# ---------------------------------------------------------------------------


def scan_cost(parent_size: float) -> float:
    """Cost of producing one child from ``parent`` within its pipeline pass."""
    return max(parent_size, 1.0)


def sort_cost(parent_size: float, prefix_segments: float | None = None) -> float:
    """Cost of re-sorting ``parent`` to produce a child: ``s·(1+log2 s)``.

    ``prefix_segments`` is the estimated number of equal-shared-prefix
    segments when the child's target order shares a leading prefix with
    the parent's order.  The parent is then already clustered into that
    many independently sortable runs, so the comparison term drops from
    ``log2 s`` to ``log2 (s/segments)`` — the discount the segmented
    sort kernel realises at execution time.
    """
    s = max(parent_size, 1.0)
    if prefix_segments is None or prefix_segments <= 1.0:
        return s * (1.0 + math.log2(max(s, 2.0)))
    return s * (1.0 + math.log2(max(s / prefix_segments, 2.0)))


# ---------------------------------------------------------------------------
# schedule tree structure
# ---------------------------------------------------------------------------


@dataclass
class ScheduleNode:
    """One view in a schedule tree."""

    view: View
    #: ``"root"``, ``"scan"`` or ``"sort"`` — how this view is produced.
    mode: str
    parent: View | None
    #: Sort order the view is produced in (attribute permutation).
    order: tuple[int, ...] = ()
    children: list[View] = field(default_factory=list)


class ScheduleTree:
    """A schedule tree over one partition (or a whole cube)."""

    def __init__(self, root: View, root_order: tuple[int, ...]):
        self.root = canonical_view(root)
        self.nodes: dict[View, ScheduleNode] = {
            self.root: ScheduleNode(self.root, "root", None, tuple(root_order))
        }

    # -- construction -----------------------------------------------------

    def add(self, view: View, parent: View, mode: str) -> None:
        view = canonical_view(view)
        parent = canonical_view(parent)
        if view in self.nodes:
            raise ValueError(f"view {view_name(view)} already scheduled")
        if parent not in self.nodes:
            raise ValueError(
                f"parent {view_name(parent)} of {view_name(view)} not in tree"
            )
        if mode not in ("scan", "sort"):
            raise ValueError(f"bad edge mode {mode!r}")
        if not set(view) < set(parent):
            raise ValueError(
                f"{view_name(view)} is not a proper subset of "
                f"{view_name(parent)}"
            )
        self.nodes[view] = ScheduleNode(view, mode, parent)
        self.nodes[parent].children.append(view)

    def assign_orders(self) -> None:
        """Fix every node's sort order, bottom-up along scan chains.

        A node with a scan child adopts ``order(child) + extras``; any other
        node uses its canonical identifier order.  The root's order is given
        and is asserted to be consistent with its scan chain.
        """
        for view in sorted(self.nodes, key=len):
            node = self.nodes[view]
            scan_children = [
                c for c in node.children if self.nodes[c].mode == "scan"
            ]
            if len(scan_children) > 1:
                raise ValueError(
                    f"{view_name(view)} has {len(scan_children)} scan "
                    "children; at most one is allowed"
                )
            if view == self.root:
                if scan_children and not is_prefix(
                    self.nodes[scan_children[0]].order, node.order
                ):
                    raise ValueError(
                        "root scan chain is not a prefix of the root order"
                    )
                continue
            if scan_children:
                child_order = self.nodes[scan_children[0]].order
                extras = tuple(sorted(set(view) - set(child_order)))
                node.order = child_order + extras
            else:
                node.order = view  # canonical: ascending dim index

    # -- queries -------------------------------------------------------------

    def views(self) -> list[View]:
        return list(self.nodes)

    def __contains__(self, view: View) -> bool:
        return canonical_view(view) in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)

    def preorder(self) -> list[ScheduleNode]:
        """Nodes in DFS preorder from the root (parents before children)."""
        out: list[ScheduleNode] = []
        stack = [self.root]
        while stack:
            view = stack.pop()
            node = self.nodes[view]
            out.append(node)
            stack.extend(reversed(node.children))
        return out

    def pipelines(self) -> list[list[View]]:
        """Maximal scan chains (each evaluated in one pass by phase 2)."""
        chains = []
        for node in self.preorder():
            if node.mode == "scan":
                continue
            chain = [node.view]
            cur = node
            while True:
                nxt = [
                    c for c in cur.children if self.nodes[c].mode == "scan"
                ]
                if not nxt:
                    break
                chain.append(nxt[0])
                cur = self.nodes[nxt[0]]
            chains.append(chain)
        return chains

    def estimated_cost(self, estimates: Mapping[View, float]) -> float:
        """Total phase-2 cost of this tree under the matcher's cost model."""
        total = 0.0
        for node in self.nodes.values():
            if node.parent is None:
                continue
            size = estimates.get(node.parent, 1.0)
            total += scan_cost(size) if node.mode == "scan" else sort_cost(size)
        return total

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation."""
        seen = set()
        for node in self.preorder():
            seen.add(node.view)
        if seen != set(self.nodes):
            raise ValueError("tree is not connected")
        for node in self.nodes.values():
            if node.view == self.root:
                continue
            parent = self.nodes[node.parent]
            if node.mode == "scan" and not is_prefix(node.order, parent.order):
                raise ValueError(
                    f"scan child {view_name(node.view)} order {node.order} "
                    f"is not a prefix of parent order {parent.order}"
                )
            if set(node.order) != set(node.view):
                raise ValueError(
                    f"order {node.order} does not cover view "
                    f"{view_name(node.view)}"
                )

    def to_dot(self) -> str:
        """Graphviz DOT rendering (scan edges solid, sort edges dashed) —
        the Figure 1b/1c drawing for any tree this code builds."""
        lines = [
            "digraph schedule_tree {",
            '  rankdir=TB; node [shape=box, fontname="monospace"];',
        ]
        for node in self.preorder():
            label = view_name(node.view)
            order = ",".join(str(i) for i in node.order)
            lines.append(
                f'  "{label}" [label="{label}\norder=({order})"];'
            )
            if node.parent is not None:
                style = "solid" if node.mode == "scan" else "dashed"
                lines.append(
                    f'  "{view_name(node.parent)}" -> "{label}" '
                    f"[style={style}];"
                )
        lines.append("}")
        return "\n".join(lines)

    def describe(self) -> str:
        """Multi-line rendering (for docs/examples)."""
        lines = []

        def walk(view: View, depth: int) -> None:
            node = self.nodes[view]
            tag = "" if node.mode == "root" else f" [{node.mode}]"
            lines.append("  " * depth + view_name(view) + tag)
            for child in node.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# phase 1: level-wise minimum-cost matching
# ---------------------------------------------------------------------------


def build_schedule_tree(
    views: Sequence[View],
    root: View,
    estimates: Mapping[View, float],
    root_order: tuple[int, ...] | None = None,
    prefix_discount: bool = False,
) -> ScheduleTree:
    """Pipesort phase 1 over a *level-complete* view set.

    Parameters
    ----------
    views:
        All views to schedule, including ``root``.  Every non-root view must
        have at least one superset one level up in ``views`` (true for full
        cubes and full ``Di``-partitions; partial cubes use
        :mod:`repro.core.partial`).
    root:
        The source view (raw data set or ``Di``-root).
    estimates:
        Estimated row counts per view (drives edge costs only).
    root_order:
        The root's fixed sort order; defaults to its canonical order.
    prefix_discount:
        Discount sort edges whose child order shares a leading prefix
        with the (predicted) parent order, steering the matcher toward
        parents the segmented sort kernel can exploit.  Off by default —
        the paper's cost model has no such term; cube builds switch it
        on via ``CubeConfig.sort_prefix_discount``.
    """
    root = canonical_view(root)
    if root_order is None:
        root_order = root
    root_order = tuple(root_order)
    if set(root_order) != set(root):
        raise ValueError(f"root order {root_order} does not cover {root}")

    views = [canonical_view(v) for v in views]
    if root not in views:
        raise ValueError("root must be among the scheduled views")
    by_level: dict[int, list[View]] = {}
    for view in views:
        by_level.setdefault(len(view), []).append(view)
    top = len(root)

    tree = ScheduleTree(root, root_order)
    pinned: dict[View, tuple[int, ...]] = {root: root_order}

    for k in range(top - 1, -1, -1):
        children = by_level.get(k, [])
        parents = by_level.get(k + 1, [])
        if not children:
            continue
        if not parents:
            raise ValueError(
                f"level {k} views have no level-{k + 1} parents; "
                "use repro.core.partial for gappy view sets"
            )
        _match_level(
            tree, children, parents, estimates, pinned, prefix_discount
        )

    tree.assign_orders()
    return tree


def _prefix_segments(
    child: View,
    parent: View,
    pinned: dict[View, tuple[int, ...]],
    estimates: Mapping[View, float],
) -> float | None:
    """Predicted equal-prefix segment count for sorting ``parent → child``.

    The matcher runs before orders are assigned, so it predicts: the
    parent keeps its pinned order (root chain) or its canonical order,
    and a sort child is produced in its canonical order.  The number of
    segments the segmented kernel would see is the row count of the view
    over the shared leading dims — exactly what ``estimates`` holds.
    """
    parent_order = pinned.get(parent, parent)
    k = 0
    limit = min(len(child), len(parent_order))
    while k < limit and child[k] == parent_order[k]:
        k += 1
    if k == 0:
        return None
    return estimates.get(child[:k])


def _match_level(
    tree: ScheduleTree,
    children: Sequence[View],
    parents: Sequence[View],
    estimates: Mapping[View, float],
    pinned: dict[View, tuple[int, ...]],
    prefix_discount: bool = False,
) -> None:
    """Assign every child a parent + mode via the scan-saving matching."""
    n_c, n_p = len(children), len(parents)
    psize = [max(estimates.get(u, 1.0), 1.0) for u in parents]

    # Cheapest sort parent per child (always feasible).
    base_parent = [-1] * n_c
    base_cost = [math.inf] * n_c
    child_sets = [set(v) for v in children]
    parent_sets = [set(u) for u in parents]
    for ci, vset in enumerate(child_sets):
        for pi, uset in enumerate(parent_sets):
            if vset < uset:
                segments = (
                    _prefix_segments(
                        children[ci], parents[pi], pinned, estimates
                    )
                    if prefix_discount
                    else None
                )
                cost = sort_cost(psize[pi], segments)
                if cost < base_cost[ci]:
                    base_cost[ci] = cost
                    base_parent[ci] = pi
    missing = [children[ci] for ci in range(n_c) if base_parent[ci] < 0]
    if missing:
        raise ValueError(
            f"views {[view_name(v) for v in missing]} have no parent "
            "one level up"
        )

    # Scan savings matrix.
    savings = np.zeros((n_c, n_p))
    for ci, v in enumerate(children):
        for pi, u in enumerate(parents):
            if not child_sets[ci] < parent_sets[pi]:
                continue
            pin = pinned.get(u)
            if pin is not None and child_sets[ci] != set(pin[: len(v)]):
                continue  # root-chain parent: only its prefix child scans
            gain = base_cost[ci] - scan_cost(psize[pi])
            if gain > 0:
                savings[ci, pi] = gain

    chosen_scan: dict[int, int] = {}
    if savings.any():
        rows, cols = linear_sum_assignment(savings, maximize=True)
        for ci, pi in zip(rows, cols):
            if savings[ci, pi] > 0:
                chosen_scan[ci] = pi

    for ci, v in enumerate(children):
        if ci in chosen_scan:
            u = parents[chosen_scan[ci]]
            tree.add(v, u, "scan")
            pin = pinned.get(u)
            if pin is not None:
                pinned[v] = pin[: len(v)]
        else:
            tree.add(v, parents[base_parent[ci]], "sort")


# ---------------------------------------------------------------------------
# phase 2: pipelined execution
# ---------------------------------------------------------------------------


def execute_schedule(
    tree: ScheduleTree,
    root_data: ViewData,
    cardinalities: Sequence[int],
    disk: LocalDisk,
    memory_budget: int,
    agg: str = "sum",
) -> dict[View, ViewData]:
    """Pipesort phase 2: materialise every view of ``tree`` from the root.

    ``root_data.order`` must equal the tree's root order (the global sort
    order from the partitioning phase).  Returns a dict holding the root
    itself plus every scheduled view, each sorted under its tree order.
    """
    root_node = tree.nodes[tree.root]
    if tuple(root_data.order) != tuple(root_node.order):
        raise ValueError(
            f"root data order {root_data.order} != schedule root order "
            f"{root_node.order}"
        )
    results: dict[View, ViewData] = {tree.root: root_data}
    # One pass over the root feeds its pipeline (scan chain).
    disk.charge_scan(root_data.nrows)

    for node in tree.preorder():
        parent_data = results[node.view]
        parent_codec = codec_for_order(node.order, cardinalities)
        for child_view in node.children:
            child = tree.nodes[child_view]
            if child.mode == "scan":
                disk.work.charge_scan(parent_data.nrows)
                keys, measure = _produce_scan(
                    parent_data, parent_codec, len(child.order), agg
                )
            else:
                disk.charge_scan(parent_data.nrows)
                disk.work.charge_scan(parent_data.nrows)  # project + re-pack
                keys, measure = _produce_sort(
                    parent_data,
                    parent_codec,
                    node.order,
                    child.order,
                    cardinalities,
                    disk,
                    memory_budget,
                    agg,
                )
            results[child_view] = ViewData(child.order, keys, measure)
            disk.charge_store(keys.shape[0])
    return results


def _produce_scan(
    parent: ViewData, parent_codec, child_len: int, agg: str
) -> tuple[np.ndarray, np.ndarray]:
    """Prefix aggregation: child key = parent key // suffix capacity."""
    if parent.nrows == 0:
        return parent.keys[:0], parent.measure[:0]
    if child_len == 0:
        keys = np.zeros(parent.nrows, dtype=np.int64)
    else:
        divisor = parent_codec.weights[child_len - 1]
        keys = parent.keys // divisor
    return aggregate_sorted_keys(keys, parent.measure, agg)


def _produce_sort(
    parent: ViewData,
    parent_codec,
    parent_order: tuple[int, ...],
    child_order: tuple[int, ...],
    cardinalities: Sequence[int],
    disk: LocalDisk,
    memory_budget: int,
    agg: str,
) -> tuple[np.ndarray, np.ndarray]:
    """Re-sort production: remap keys to the child order, sort, collapse.

    ``KeyCodec.remap`` projects + re-packs in pure int64 arithmetic (no
    ``(n, d)`` code materialisation) and reports the shared-prefix length
    with the parent order; the parent being sorted means the remapped
    keys are clustered by that prefix, which the segmented sort kernel
    exploits via ``seg_divisor``.
    """
    child_codec = codec_for_order(child_order, cardinalities)
    keys, shared = parent_codec.remap(parent.keys, parent_order, child_order)
    seg_divisor = None
    if 0 < shared < len(child_order):
        seg_divisor = int(child_codec.weights[shared - 1])
    keys, measure = external_sort(
        keys,
        parent.measure,
        disk,
        memory_budget,
        key_bound=child_codec.capacity,
        seg_divisor=seg_divisor,
    )
    return aggregate_sorted_keys(keys, measure, agg)
