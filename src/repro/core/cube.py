"""Procedure 1: the parallel shared-nothing data cube driver (public API).

:func:`build_data_cube` runs the paper's three-phase algorithm over the
simulated cluster, one ``Di``-partition at a time:

1. **Data partitioning** — each rank aggregates its raw chunk to the local
   ``Di``-root, all ranks globally sort the roots with Adaptive-Sample-Sort
   (γ = 1%), then re-aggregate locally.
2. **Local partition computation** — rank 0 builds the partition's schedule
   tree from view-size estimates on *its* chunk and broadcasts it (the
   paper's winning *global schedule tree* strategy; pass
   ``CubeConfig(global_schedule_tree=False)`` for the Figure 7 ablation —
   see :mod:`repro.baselines.local_tree` for the matching merge handling);
   every rank then runs Pipesort phase 2 locally.
3. **Merge** — Procedure 3 agglomerates the per-rank pieces of every view
   (see :mod:`repro.core.merge`).

The result leaves every view evenly distributed across the virtual disks,
ready for parallel OLAP scans — and carries the full metering record
(simulated wall-clock, communication volume, disk traffic) that the
benchmark harness turns into the paper's figures.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.config import CubeConfig, MachineSpec, RecoveryPolicy, RunResult
from repro.core.aggregate import prepare_measure
from repro.core.checkpoint import RankCheckpoint, ReshardPlan, share_bounds
from repro.core.estimate import estimate_view_sizes
from repro.core.merge import MergeReport, merge_partitions
from repro.core.partial import build_partial_schedule_tree, prune_full_tree
from repro.core.partitions import partition_all, partition_views
from repro.core.pipesort import ScheduleTree, build_schedule_tree, execute_schedule
from repro.core.sample_sort import adaptive_sample_sort
from repro.core.viewdata import ViewData, codec_for_order
from repro.core.views import View, canonical_view, view_name
from repro.mpi.comm import Comm
from repro.mpi.engine import Cluster, ClusterResult
from repro.mpi.errors import MPIError, RankHung, classify_failure
from repro.mpi.speed import HeteroState, RankSpeedModel
from repro.storage.external_sort import external_sort
from repro.storage.scan import aggregate_sorted_keys
from repro.storage.table import Relation

__all__ = ["CubeResult", "build_data_cube", "build_partial_cube", "split_even"]


# ---------------------------------------------------------------------------
# result type
# ---------------------------------------------------------------------------


@dataclass
class CubeResult:
    """A constructed (full or partial) data cube plus run metering."""

    #: Per-rank view pieces: ``rank_views[j][view]`` is rank ``j``'s slice.
    rank_views: list[dict[View, ViewData]]
    #: Global dimension cardinalities (schedule-tree index space).
    cardinalities: tuple[int, ...]
    #: Run metrics (simulated seconds, traffic, disk blocks, phases).
    metrics: RunResult
    #: Per-partition merge reports from every rank (rank 0's copy).
    merge_reports: list[MergeReport] = field(default_factory=list)
    #: Schedule trees used, one per partition (rank 0's copy).
    schedule_trees: list[ScheduleTree] = field(default_factory=list)
    #: The internal aggregate the stored measures carry ("sum" for COUNT
    #: cubes — see repro.core.aggregate.prepare_measure).
    agg: str = "sum"

    @property
    def views(self) -> list[View]:
        """All materialised view identifiers."""
        return sorted(self.rank_views[0], key=lambda v: (len(v), v))

    @property
    def view_count(self) -> int:
        return len(self.rank_views[0])

    def view_rows(self, view: View) -> int:
        """Total rows of one view across all ranks."""
        view = canonical_view(view)
        return sum(rv[view].nrows for rv in self.rank_views)

    def total_rows(self) -> int:
        """Total cube size in rows (the paper's headline output metric)."""
        return sum(self.view_rows(v) for v in self.rank_views[0])

    def view_relation(self, view: View) -> Relation:
        """Gather one view into a single relation (canonical column order)."""
        view = canonical_view(view)
        parts = [
            rv[view].to_relation(self.cardinalities) for rv in self.rank_views
        ]
        return Relation.concat(parts)

    def distribution(self, view: View) -> np.ndarray:
        """Per-rank row counts of a view (balance inspection)."""
        view = canonical_view(view)
        return np.array([rv[view].nrows for rv in self.rank_views])

    def describe(self) -> str:
        lines = [
            f"data cube: {self.view_count} views, {self.total_rows()} rows, "
            f"p={len(self.rank_views)}",
            f"  simulated time : {self.metrics.simulated_seconds:.2f} s",
            f"  communication  : {self.metrics.comm_bytes / 1e6:.2f} MB",
            f"  disk transfers : {self.metrics.disk_blocks} blocks",
        ]
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# data distribution helper
# ---------------------------------------------------------------------------


def split_even(relation: Relation, p: int) -> list[Relation]:
    """Split a relation into ``p`` contiguous chunks of near-equal size
    (the paper's input precondition: n/p records per processor)."""
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    n = relation.nrows
    base, rem = divmod(n, p)
    chunks = []
    start = 0
    for j in range(p):
        stop = start + base + (1 if j < rem else 0)
        chunks.append(relation.slice(start, stop))
        start = stop
    return chunks


# ---------------------------------------------------------------------------
# the SPMD rank program
# ---------------------------------------------------------------------------


def _rank_program(
    comm: Comm,
    chunks: Sequence[Relation],
    cards: tuple[int, ...],
    config: CubeConfig,
    selected: tuple[View, ...] | None,
    estimate_method: str,
    memory_budget: int,
    checkpoint_root: str | None = None,
    reshard: ReshardPlan | None = None,
    speed_prior: Sequence[float] | None = None,
):
    raw = chunks[comm.rank]
    d = len(cards)
    agg = config.agg
    out_views: dict[View, ViewData] = {}
    reports: list[MergeReport] = []
    trees: list[ScheduleTree] = []
    selected_set = None if selected is None else set(selected)
    prev_root: ViewData | None = None
    prev_i: int | None = None

    # Heterogeneity-aware partitioning: every iteration's sample sort
    # doubles as a throughput probe and refreshes the shared speed model;
    # a prior (from a previous attempt's metering) seeds the first
    # iteration's targets before any fresh measurement exists.
    hetero: HeteroState | None = None
    if config.hetero and comm.size > 1:
        prior = None
        if speed_prior is not None:
            prior = RankSpeedModel.from_rates(
                speed_prior, config.hetero_floor, config.hetero_ceil
            )
        hetero = HeteroState(
            comm.size,
            floor=config.hetero_floor,
            ceil=config.hetero_ceil,
            blend=config.hetero_blend,
            prior=prior,
        )

    # ---- Checkpoint/recovery prologue --------------------------------
    # With checkpointing on, every rank inspects its own chain, then all
    # ranks agree on the last iteration *everyone* completed (min across
    # ranks): iterations up to the resume point replay from local disk
    # with zero collectives, so the superstep schedule stays aligned.
    ckpt: RankCheckpoint | None = None
    resume = -1
    if checkpoint_root is not None:
        ckpt = RankCheckpoint(checkpoint_root, comm.rank)
        comm.set_phase("recovery")
        if reshard is None:
            resume = int(comm.allreduce(ckpt.last_complete(), "min"))
        else:
            # Degraded continuation: fold the dead ranks' checkpointed
            # state into this (new-numbering) rank's chain first, then
            # agree on the resume point as usual.
            resume = _reshard_resume(comm, ckpt, reshard)

    for ordinal, (i, root, pviews) in enumerate(partition_all(d, selected)):
        if ckpt is not None and ordinal <= resume:
            payload, rows = ckpt.load(ordinal)
            # Replaying the checkpoint is a real local-disk read; charge
            # it so recovery cost shows up in simulated time.
            comm.disk.charge_scan(rows)
            comm.disk.work.charge_scan(rows)
            out_views.update(payload["views"])
            reports.append(payload["report"])
            trees.append(payload["tree"])
            prev_root, prev_i = payload["root"], payload["root_i"]
            continue
        root_order = tuple(range(i, d))

        # ---- Step 1: data partitioning -------------------------------
        comm.set_phase(f"partition-sort[{i}]")
        if (
            config.incremental_roots
            and prev_root is not None
            and prev_i is not None
            and prev_i < i
        ):
            # Optimisation beyond the paper: this rank already holds a
            # piece of the global D(prev_i)-root; dropping its leading
            # dims and re-aggregating yields a valid local piece of the
            # Di-root (aggregation is associative), from far fewer rows
            # than the raw chunk.  remap() projects the packed keys in
            # pure int64 arithmetic — no (n, d) code materialisation.
            prev_codec = codec_for_order(prev_root.order, cards)
            codec = codec_for_order(root_order, cards)
            keys, _ = prev_codec.remap(
                prev_root.keys, prev_root.order, root_order
            )
            comm.disk.charge_scan(prev_root.nrows)
            comm.disk.work.charge_scan(prev_root.nrows)
            keys, measure = external_sort(
                keys, prev_root.measure, comm.disk, memory_budget,
                key_bound=codec.capacity,
            )
        else:
            codec = codec_for_order(root_order, cards)
            keys = codec.pack(raw.dims[:, i:d])
            comm.disk.charge_scan(raw.nrows)  # read the raw chunk
            comm.disk.work.charge_scan(raw.nrows)  # pack
            keys, measure = external_sort(
                keys, raw.measure, comm.disk, memory_budget,
                key_bound=codec.capacity,
            )
        comm.disk.work.charge_scan(keys.shape[0])
        keys, measure = aggregate_sorted_keys(keys, measure, agg)  # 1a
        outcome = adaptive_sample_sort(  # 1b
            comm, keys, measure, config.gamma_partition, hetero=hetero
        )
        comm.disk.work.charge_scan(outcome.keys.shape[0])
        keys, measure = aggregate_sorted_keys(  # 1c
            outcome.keys, outcome.measure, agg
        )
        root_data = ViewData(root_order, keys, measure)
        prev_root, prev_i = root_data, i

        # ---- Step 2: local Di-partition computation -------------------
        comm.set_phase(f"compute[{i}]")
        tree = _build_tree(
            comm, root, root_order, pviews, root_data, cards,
            config, selected_set, estimate_method,
        )
        local = execute_schedule(
            tree, root_data, cards, comm.disk, memory_budget, agg
        )
        if not config.global_schedule_tree and comm.size > 1:
            # Local schedule trees differ per rank, so view pieces land in
            # rank-specific sort orders; the merge needs one common order,
            # which forces a re-sort of every non-conforming view — the
            # exact overhead Figure 7 charges against this strategy.  (A
            # single rank has nothing to merge, hence nothing to re-sort.)
            comm.set_phase(f"resort[{i}]")
            local = {
                v: _to_canonical_order(
                    data, cards, comm.disk, memory_budget
                )
                for v, data in local.items()
            }
            tree = _canonical_tree_stub(root, root_order)

        # ---- Step 3: merge of local Di-partitions ---------------------
        comm.set_phase(f"merge[{i}]")
        wanted = {
            v: data
            for v, data in local.items()
            if selected_set is None or v in selected_set
        }
        merged, report = merge_partitions(
            comm, wanted, tree, config, memory_budget,
            speed=None if hetero is None else hetero.model,
        )
        for v, data in merged.items():
            comm.disk.charge_store(data.nrows)  # final materialisation
            out_views[v] = data
        reports.append(report)
        trees.append(tree)

        if ckpt is not None:
            # The Di iteration is a consistency point: partition sorted,
            # Ti pipes run, Procedure-3 merge done.  Persist this rank's
            # piece + meter snapshot so a failed later iteration resumes
            # here instead of from the raw data.
            comm.set_phase(f"checkpoint[{i}]")
            saved = ckpt.save(
                ordinal,
                i,
                {
                    "views": merged,
                    "root": prev_root,
                    "root_i": prev_i,
                    "report": report,
                    "tree": tree,
                },
                meters={
                    "disk": comm.disk.stats.snapshot(),
                    "work_seconds": comm.disk.work.seconds,
                    "phase": f"checkpoint[{i}]",
                },
            )
            comm.disk.charge_store(saved)
            comm.disk.work.charge_scan(saved)

    speed_dict = (
        hetero.model.to_dict()
        if hetero is not None and hetero.model is not None
        else None
    )
    return out_views, reports, trees, speed_dict


# ---------------------------------------------------------------------------
# elastic resume (degraded-mode recovery)
# ---------------------------------------------------------------------------


def _reshard_resume(
    comm: Comm, ckpt: RankCheckpoint, plan: ReshardPlan
) -> int:
    """Materialise this rank's resharded checkpoint prefix; return the
    global resume ordinal.

    Every new rank adopts one survivor chain from the failed epoch and a
    contiguous share of each dead rank's chain (the dead node's *disk*
    survived — disk-attached recovery).  The combined payloads are
    re-saved into this epoch's chain, so after this prologue the normal
    replay loop needs no knowledge of the reshard at all, and the next
    failure (of either kind) reshards from *this* epoch without touching
    the old one.  Idempotent: ordinals already present in the target
    chain are kept, and re-running the prologue reproduces identical
    payloads (pure slicing + deterministic merge).
    """
    own_src = RankCheckpoint(plan.source_root, plan.survivors[comm.rank])
    dead_chains = [RankCheckpoint(plan.source_root, r) for r in plan.dead]
    source_last = own_src.last_complete()
    for chain in dead_chains:
        source_last = min(source_last, chain.last_complete())
    local = max(ckpt.last_complete(), source_last)
    resume = int(comm.allreduce(local, "min"))
    for ordinal in range(ckpt.last_complete() + 1, resume + 1):
        _reshard_iteration(comm, ckpt, own_src, dead_chains, plan, ordinal)
    return resume


def _reshard_iteration(
    comm: Comm,
    ckpt: RankCheckpoint,
    own_src: RankCheckpoint,
    dead_chains: list[RankCheckpoint],
    plan: ReshardPlan,
    ordinal: int,
) -> None:
    """Re-save one iteration: survivor payload + dead-rank shares.

    All reads and the re-save are charged to this rank's disk meter —
    recovering a dead node's state is real I/O, and the simulation pays
    for it.  Reading a dead chain is charged in full (its disk was
    re-attached to this rank for the read), matching the shared-nothing
    model's recovery story.
    """
    payload, rows = own_src.load(ordinal)
    comm.disk.charge_scan(rows)
    comm.disk.work.charge_scan(rows)
    views = dict(payload["views"])
    extra: dict[View, list[ViewData]] = {}
    root_extra: list[ViewData] = []
    for chain in dead_chains:
        dead_payload, dead_rows = chain.load(ordinal)
        comm.disk.charge_scan(dead_rows)
        comm.disk.work.charge_scan(dead_rows)
        for v, data in dead_payload["views"].items():
            piece = _share_slice(
                data, comm.rank, plan.new_width, plan.weights
            )
            if piece.nrows:
                extra.setdefault(v, []).append(piece)
        dead_root = dead_payload.get("root")
        if dead_root is not None:
            piece = _share_slice(
                dead_root, comm.rank, plan.new_width, plan.weights
            )
            if piece.nrows:
                root_extra.append(piece)
    merged = {
        v: _merge_sorted_pieces([data, *extra.get(v, [])])
        for v, data in views.items()
    }
    root = payload.get("root")
    if root is not None and root_extra:
        root = _merge_sorted_pieces([root, *root_extra])
    entry = own_src.entry(ordinal)
    dim = int(entry.get("dim", 0)) if entry else 0
    saved = ckpt.save(
        ordinal,
        dim,
        {
            "views": merged,
            "root": root,
            "root_i": payload.get("root_i"),
            "report": payload.get("report"),
            "tree": payload.get("tree"),
        },
        meters={"phase": f"reshard[{dim}]"},
    )
    comm.disk.charge_store(saved)
    comm.disk.work.charge_scan(saved)


def _share_slice(
    data: ViewData,
    index: int,
    parts: int,
    weights: Sequence[float] | None = None,
) -> ViewData:
    """Contiguous share ``index`` of ``parts`` of one sorted piece
    (speed-weighted when the reshard plan carries survivor weights)."""
    lo, hi = share_bounds(data.nrows, parts, index, weights)
    return ViewData(data.order, data.keys[lo:hi], data.measure[lo:hi])


def _merge_sorted_pieces(pieces: list[ViewData]) -> ViewData:
    """Merge sorted, key-disjoint pieces of one view into one sorted piece.

    Pieces of a view held by different ranks after the Procedure-3 merge
    never share a group key (each group lives on exactly one rank), so
    the merge is a pure reorder — no aggregation — and is exact for every
    aggregate function.
    """
    head = pieces[0]
    live = [p for p in pieces if p.nrows]
    if len(live) <= 1:
        return live[0] if live else head
    keys = np.concatenate([p.keys for p in live])
    measure = np.concatenate([p.measure for p in live])
    order = np.argsort(keys, kind="stable")
    return ViewData(head.order, keys[order], measure[order])


def _to_canonical_order(
    data: ViewData,
    cards: tuple[int, ...],
    disk,
    memory_budget: int,
) -> ViewData:
    """Re-sort one view piece into its canonical attribute order.

    Keys stay unique (the piece was already aggregated), so no collapse is
    needed — only a packed-key remap plus the external sort, whose disk
    and CPU cost is precisely the local-tree penalty.  The remap reports
    the shared-prefix length: the sort runs through the segmented kernel
    on the prefix-clustering promise, and when the canonical order equals
    the pipeline order up to an already-sorted remap the kernel's
    single-pass presorted check skips the re-sort compute entirely
    (metering is unchanged either way).
    """
    canon = data.view
    if tuple(data.order) == canon:
        return data
    codec = codec_for_order(data.order, cards)
    canon_codec = codec_for_order(canon, cards)
    keys, shared = codec.remap(data.keys, tuple(data.order), canon)
    seg_divisor = None
    if 0 < shared < len(canon):
        seg_divisor = int(canon_codec.weights[shared - 1])
    disk.charge_scan(data.nrows)  # read the stored view back
    disk.work.charge_scan(data.nrows)
    keys, measure = external_sort(
        keys, data.measure, disk, memory_budget,
        key_bound=canon_codec.capacity, seg_divisor=seg_divisor,
    )
    disk.charge_store(data.nrows)  # re-write in the common order
    return ViewData(canon, keys, measure)


def _canonical_tree_stub(root: View, root_order: tuple[int, ...]) -> ScheduleTree:
    """Minimal tree carrying only the root order (what the merge reads)."""
    return ScheduleTree(root, root_order)


def _build_tree(
    comm: Comm,
    root: View,
    root_order: tuple[int, ...],
    pviews: Sequence[View],
    root_data: ViewData,
    cards: tuple[int, ...],
    config: CubeConfig,
    selected_set: set[View] | None,
    estimate_method: str,
) -> ScheduleTree:
    """Steps 2a/2b: schedule tree construction and (optional) broadcast."""
    build_locally = (not config.global_schedule_tree) or comm.rank == 0
    tree = None
    if build_locally:
        if selected_set is None:
            estimates = _estimate_sizes(
                root_data, root_order, cards, pviews, comm.size,
                estimate_method,
            )
            tree = build_schedule_tree(
                pviews, root, estimates, root_order,
                prefix_discount=config.sort_prefix_discount,
            )
        else:
            # Partial cube (Section 3): the scheduler of [4] produces
            # either a subtree of the full-cube Pipesort tree or a tree
            # built directly from the lattice — build both, keep the
            # cheaper under the same cost model.
            d = root[-1] + 1 if root else 0
            full_views = partition_views(root[0], d) if root else [()]
            estimates = _estimate_sizes(
                root_data, root_order, cards, full_views, comm.size,
                estimate_method,
            )
            wanted = [v for v in pviews if v != root]
            direct = build_partial_schedule_tree(
                wanted, root, estimates, root_order
            )
            full_tree = build_schedule_tree(
                full_views, root, estimates, root_order,
                prefix_discount=config.sort_prefix_discount,
            )
            pruned = prune_full_tree(full_tree, wanted)
            tree = min(
                (direct, pruned), key=lambda t: t.estimated_cost(estimates)
            )
    if config.global_schedule_tree:
        tree = comm.bcast(tree, root=0)
    return tree


def _estimate_sizes(
    root_data: ViewData,
    root_order: tuple[int, ...],
    cards: tuple[int, ...],
    pviews: Sequence[View],
    p: int,
    method: str,
) -> dict[View, float]:
    """View-size estimates from this rank's root chunk, extrapolated x p."""
    codec = codec_for_order(root_order, cards)
    dims = codec.unpack(root_data.keys)
    offset = root_order[0] if root_order else 0
    local_cards = [cards[i] for i in root_order]
    translated = [tuple(i - offset for i in v) for v in pviews]
    local = estimate_view_sizes(
        dims,
        local_cards,
        translated,
        total_rows=root_data.nrows * p,
        method=method,
    )
    return {
        tuple(i + offset for i in tv): size for tv, size in local.items()
    }


# ---------------------------------------------------------------------------
# public entry points
# ---------------------------------------------------------------------------

# Attempt-index offset for the backup lane of a speculative race: fault
# specs address attempts with ``a<attempt>``, so running the backup this
# far away keeps deterministic plans aimed at the primary retry from
# striking the speculated copy as well.
_SPECULATION_LANE = 1000


def _busy_rates(cluster) -> tuple[float, ...] | None:
    """Per-rank speeds inferred from a failed attempt's busy seconds.

    Uses the equal-work approximation speed ∝ 1/busy — coarse, but the
    value is only ever a *prior* that the clamp bounds and the next
    superstep's fresh measurement blends away.
    """
    busy = np.asarray(cluster.clock.rank_busy, dtype=np.float64)
    pos = busy > 1e-9
    if not pos.any():
        return None
    rates = np.empty_like(busy)
    rates[pos] = 1.0 / busy[pos]
    rates[~pos] = rates[pos].mean()
    return tuple(float(x) for x in rates)


def build_data_cube(
    relation: Relation,
    cardinalities: Sequence[int],
    spec: MachineSpec | None = None,
    config: CubeConfig | None = None,
    selected: Sequence[View] | None = None,
    estimate_method: str = "sample",
    disk_root: str | None = None,
    backend: str | None = None,
    faults=None,
    checkpoint_dir: str | None = None,
    recovery: RecoveryPolicy | None = None,
    audit: bool = False,
) -> CubeResult:
    """Construct the (full or partial) data cube of ``relation`` in parallel.

    Parameters
    ----------
    relation:
        The raw data set ``R`` (dimension codes + one measure column).
        Dimensions must be ordered by non-increasing cardinality, matching
        the paper's convention (the data generator emits this order).
    cardinalities:
        ``|Di|`` per dimension column.
    spec:
        Simulated machine; default :class:`MachineSpec` (p=4).
    config:
        Algorithm knobs (γ thresholds, schedule-tree strategy, aggregate).
    selected:
        Optional subset of views for a partial cube; ``None`` = all ``2^d``.
    estimate_method:
        View-size estimator fed to schedule-tree construction
        (``"sample"``, ``"fm"``, ``"analytic"``, ``"exact"``).
    disk_root:
        Directory for real spill files; ``None`` keeps virtual disks in
        memory (identical accounting).
    backend:
        Execution backend override (``"thread"`` or ``"process"``); ``None``
        keeps ``spec.backend``.  Metering is backend-independent — only
        ``host_seconds`` changes.
    faults:
        Optional :class:`~repro.mpi.faults.FaultPlan` injected into every
        attempt (deterministic crash/corruption/straggler/disk-full).
    checkpoint_dir:
        Directory for per-rank iteration checkpoints.  Each rank persists
        its merged view pieces + meter snapshot after every dimension
        iteration; a recovery attempt resumes from the last iteration all
        ranks completed instead of rebuilding from the raw data.
    recovery:
        :class:`~repro.config.RecoveryPolicy` enabling restart-on-failure.
        ``None`` (default) propagates the first failure unchanged.  The
        failed attempts' committed simulated time / traffic / disk blocks
        are folded into the returned metrics, so recovery cost is honest.
        With ``mode="degrade"`` a *permanent* rank loss (dead worker,
        injected crash) blacklists the rank: its checkpointed state is
        resharded across the survivors and the build continues at width
        p - k (see :class:`~repro.core.checkpoint.ReshardPlan`).
    audit:
        Run the post-build integrity audit (:func:`repro.core.audit.
        audit_cube`) and attach its summary to ``metrics.audit``.

    Returns
    -------
    :class:`CubeResult` — per-rank view pieces plus run metrics.
    """
    spec = spec or MachineSpec()
    if backend is not None:
        spec = spec.with_backend(backend)
    config = config or CubeConfig()
    cards = tuple(int(c) for c in cardinalities)
    if relation.width != len(cards):
        raise ValueError(
            f"relation has {relation.width} dimension columns but "
            f"{len(cards)} cardinalities were given"
        )
    if any(c < 1 for c in cards):
        raise ValueError(f"cardinalities must be >= 1: {cards}")
    if list(cards) != sorted(cards, reverse=True):
        raise ValueError(
            "dimensions must be ordered by non-increasing cardinality "
            f"(got {cards}); reorder the columns first"
        )
    if relation.nrows and relation.dims.size:
        if relation.dims.min() < 0 or (
            relation.dims >= np.asarray(cards)[None, :]
        ).any():
            raise ValueError("dimension codes outside [0, cardinality)")
    if selected is not None:
        selected = tuple(
            sorted({canonical_view(v) for v in selected}, key=lambda v: (len(v), v))
        )
        for v in selected:
            if v and max(v) >= len(cards):
                raise ValueError(f"selected view {view_name(v)} out of range")
        if not selected:
            raise ValueError("selected view set must not be empty")

    relation, internal_agg = prepare_measure(relation, config.agg)
    if internal_agg != config.agg:
        config = replace(config, agg=internal_agg)

    # Recovery loop.  Each attempt is a fresh cluster (fresh clock and
    # meters); a failed attempt's committed simulated time / traffic /
    # blocks are banked as "recovered_*" and folded into the final
    # metrics — the simulation honestly pays for re-execution, exactly as
    # the paper's cluster would.
    #
    # Failure handling splits by taxonomy (see classify_failure):
    # *transient* failures retry at the current width with exponential
    # backoff, *permanent* losses under RecoveryPolicy(mode="degrade")
    # blacklist the culprit rank and continue at reduced width (resharding
    # its checkpointed state across the survivors), and *fatal* ones —
    # operator interrupts first among them — propagate untouched.
    attempt = 0
    transient_streak = 0  # same-width failures since the last width change
    transient_total = 0
    recovered_seconds = 0.0
    recovered_bytes = 0
    recovered_blocks = 0
    width = spec.p
    epoch = 0
    ranks_lost: list[int] = []
    run_root = checkpoint_dir
    reshard: ReshardPlan | None = None
    speed_prior: tuple[float, ...] | None = None
    speculations = 0
    speculation_discards = 0

    def _attempt(att_width, att_index, att_root, att_reshard, att_prior):
        """One SPMD execution; returns (cluster, result-or-None, exc)."""
        run_spec = (
            spec if att_width == spec.p else spec.with_processors(att_width)
        )
        chunks = split_even(relation, att_width)
        args = (chunks, cards, config, selected, estimate_method,
                spec.memory_budget, att_root, att_reshard, att_prior)
        cluster = Cluster(
            run_spec, disk_root=disk_root, faults=faults, attempt=att_index
        )
        try:
            return cluster, cluster.run(_rank_program, args), None
        except (KeyboardInterrupt, SystemExit):
            # Operator interrupts are not rank failures: re-raise
            # immediately — never banked, never retried, and never
            # consulted against the recovery policy.
            raise
        except BaseException as e:
            return cluster, None, e

    def _bank(cluster, seconds=None):
        """Fold a failed/cancelled attempt's metering into the totals."""
        nonlocal recovered_seconds, recovered_bytes, recovered_blocks
        recovered_seconds += (
            cluster.clock.sim_time if seconds is None else seconds
        )
        recovered_bytes += cluster.stats.total_bytes
        recovered_blocks += sum(d.stats.blocks_total for d in cluster.disks)

    while True:
        cluster, result, exc = _attempt(
            width, attempt, run_root, reshard, speed_prior
        )
        if exc is None:
            break
        _bank(cluster)
        attempt += 1
        if recovery is None or not recovery.is_retryable(exc):
            raise exc
        if spec.backend == "process":
            # A crashed attempt can leak shm segments (a SIGKILLed
            # worker never reaches its plane teardown); reclaim them
            # before the retry allocates its arena.
            from repro.mpi import shm

            shm.sweep_orphans()
        kind, culprit = classify_failure(exc)
        # The failed attempt's per-rank busy seconds are a free speed
        # observation (speed ∝ 1/busy under near-equal work): feed them
        # back as the retry's prior, turning the failure signal into a
        # load-balancing input.
        observed = _busy_rates(cluster) if config.hetero else None
        if observed is not None:
            speed_prior = observed
        degrade = (
            recovery.mode == "degrade"
            and culprit is not None
            and 0 <= culprit < width
            and (
                kind == "permanent"
                or transient_streak >= recovery.max_retries
            )
        )
        speculate = (
            recovery.speculate
            and not degrade
            and isinstance(exc, RankHung)
            and culprit is not None
            and 0 <= culprit < width
            and run_root is not None
            and width - 1 >= max(recovery.min_ranks, 1)
        )
        if speculate:
            # Speculative straggler re-execution: race a full-width retry
            # (the straggler may have recovered) against a width-(p-1)
            # continuation that clones the straggler's checkpoint chain
            # onto the survivors.  Both candidates run to completion in
            # the simulation; the smaller simulated finish time wins, and
            # the loser is billed only up to the winner's finish — the
            # moment it would have been cancelled.  Its traffic and disk
            # transfers are banked in full (conservative: they were
            # committed before the cancel).
            speculations += 1
            survivors = [r for r in range(width) if r != culprit]
            spec_target = os.path.join(
                checkpoint_dir, f"epoch{epoch + 1:02d}-spec{attempt:02d}"
            )
            spec_weights = None
            backup_prior = None
            if observed is not None:
                backup = RankSpeedModel.from_rates(
                    observed, config.hetero_floor, config.hetero_ceil
                ).restrict(survivors)
                spec_weights = backup.shares
                backup_prior = backup.speeds
            spec_plan = ReshardPlan.after_loss(
                width, [culprit], run_root, spec_target,
                weights=spec_weights,
            )
            p_cluster, p_result, _p_exc = _attempt(
                width, attempt, run_root, reshard, speed_prior
            )
            # The backup runs in its own attempt lane so deterministic
            # fault plans aimed at the primary retry never strike it.
            b_cluster, b_result, _b_exc = _attempt(
                width - 1, attempt + _SPECULATION_LANE, spec_target,
                spec_plan, backup_prior,
            )
            attempt += 1  # the raced loser (the winner is _assemble's +1)
            if p_result is None and b_result is None:
                _bank(p_cluster)
                _bank(b_cluster)
                attempt += 1
                raise _p_exc
            p_sim = p_cluster.clock.sim_time
            b_sim = b_cluster.clock.sim_time
            # When both complete, keep the full-width result even if the
            # narrower clone's modelled finish is earlier: a recovered
            # rank stays in service for the rest of the run, so
            # decommissioning it to save one superstep's slack would be
            # a net loss.  The clone is the discarded duplicate.
            primary_wins = p_result is not None
            if p_result is not None and b_result is not None:
                # The straggler recovered mid-race: exactly one of the
                # two (bit-identical) results is kept, the duplicate
                # discarded.
                speculation_discards += 1
            loser = b_cluster if primary_wins else p_cluster
            winner_sim = p_sim if primary_wins else b_sim
            _bank(loser, seconds=min(loser.clock.sim_time, winner_sim))
            if primary_wins:
                result = p_result
            else:
                result = b_result
                ranks_lost.append(culprit)
                width -= 1
                epoch += 1
                run_root = spec_target
            recovered_seconds += recovery.backoff_for(
                attempt, seed=spec.seed
            )
            break
        if degrade:
            if width - 1 < max(recovery.min_ranks, 1):
                raise MPIError(
                    f"cannot degrade below min_ranks="
                    f"{recovery.min_ranks}: rank {culprit} lost at "
                    f"width {width}"
                ) from exc
            survivors = [r for r in range(width) if r != culprit]
            if run_root is not None:
                epoch += 1
                target = os.path.join(
                    checkpoint_dir, f"epoch{epoch:02d}"
                )
                weights = None
                if observed is not None:
                    weights = RankSpeedModel.from_rates(
                        observed, config.hetero_floor, config.hetero_ceil
                    ).restrict(survivors).shares
                reshard = ReshardPlan.after_loss(
                    width, [culprit], run_root, target, weights=weights
                )
                run_root = target
            else:
                reshard = None
            if observed is not None:
                speed_prior = tuple(
                    RankSpeedModel.from_rates(
                        observed, config.hetero_floor, config.hetero_ceil
                    ).restrict(survivors).speeds
                )
            ranks_lost.append(culprit)
            width -= 1
            transient_streak = 0  # fresh retry budget at the new width
        else:
            transient_streak += 1
            transient_total += 1
            if transient_streak > recovery.max_retries:
                raise exc
        recovered_seconds += recovery.backoff_for(attempt, seed=spec.seed)
    cube = _assemble(
        result,
        cards,
        config.agg,
        attempts=attempt + 1,
        recovered_seconds=recovered_seconds,
        recovered_bytes=recovered_bytes,
        recovered_blocks=recovered_blocks,
        final_width=width,
        ranks_lost=ranks_lost,
        transient_retries=transient_total,
        speculations=speculations,
        speculation_discards=speculation_discards,
    )
    if audit:
        from repro.core.audit import audit_cube

        cube.metrics.audit = audit_cube(cube, relation=relation).to_dict()
    return cube


def build_partial_cube(
    relation: Relation,
    cardinalities: Sequence[int],
    selected: Sequence[View],
    spec: MachineSpec | None = None,
    config: CubeConfig | None = None,
    **kwargs,
) -> CubeResult:
    """Convenience wrapper: :func:`build_data_cube` with a selected subset."""
    return build_data_cube(
        relation, cardinalities, spec=spec, config=config,
        selected=selected, **kwargs,
    )


def _assemble(
    cluster: ClusterResult,
    cards: tuple[int, ...],
    agg: str = "sum",
    attempts: int = 1,
    recovered_seconds: float = 0.0,
    recovered_bytes: int = 0,
    recovered_blocks: int = 0,
    final_width: int = 0,
    ranks_lost: list[int] | None = None,
    transient_retries: int = 0,
    speculations: int = 0,
    speculation_discards: int = 0,
) -> CubeResult:
    rank_views = [result[0] for result in cluster.rank_results]
    first = cluster.rank_results[0]
    reports = first[1]
    trees = first[2]
    speed_model = first[3] if len(first) > 3 else None
    output_rows = sum(
        data.nrows for rv in rank_views for data in rv.values()
    )
    metrics = RunResult(
        simulated_seconds=cluster.simulated_seconds + recovered_seconds,
        host_seconds=cluster.host_seconds,
        output_rows=output_rows,
        view_count=len(rank_views[0]),
        comm_bytes=cluster.stats.total_bytes + recovered_bytes,
        disk_blocks=cluster.total_disk_blocks() + recovered_blocks,
        phase_seconds=cluster.clock.phase_breakdown(),
        phase_comm_seconds=cluster.clock.phase_comm_breakdown(),
        superstep_log=list(cluster.clock.log),
        attempts=attempts,
        recovered_seconds=recovered_seconds,
        recovered_bytes=recovered_bytes,
        recovered_blocks=recovered_blocks,
        shm_pool=dict(cluster.shm_pool),
        ranks_lost=list(ranks_lost or []),
        final_width=final_width or len(rank_views),
        transient_retries=transient_retries,
        speed_model=speed_model,
        speculations=speculations,
        speculation_discards=speculation_discards,
        rank_busy_seconds=list(cluster.clock.rank_busy),
    )
    return CubeResult(
        rank_views=rank_views,
        cardinalities=cards,
        metrics=metrics,
        merge_reports=reports,
        schedule_trees=trees,
        agg=agg,
    )
