"""In-flight representation of a materialised view on one processor.

A view's rows live as **packed int64 keys** (see
:class:`repro.storage.codec.KeyCodec`) under the view's *sort order* — the
attribute permutation its schedule-tree pipeline produced — plus the
aggregated measure.  Keys keep every sort/merge/search in fast 1-D NumPy;
dimension columns are unpacked only at materialisation.

The order tuple lists raw-dataset dimension indices, most significant
first.  Two ranks holding the same view under the same (global) schedule
tree share the same order, which is precisely why the paper's global-tree
variant can merge without re-sorting.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.core.views import View, canonical_view
from repro.storage.codec import KeyCodec
from repro.storage.sortkernels import is_sorted_int64
from repro.storage.table import Relation

__all__ = ["ViewData", "codec_for_order"]


@lru_cache(maxsize=1024)
def _cached_codec(selected_cards: tuple[int, ...]) -> KeyCodec:
    return KeyCodec(selected_cards)


def codec_for_order(
    order: Sequence[int], cardinalities: Sequence[int]
) -> KeyCodec:
    """Key codec for an attribute permutation over the global dims.

    Cached on the *selected* cardinalities ``cards[i] for i in order`` —
    the only inputs the codec depends on — so codecs are shared across
    runs/datasets that differ in unused dimensions, and across distinct
    orders that select the same cardinality sequence.  The hot paths
    (``execute_schedule``, merge re-sorts, ``to_relation``) request the
    same handful of codecs thousands of times per run.  The returned
    codec is shared — treat it as immutable (its internal remap-plan
    cache keys on full src/dst orders, so sharing is safe).
    """
    return _cached_codec(
        tuple(int(cardinalities[int(i)]) for i in order)
    )


@dataclass
class ViewData:
    """One rank's piece of one view."""

    #: Attribute permutation (raw-dataset dimension indices).
    order: tuple[int, ...]
    #: Packed keys under ``codec_for_order(order, cards)``; sorted
    #: non-decreasing once the view is fully built.
    keys: np.ndarray
    #: Aggregated measure, parallel to ``keys``.
    measure: np.ndarray

    def __post_init__(self) -> None:
        self.order = tuple(int(i) for i in self.order)
        self.keys = np.asarray(self.keys, dtype=np.int64)
        self.measure = np.asarray(self.measure, dtype=np.float64)
        if self.keys.shape != self.measure.shape or self.keys.ndim != 1:
            raise ValueError(
                f"keys {self.keys.shape} / measure {self.measure.shape} "
                "must be parallel 1-D arrays"
            )

    @property
    def view(self) -> View:
        """The canonical view identifier this data belongs to."""
        return canonical_view(self.order)

    @property
    def nrows(self) -> int:
        return self.keys.shape[0]

    @property
    def nbytes(self) -> int:
        """Wire/storage size (used by the traffic meters)."""
        return self.keys.nbytes + self.measure.nbytes

    def is_sorted(self) -> bool:
        """Single-pass, early-exit sortedness check (no temporaries of
        ``nrows`` size — see :func:`repro.storage.sortkernels.is_sorted_int64`)."""
        return is_sorted_int64(self.keys)

    @staticmethod
    def empty(order: Sequence[int]) -> "ViewData":
        return ViewData(
            tuple(order),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )

    def to_relation(self, cardinalities: Sequence[int]) -> Relation:
        """Materialise as a relation with columns in canonical view order.

        The packed keys are unpacked under this view's order permutation,
        then columns are rearranged to the canonical identifier order
        (ascending dimension index = descending cardinality).
        """
        codec = codec_for_order(self.order, cardinalities)
        dims = codec.unpack(self.keys)
        canon = self.view
        col_of = {dim: pos for pos, dim in enumerate(self.order)}
        if len(canon) != len(self.order):
            raise ValueError(f"order {self.order} repeats a dimension")
        cols = [col_of[dim] for dim in canon]
        return Relation(dims[:, cols] if cols else dims, self.measure)
