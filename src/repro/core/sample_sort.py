"""Procedure 2: Adaptive-Sample-Sort.

Parallel sort by regular sampling (Li et al. [14]) with the paper's
adaptive twist: after the single h-relation that redistributes data by
global pivots, the per-rank sizes are inspected and a second "global
shift" h-relation is performed **only** when the relative imbalance

    I(y0..yp-1) = max((ymax - yavg)/yavg, (yavg - ymin)/yavg)

exceeds the threshold ``γ`` (1% during data partitioning, 3% inside the
merge's case-3 re-sorts).

Rows here are ``(key, measure)`` pairs with packed int64 keys; keys are
**not** required to be unique.  Bucketing uses ``searchsorted(...,
side="right")``, so every rank maps a given key value to the same bucket —
equal keys never straddle ranks after the first h-relation (the property
that lets the caller fully aggregate locally).  The global shift, when
triggered, splits by *position* instead and may re-split ties; callers that
aggregate afterwards handle boundary duplicates in the merge phase, exactly
as the paper's pipeline does.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce

import numpy as np

from repro.mpi.comm import Comm
from repro.mpi.speed import HeteroState, RankSpeedModel
from repro.storage.disk import LocalDisk
from repro.storage.external_sort import external_sort
from repro.storage.scan import aggregate_sorted_keys, merge_sorted
from repro.storage.sortkernels import sort_pairs

__all__ = ["SortOutcome", "adaptive_sample_sort", "relative_imbalance"]


def relative_imbalance(
    sizes: np.ndarray, targets: np.ndarray | None = None
) -> float:
    """The paper's ``I(y0..yp-1)``; 0 for an empty or single-rank vector.

    With ``targets`` (non-uniform speed-proportional row goals) the
    measure generalises to ``max_j |y_j - t_j| / yavg`` — identical to the
    paper's formula when every target equals the mean, so the γ contract
    is unchanged for homogeneous runs.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    if sizes.size <= 1:
        return 0.0
    avg = sizes.mean()
    if avg == 0:
        return 0.0
    if targets is None:
        return float(
            max((sizes.max() - avg) / avg, (avg - sizes.min()) / avg)
        )
    t = np.asarray(targets, dtype=np.float64)
    return float(np.abs(sizes - t).max() / avg)


def _select_pivots(
    pool: np.ndarray,
    p: int,
    rho: int,
    shares: np.ndarray | None = None,
) -> np.ndarray:
    """p-1 global pivots at pool ranks ``j·p + rho`` (clamped).

    With ``shares`` (speed-proportional bucket fractions summing to 1)
    the pivots move to the pool's cumulative-share quantiles
    ``⌊cum_j·|pool|⌋ + rho`` instead — which reduces exactly to the
    uniform ``j·p + rho`` when the shares are equal and the pool holds
    the full p² sample.

    An empty pool (every rank empty) degenerates to zero-valued pivots so
    the bucketing step still produces ``p`` (empty) lanes.
    """
    if pool.size == 0:
        return np.zeros(p - 1, dtype=np.int64)
    if shares is None:
        idx = np.arange(1, p, dtype=np.int64) * p + rho
    else:
        cum = np.cumsum(np.asarray(shares, dtype=np.float64))[:-1]
        idx = np.floor(cum * pool.size).astype(np.int64) + rho
    idx = np.clip(idx, 0, pool.size - 1)
    return pool[idx]


@dataclass
class SortOutcome:
    """Result of one Adaptive-Sample-Sort call on one rank."""

    keys: np.ndarray
    measure: np.ndarray
    #: Relative imbalance after the first h-relation.
    imbalance: float
    #: Whether the global shift (second h-relation) ran.
    shifted: bool
    #: The speed model the call used/updated (``None`` when hetero off).
    speed: RankSpeedModel | None = None


def adaptive_sample_sort(
    comm: Comm,
    keys: np.ndarray,
    measure: np.ndarray,
    gamma: float,
    disk: LocalDisk | None = None,
    memory_budget: int | None = None,
    pivot_offset: int | None = None,
    kernel: str | None = None,
    key_bound: int | None = None,
    hetero: HeteroState | None = None,
) -> SortOutcome:
    """Globally sort ``(keys, measure)`` rows across all ranks.

    Every rank passes its local rows and receives its slice of the global
    key order; slices are contiguous and ascending with rank.  When
    ``disk``/``memory_budget`` are given, the initial local sort runs
    through the external-memory sorter (charging block I/O); otherwise it
    sorts in memory.

    Follows Procedure 2 step by step; see the module docstring for the
    duplicate-key bucketing contract.

    ``pivot_offset`` is the ρ of the global-pivot ranks ``j·p + ρ`` in the
    sorted p² sample pool.  ``None`` uses the paper's ``⌊p/2⌋`` (the PSRS
    worst-case-centering choice, right for arbitrary input such as the
    data-partitioning phase).  Pass ``0`` when the input is already nearly
    globally sorted — the merge phase's case-3 re-sorts — because the
    ``⌊p/2⌋`` offset then lands every pivot mid-bucket and needlessly moves
    ~half of all rows between ranks.

    ``kernel``/``key_bound`` are forwarded to the local-sort kernel
    (:func:`repro.storage.sortkernels.sort_pairs`); they change host
    wall-clock only — output and metering are kernel-invariant.

    ``hetero`` enables heterogeneity-aware partitioning: the local-sort
    phase doubles as a throughput probe (rows processed over the rank's
    busy seconds since its last collective), the per-rank samples are
    allgathered so every rank derives the identical updated
    :class:`~repro.mpi.speed.RankSpeedModel`, and the global pivots /
    balance targets shift to that model's clamped speed-proportional
    shares instead of uniform ``n/p``.
    """
    p = comm.size
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    measure = np.ascontiguousarray(measure, dtype=np.float64)
    if keys.shape != measure.shape:
        raise ValueError("keys and measure must be parallel arrays")
    n_input = keys.shape[0]
    busy0 = comm.clock.rank_busy[comm.rank] if hetero is not None else 0.0

    # Step 1: local sort + p local pivots at ranks 0, n/p, ..., (p-1)n/p.
    if disk is not None and memory_budget is not None:
        keys, measure = external_sort(
            keys, measure, disk, memory_budget,
            kernel=kernel, key_bound=key_bound,
        )
    else:
        comm.disk.work.charge_sort(keys.shape[0])
        keys, measure = sort_pairs(keys, measure, kernel, key_bound=key_bound)
    n_local = keys.shape[0]
    if n_local:
        pivot_idx = (np.arange(p, dtype=np.int64) * n_local) // p
        local_pivots = keys[pivot_idx]
    else:
        local_pivots = keys[:0]
    gathered = comm.gather(local_pivots, root=0)

    # Throughput probe: the pivot gather's superstep commit has folded
    # the local-sort segment into rank_busy, so the delta since call
    # entry is this rank's busy time for ~n_input rows of local work.
    # One extra cheap allgather publishes every rank's sample; all ranks
    # fold them into the same model, so the pivot targets below agree
    # everywhere without further coordination.
    speed: RankSpeedModel | None = None
    if hetero is not None:
        busy = comm.clock.rank_busy[comm.rank] - busy0
        samples = comm.allgather((int(n_input), float(busy)))
        speed = hetero.observe(samples)
    shares = None if speed is None else np.asarray(speed.shares)

    # Step 2: P0 sorts the <= p^2 pivots and picks p-1 regularly spaced
    # global pivots (ranks p + p/2, 2p + p/2, ...), or the clamped
    # speed-share quantiles when a speed model is active.
    rho = p // 2 if pivot_offset is None else int(pivot_offset)
    if comm.rank == 0:
        pool = np.sort(np.concatenate(gathered)) if gathered else keys[:0]
        global_pivots = _select_pivots(pool, p, rho, shares)
    else:
        global_pivots = None
    global_pivots = comm.bcast(global_pivots, root=0)

    # Step 3: bucket local rows by the global pivots.  side="right" sends a
    # key equal to pivot k into bucket k, identically on every rank.
    cuts = np.searchsorted(keys, global_pivots, side="right")
    bounds = np.concatenate(([0], cuts, [n_local]))

    # Step 4: one h-relation.
    lanes = [
        (keys[bounds[k] : bounds[k + 1]], measure[bounds[k] : bounds[k + 1]])
        for k in range(p)
    ]
    received = comm.alltoall(lanes)

    # Step 5: local p-way merge of the received sorted pieces.
    pieces = [(rk, rm) for rk, rm in received if rk.shape[0]]
    comm.disk.work.charge_scan(sum(rk.shape[0] for rk, _ in pieces))
    if pieces:
        keys, measure = reduce(
            lambda acc, piece: merge_sorted(acc[0], acc[1], piece[0], piece[1]),
            pieces[1:],
            pieces[0],
        )
        keys = np.ascontiguousarray(keys)
        measure = np.ascontiguousarray(measure)
    else:
        keys, measure = keys[:0], measure[:0]

    # Step 6: imbalance check (against uniform or speed-proportional
    # targets) and optional global shift.
    sizes = np.asarray(comm.allgather(keys.shape[0]), dtype=np.int64)
    targets = None if speed is None else speed.counts(int(sizes.sum()))
    imbalance = relative_imbalance(sizes, targets)
    shifted = False
    if imbalance > gamma:
        keys, measure = _global_shift(comm, keys, measure, sizes, targets)
        shifted = True
    return SortOutcome(keys, measure, imbalance, shifted, speed)


def batched_sample_sort(
    comm: Comm,
    items: list[tuple[np.ndarray, np.ndarray]],
    gamma: float,
    pivot_offset: int | None = None,
    agg: str | None = None,
    kernel: str | None = None,
    speed: RankSpeedModel | None = None,
) -> list[SortOutcome]:
    """Adaptive-Sample-Sort of many independent arrays in one superstep set.

    Runs Procedure 2 for every ``(keys, measure)`` item *simultaneously*:
    each item keeps its own pivots, its own imbalance test and its own
    (optional) global shift, but all items share the same five collectives
    — one pivot gather, one pivot broadcast, one data h-relation, one size
    allgather and (when any item needs it) one shift h-relation.  With
    hundreds of case-3 views per merge phase this removes the per-view
    latency that would otherwise dominate the BSP clock, without changing
    what any single view experiences.

    When ``agg`` is given, every item is collapse-aggregated right after
    the local merge, *before* the balance test — the γ contract then
    applies to the stored (post-aggregation) rows, which is what the
    paper's "each view evenly distributed" output condition is about.
    Value-bucketing guarantees each key lives on one rank at that point,
    so the positional shift can never split a group.

    ``kernel`` forces the local-sort kernel for every item — the merge's
    case-3 caller passes ``"presorted"`` because its pieces are sorted
    view slices, turning step 1 into a single early-exit scan per item.

    ``speed`` applies an already-published
    :class:`~repro.mpi.speed.RankSpeedModel` to every item's pivots and
    balance targets (no probing here: the batched call rides inside the
    merge phase, whose model was measured during partitioning).
    """
    p = comm.size
    n_items = len(items)
    if n_items == 0:
        return []
    shares = None if speed is None else np.asarray(speed.shares)

    # Step 1: local sorts + per-item local pivots.
    sorted_items: list[tuple[np.ndarray, np.ndarray]] = []
    pivot_lists: list[np.ndarray] = []
    for keys, measure in items:
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        measure = np.ascontiguousarray(measure, dtype=np.float64)
        comm.disk.work.charge_sort(keys.shape[0])
        keys, measure = sort_pairs(keys, measure, kernel)
        sorted_items.append((keys, measure))
        n_local = keys.shape[0]
        if n_local:
            idx = (np.arange(p, dtype=np.int64) * n_local) // p
            pivot_lists.append(keys[idx])
        else:
            pivot_lists.append(keys[:0])
    gathered = comm.gather(pivot_lists, root=0)

    # Step 2: per-item global pivots at P0, one broadcast.
    rho = p // 2 if pivot_offset is None else int(pivot_offset)
    if comm.rank == 0:
        all_pivots = []
        for item in range(n_items):
            pool = np.sort(
                np.concatenate([ranks[item] for ranks in gathered])
            )
            all_pivots.append(_select_pivots(pool, p, rho, shares))
    else:
        all_pivots = None
    all_pivots = comm.bcast(all_pivots, root=0)

    # Steps 3+4: bucket every item, ship all buckets in one h-relation.
    lanes: list[list[tuple[np.ndarray, np.ndarray]]] = [[] for _ in range(p)]
    for (keys, measure), pivots in zip(sorted_items, all_pivots):
        cuts = np.searchsorted(keys, pivots, side="right")
        bounds = np.concatenate(([0], cuts, [keys.shape[0]]))
        for k in range(p):
            lanes[k].append(
                (keys[bounds[k] : bounds[k + 1]],
                 measure[bounds[k] : bounds[k + 1]])
            )
    received = comm.alltoall(lanes)

    # Step 5: per-item local merge; one allgather of all sizes.
    merged: list[tuple[np.ndarray, np.ndarray]] = []
    for item in range(n_items):
        pieces = [
            received[j][item]
            for j in range(p)
            if received[j][item][0].shape[0]
        ]
        comm.disk.work.charge_scan(sum(k.shape[0] for k, _ in pieces))
        if pieces:
            keys, measure = reduce(
                lambda acc, piece: merge_sorted(
                    acc[0], acc[1], piece[0], piece[1]
                ),
                pieces[1:],
                pieces[0],
            )
            keys = np.ascontiguousarray(keys)
            measure = np.ascontiguousarray(measure)
            if agg is not None:
                keys, measure = aggregate_sorted_keys(keys, measure, agg)
            merged.append((keys, measure))
        else:
            merged.append(
                (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
            )
    my_sizes = np.array([k.shape[0] for k, _ in merged], dtype=np.int64)
    all_sizes = np.vstack(comm.allgather(my_sizes))  # (p, n_items)

    # Step 6: joint global shift for every item over its threshold.
    item_targets: list[np.ndarray | None]
    if speed is None:
        item_targets = [None] * n_items
    else:
        item_targets = [
            speed.counts(int(all_sizes[:, item].sum()))
            for item in range(n_items)
        ]
    imbalances = [
        relative_imbalance(all_sizes[:, item], item_targets[item])
        for item in range(n_items)
    ]
    need_shift = [item for item in range(n_items) if imbalances[item] > gamma]
    outcomes: list[SortOutcome | None] = [None] * n_items
    if need_shift:
        shift_lanes: list[list[tuple[np.ndarray, np.ndarray]]] = [
            [] for _ in range(p)
        ]
        plans = []
        for item in need_shift:
            keys, measure = merged[item]
            sizes = all_sizes[:, item]
            total = int(sizes.sum())
            if item_targets[item] is None:
                base, rem = divmod(total, p)
                target_counts = np.full(p, base, dtype=np.int64)
                target_counts[:rem] += 1
            else:
                target_counts = item_targets[item]
            target_ends = np.cumsum(target_counts)
            target_starts = target_ends - target_counts
            my_start = int(sizes[: comm.rank].sum())
            global_pos = my_start + np.arange(keys.shape[0], dtype=np.int64)
            plans.append((item, target_starts, target_ends, global_pos))
            for k in range(p):
                lo = np.searchsorted(global_pos, target_starts[k], "left")
                hi = np.searchsorted(global_pos, target_ends[k], "left")
                shift_lanes[k].append((keys[lo:hi], measure[lo:hi]))
        shifted_in = comm.alltoall(shift_lanes)
        for slot, (item, _, _, _) in enumerate(plans):
            keys = np.concatenate(
                [shifted_in[j][slot][0] for j in range(p)]
            )
            measure = np.concatenate(
                [shifted_in[j][slot][1] for j in range(p)]
            )
            merged[item] = (keys, measure)
    for item in range(n_items):
        keys, measure = merged[item]
        outcomes[item] = SortOutcome(
            keys, measure, imbalances[item], item in set(need_shift)
        )
    return outcomes  # type: ignore[return-value]


def _global_shift(
    comm: Comm,
    keys: np.ndarray,
    measure: np.ndarray,
    sizes: np.ndarray,
    target_counts: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Rebalance a globally sorted distribution to the target counts.

    Rows occupy global positions ``offset_j .. offset_j + y_j`` on rank
    ``j``; the default target layout gives each rank ``total/p`` rows
    (remainder on the lowest ranks), while a speed model passes its
    clamped proportional ``target_counts`` instead.  One h-relation routes
    every row to the rank owning its global position; received pieces
    concatenate in source-rank order, which *is* global order.
    """
    p = comm.size
    total = int(sizes.sum())
    if target_counts is None:
        base, rem = divmod(total, p)
        target_counts = np.full(p, base, dtype=np.int64)
        target_counts[:rem] += 1
    target_ends = np.cumsum(target_counts)
    target_starts = target_ends - target_counts

    my_start = int(sizes[: comm.rank].sum())
    n_local = keys.shape[0]
    global_pos = my_start + np.arange(n_local, dtype=np.int64)
    lanes = []
    for k in range(p):
        lo = np.searchsorted(global_pos, target_starts[k], side="left")
        hi = np.searchsorted(global_pos, target_ends[k], side="left")
        lanes.append((keys[lo:hi], measure[lo:hi]))
    received = comm.alltoall(lanes)
    out_k = np.concatenate([rk for rk, _ in received])
    out_m = np.concatenate([rm for _, rm in received])
    return out_k, out_m
