"""Post-build integrity audit of a constructed data cube.

Recovery — and especially *degraded-mode* recovery, which reshards a dead
rank's checkpointed rows across the survivors mid-build — must never be
taken on faith: :func:`audit_cube` re-derives invariants every correct
cube satisfies and reports which hold.  The checks are pure reads over
the finished cube (no simulation state), so the audit can run after any
build, clean or recovered:

``view-totals``
    Every SUM view aggregates *all* raw rows, so its measure total equals
    the raw relation's measure total.  COUNT cubes are stored as SUM over
    a ones-measure (see :mod:`repro.core.aggregate`), so the same check
    verifies per-view COUNT totals equal the raw row count.  Skipped for
    MIN/MAX cubes, whose totals are not invariant across group sizes.
``row-monotonicity``
    Dropping a dimension can only merge groups: a child view (one fewer
    dimension) never has more rows than its parent, and no view has more
    rows than the raw relation.
``key-uniqueness``
    After the Procedure-3 merge each group key of a view lives on exactly
    one rank; duplicate keys across rank pieces mean a broken merge or a
    bad reshard split.
``piece-order``
    Every rank piece is sorted non-decreasing in its packed keys — the
    invariant all downstream scans and merges rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.viewdata import codec_for_order
from repro.core.views import view_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cube import CubeResult
    from repro.storage.table import Relation

__all__ = ["AuditCheck", "AuditReport", "audit_cube"]

#: Relative tolerance for measure-total comparisons.  Degraded builds
#: re-group float partial sums, so exact equality only holds for
#: integer-valued measures; for general floats this bounds the allowed
#: associativity drift.
_REL_TOL = 1e-9


@dataclass
class AuditCheck:
    """Outcome of one audit invariant."""

    name: str
    ok: bool
    detail: str = ""


@dataclass
class AuditReport:
    """All audit outcomes for one cube."""

    checks: list[AuditCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def issues(self) -> list[str]:
        return [f"{c.name}: {c.detail}" for c in self.checks if not c.ok]

    def to_dict(self) -> dict:
        """JSON-friendly summary (stored on ``RunResult.audit``)."""
        return {
            "ok": self.ok,
            "checks": {c.name: c.ok for c in self.checks},
            "issues": self.issues,
        }

    def summary(self) -> str:
        if self.ok:
            return f"audit: OK ({len(self.checks)} checks)"
        return "audit: FAILED (" + "; ".join(self.issues) + ")"


def audit_cube(
    cube: "CubeResult", relation: "Relation | None" = None
) -> AuditReport:
    """Run every integrity check against ``cube``.

    ``relation`` is the raw input (measure already prepared — for COUNT
    cubes a ones column); when given, view totals are checked against the
    raw total and row counts against the raw row count.  Without it the
    totals check compares views against each other (the finest view
    stands in for the raw total).
    """
    report = AuditReport()
    views = cube.views
    rows = {v: cube.view_rows(v) for v in views}

    # -- view totals ------------------------------------------------------
    if cube.agg == "sum":
        totals = {
            v: float(
                sum(float(rv[v].measure.sum()) for rv in cube.rank_views)
            )
            for v in views
        }
        if relation is not None:
            expected = float(np.asarray(relation.measure).sum())
        else:
            finest = max(views, key=len)
            expected = totals[finest]
        scale = max(abs(expected), 1.0)
        bad = [
            f"{view_name(v)}={totals[v]!r} (expected {expected!r})"
            for v in views
            if abs(totals[v] - expected) > _REL_TOL * scale
        ]
        report.checks.append(
            AuditCheck(
                "view-totals",
                not bad,
                "; ".join(bad[:4]) + ("..." if len(bad) > 4 else ""),
            )
        )
    else:
        report.checks.append(
            AuditCheck(
                "view-totals",
                True,
                f"skipped: totals are not invariant under {cube.agg!r}",
            )
        )

    # -- row-count monotonicity up the lattice ----------------------------
    viewset = set(views)
    bad = []
    for parent in views:
        for drop in range(len(parent)):
            child = parent[:drop] + parent[drop + 1:]
            if child in viewset and rows[child] > rows[parent]:
                bad.append(
                    f"{view_name(child)} has {rows[child]} rows > parent "
                    f"{view_name(parent)} with {rows[parent]}"
                )
    if relation is not None:
        nraw = int(relation.nrows)
        bad.extend(
            f"{view_name(v)} has {rows[v]} rows > {nraw} raw rows"
            for v in views
            if rows[v] > nraw
        )
    report.checks.append(
        AuditCheck(
            "row-monotonicity",
            not bad,
            "; ".join(bad[:4]) + ("..." if len(bad) > 4 else ""),
        )
    )

    # -- no duplicate group keys across rank pieces -----------------------
    bad = []
    for v in views:
        keys = _canonical_keys(cube, v)
        if keys.size != np.unique(keys).size:
            dupes = keys.size - np.unique(keys).size
            bad.append(
                f"{view_name(v)} has {dupes} duplicate group key(s) "
                "across rank pieces"
            )
    report.checks.append(
        AuditCheck(
            "key-uniqueness",
            not bad,
            "; ".join(bad[:4]) + ("..." if len(bad) > 4 else ""),
        )
    )

    # -- every piece sorted ----------------------------------------------
    bad = [
        f"rank {j} piece of {view_name(v)} is not sorted"
        for v in views
        for j, rv in enumerate(cube.rank_views)
        if not rv[v].is_sorted()
    ]
    report.checks.append(
        AuditCheck(
            "piece-order",
            not bad,
            "; ".join(bad[:4]) + ("..." if len(bad) > 4 else ""),
        )
    )
    return report


def _canonical_keys(cube: "CubeResult", view) -> np.ndarray:
    """All ranks' packed keys of one view, remapped to canonical order."""
    parts = []
    for rv in cube.rank_views:
        data = rv[view]
        if not data.nrows:
            continue
        if tuple(data.order) == tuple(view):
            parts.append(data.keys)
        else:
            codec = codec_for_order(data.order, cube.cardinalities)
            keys, _ = codec.remap(data.keys, tuple(data.order), tuple(view))
            parts.append(keys)
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)
