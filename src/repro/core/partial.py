"""Schedule trees for partial data cubes (Section 3 of the paper).

When only a user-selected subset of views is wanted, the level-complete
Pipesort matcher no longer applies (levels may be missing entirely).  The
paper swaps in the partial-cube scheduler of Dehne, Eavis and Rau-Chaplin
[4], which either prunes a full Pipesort tree or builds a schedule tree
directly from the lattice, inserting cheap *intermediate* views where that
lowers total cost.  This module reproduces the direct-from-lattice variant
as a documented heuristic:

1. **Attach.**  Selected views, largest first, attach to the cheapest
   producer already in the tree (initially just the ``Di``-root), with
   re-sort cost ``sort_cost(|producer|)``.
2. **Intermediates.**  Repeatedly consider every non-selected view ``w``
   of the partition: adding ``w`` costs one re-sort of its own cheapest
   producer but lets all current tree views below ``w`` re-parent to it.
   Any ``w`` with positive net saving is inserted (best first); repeat
   until no insertion helps.
3. **Scan upgrades.**  Each node may pass one child for free inside its
   pipeline; pick the child with the largest saving.  Along the root's
   scan chain the child must stay a canonical prefix of the root's fixed
   global sort order (same pinning rule as the full-cube matcher).

The pruned-Pipesort variant is available as
:func:`prune_full_tree` for comparison benches.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.lattice import Lattice
from repro.core.pipesort import (
    ScheduleTree,
    build_schedule_tree,
    scan_cost,
    sort_cost,
)
from repro.core.views import View, canonical_view, view_name

__all__ = ["build_partial_schedule_tree", "prune_full_tree"]

#: Safety bound on intermediate-insertion sweeps.
_MAX_IMPROVEMENT_PASSES = 8


def build_partial_schedule_tree(
    selected: Sequence[View],
    root: View,
    estimates: Mapping[View, float],
    root_order: tuple[int, ...] | None = None,
    candidates: Sequence[View] | None = None,
) -> ScheduleTree:
    """Build a schedule tree covering ``selected`` from ``root``.

    Parameters
    ----------
    selected:
        Views to materialise (the root itself may or may not be among
        them; it is always available as the source).
    root:
        The partition root (already materialised by the data-partitioning
        phase).
    estimates:
        Estimated sizes; views without an entry default to size 1.
    root_order:
        Root's fixed sort order (global sort order); default canonical.
    candidates:
        Pool of potential intermediate views; defaults to every proper
        subset of ``root``.
    """
    root = canonical_view(root)
    if root_order is None:
        root_order = root
    root_order = tuple(root_order)
    selected = [canonical_view(v) for v in selected]
    for v in selected:
        if not set(v) <= set(root):
            raise ValueError(
                f"selected view {view_name(v)} is not a subset of the root "
                f"{view_name(root)}"
            )
    if candidates is None:
        d = (max(root) + 1) if root else 0
        candidates = Lattice.below(root, d).views
    size = lambda v: max(estimates.get(v, 1.0), 1.0)  # noqa: E731

    # parent[v] = current producer of v; tree contents = parent.keys() | {root}
    parent: dict[View, View] = {}
    in_tree: set[View] = {root}

    def cheapest_producer(v: View) -> tuple[View, float]:
        best, best_cost = None, float("inf")
        for u in in_tree:
            if set(v) < set(u):
                cost = sort_cost(size(u))
                if cost < best_cost or (
                    cost == best_cost and (best is None or u < best)
                ):
                    best, best_cost = u, cost
        if best is None:
            raise ValueError(f"no producer available for {view_name(v)}")
        return best, best_cost

    # 1. attach selected views, largest first (so big views become producers
    #    for smaller ones where that is cheaper than the root).
    for v in sorted(set(selected) - {root}, key=lambda v: (-len(v), v)):
        u, _ = cheapest_producer(v)
        parent[v] = u
        in_tree.add(v)

    # 2. beneficial-intermediate insertion sweeps.
    pool = [
        canonical_view(w)
        for w in candidates
        if canonical_view(w) not in in_tree and canonical_view(w) != root
    ]
    for _ in range(_MAX_IMPROVEMENT_PASSES):
        best_gain, best_w, best_moves = 0.0, None, None
        for w in pool:
            if w in in_tree:
                continue
            wset = set(w)
            moves = [
                v
                for v, u in parent.items()
                if set(v) < wset and sort_cost(size(u)) > sort_cost(size(w))
            ]
            if not moves:
                continue
            saving = sum(
                sort_cost(size(parent[v])) - sort_cost(size(w)) for v in moves
            )
            _, build_cost = cheapest_producer(w)
            gain = saving - build_cost
            if gain > best_gain:
                best_gain, best_w, best_moves = gain, w, moves
        if best_w is None:
            break
        u, _ = cheapest_producer(best_w)
        parent[best_w] = u
        in_tree.add(best_w)
        for v in best_moves:
            parent[v] = best_w

    # 3. scan upgrades (one per node; root chain stays prefix-pinned).
    children: dict[View, list[View]] = {}
    for v, u in parent.items():
        children.setdefault(u, []).append(v)
    scan_child: dict[View, View] = {}
    pinned: dict[View, tuple[int, ...]] = {root: root_order}
    frontier = [root]
    while frontier:
        u = frontier.pop()
        kids = children.get(u, [])
        frontier.extend(kids)
        pin = pinned.get(u)
        best_gain, best_c = 0.0, None
        for c in kids:
            if pin is not None and set(c) != set(pin[: len(c)]):
                continue
            gain = sort_cost(size(u)) - scan_cost(size(u))
            if gain > best_gain or (gain == best_gain and best_c is None):
                best_gain, best_c = gain, c
        if best_c is not None:
            scan_child[u] = best_c
            if pin is not None:
                pinned[best_c] = pin[: len(best_c)]

    # materialise the ScheduleTree in topological (parents first) order.
    tree = ScheduleTree(root, root_order)
    order = sorted(parent, key=lambda v: (-len(v), v))
    for v in order:
        u = parent[v]
        mode = "scan" if scan_child.get(u) == v else "sort"
        tree.add(v, u, mode)
    tree.assign_orders()
    return tree


def prune_full_tree(
    full_tree: ScheduleTree, selected: Sequence[View]
) -> ScheduleTree:
    """The paper's other option: a subtree of the full-cube Pipesort tree.

    Keeps every selected view plus all its tree ancestors (the paths it
    needs), preserving edge modes; unneeded branches are dropped.  The kept
    non-selected ancestors are the "intermediate" views of this variant.
    """
    selected = {canonical_view(v) for v in selected}
    keep: set[View] = {full_tree.root}
    for v in selected:
        if v not in full_tree.nodes:
            raise ValueError(f"{view_name(v)} not in the full schedule tree")
        cur: View | None = v
        while cur is not None and cur not in keep:
            keep.add(cur)
            cur = full_tree.nodes[cur].parent

    root_node = full_tree.nodes[full_tree.root]
    pruned = ScheduleTree(full_tree.root, root_node.order)
    for node in full_tree.preorder():
        if node.view == full_tree.root:
            continue
        if node.view in keep:
            pruned.add(node.view, node.parent, node.mode)
    pruned.assign_orders()
    return pruned
