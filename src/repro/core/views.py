"""View identifiers.

A *view* of a ``d``-dimensional raw data set is the aggregation along a
subset of the dimensions.  Following the paper, dimensions are indexed
``0..d-1`` in order of non-increasing cardinality (``|D0| >= |D1| >= ...``),
and a view identifier lists its dimension indices in that same order —
"ordered by the cardinalities of the selected dimensions (in decreasing
order)".

We represent a view as a **tuple of strictly increasing dimension indices**
(``()`` is the ALL view).  Because the dimension indexing is already the
cardinality order, increasing-index tuples *are* the paper's canonical
identifiers.  A view's *sort order* inside a schedule tree may permute these
attributes; such orders are separate permutation tuples (see
:mod:`repro.core.pipesort`).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

__all__ = [
    "View",
    "all_views",
    "canonical_view",
    "is_prefix",
    "is_subset",
    "view_name",
    "parse_view_name",
]

#: A view identifier: strictly increasing dimension indices.
View = tuple[int, ...]

_LETTERS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def canonical_view(dims: Iterable[int]) -> View:
    """Normalise any iterable of dimension indices into a view identifier."""
    view = tuple(sorted(set(int(i) for i in dims)))
    if any(i < 0 for i in view):
        raise ValueError(f"negative dimension index in {view}")
    return view


def all_views(d: int) -> list[View]:
    """All ``2^d`` view identifiers for ``d`` dimensions, by level then lex."""
    if d < 0:
        raise ValueError(f"d must be >= 0, got {d}")
    out: list[View] = []
    for level in range(d + 1):
        out.extend(combinations(range(d), level))
    return out


def is_subset(v: View, u: View) -> bool:
    """True iff view ``v`` can be computed from view ``u`` (``v ⊆ u``)."""
    return set(v) <= set(u)


def is_prefix(v: Sequence[int], u: Sequence[int]) -> bool:
    """True iff attribute order ``v`` is a prefix of attribute order ``u``.

    Operates on *order* tuples (permutations), not on identifier sets: a
    prefix child can be computed from its parent by a single linear scan.
    """
    return len(v) <= len(u) and tuple(u[: len(v)]) == tuple(v)


def view_name(view: Sequence[int]) -> str:
    """Human-readable name, e.g. ``(0, 2, 3) -> "ACD"``; ALL for ``()``."""
    if len(view) == 0:
        return "ALL"
    if max(view) < len(_LETTERS):
        return "".join(_LETTERS[i] for i in view)
    return "(" + ",".join(f"D{i}" for i in view) + ")"


def parse_view_name(name: str) -> View:
    """Inverse of :func:`view_name` for letter names (test convenience)."""
    if name == "ALL":
        return ()
    indices = []
    for ch in name:
        if ch not in _LETTERS:
            raise ValueError(f"cannot parse view name {name!r}")
        indices.append(_LETTERS.index(ch))
    return canonical_view(indices)
