"""The paper's primary contribution: parallel ROLAP data cube construction.

Layout mirrors the paper's Section 2:

* :mod:`repro.core.views`, :mod:`repro.core.lattice` — view identifiers and
  the 2^d lattice (Figure 1a).
* :mod:`repro.core.partitions` — ``Di``-partitions and ``Di``-roots
  (Figure 3).
* :mod:`repro.core.estimate` — view-size estimation feeding schedule-tree
  costs.
* :mod:`repro.core.pipesort` — sequential top-down cube building block:
  phase 1 (schedule tree via level-wise minimum-cost matching) and phase 2
  (pipelined scan/sort execution).
* :mod:`repro.core.partial` — schedule trees for partial cubes (Section 3).
* :mod:`repro.core.sample_sort` — Procedure 2, Adaptive-Sample-Sort.
* :mod:`repro.core.sampling` — the 100·p decimation sample (Section 2.4).
* :mod:`repro.core.merge` — Procedure 3, Merge-Partitions.
* :mod:`repro.core.cube` — Procedure 1, the parallel driver and public API.
"""

from repro.core.cube import CubeResult, build_data_cube, build_partial_cube
from repro.core.lattice import Lattice
from repro.core.pipesort import ScheduleTree, build_schedule_tree
from repro.core.views import View, canonical_view, view_name

__all__ = [
    "CubeResult",
    "Lattice",
    "ScheduleTree",
    "View",
    "build_data_cube",
    "build_partial_cube",
    "build_schedule_tree",
    "canonical_view",
    "view_name",
]
