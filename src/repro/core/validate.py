"""Structural validation of a constructed cube.

A :class:`~repro.core.cube.CubeResult` promises several invariants
(DESIGN.md §6).  :func:`validate_cube` checks them all and returns a
report; it is what a downstream user runs after ingesting a cube from an
untrusted pipeline, and what several integration tests delegate to.

Checked invariants:

* every view identifier is canonical and within the dimensionality;
* per-rank pieces are sorted under their declared orders;
* no group-by key appears on more than one rank (full agglomeration);
* each view's aggregate is consistent with the cube's aggregate
  (for SUM: every view reproduces the grand total);
* monotone containment: a view never has more rows than key-space or
  parent capacity allows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cube import CubeResult
from repro.core.views import view_name

__all__ = ["ValidationReport", "validate_cube"]


@dataclass
class ValidationReport:
    """Outcome of one validation pass."""

    ok: bool = True
    errors: list[str] = field(default_factory=list)
    views_checked: int = 0

    def fail(self, message: str) -> None:
        self.ok = False
        self.errors.append(message)

    def describe(self) -> str:
        if self.ok:
            return f"cube valid: {self.views_checked} views checked"
        head = (
            f"cube INVALID: {len(self.errors)} problem(s) across "
            f"{self.views_checked} views"
        )
        return "\n".join([head] + [f"  - {e}" for e in self.errors[:20]])


def validate_cube(cube: CubeResult, deep: bool = True) -> ValidationReport:
    """Check a cube's structural invariants.

    ``deep=False`` skips the cross-rank key-uniqueness scan (the costly
    part) and checks only per-rank structure.
    """
    report = ValidationReport()
    d = len(cube.cardinalities)
    grand_total = None

    # Union across ranks: a view missing from only some ranks must still
    # be visited (and flagged), so rank 0's key set alone is not enough.
    all_views_present = sorted(
        {v for rank_views in cube.rank_views for v in rank_views},
        key=lambda v: (len(v), v),
    )
    for view in all_views_present:
        name = view_name(view)
        report.views_checked += 1
        if tuple(sorted(set(view))) != view or (view and max(view) >= d):
            report.fail(f"{name}: non-canonical or out-of-range identifier")
            continue

        space = 1
        for dim in view:
            space *= cube.cardinalities[dim]

        total_rows = 0
        measure_total = 0.0
        all_keys = []
        for rank, rank_views in enumerate(cube.rank_views):
            data = rank_views.get(view)
            if data is None:
                report.fail(f"{name}: missing on rank {rank}")
                continue
            if set(data.order) != set(view):
                report.fail(
                    f"{name}: rank {rank} order {data.order} does not "
                    "cover the view"
                )
                continue
            if not data.is_sorted():
                report.fail(f"{name}: rank {rank} piece is not sorted")
            if data.nrows and (
                data.keys.min() < 0 or data.keys.max() >= space
            ):
                report.fail(f"{name}: rank {rank} keys outside key space")
            total_rows += data.nrows
            measure_total += float(data.measure.sum())
            if deep:
                all_keys.append(data.keys)

        if total_rows > space:
            report.fail(
                f"{name}: {total_rows} rows exceed key space {space}"
            )
        if deep and all_keys:
            keys = np.concatenate(all_keys)
            if np.unique(keys).size != keys.size:
                report.fail(f"{name}: duplicate group keys across ranks")

        if cube.agg == "sum":
            if grand_total is None:
                grand_total = measure_total
            elif not np.isclose(
                measure_total, grand_total, rtol=1e-9, atol=1e-6
            ):
                report.fail(
                    f"{name}: measure total {measure_total!r} != grand "
                    f"total {grand_total!r}"
                )
    return report
