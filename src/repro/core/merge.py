"""Procedure 3: Merge-Partitions.

After phase 2, every rank holds its local piece of every view of the
current ``Di``-partition, all in the same (global-schedule-tree) sort
order.  This module agglomerates the ``p`` pieces of each view so that
every group-by key ends up fully aggregated on exactly one rank, with each
view spread evenly across ranks:

* **Case 1 — prefix views.**  The view's order is a prefix of the global
  sort order, so the pieces are already globally sorted and only keys
  straddling rank boundaries need agglomeration.  The paper exchanges each
  boundary row with the left neighbour; we generalise slightly — a single
  key can span more than two ranks (a rank whose whole piece is one key),
  so first/last boundary rows are gathered at P0 (O(p) data per view), P0
  resolves the straddle chains, and per-rank fix-up instructions are
  scattered back.

* **Case 2 — non-prefix views, balanced.**  Pieces overlap in the view's
  key order.  Each rank broadcasts its last key; key ownership is
  ``owner(K) = min{ j : K <= last_j }`` (ties to the lowest rank, final
  bucket unbounded), which both covers every key exactly once and keeps
  rank slices in ascending key order.  Expected post-routing sizes are
  estimated from the 100·p decimation samples (Section 2.4) — only the
  estimated *counts* travel, never the samples; if the relative imbalance
  is within γ, one h-relation routes the overlap and each rank merges
  locally.

* **Case 3 — non-prefix views, imbalanced.**  Routing by last-key
  boundaries would leave the distribution lopsided, so the view is
  globally re-sorted with Adaptive-Sample-Sort (γ = 3%) and aggregated;
  a boundary fix-up handles keys split by the sorter's global shift.

Batching: collectives are shared across all views of the partition — one
boundary gather/scatter covers every case-1 view, one metadata allgather
pair classifies every non-prefix view, one h-relation routes every case-2
view and one batched Adaptive-Sample-Sort re-sorts every case-3 view.
Per-view latency would otherwise dominate the BSP clock at 2^d views; the
per-view semantics (own pivots, own imbalance test, own γ contract) are
unchanged.  The case decision is made identically on every rank from the
same allgathered metadata, keeping ranks in lockstep without an extra
broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce

import numpy as np

from repro.config import CubeConfig
from repro.core.aggregate import combine_scalar
from repro.core.pipesort import ScheduleTree
from repro.core.sample_sort import batched_sample_sort, relative_imbalance
from repro.mpi.speed import RankSpeedModel
from repro.core.sampling import decimation_sample, estimate_range_count
from repro.core.viewdata import ViewData
from repro.core.views import View, is_prefix
from repro.mpi.comm import Comm
from repro.storage.scan import aggregate_sorted_keys, merge_sorted

__all__ = ["MergeReport", "merge_partitions"]


@dataclass
class MergeReport:
    """What happened to each view during one Merge-Partitions call."""

    #: view -> "case1" | "case2" | "case3"
    cases: dict[View, str] = field(default_factory=dict)
    #: view -> estimated post-overlap imbalance (non-prefix views only)
    imbalance: dict[View, float] = field(default_factory=dict)

    def count(self, case: str) -> int:
        return sum(1 for c in self.cases.values() if c == case)


def merge_partitions(
    comm: Comm,
    local_views: dict[View, ViewData],
    tree: ScheduleTree,
    config: CubeConfig,
    memory_budget: int,
    force_nonprefix: bool = False,
    speed: "RankSpeedModel | None" = None,
) -> tuple[dict[View, ViewData], MergeReport]:
    """Merge every view's ``p`` local pieces (Procedure 3).

    ``local_views`` holds this rank's pieces keyed by canonical view id;
    all ranks must pass the same key set (same global schedule tree).
    Returns the merged pieces plus a per-view case report.

    ``force_nonprefix`` routes *every* view through the ownership-based
    case-2/case-3 machinery, which is correct for arbitrary cross-rank
    layouts; the case-1 fast path assumes pieces are globally sorted
    across ranks, which holds after phase 2 but not for e.g. the
    incremental-refresh combine.

    ``speed`` — an active :class:`~repro.mpi.speed.RankSpeedModel` —
    makes the case-2/case-3 verdict accept *either* a uniform or a
    speed-proportional layout as balanced (a deliberately skewed
    heterogeneity-aware layout is not misread as imbalance, and a
    uniform layout left by a case-1/case-2 merge is not forced through
    a re-sort just to match the speed targets), and steers the case-3
    re-sort pivots to the clamped speed-proportional shares.
    """
    root_order = tree.nodes[tree.root].order
    merged: dict[View, ViewData] = {}
    report = MergeReport()
    # Identical iteration order on every rank keeps collectives aligned.
    ordered = sorted(local_views, key=lambda v: (-len(v), v))
    prefix = [
        v for v in ordered
        if not force_nonprefix
        and is_prefix(local_views[v].order, root_order)
    ]
    nonprefix = [v for v in ordered if v not in set(prefix)]

    # ---- Case 1 batch ---------------------------------------------------
    fixed = _batch_boundary_merge(
        comm, [local_views[v] for v in prefix], config.agg
    )
    for view, data in zip(prefix, fixed):
        merged[view] = data
        report.cases[view] = "case1"
    if not nonprefix:
        return merged, report

    # ---- Non-prefix metadata: last keys + size estimates ----------------
    p = comm.size
    nv = len(nonprefix)
    capacity = config.sample_factor * p
    my_last = np.array(
        [
            int(local_views[v].keys[-1]) if local_views[v].nrows else -1
            for v in nonprefix
        ],
        dtype=np.int64,
    )
    all_last = np.vstack(comm.allgather(my_last))  # (p, nv)
    # Effective ownership boundaries: prefix maxima of the last keys.
    boundaries = np.maximum.accumulate(all_last, axis=0)[:-1]  # (p-1, nv)

    my_counts = np.zeros((nv, p))
    for idx, view in enumerate(nonprefix):
        data = local_views[view]
        if data.nrows:
            sample = decimation_sample(data.keys, capacity)
            my_counts[idx] = estimate_range_count(
                sample, data.nrows, boundaries[:, idx]
            )
    est = np.sum(comm.allgather(my_counts), axis=0)  # (nv, p)

    case2_idx, case3_idx = [], []
    shares = None if speed is None else np.asarray(speed.shares)
    for idx, view in enumerate(nonprefix):
        imbalance = relative_imbalance(est[idx])
        if shares is not None:
            imbalance = min(
                imbalance,
                relative_imbalance(est[idx], shares * est[idx].sum()),
            )
        report.imbalance[view] = imbalance
        if config.merge_policy == "always_resort":
            resort = True
        elif config.merge_policy == "never_resort":
            resort = False
        else:
            resort = imbalance > config.gamma_merge
        if resort:
            case3_idx.append(idx)
            report.cases[view] = "case3"
        else:
            case2_idx.append(idx)
            report.cases[view] = "case2"

    # ---- Case 2 batch: one routing h-relation ----------------------------
    routed = _batch_route(
        comm,
        [local_views[nonprefix[i]] for i in case2_idx],
        [boundaries[:, i] for i in case2_idx],
        config.agg,
    )
    for idx, data in zip(case2_idx, routed):
        merged[nonprefix[idx]] = data

    # ---- Case 3 batch: one joint Adaptive-Sample-Sort --------------------
    if case3_idx:
        items = [
            (local_views[nonprefix[i]].keys, local_views[nonprefix[i]].measure)
            for i in case3_idx
        ]
        # pivot_offset=0: the pieces are nearly globally sorted already,
        # so alignment-preserving pivots avoid the half-bucket shift of the
        # generic PSRS offset.  agg=...: collapse before the balance test,
        # so γ bounds the *stored* rows of each view and the positional
        # shift can never split a group (see sample_sort module docs).
        # kernel="presorted": each item is a sorted view piece, so the
        # local-sort step degenerates to one early-exit sortedness scan.
        outcomes = batched_sample_sort(
            comm, items, config.gamma_merge, pivot_offset=0,
            agg=config.agg, kernel="presorted", speed=speed,
        )
        for idx, outcome in zip(case3_idx, outcomes):
            view = nonprefix[idx]
            merged[view] = ViewData(
                local_views[view].order, outcome.keys, outcome.measure
            )
    return merged, report


# ---------------------------------------------------------------------------
# Case 1: prefix views — batched boundary agglomeration
# ---------------------------------------------------------------------------


def _batch_boundary_merge(
    comm: Comm, datas: list[ViewData], agg: str
) -> list[ViewData]:
    """Agglomerate boundary-straddling keys of globally sorted views.

    One gather + one scatter covers all ``datas``; P0 resolves the straddle
    chains of every view independently.
    """
    if not datas:
        # Every rank must still participate in the two collectives only if
        # any rank has data; the view list is identical across ranks, so an
        # empty list means nobody calls the collectives — stay aligned.
        return []
    summaries = []
    for data in datas:
        n = data.nrows
        if n:
            summaries.append(
                (
                    n,
                    int(data.keys[0]),
                    float(data.measure[0]),
                    int(data.keys[-1]),
                    float(data.measure[-1]),
                )
            )
        else:
            summaries.append((0, 0, 0.0, 0, 0.0))
    gathered = comm.gather(summaries, root=0)

    per_rank_instr = None
    if comm.rank == 0:
        p = comm.size
        per_rank_instr = [[] for _ in range(p)]
        for item in range(len(datas)):
            chain = _resolve_boundary_chains(
                [gathered[j][item] for j in range(p)], agg
            )
            for j in range(p):
                per_rank_instr[j].append(chain[j])
    my_instr = comm.scatter(per_rank_instr, root=0)

    out = []
    for data, (drop_first, drop_all, set_last) in zip(datas, my_instr):
        keys, measure = data.keys, data.measure
        if drop_all:
            keys, measure = keys[:0], measure[:0]
        else:
            if set_last is not None:
                measure = measure.copy()
                measure[-1] = set_last
            if drop_first:
                keys, measure = keys[1:], measure[1:]
        out.append(ViewData(data.order, keys, measure))
    return out


def _merge_prefix_view(comm: Comm, data: ViewData, agg: str) -> ViewData:
    """Single-view convenience wrapper over the batched boundary merge."""
    return _batch_boundary_merge(comm, [data], agg)[0]


def _resolve_boundary_chains(
    summaries: list[tuple[int, int, float, int, float]], agg: str
) -> list[tuple[bool, bool, float | None]]:
    """P0-side chain resolution for one prefix view.

    Each rank reported ``(count, first_key, first_val, last_key,
    last_val)``.  Local pieces have unique keys, so a key can only straddle
    ranks as: last row of some rank, then the *only* row of zero or more
    following ranks, then optionally the first row of one final rank.  The
    lowest rank keeps the fully combined row; the others drop theirs.

    Returns per-rank ``(drop_first, drop_all, set_last)`` instructions.
    """
    p = len(summaries)
    drop_first = [False] * p
    drop_all = [False] * p
    set_last: list[float | None] = [None] * p
    nonempty = [j for j in range(p) if summaries[j][0] > 0]

    idx = 0
    while idx < len(nonempty) - 1:
        j = nonempty[idx]
        _, _, _, last_key, last_val = summaries[j]
        key = last_key
        total = last_val
        group_end = idx  # index (into nonempty) of last rank in the chain
        consumed_end = True  # did the chain fully consume its last rank?
        t = idx + 1
        while t < len(nonempty):
            r = nonempty[t]
            count_r, first_key, first_val, _, _ = summaries[r]
            if first_key != key:
                break
            total = combine_scalar(total, first_val, agg)
            group_end = t
            if count_r == 1:
                drop_all[r] = True
                consumed_end = True
                t += 1
            else:
                drop_first[r] = True
                consumed_end = False
                break
        if group_end == idx:
            idx += 1  # no chain started at this boundary
            continue
        set_last[j] = total
        # A partially consumed chain-end rank can start the next chain with
        # its own last row; a fully consumed one cannot.
        idx = group_end if not consumed_end else group_end + 1
    return list(zip(drop_first, drop_all, set_last))


# ---------------------------------------------------------------------------
# Case 2: batched overlap routing
# ---------------------------------------------------------------------------


def _batch_route(
    comm: Comm,
    datas: list[ViewData],
    boundaries: list[np.ndarray],
    agg: str,
) -> list[ViewData]:
    """Route every case-2 view to its owners in one h-relation.

    Each lane carries one concatenated key array, one concatenated measure
    array and the per-view row counts, so the payload stays a handful of
    large buffers regardless of how many views are in flight.
    """
    if not datas:
        return []
    p = comm.size
    n_items = len(datas)
    # per destination rank: slices of every view
    lane_keys: list[list[np.ndarray]] = [[] for _ in range(p)]
    lane_meas: list[list[np.ndarray]] = [[] for _ in range(p)]
    lane_counts = np.zeros((p, n_items), dtype=np.int64)
    for item, (data, bounds_v) in enumerate(zip(datas, boundaries)):
        cuts = np.searchsorted(data.keys, bounds_v, side="right")
        bounds = np.concatenate(([0], cuts, [data.nrows]))
        for k in range(p):
            lane_keys[k].append(data.keys[bounds[k] : bounds[k + 1]])
            lane_meas[k].append(data.measure[bounds[k] : bounds[k + 1]])
            lane_counts[k, item] = bounds[k + 1] - bounds[k]
    lanes = [
        (
            np.concatenate(lane_keys[k]) if lane_keys[k] else np.empty(0, np.int64),
            np.concatenate(lane_meas[k]) if lane_meas[k] else np.empty(0, np.float64),
            lane_counts[k],
        )
        for k in range(p)
    ]
    received = comm.alltoall(lanes)

    out = []
    # reassemble: for each item, merge the p received slices
    comm.disk.work.charge_scan(sum(rk.shape[0] for rk, _, _ in received))
    offsets = [np.concatenate(([0], np.cumsum(counts))) for _, _, counts in received]
    for item in range(n_items):
        pieces = []
        for j in range(p):
            rkeys, rmeas, _ = received[j]
            lo, hi = offsets[j][item], offsets[j][item + 1]
            if hi > lo:
                pieces.append((rkeys[lo:hi], rmeas[lo:hi]))
        if pieces:
            keys, measure = reduce(
                lambda acc, piece: merge_sorted(
                    acc[0], acc[1], piece[0], piece[1]
                ),
                pieces[1:],
                pieces[0],
            )
            keys, measure = aggregate_sorted_keys(keys, measure, agg)
        else:
            keys = np.empty(0, dtype=np.int64)
            measure = np.empty(0, dtype=np.float64)
        out.append(ViewData(datas[item].order, keys, measure))
    return out
