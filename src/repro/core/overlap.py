"""Communication/computation overlap analysis (Section 4.1 extension).

The paper: "Our current implementation does not overlap the local
computation of Di-Partitions with the global communication involved in
merging Di-1-Partitions.  Doing so would mask between 40% and 60% of the
communication overhead and further improve the speedup results."

The authors estimate rather than implement this, and so do we — but from
the measured per-phase breakdown instead of a guess.  Merging partition
``i-1`` communicates while partition ``i``'s data-partitioning sort and
local view computation are pure local work on independent data, so with
non-blocking collectives the merge communication can hide underneath up
to that much computation::

    maskable_i = min( comm(merge[i-1]),
                      compute(partition-sort[i]) + compute(compute[i]) )

:func:`analyze_overlap` evaluates this for a finished build and reports
the time and speedup the pipelined variant would achieve.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.cube import CubeResult

__all__ = ["OverlapReport", "analyze_overlap"]

_PHASE_RE = re.compile(r"^(?P<kind>[a-z-]+)\[(?P<i>\d+)\]$")


@dataclass
class OverlapReport:
    """What comm/compute overlap would buy for one finished build."""

    #: Simulated seconds of the measured (non-overlapped) run.
    measured_seconds: float
    #: Communication seconds spent in all merge phases.
    merge_comm_seconds: float
    #: Seconds of that communication that the next partition's local work
    #: could hide.
    maskable_seconds: float
    #: Predicted time of the pipelined variant.
    overlapped_seconds: float
    #: Per-partition detail: (i, merge_comm, next_compute, masked).
    per_partition: list[tuple[int, float, float, float]]

    @property
    def masked_fraction(self) -> float:
        """Share of merge communication that overlap hides (the paper
        estimates 40-60% on its platform)."""
        if self.merge_comm_seconds <= 0:
            return 0.0
        return self.maskable_seconds / self.merge_comm_seconds

    def speedup_gain(self) -> float:
        """measured / overlapped time ratio (>= 1)."""
        if self.overlapped_seconds <= 0:
            return 1.0
        return self.measured_seconds / self.overlapped_seconds

    def describe(self) -> str:
        return (
            f"overlap analysis: {self.merge_comm_seconds:.2f}s merge "
            f"communication, {self.maskable_seconds:.2f}s maskable "
            f"({self.masked_fraction:.0%}); "
            f"{self.measured_seconds:.2f}s -> {self.overlapped_seconds:.2f}s "
            f"({self.speedup_gain():.2f}x)"
        )


def _split_phases(breakdown: dict[str, float]) -> dict[tuple[str, int], float]:
    out: dict[tuple[str, int], float] = {}
    for phase, seconds in breakdown.items():
        match = _PHASE_RE.match(phase)
        if match:
            out[(match.group("kind"), int(match.group("i")))] = seconds
    return out


def analyze_overlap(cube: CubeResult) -> OverlapReport:
    """Estimate the pipelined variant's time for a finished build.

    Requires the cube's metrics to carry per-phase compute and comm
    breakdowns (any build from this repository does).
    """
    total = cube.metrics.phase_seconds
    comm = cube.metrics.phase_comm_seconds
    compute = {
        phase: total.get(phase, 0.0) - comm.get(phase, 0.0)
        for phase in total
    }
    comm_by = _split_phases(comm)
    compute_by = _split_phases(compute)

    partitions = sorted({i for (_, i) in comm_by} | {i for (_, i) in compute_by})
    per_partition = []
    maskable = 0.0
    merge_comm_total = 0.0
    for i in partitions:
        merge_comm = comm_by.get(("merge", i), 0.0)
        merge_comm_total += merge_comm
        next_compute = (
            compute_by.get(("partition-sort", i + 1), 0.0)
            + compute_by.get(("compute", i + 1), 0.0)
        )
        masked = min(merge_comm, next_compute)
        maskable += masked
        per_partition.append((i, merge_comm, next_compute, masked))

    measured = cube.metrics.simulated_seconds
    return OverlapReport(
        measured_seconds=measured,
        merge_comm_seconds=merge_comm_total,
        maskable_seconds=maskable,
        overlapped_seconds=max(measured - maskable, 0.0),
        per_partition=per_partition,
    )
