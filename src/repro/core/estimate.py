"""View-size estimation for schedule-tree costing.

Pipesort builds its schedule tree from *estimates* of the view sizes
("Pipesort and most other methods make statistical estimates of the view
sizes, based on the data available").  The paper cites Flajolet-Martin
probabilistic counting [6] and Shukla et al.'s analytic storage estimation
[21]; both are implemented here:

* :func:`fm_distinct` — Flajolet-Martin PCSA (probabilistic counting with
  stochastic averaging): hash every key, bucket by low bits, record the
  rank of the lowest zero bit per bucket; fully vectorised over NumPy.
* :func:`cardenas_size` — the classic analytic expectation
  ``K · (1 - (1 - 1/K)^n)`` of the number of distinct values when ``n``
  uniform rows fall into ``K`` possible keys (the formula underlying [21]).
* :func:`estimate_view_sizes` — per-view estimates for a relation, choosing
  among ``"fm"``, ``"analytic"``, ``"sample"`` and ``"exact"`` methods.

Estimates only steer the schedule tree; correctness never depends on them
(a property the tests exercise by feeding deliberately wrong estimates).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.core.views import View, canonical_view
from repro.storage.codec import KeyCodec

__all__ = [
    "cardenas_size",
    "estimate_view_sizes",
    "fm_distinct",
    "sample_distinct",
    "splitmix64",
]

#: Flajolet-Martin bias correction constant.
_FM_PHI = 0.77351
#: Number of PCSA buckets (power of two).
_FM_BUCKETS = 64


def splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser: a fast, well-mixed 64-bit hash."""
    z = x.astype(np.uint64, copy=True)
    z += np.uint64(0x9E3779B97F4A7C15)
    z ^= z >> np.uint64(30)
    z *= np.uint64(0xBF58476D1CE4E5B9)
    z ^= z >> np.uint64(27)
    z *= np.uint64(0x94D049BB133111EB)
    z ^= z >> np.uint64(31)
    return z


def _rho(values: np.ndarray) -> np.ndarray:
    """Rank of the least-significant set bit (0-based); 64 for zero."""
    v = values.astype(np.uint64)
    out = np.full(v.shape, 64, dtype=np.int64)
    nonzero = v != 0
    # isolate lowest set bit then take log2 of it
    low = v[nonzero] & (~v[nonzero] + np.uint64(1))
    out[nonzero] = np.log2(low.astype(np.float64)).round().astype(np.int64)
    return out


def fm_distinct(keys: np.ndarray) -> float:
    """Flajolet-Martin (PCSA) distinct-count estimate of a key array."""
    keys = np.asarray(keys)
    if keys.size == 0:
        return 0.0
    h = splitmix64(keys.astype(np.int64).view(np.uint64))
    bucket = (h & np.uint64(_FM_BUCKETS - 1)).astype(np.int64)
    rank = _rho(h >> np.uint64(6))
    rank = np.minimum(rank, 47)  # cap: keeps the bitmap in an int64
    bitmaps = np.zeros(_FM_BUCKETS, dtype=np.int64)
    np.bitwise_or.at(bitmaps, bucket, np.int64(1) << rank.astype(np.int64))
    # R per bucket: index of lowest zero bit of the bitmap.
    low_zero = _rho(~bitmaps.astype(np.uint64))
    mean_r = low_zero.mean()
    return _FM_BUCKETS / _FM_PHI * (2.0**mean_r)


def cardenas_size(n: float, key_space: float) -> float:
    """Expected distinct keys when ``n`` uniform rows hit ``key_space`` slots."""
    if n <= 0 or key_space <= 0:
        return 0.0
    if key_space == 1:
        return 1.0
    # K(1 - (1-1/K)^n) computed stably in log space.
    exponent = n * math.log1p(-1.0 / key_space)
    return key_space * -math.expm1(exponent)


def sample_distinct(keys: np.ndarray, total_rows: int, key_space: float) -> float:
    """Scale-up estimator from a row sample.

    Counts distinct keys ``u`` in the ``s``-row sample, fits the *effective
    key space* ``K`` for which ``cardenas_size(s, K) = u`` (bisection — the
    expectation is increasing in ``K``), then evaluates
    ``cardenas_size(total_rows, K)``.  The effective space absorbs skew: a
    Zipf-heavy column behaves like a smaller uniform alphabet.  Exact at
    ``total_rows == s`` (returns ``u``) and monotone in ``total_rows``.
    """
    keys = np.asarray(keys)
    s = keys.size
    if s == 0 or total_rows <= 0:
        return 0.0
    u = float(np.unique(keys).size)
    if u >= s:  # all sample rows distinct: the sample says nothing about K
        return cardenas_size(total_rows, key_space)
    lo, hi = u, 1e30
    for _ in range(80):
        mid = (lo * hi) ** 0.5  # geometric: K spans many orders of magnitude
        if cardenas_size(s, mid) < u:
            lo = mid
        else:
            hi = mid
    k_eff = (lo * hi) ** 0.5
    est = cardenas_size(total_rows, min(k_eff, key_space))
    return float(min(max(est, u), min(total_rows, key_space)))


def estimate_view_sizes(
    dims: np.ndarray,
    cardinalities: Sequence[int],
    views: Sequence[View],
    total_rows: int | None = None,
    method: str = "sample",
    sample_rows: int = 4096,
    seed: int = 0x5EED,
) -> dict[View, float]:
    """Estimate ``|view|`` for each view of a relation.

    Parameters
    ----------
    dims:
        ``(n, k)`` dimension codes of the (local) source relation, whose
        columns correspond to the dimension indices used in ``views`` after
        :func:`column_map`-style translation by the caller — here we assume
        ``views`` index directly into ``dims``'s columns.
    cardinalities:
        Per-column cardinalities of ``dims``.
    views:
        Views to estimate (column-index tuples).
    total_rows:
        Population row count the estimate should refer to; defaults to the
        local ``n`` (pass ``p * n_local`` to extrapolate a global size from
        one rank's chunk, as processor P0 does in the paper).
    method:
        ``"fm"`` (Flajolet-Martin on all rows), ``"sample"``
        (distinct-in-sample scale-up; default, cheapest), ``"analytic"``
        (data-free Cardenas), or ``"exact"`` (full distinct count —
        testing only).
    """
    dims = np.asarray(dims)
    n = dims.shape[0]
    if total_rows is None:
        total_rows = n
    cards = [int(c) for c in cardinalities]
    rng = np.random.default_rng(seed)
    if method == "sample" and n > sample_rows:
        rows = rng.choice(n, size=sample_rows, replace=False)
        sample = dims[rows]
    else:
        sample = dims

    out: dict[View, float] = {}
    for view in views:
        view = canonical_view(view)
        space = 1.0
        for col in view:
            space *= cards[col]
        if len(view) == 0:
            out[view] = 1.0 if total_rows > 0 else 0.0
            continue
        if method == "analytic":
            out[view] = cardenas_size(total_rows, space)
            continue
        codec_ok = space <= 2.0**62
        if not codec_ok:
            out[view] = cardenas_size(total_rows, space)
            continue
        codec = KeyCodec([cards[col] for col in view])
        if method == "exact":
            keys = codec.pack(dims[:, view])
            out[view] = float(np.unique(keys).size)
        elif method == "fm":
            keys = codec.pack(dims[:, view])
            est = fm_distinct(keys)
            # FM estimates the *local* distinct count; extrapolate to the
            # requested population through the key-space occupancy model.
            if total_rows > n > 0:
                local = min(est, space)
                occupancy = min(local / space, 0.999999)
                per_row = -math.log1p(-occupancy) / max(n, 1)
                est = space * -math.expm1(-per_row * total_rows)
            out[view] = float(min(est, space, total_rows))
        elif method == "sample":
            keys = codec.pack(sample[:, view])
            out[view] = sample_distinct(keys, total_rows, space)
        else:
            raise ValueError(f"unknown estimation method: {method!r}")
    return out


def scale_estimates(
    estimates: Mapping[View, float], factor: float
) -> dict[View, float]:
    """Multiply all estimates by ``factor`` (used by P0 to extrapolate from
    its 1/p-th chunk), clipping at nothing — relative order is what the
    schedule tree consumes."""
    return {view: size * factor for view, size in estimates.items()}
