"""Shared-nothing storage substrate: relations, key codecs, per-rank local
disks with block-transfer accounting, external-memory sort and sorted-run
aggregation.

This package is the stand-in for the per-node IDE disks and the
external-memory kernel routines (linear scan, external sort) that the paper
builds on (Vitter's two-level I/O model).
"""

from repro.storage.codec import KeyCodec
from repro.storage.disk import DiskStats, LocalDisk
from repro.storage.external_sort import external_sort
from repro.storage.scan import aggregate_sorted_keys, collapse_adjacent
from repro.storage.sortkernels import (
    KERNEL_NAMES,
    force_kernel,
    get_default_kernel,
    is_sorted_int64,
    set_default_kernel,
    sort_pairs,
)
from repro.storage.table import Relation

__all__ = [
    "KERNEL_NAMES",
    "KeyCodec",
    "DiskStats",
    "LocalDisk",
    "Relation",
    "aggregate_sorted_keys",
    "collapse_adjacent",
    "external_sort",
    "force_kernel",
    "get_default_kernel",
    "is_sorted_int64",
    "set_default_kernel",
    "sort_pairs",
]
