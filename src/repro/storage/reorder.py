"""Attribute-value reordering for hybrid dense/sparse cube storage.

Kaser-Lemire ("Attribute Value Reordering For Efficient Hybrid OLAP",
see PAPERS.md) observe that the *labels* of attribute values are
arbitrary — real dimensions arrive alphabetically, by surrogate-key
insertion order, or however the ETL happened to number them — while the
storage cost of a hybrid dense/sparse layout depends entirely on how
the occupied cells *cluster*.  Renaming each dimension's values so that
frequent values get small codes concentrates the row mass of every view
near the low end of its packed key space, which turns low key blocks
into dense (MOLAP-style) array chunks and leaves the long tail sparse
(:mod:`repro.storage.dense`).

:class:`ValueReorder` is that renaming: one permutation per dimension,
``perm[original_code] = reordered_code``, ranked by descending value
frequency (ties broken by ascending original code, so the permutation
is deterministic).  Frequencies come from an equally spaced row sample
— the same decimation discipline the merge phase's size estimator uses
(:mod:`repro.core.sampling`) — so computing a reorder costs one pass
over the *sample*, never an extra scan of the data.

The reorder is applied to the raw relation **before** the build; the
whole pipeline (packing, sorting, merging, storing) then operates in
reordered code space unchanged.  The permutations travel in the store
manifest, and :class:`repro.olap.query.ReorderedQueryEngine` translates
query filters from original values into reordered space and decodes
results back, so callers never see reordered codes.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.storage.table import Relation

__all__ = ["ValueReorder", "reorder_relation"]

#: Default equally-spaced sample rows used by :meth:`ValueReorder.
#: from_relation` (matches the ~100·p scale of the merge estimator's
#: decimation sample at serving-size p).
DEFAULT_SAMPLE_ROWS = 8192


class ValueReorder:
    """Per-dimension attribute-value permutations (and their inverses).

    Parameters
    ----------
    perms:
        One ``int64`` array per dimension; ``perms[d][orig] = new``.
        Each must be a permutation of ``0..card-1``.
    """

    def __init__(self, perms: Sequence[np.ndarray]):
        self.perms = tuple(
            np.asarray(p, dtype=np.int64) for p in perms
        )
        self.inverse = []
        for d, perm in enumerate(self.perms):
            card = perm.shape[0]
            if card < 1 or not np.array_equal(
                np.sort(perm), np.arange(card, dtype=np.int64)
            ):
                raise ValueError(
                    f"dimension {d}: not a permutation of 0..{card - 1}"
                )
            inv = np.empty(card, dtype=np.int64)
            inv[perm] = np.arange(card, dtype=np.int64)
            self.inverse.append(inv)
        self.inverse = tuple(self.inverse)

    # -- construction ------------------------------------------------------

    @staticmethod
    def identity(cardinalities: Sequence[int]) -> "ValueReorder":
        return ValueReorder(
            [np.arange(int(c), dtype=np.int64) for c in cardinalities]
        )

    @staticmethod
    def from_sample(
        dims: np.ndarray, cardinalities: Sequence[int]
    ) -> "ValueReorder":
        """Frequency-ranked permutations from a row sample.

        ``dims`` is an ``(m, d)`` code array (any subset of the rows).
        Values are ranked by descending sample frequency; values the
        sample never saw keep their relative order after all seen ones,
        so every code in ``0..card-1`` stays addressable.
        """
        cards = [int(c) for c in cardinalities]
        dims = np.asarray(dims, dtype=np.int64)
        if dims.ndim != 2 or dims.shape[1] != len(cards):
            raise ValueError(
                f"expected (m, {len(cards)}) sample, got {dims.shape}"
            )
        perms = []
        for col, card in enumerate(cards):
            counts = np.bincount(
                dims[:, col], minlength=card
            ) if dims.shape[0] else np.zeros(card, dtype=np.int64)
            # Stable argsort on -counts: frequent first, ties by
            # ascending original code — deterministic.
            ranked = np.argsort(-counts, kind="stable")
            perm = np.empty(card, dtype=np.int64)
            perm[ranked] = np.arange(card, dtype=np.int64)
            perms.append(perm)
        return ValueReorder(perms)

    @staticmethod
    def from_relation(
        relation: Relation,
        cardinalities: Sequence[int],
        sample_rows: int = DEFAULT_SAMPLE_ROWS,
    ) -> "ValueReorder":
        """Frequency permutations from an equally spaced row sample.

        The stride sample mirrors the decimation sampler's discipline:
        at most ``sample_rows`` rows are touched regardless of ``n``.
        """
        n = relation.nrows
        stride = max(-(-n // max(int(sample_rows), 1)), 1)
        return ValueReorder.from_sample(
            relation.dims[::stride], cardinalities
        )

    # -- properties --------------------------------------------------------

    @property
    def width(self) -> int:
        return len(self.perms)

    @property
    def cardinalities(self) -> tuple[int, ...]:
        return tuple(int(p.shape[0]) for p in self.perms)

    @property
    def is_identity(self) -> bool:
        return all(
            np.array_equal(p, np.arange(p.shape[0])) for p in self.perms
        )

    # -- application -------------------------------------------------------

    def apply_dims(self, dims: np.ndarray) -> np.ndarray:
        """Original codes -> reordered codes, column by column."""
        dims = np.asarray(dims, dtype=np.int64)
        if dims.ndim != 2 or dims.shape[1] != self.width:
            raise ValueError(
                f"expected (n, {self.width}) codes, got {dims.shape}"
            )
        out = np.empty_like(dims)
        for col, perm in enumerate(self.perms):
            out[:, col] = perm[dims[:, col]]
        return out

    def invert_dims(
        self, dims: np.ndarray, dims_of: Sequence[int] | None = None
    ) -> np.ndarray:
        """Reordered codes -> original codes.

        ``dims_of`` names the global dimension index of each column
        (for view projections); ``None`` means all columns in order.
        """
        dims = np.asarray(dims, dtype=np.int64)
        cols = (
            range(self.width) if dims_of is None
            else [int(d) for d in dims_of]
        )
        cols = list(cols)
        if dims.ndim != 2 or dims.shape[1] != len(cols):
            raise ValueError(
                f"expected (n, {len(cols)}) codes, got {dims.shape}"
            )
        out = np.empty_like(dims)
        for pos, dim in enumerate(cols):
            out[:, pos] = self.inverse[dim][dims[:, pos]]
        return out

    def apply(self, relation: Relation) -> Relation:
        """A new relation with every dimension column re-labelled."""
        return Relation(self.apply_dims(relation.dims), relation.measure)

    def map_range(self, dim: int, lo: int, hi: int) -> np.ndarray:
        """Sorted reordered codes of original values ``lo..hi``.

        The result is contiguous iff the original range maps onto a
        contiguous reordered range (always true for points and for the
        full ``0..card-1`` range; rarely otherwise — the query layer
        handles both cases).
        """
        perm = self.perms[int(dim)]
        lo = max(int(lo), 0)
        hi = min(int(hi), perm.shape[0] - 1)
        if hi < lo:
            return np.empty(0, dtype=np.int64)
        return np.sort(perm[lo : hi + 1])

    # -- persistence -------------------------------------------------------

    def to_manifest(self) -> dict:
        return {"perms": [p.tolist() for p in self.perms]}

    @staticmethod
    def from_manifest(entry: Mapping) -> "ValueReorder":
        return ValueReorder(
            [np.asarray(p, dtype=np.int64) for p in entry["perms"]]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ValueReorder(cards={list(self.cardinalities)})"


def reorder_relation(
    relation: Relation,
    cardinalities: Sequence[int],
    sample_rows: int = DEFAULT_SAMPLE_ROWS,
) -> tuple[Relation, ValueReorder]:
    """Compute a frequency reorder from a sample and apply it.

    The driver-side entry point ``python -m repro build --reorder``
    uses: the returned relation feeds the (unchanged) build pipeline,
    and the returned :class:`ValueReorder` goes to
    :meth:`repro.olap.store.CubeStore.save` so queries keep speaking
    original values.
    """
    vr = ValueReorder.from_relation(relation, cardinalities, sample_rows)
    return vr.apply(relation), vr
