"""Adaptive sort-kernel engine for packed int64 keys.

Every hot CPU path of the reproduction — the sample-sort local sorts
(Procedure 2), Pipesort sort-edge re-sorts, the merge's case-3 re-sorts
and canonical-order conversions — sorts parallel ``(key, measure)`` rows
by a packed non-negative int64 key (:class:`repro.storage.codec.KeyCodec`).
A comparison ``argsort`` is the safe default, but the mixed-radix key
structure admits much cheaper kernels:

``argsort``
    NumPy's stable comparison sort — the baseline and universal fallback
    (also the only kernel that accepts negative keys).

``radix``
    LSD radix sort over fixed-width 16-bit digit passes.  Each pass is a
    stable counting sort of the current digit (bucket histogram + prefix
    sum + stable scatter — NumPy's stable ``argsort`` on ``uint16``
    dispatches to exactly that O(n + 2^16) radix pass in C); the pass
    count is ``ceil(bits(max_key)/16)``, so a 2^33-key space sorts in 3
    linear passes instead of ``n·log2(n)`` comparisons.

``segmented``
    For re-sorts whose source and target attribute orders share a prefix
    of length ``k``: the source rows were sorted, so after the key remap
    (:meth:`repro.storage.codec.KeyCodec.remap`) the rows are already
    clustered into runs of equal prefix value, non-decreasing.  The
    kernel finds the run boundaries, compresses the (arbitrarily large)
    prefix value into a dense segment index, and radix-sorts the
    composite ``segment·W + suffix`` (``W`` = suffix capacity) — i.e. it
    sorts each equal-prefix segment independently, in total
    ``ceil(bits(nseg·W)/16)`` linear passes.  The composite order equals
    the full-key order, so the result is bit-identical to ``argsort``.

``presorted``
    Detects an already non-decreasing key array with a single-pass
    early-exit scan and skips the sort entirely (the merge phase's
    case-3 inputs are per-view pieces that phase 2 already sorted).

All kernels are *stable*, therefore produce the **identical permutation**
— outputs are bit-identical across kernels, and the call sites keep
their ``charge_sort`` / disk-block metering unchanged, so the simulated
cost model is kernel-independent by construction.  Kernels only change
*host* wall-clock.

Selection.  ``auto`` (the default) picks the cheapest applicable kernel
per call from a one-shot calibrated cost model: the first ``auto``
decision times a comparison sort and one radix digit pass on synthetic
data and derives per-row constants; thereafter selection is pure
arithmetic.  The choice is overridable globally — ``MachineSpec.
sort_kernel`` / ``--sort-kernel`` set the process default, and the
``REPRO_SORT_KERNEL`` environment variable (used by the CI kernel
matrix) outranks everything, including per-call hints.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

import numpy as np

__all__ = [
    "KERNEL_NAMES",
    "calibration",
    "choose_kernel",
    "force_kernel",
    "get_default_kernel",
    "is_sorted_int64",
    "resolve_kernel",
    "set_default_kernel",
    "sort_pairs",
]

#: Valid kernel names (``MachineSpec.sort_kernel`` / ``--sort-kernel`` /
#: ``REPRO_SORT_KERNEL``).  ``auto`` = per-call cost-model selection.
KERNEL_NAMES = ("auto", "argsort", "radix", "segmented", "presorted")

#: Environment override consulted on every resolution (the CI kernel
#: matrix forces one kernel for a whole test run through this).
ENV_KERNEL = "REPRO_SORT_KERNEL"

#: Bits per radix digit pass.  16 keeps the bucket table (2^16 counters)
#: L2-resident while halving the pass count of an 8-bit radix.
DIGIT_BITS = 16
_DIGIT_MASK = (1 << DIGIT_BITS) - 1

#: Below this row count every kernel decision collapses to ``argsort``:
#: the radix bucket table alone dwarfs the input.
SMALL_N = 256

_lock = threading.Lock()
_default_kernel = "auto"


# ---------------------------------------------------------------------------
# kernel selection plumbing
# ---------------------------------------------------------------------------


def set_default_kernel(name: str) -> None:
    """Set the process-wide default kernel (``MachineSpec.sort_kernel``)."""
    global _default_kernel
    _default_kernel = _validate(name)


def get_default_kernel() -> str:
    return _default_kernel


def _validate(name: str) -> str:
    if name not in KERNEL_NAMES:
        raise ValueError(
            f"unknown sort kernel {name!r}; expected one of {KERNEL_NAMES}"
        )
    return name


def resolve_kernel(hint: str | None = None) -> str:
    """Effective kernel for one sort call.

    Priority: ``REPRO_SORT_KERNEL`` env var > process default when it is
    not ``auto`` (i.e. a forced ``MachineSpec.sort_kernel``) > the
    call-site ``hint`` > ``auto``.  Forced kernels outrank hints so the
    CI matrix genuinely exercises one kernel at every site.
    """
    if hint is not None:
        _validate(hint)  # a bad hint is a caller bug even when outranked
    env = os.environ.get(ENV_KERNEL)
    if env:
        return _validate(env)
    if _default_kernel != "auto":
        return _default_kernel
    if hint is not None:
        return hint
    return "auto"


class force_kernel:
    """Context manager pinning the process default kernel (tests)."""

    def __init__(self, name: str):
        self.name = _validate(name)

    def __enter__(self):
        self._saved = get_default_kernel()
        set_default_kernel(self.name)
        return self

    def __exit__(self, *exc):
        set_default_kernel(self._saved)
        return False


# ---------------------------------------------------------------------------
# presorted detection
# ---------------------------------------------------------------------------


def is_sorted_int64(keys: np.ndarray, chunk: int = 1 << 15) -> bool:
    """True iff ``keys`` is non-decreasing.

    Single pass in ``chunk``-sized windows with early exit on the first
    inversion — unlike ``np.all(keys[1:] >= keys[:-1])`` it allocates
    only one ``chunk``-sized temporary and stops scanning at the first
    violation (typically within the first window on unsorted data).
    """
    keys = np.asarray(keys)
    n = keys.shape[0]
    if n < 2:
        return True
    for start in range(0, n - 1, chunk):
        stop = min(start + chunk + 1, n)
        window = keys[start:stop]
        if not bool(np.all(window[1:] >= window[:-1])):
            return False
    return True


# ---------------------------------------------------------------------------
# the kernels
# ---------------------------------------------------------------------------


def _argsort_pairs(
    keys: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    order = np.argsort(keys, kind="stable")
    return keys[order], values[order]


def _radix_permute(
    arrays: list[np.ndarray], sort_key: np.ndarray, bits: int
) -> list[np.ndarray]:
    """Stably permute ``arrays`` into ``sort_key`` order via LSD passes.

    Each pass is a stable counting sort of one 16-bit digit: NumPy's
    stable ``argsort`` on a ``uint16`` view runs its C radix sort —
    bucket histogram (``bincount``), exclusive prefix sum, stable
    scatter — in O(n + 2^16).  The payload ``arrays`` are gathered only
    once at the end: the per-pass permutations are *composed* instead
    (one int64 gather per pass), which beats gathering every payload
    every pass.
    """
    shifts = range(0, max(bits, 1), DIGIT_BITS)
    total: np.ndarray | None = None
    for pos, shift in enumerate(shifts):
        digits = ((sort_key >> shift) & _DIGIT_MASK).astype(np.uint16)
        perm = np.argsort(digits, kind="stable")
        if pos + 1 < len(shifts):  # the last pass never reads sort_key again
            sort_key = sort_key[perm]
        total = perm if total is None else total[perm]
    return [a[total] for a in arrays]


def _radix_pairs(
    keys: np.ndarray,
    values: np.ndarray,
    key_bound: int | None,
) -> tuple[np.ndarray, np.ndarray]:
    """LSD radix sort; requires non-negative keys (falls back otherwise)."""
    if key_bound is not None:
        kmax = int(key_bound) - 1
    else:
        kmax = int(keys.max())
        if int(keys.min()) < 0:
            return _argsort_pairs(keys, values)
    if kmax <= 0:
        return keys.copy(), values.copy()  # all keys equal (all zero)
    out = _radix_permute([keys, values], keys, kmax.bit_length())
    return out[0], out[1]


def _segment_runs(
    keys: np.ndarray, seg_divisor: int
) -> tuple[np.ndarray, np.ndarray, int] | None:
    """``(prefix_value, segment_index, nseg)``, or ``None`` if the
    prefix values are not clustered.

    ``keys // seg_divisor`` is the shared-prefix value; the caller
    promises the source rows were sorted under an order sharing that
    prefix, which makes the prefix values non-decreasing.  That promise
    is verified (early-exit scan) because a wrong segmented sort would
    corrupt the cube.
    """
    high = keys // seg_divisor
    if not is_sorted_int64(high):
        return None
    starts = np.empty(keys.shape[0], dtype=bool)
    starts[0] = True
    np.not_equal(high[1:], high[:-1], out=starts[1:])
    seg = np.cumsum(starts, dtype=np.int64) - 1
    return high, seg, int(seg[-1]) + 1


def _segmented_pairs(
    keys: np.ndarray,
    values: np.ndarray,
    seg_divisor: int,
    runs: tuple[np.ndarray, np.ndarray, int] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sort each equal-prefix segment independently (composite radix).

    Replaces the (arbitrarily large) prefix value with its dense segment
    index and radix-sorts ``segment·W + suffix``: segments are already
    in ascending prefix order, so the composite order equals the full
    key order, while the pass count shrinks from ``bits(prefix_cap·W)``
    to ``bits(nseg·W)`` — the win the shared prefix pays for.
    """
    if runs is None:
        runs = _segment_runs(keys, seg_divisor)
    if runs is None:  # caller's sortedness promise does not hold
        return _radix_pairs(keys, values, None)
    high, seg, nseg = runs
    if nseg == keys.shape[0]:
        return keys.copy(), values.copy()  # one row per segment: sorted
    composite = seg * seg_divisor + (keys - high * seg_divisor)
    bits = int(nseg * seg_divisor - 1).bit_length()
    out = _radix_permute([keys, values], composite, bits)
    return out[0], out[1]


# ---------------------------------------------------------------------------
# one-shot calibration + cost model
# ---------------------------------------------------------------------------


@dataclass
class Calibration:
    """Measured per-row constants of the host (one-shot, lazily built)."""

    #: Seconds per row per log2-level of a stable comparison argsort.
    argsort_sec_per_row_level: float
    #: Seconds per row of one radix digit pass (digit cast + counting
    #: sort + two gathers).
    radix_sec_per_row_pass: float
    #: Fixed seconds per radix pass (bucket table setup).
    radix_pass_overhead_sec: float

    def argsort_cost(self, n: int) -> float:
        return self.argsort_sec_per_row_level * n * max(np.log2(max(n, 2)), 1.0)

    def radix_cost(self, n: int, passes: int) -> float:
        return passes * (
            self.radix_sec_per_row_pass * n + self.radix_pass_overhead_sec
        )


_calibration: Calibration | None = None


def _measure(fn, *args, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def calibration() -> Calibration:
    """The host calibration, measuring it on first use (thread-safe)."""
    global _calibration
    if _calibration is not None:
        return _calibration
    with _lock:
        if _calibration is not None:
            return _calibration
        n = 1 << 15
        rng = np.random.default_rng(0xC0DEC)
        keys = rng.integers(0, 1 << 48, n, dtype=np.int64)
        vals = rng.random(n)
        t_arg = _measure(_argsort_pairs, keys, vals)
        t_pass = _measure(_radix_permute, [keys, vals], keys, 1)
        small = keys[: 1 << 10]
        t_small = _measure(
            _radix_permute, [small, vals[: 1 << 10]], small, 1
        )
        per_row = max(t_pass - t_small, 1e-9) / n  # constant term cancels
        overhead = max(t_small - per_row * (1 << 10), 0.0)
        _calibration = Calibration(
            argsort_sec_per_row_level=max(t_arg, 1e-9)
            / (n * float(np.log2(n))),
            radix_sec_per_row_pass=per_row,
            radix_pass_overhead_sec=overhead,
        )
        return _calibration


def _passes(bound: int) -> int:
    return max(1, -(-max(int(bound) - 1, 1).bit_length() // DIGIT_BITS))


def choose_kernel(
    n: int,
    key_bound: int | None = None,
    seg_bound: int | None = None,
) -> str:
    """Cost-model choice for ``auto`` (exposed for tests/benchmarks).

    ``key_bound`` is an exclusive upper bound on the key values;
    ``seg_bound`` the composite bound ``nseg·W`` of an applicable
    segmented sort.  Presorted detection happens in :func:`sort_pairs`
    before this is consulted.
    """
    if n < SMALL_N:
        return "argsort"
    cal = calibration()
    best_name, best_cost = "argsort", cal.argsort_cost(n)
    if key_bound is not None and key_bound > 1:
        cost = cal.radix_cost(n, _passes(key_bound))
        if cost < best_cost:
            best_name, best_cost = "radix", cost
    if seg_bound is not None and seg_bound > 1:
        cost = cal.radix_cost(n, _passes(seg_bound))
        if cost < best_cost:
            best_name, best_cost = "segmented", cost
    return best_name


# ---------------------------------------------------------------------------
# the public sort entry point
# ---------------------------------------------------------------------------


def sort_pairs(
    keys: np.ndarray,
    values: np.ndarray,
    kernel: str | None = None,
    *,
    key_bound: int | None = None,
    seg_divisor: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Stable-sort parallel ``(keys, values)`` rows by key.

    Returns new arrays; the result is bit-identical for every kernel
    (all kernels are stable).  ``kernel`` is a call-site hint — see
    :func:`resolve_kernel` for how forced kernels outrank it.  The
    structure hints are safe to omit or get wrong in the conservative
    direction: ``key_bound`` is an exclusive upper bound on (then
    necessarily non-negative) key values, e.g. ``KeyCodec.capacity``;
    ``seg_divisor`` is the suffix capacity ``W`` of a shared-prefix
    remap, promising rows are clustered into runs of equal ``key // W``
    in non-decreasing order (verified before use).
    """
    keys = np.asarray(keys)
    values = np.asarray(values)
    if keys.shape != values.shape or keys.ndim != 1:
        raise ValueError(
            f"keys/values must be parallel 1-D arrays, got {keys.shape} "
            f"and {values.shape}"
        )
    n = keys.shape[0]
    if n <= 1:
        return keys.copy(), values.copy()
    name = resolve_kernel(kernel)

    if name == "argsort":
        return _argsort_pairs(keys, values)
    if name == "presorted":
        if is_sorted_int64(keys):
            return keys.copy(), values.copy()
        return _argsort_pairs(keys, values)
    if name == "radix":
        return _radix_pairs(keys, values, key_bound)
    if name == "segmented":
        if seg_divisor is not None and seg_divisor >= 1:
            return _segmented_pairs(keys, values, int(seg_divisor))
        return _argsort_pairs(keys, values)

    # ---- auto -----------------------------------------------------------
    if is_sorted_int64(keys):  # presorted fast path (early-exit check)
        return keys.copy(), values.copy()
    if n < SMALL_N:
        return _argsort_pairs(keys, values)
    seg_bound = None
    runs = None
    if seg_divisor is not None and seg_divisor >= 1:
        runs = _segment_runs(keys, int(seg_divisor))
        if runs is not None:
            seg_bound = runs[2] * int(seg_divisor)
    bound = key_bound
    if bound is None:
        lo = int(keys.min())
        bound = None if lo < 0 else int(keys.max()) + 1
    name = choose_kernel(n, key_bound=bound, seg_bound=seg_bound)
    if name == "segmented":
        return _segmented_pairs(keys, values, int(seg_divisor), runs)
    if name == "radix":
        return _radix_pairs(keys, values, bound)
    return _argsort_pairs(keys, values)
