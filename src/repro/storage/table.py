"""Relational table representation used throughout the system.

A :class:`Relation` is the ROLAP building block: ``n`` rows over ``k``
dimension columns (small non-negative integer codes) plus one numeric
measure column.  Dimension values are dictionary-encoded upstream by the
data generator, which is both what real ROLAP engines do and what keeps all
kernels vectorisable.

Rows are stored column-major-friendly as one ``(n, k)`` ``int64`` array and
one ``(n,)`` ``float64`` measure array.  All mutating operations return new
relations; the arrays themselves are treated as immutable by convention
(views are handed out freely, copies are made only when required).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Relation"]


@dataclass(frozen=True)
class Relation:
    """An ``n``-row relation with ``k`` dimension columns and a measure.

    Parameters
    ----------
    dims:
        ``(n, k)`` ``int64`` array of dimension codes, ``k >= 0``.
    measure:
        ``(n,)`` ``float64`` array of measure values.
    """

    dims: np.ndarray
    measure: np.ndarray

    def __post_init__(self) -> None:
        dims = np.asarray(self.dims)
        measure = np.asarray(self.measure)
        if dims.ndim != 2:
            raise ValueError(f"dims must be 2-D, got shape {dims.shape}")
        if measure.ndim != 1:
            raise ValueError(
                f"measure must be 1-D, got shape {measure.shape}"
            )
        if dims.shape[0] != measure.shape[0]:
            raise ValueError(
                "row count mismatch: "
                f"{dims.shape[0]} dim rows vs {measure.shape[0]} measures"
            )
        if dims.dtype != np.int64:
            dims = dims.astype(np.int64)
        if measure.dtype != np.float64:
            measure = measure.astype(np.float64)
        object.__setattr__(self, "dims", dims)
        object.__setattr__(self, "measure", measure)

    # -- construction ----------------------------------------------------

    @staticmethod
    def empty(width: int) -> "Relation":
        """An empty relation with ``width`` dimension columns."""
        if width < 0:
            raise ValueError(f"width must be >= 0, got {width}")
        return Relation(
            np.empty((0, width), dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )

    @staticmethod
    def from_rows(
        rows: Iterable[Sequence[int]], measures: Iterable[float]
    ) -> "Relation":
        """Build a relation from Python row tuples (testing convenience)."""
        rows = list(rows)
        measures = np.asarray(list(measures), dtype=np.float64)
        if not rows:
            return Relation(
                np.empty((len(measures), 0), dtype=np.int64), measures
            )
        return Relation(np.asarray(rows, dtype=np.int64), measures)

    @staticmethod
    def concat(parts: Sequence["Relation"]) -> "Relation":
        """Concatenate relations of identical width."""
        parts = [part for part in parts if part is not None]
        if not parts:
            raise ValueError("cannot concatenate zero relations")
        width = parts[0].width
        for part in parts:
            if part.width != width:
                raise ValueError(
                    f"width mismatch in concat: {part.width} != {width}"
                )
        if len(parts) == 1:
            return parts[0]
        return Relation(
            np.concatenate([part.dims for part in parts], axis=0),
            np.concatenate([part.measure for part in parts]),
        )

    # -- basic properties -------------------------------------------------

    @property
    def nrows(self) -> int:
        """Number of rows."""
        return self.dims.shape[0]

    @property
    def width(self) -> int:
        """Number of dimension columns."""
        return self.dims.shape[1]

    @property
    def nbytes(self) -> int:
        """In-memory footprint of the payload arrays."""
        return self.dims.nbytes + self.measure.nbytes

    def __len__(self) -> int:  # pragma: no cover - trivial
        return self.nrows

    # -- row operations ----------------------------------------------------

    def take(self, index: np.ndarray) -> "Relation":
        """Select rows by integer index array (returns a copy)."""
        index = np.asarray(index)
        return Relation(self.dims[index], self.measure[index])

    def slice(self, start: int, stop: int) -> "Relation":
        """Select a contiguous row range (returns views, zero-copy)."""
        return Relation(self.dims[start:stop], self.measure[start:stop])

    def project(self, columns: Sequence[int]) -> "Relation":
        """Keep only the given dimension columns (no aggregation)."""
        cols = list(columns)
        if any(c < 0 or c >= self.width for c in cols):
            raise IndexError(
                f"projection columns {cols} out of range for width {self.width}"
            )
        return Relation(self.dims[:, cols], self.measure)

    def sort_lex(self) -> "Relation":
        """Sort rows lexicographically over all dimension columns.

        Column 0 is the most significant key, matching view-identifier
        ordering (highest-cardinality dimension first).
        """
        if self.nrows <= 1 or self.width == 0:
            return self
        # np.lexsort keys: last key is primary, so feed columns reversed.
        order = np.lexsort(tuple(self.dims[:, c] for c in range(self.width - 1, -1, -1)))
        return self.take(order)

    def is_sorted_lex(self) -> bool:
        """True iff rows are in non-decreasing lexicographic order."""
        if self.nrows <= 1 or self.width == 0:
            return True
        a, b = self.dims[:-1], self.dims[1:]
        # Row i <= row i+1 lexicographically: at the first differing column
        # (if any), a < b.
        diff = a != b
        any_diff = diff.any(axis=1)
        first = np.argmax(diff, axis=1)
        rows = np.arange(len(first))
        ok = ~any_diff | (a[rows, first] < b[rows, first])
        return bool(ok.all())

    # -- comparisons --------------------------------------------------------

    def canonical(self) -> tuple:
        """A hashable canonical form (sorted rows), for equality in tests."""
        rel = self.sort_lex()
        return (
            rel.width,
            rel.dims.tobytes(),
            np.round(rel.measure, 9).tobytes(),
        )

    def same_content(self, other: "Relation", rtol: float = 1e-9) -> bool:
        """True iff both relations hold the same multiset of rows."""
        if self.width != other.width or self.nrows != other.nrows:
            return False
        a, b = self.sort_lex(), other.sort_lex()
        return bool(
            np.array_equal(a.dims, b.dims)
            and np.allclose(a.measure, b.measure, rtol=rtol, atol=1e-9)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation(nrows={self.nrows}, width={self.width})"
