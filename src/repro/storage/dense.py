"""Hybrid dense/sparse block layout for stored views (format 3).

A sorted view's packed key space ``0..capacity-1`` is cut into a
uniform grid of blocks of ``block_cells`` keys.  Each block is stored
one of two ways:

* **dense** — a MOLAP-style value array with one float64 cell per key
  in the block (grown from the ``baselines/molap.py`` sketch), plus a
  packed occupancy bitmask (1 bit/cell) so empty cells are
  distinguishable from occupied cells whose measure happens to be 0.0.
  Blocks with every cell occupied omit the mask entirely.
* **sparse** — the block's rows stay in the familiar sorted
  ``(int64 key, float64 measure)`` ROLAP columns.  All sparse rows of a
  view live in ONE global sorted residue, so the existing fence-index +
  ``searchsorted`` machinery applies unchanged.

The dense/sparse choice is a calibrated byte-cost comparison in the
same style as the :mod:`repro.storage.sortkernels` cost model: storing
a block dense costs ``8 + 1/8`` bytes per *cell* (value + mask bit),
storing it sparse costs ``16`` bytes per *row* (key + measure), so
dense wins exactly when

    rows / cells  >=  (8 + 1/8) / 16  =  0.5078125

That constant is derived, not tuned — it is the break-even density at
which the two encodings occupy the same bytes — and can be overridden
per save (``--density-threshold``) to trade space for more dense-path
query coverage.

The layout is queryable without expansion: a dense block supports
direct offset arithmetic (``cell = key - block_id * block_cells``; the
logical row index comes from a mask popcount), which is what the
serving tier's dense access path uses instead of ``searchsorted``
(:mod:`repro.olap.hybrid`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DEFAULT_BLOCK_CELLS",
    "DENSE_VALUE_BYTES",
    "MASK_BITS_PER_CELL",
    "SPARSE_ROW_BYTES",
    "density_threshold",
    "HybridLayout",
    "build_hybrid",
    "expand_hybrid",
    "scatter_dense_block",
]

#: Keys spanned by one block of the uniform grid.  1 KiB of cells keeps
#: per-block metadata negligible while letting mid-lattice views mix
#: dense and sparse blocks.
DEFAULT_BLOCK_CELLS = 1024

#: Byte costs of the two encodings (the cost-model constants).
DENSE_VALUE_BYTES = 8          # one float64 cell
MASK_BITS_PER_CELL = 1         # packed occupancy bit
SPARSE_ROW_BYTES = 16          # int64 key + float64 measure


def density_threshold() -> float:
    """Break-even occupancy at which dense and sparse bytes tie.

    ``(8 + 1/8) / 16 = 0.5078125`` — calibrated from the encodings'
    byte costs, in the same derive-don't-tune style as the sort-kernel
    cost model.
    """
    return (DENSE_VALUE_BYTES + MASK_BITS_PER_CELL / 8) / SPARSE_ROW_BYTES


@dataclass
class HybridLayout:
    """One view's rows split into dense blocks + a sparse residue.

    Logical row order (ascending packed key) is preserved across the
    split: row ``i`` of the original sorted columns is either sparse
    row ``i - dense_rows_before(i)`` or an occupied cell of the dense
    block covering its key.  ``sparse_before`` caches, per dense block,
    how many sparse rows precede the block's first key, which makes
    logical-row arithmetic O(1) given a block index.
    """

    block_cells: int
    capacity: int
    nrows: int
    # Per dense block (ascending block id):
    dense_blocks: np.ndarray    # int64 block ids
    dense_rows: np.ndarray      # occupied cells per block
    dense_full: np.ndarray      # bool: every cell occupied (mask omitted)
    sparse_before: np.ndarray   # sparse rows with key < block start
    # Concatenated payloads:
    dense_values: np.ndarray    # float64, cells of all dense blocks
    dense_mask: np.ndarray      # uint8 packbits, non-full blocks only
    sparse_keys: np.ndarray     # int64, globally sorted residue
    sparse_measure: np.ndarray  # float64

    def cells_of(self, block_id: int) -> int:
        """Cells in a block (the tail block may be short)."""
        return int(
            min(self.block_cells, self.capacity - block_id * self.block_cells)
        )

    @property
    def n_dense_rows(self) -> int:
        return int(self.dense_rows.sum()) if self.dense_rows.size else 0

    @property
    def n_sparse_rows(self) -> int:
        return int(self.sparse_keys.shape[0])

    def stored_bytes(self) -> int:
        """Payload bytes of the layout (excluding npy headers/manifest)."""
        return (
            self.dense_values.nbytes
            + self.dense_mask.nbytes
            + self.sparse_keys.nbytes
            + self.sparse_measure.nbytes
        )


def scatter_dense_block(
    keys: np.ndarray,
    measure: np.ndarray,
    block_id: int,
    block_cells: int,
    cells: int,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Scatter one block's sorted rows into a dense cell array.

    Returns ``(values, packed_mask)``; the mask is ``None`` when every
    cell is occupied (the full-block encoding omits it).  Shared by
    :func:`build_hybrid` and the incremental merge
    (:func:`repro.olap.hybrid.merge_hybrid`) so both produce
    bit-identical payloads for the same rows.
    """
    local = (keys - block_id * block_cells).astype(np.intp)
    vals = np.zeros(cells, dtype=np.float64)
    vals[local] = measure
    if keys.shape[0] == cells:
        return vals, None
    occ = np.zeros(cells, dtype=bool)
    occ[local] = True
    return vals, np.packbits(occ)


def build_hybrid(
    keys: np.ndarray,
    measure: np.ndarray,
    capacity: int,
    block_cells: int | None = None,
    threshold: float | None = None,
) -> HybridLayout:
    """Split sorted unique ``(keys, measure)`` columns into a hybrid layout.

    ``keys`` must be sorted ascending with no duplicates (the store's
    post-merge invariant) and every key must lie in ``[0, capacity)``.
    """
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    measure = np.ascontiguousarray(measure, dtype=np.float64)
    if keys.shape != measure.shape or keys.ndim != 1:
        raise ValueError("keys/measure must be matching 1-d columns")
    capacity = int(capacity)
    bc = DEFAULT_BLOCK_CELLS if block_cells is None else int(block_cells)
    if bc < 1:
        raise ValueError(f"block_cells must be >= 1, got {bc}")
    thr = density_threshold() if threshold is None else float(threshold)
    n = keys.shape[0]
    if n:
        if keys[0] < 0 or keys[-1] >= capacity:
            raise ValueError(
                f"keys outside [0, {capacity}): "
                f"[{int(keys[0])}, {int(keys[-1])}]"
            )

    empty = HybridLayout(
        block_cells=bc,
        capacity=capacity,
        nrows=n,
        dense_blocks=np.empty(0, dtype=np.int64),
        dense_rows=np.empty(0, dtype=np.int64),
        dense_full=np.empty(0, dtype=bool),
        sparse_before=np.empty(0, dtype=np.int64),
        dense_values=np.empty(0, dtype=np.float64),
        dense_mask=np.empty(0, dtype=np.uint8),
        sparse_keys=keys,
        sparse_measure=measure,
    )
    if n == 0:
        return empty

    bids = keys // bc
    starts = np.flatnonzero(np.r_[True, bids[1:] != bids[:-1]])
    ends = np.r_[starts[1:], n]
    run_blocks = bids[starts]                       # occupied block ids
    run_rows = ends - starts                        # rows per occupied block
    run_cells = np.minimum(bc, capacity - run_blocks * bc)
    dense_sel = run_rows >= thr * run_cells

    if not dense_sel.any():
        return empty

    # Sparse residue: rows of every non-dense run, order preserved.
    row_is_dense = np.repeat(dense_sel, run_rows)
    sparse_keys = keys[~row_is_dense]
    sparse_measure = measure[~row_is_dense]

    # Sparse rows preceding each run start (prefix over non-dense runs).
    sparse_run_rows = np.where(dense_sel, 0, run_rows)
    sparse_prefix = np.concatenate(
        ([0], np.cumsum(sparse_run_rows))
    )  # len == runs + 1; sparse_prefix[i] = sparse rows before run i

    d_idx = np.flatnonzero(dense_sel)
    dense_blocks = run_blocks[d_idx]
    dense_rows = run_rows[d_idx]
    dense_cells = run_cells[d_idx]
    dense_full = dense_rows == dense_cells
    sparse_before = sparse_prefix[d_idx]

    values_parts = []
    mask_parts = []
    for i, run in enumerate(d_idx):
        s, e = int(starts[run]), int(ends[run])
        cells = int(dense_cells[i])
        vals, mask = scatter_dense_block(
            keys[s:e], measure[s:e], int(dense_blocks[i]), bc, cells
        )
        values_parts.append(vals)
        if mask is not None:
            mask_parts.append(mask)
    dense_values = (
        np.concatenate(values_parts)
        if values_parts else np.empty(0, dtype=np.float64)
    )
    dense_mask = (
        np.concatenate(mask_parts)
        if mask_parts else np.empty(0, dtype=np.uint8)
    )

    return HybridLayout(
        block_cells=bc,
        capacity=capacity,
        nrows=n,
        dense_blocks=dense_blocks.astype(np.int64),
        dense_rows=dense_rows.astype(np.int64),
        dense_full=dense_full,
        sparse_before=sparse_before.astype(np.int64),
        dense_values=dense_values,
        dense_mask=dense_mask,
        sparse_keys=np.ascontiguousarray(sparse_keys),
        sparse_measure=np.ascontiguousarray(sparse_measure),
    )


def expand_hybrid(layout: HybridLayout) -> tuple[np.ndarray, np.ndarray]:
    """Reconstruct the full sorted ``(keys, measure)`` columns.

    Bit-exact inverse of :func:`build_hybrid`: dense cells re-expand to
    exactly the rows they absorbed (the mask restores occupancy; zeros
    written by occupied cells survive).
    """
    bc = layout.block_cells
    keys_parts: list[np.ndarray] = []
    meas_parts: list[np.ndarray] = []
    spos = 0          # consumed sparse rows
    voff = 0          # consumed dense value cells
    moff = 0          # consumed mask bytes
    for i in range(layout.dense_blocks.shape[0]):
        bid = int(layout.dense_blocks[i])
        cells = layout.cells_of(bid)
        stop = int(layout.sparse_before[i])
        if stop > spos:
            keys_parts.append(layout.sparse_keys[spos:stop])
            meas_parts.append(layout.sparse_measure[spos:stop])
            spos = stop
        if layout.dense_full[i]:
            occ_idx = np.arange(cells, dtype=np.int64)
        else:
            nbytes = (cells + 7) // 8
            bits = np.unpackbits(
                layout.dense_mask[moff : moff + nbytes], count=cells
            )
            occ_idx = np.flatnonzero(bits).astype(np.int64)
            moff += nbytes
        keys_parts.append(bid * bc + occ_idx)
        meas_parts.append(layout.dense_values[voff : voff + cells][occ_idx])
        voff += cells
    if spos < layout.sparse_keys.shape[0]:
        keys_parts.append(layout.sparse_keys[spos:])
        meas_parts.append(layout.sparse_measure[spos:])
    if not keys_parts:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    return (
        np.concatenate(keys_parts).astype(np.int64, copy=False),
        np.concatenate(meas_parts).astype(np.float64, copy=False),
    )
