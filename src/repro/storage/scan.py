"""Vectorised sorted-run aggregation kernels.

These implement the "linear scan" primitive of the paper: given rows sorted
by their group-by key, collapse equal-key runs while aggregating the measure.
Everything is boundary-vector based (``keys[1:] != keys[:-1]`` +
``np.ufunc.reduceat``) — no per-row Python.
"""

from __future__ import annotations

import numpy as np

__all__ = ["aggregate_sorted_keys", "collapse_adjacent", "merge_sorted"]

_REDUCERS = {
    "sum": np.add,
    "min": np.minimum,
    "max": np.maximum,
}


def aggregate_sorted_keys(
    keys: np.ndarray, measure: np.ndarray, agg: str = "sum"
) -> tuple[np.ndarray, np.ndarray]:
    """Aggregate a key-sorted run.

    Parameters
    ----------
    keys:
        ``(n,)`` int64 keys in non-decreasing order.
    measure:
        ``(n,)`` float64 measure values.
    agg:
        One of ``"sum"``, ``"count"``, ``"min"``, ``"max"``.

    Returns
    -------
    ``(unique_keys, aggregated_measure)`` with one row per distinct key,
    keys still sorted.
    """
    keys = np.asarray(keys)
    measure = np.asarray(measure)
    if keys.shape != measure.shape:
        raise ValueError(
            f"shape mismatch: keys {keys.shape} vs measure {measure.shape}"
        )
    n = keys.shape[0]
    if n == 0:
        return keys[:0], measure[:0].astype(np.float64)
    starts = np.empty(n, dtype=bool)
    starts[0] = True
    np.not_equal(keys[1:], keys[:-1], out=starts[1:])
    idx = np.flatnonzero(starts)
    out_keys = keys[idx]
    if agg == "count":
        lengths = np.diff(np.append(idx, n))
        return out_keys, lengths.astype(np.float64)
    try:
        reducer = _REDUCERS[agg]
    except KeyError:
        raise ValueError(f"unsupported aggregate: {agg!r}") from None
    return out_keys, reducer.reduceat(measure, idx)


def collapse_adjacent(
    keys: np.ndarray, measure: np.ndarray, agg: str = "sum"
) -> tuple[np.ndarray, np.ndarray]:
    """Alias of :func:`aggregate_sorted_keys` kept for call-site clarity
    (used where the input is already aggregated per rank and only boundary
    duplicates can occur)."""
    return aggregate_sorted_keys(keys, measure, agg)


def merge_sorted(
    keys_a: np.ndarray,
    vals_a: np.ndarray,
    keys_b: np.ndarray,
    vals_b: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Stable vectorised merge of two key-sorted runs.

    Equal keys keep run-``a`` rows first.  This is the classic
    ``searchsorted``-interleave trick: each element's output slot is its own
    rank plus the count of smaller elements in the other run.
    """
    na, nb = len(keys_a), len(keys_b)
    if na == 0:
        return keys_b, vals_b
    if nb == 0:
        return keys_a, vals_a
    out_keys = np.empty(na + nb, dtype=np.result_type(keys_a, keys_b))
    out_vals = np.empty(na + nb, dtype=np.result_type(vals_a, vals_b))
    pos_a = np.arange(na) + np.searchsorted(keys_b, keys_a, side="left")
    pos_b = np.arange(nb) + np.searchsorted(keys_a, keys_b, side="right")
    out_keys[pos_a] = keys_a
    out_keys[pos_b] = keys_b
    out_vals[pos_a] = vals_a
    out_vals[pos_b] = vals_b
    return out_keys, out_vals
