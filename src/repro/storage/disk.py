"""Per-rank local disk with block-transfer accounting.

Each virtual processor owns one :class:`LocalDisk`: a private directory
sandbox to which it may spill and from which it may load relations.  All
traffic is metered in units of the block size ``B`` so that the
external-memory costs the paper reasons about — ``O(n/B)`` for a linear scan,
``O((n/B)·log_{m/B}(n/B))`` for an external sort — are observable quantities
in this reproduction, and so the BSP clock can charge disk time.

A disk can be *in-memory* (the default for tests and small runs): spill
files are then held in a dict instead of the filesystem, with identical
accounting.  This keeps the unit-test suite hermetic and fast while the
benchmark harness can opt into real files.
"""

from __future__ import annotations

import io
import os
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.storage.table import Relation

__all__ = ["DiskStats", "LocalDisk", "WorkMeter"]

#: Default modelled CPU constants; kept in sync with
#: :class:`repro.config.MachineSpec` (duplicated to avoid an import cycle).
SORT_SEC_PER_ROW_LEVEL_DEFAULT = 2.0e-7
SCAN_SEC_PER_ROW_DEFAULT = 2.0e-7


class WorkMeter:
    """Deterministic modelled-CPU accumulator for one processor.

    The BSP clock charges each rank's local work from this meter instead
    of relying purely on host CPU measurements, whose per-op Python
    constants are wildly unlike the modelled 2003-era machine.  Kernels
    charge the classic sort/scan work terms at their call sites:

    * ``charge_sort(n)``  →  ``a · n · max(1, log2 n)`` seconds,
    * ``charge_scan(n)``  →  ``b · n`` seconds.
    """

    def __init__(
        self,
        sort_sec_per_row_level: float = SORT_SEC_PER_ROW_LEVEL_DEFAULT,
        scan_sec_per_row: float = SCAN_SEC_PER_ROW_DEFAULT,
    ):
        self.sort_sec_per_row_level = sort_sec_per_row_level
        self.scan_sec_per_row = scan_sec_per_row
        self.seconds = 0.0
        self.rows_sorted = 0
        self.rows_scanned = 0

    def charge_sort(self, rows: int) -> None:
        """Account for a comparison sort of ``rows`` rows."""
        if rows <= 0:
            return
        import math

        levels = max(1.0, math.log2(rows))
        self.seconds += self.sort_sec_per_row_level * rows * levels
        self.rows_sorted += rows

    def charge_scan(self, rows: int) -> None:
        """Account for streaming work over ``rows`` rows."""
        if rows <= 0:
            return
        self.seconds += self.scan_sec_per_row * rows
        self.rows_scanned += rows


@dataclass
class DiskStats:
    """Cumulative I/O counters for one local disk."""

    blocks_read: int = 0
    blocks_written: int = 0
    rows_read: int = 0
    rows_written: int = 0
    files_created: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def blocks_total(self) -> int:
        """Total block transfers in either direction."""
        return self.blocks_read + self.blocks_written

    def charge_read(self, rows: int, block_size: int) -> None:
        """Account for reading ``rows`` rows in blocks of ``block_size``."""
        blocks = _blocks(rows, block_size)
        with self.lock:
            self.rows_read += rows
            self.blocks_read += blocks

    def charge_write(self, rows: int, block_size: int) -> None:
        """Account for writing ``rows`` rows in blocks of ``block_size``."""
        blocks = _blocks(rows, block_size)
        with self.lock:
            self.rows_written += rows
            self.blocks_written += blocks

    def snapshot(self) -> dict[str, int]:
        """Plain-dict snapshot of the counters."""
        with self.lock:
            return {
                "blocks_read": self.blocks_read,
                "blocks_written": self.blocks_written,
                "rows_read": self.rows_read,
                "rows_written": self.rows_written,
                "files_created": self.files_created,
            }


def _blocks(rows: int, block_size: int) -> int:
    """Blocks needed for ``rows`` rows; zero rows still touch no block."""
    if rows <= 0:
        return 0
    return -(-rows // block_size)


class LocalDisk:
    """A single processor's private disk.

    Parameters
    ----------
    block_size:
        Block transfer size ``B`` in rows.
    root:
        Directory for spill files.  ``None`` (default) keeps spills in
        memory with identical accounting.
    """

    def __init__(
        self,
        block_size: int,
        root: str | None = None,
        work: WorkMeter | None = None,
    ):
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.block_size = block_size
        self.root = root
        self.stats = DiskStats()
        #: Modelled-CPU meter of the owning processor (the disk object
        #: doubles as the per-rank local-resources handle).
        self.work = work if work is not None else WorkMeter()
        #: Optional write admission hook ``guard(pending_blocks)``; may
        #: raise to refuse the write (fault injection's disk-full quota —
        #: see :mod:`repro.mpi.faults`).  Consulted before any block-write
        #: accounting, so a refused write charges nothing.
        self.write_guard = None
        self._mem: dict[str, bytes] = {}
        self._counter = 0
        self._lock = threading.Lock()
        if root is not None:
            os.makedirs(root, exist_ok=True)

    # -- file naming -------------------------------------------------------

    def _fresh_name(self, hint: str) -> str:
        with self._lock:
            self._counter += 1
            self.stats.files_created += 1
            return f"{hint}-{self._counter:06d}.npz"

    # -- spill / load --------------------------------------------------------

    def _admit_write(self, rows: int) -> None:
        """Run the write guard (if armed) before charging a write."""
        if self.write_guard is not None:
            self.write_guard(_blocks(rows, self.block_size))

    def spill(self, rel: Relation, hint: str = "run") -> str:
        """Write a relation to this disk; returns an opaque file token."""
        self._admit_write(rel.nrows)
        name = self._fresh_name(hint)
        buf = io.BytesIO()
        np.savez(buf, dims=rel.dims, measure=rel.measure)
        payload = buf.getvalue()
        if self.root is None:
            self._mem[name] = payload
        else:
            with open(os.path.join(self.root, name), "wb") as fh:
                fh.write(payload)
        self.stats.charge_write(rel.nrows, self.block_size)
        return name

    def load(self, token: str) -> Relation:
        """Read a previously spilled relation back into memory."""
        payload = self._payload(token)
        with np.load(io.BytesIO(payload)) as npz:
            rel = Relation(npz["dims"], npz["measure"])
        self.stats.charge_read(rel.nrows, self.block_size)
        return rel

    def load_slice(self, token: str, start: int, stop: int) -> Relation:
        """Read a row range of a spilled relation.

        The simulation holds npz payloads whole, but only the rows actually
        delivered are charged — matching a seek+stream of ``stop-start``
        rows on a real disk.
        """
        payload = self._payload(token)
        with np.load(io.BytesIO(payload)) as npz:
            rel = Relation(npz["dims"][start:stop], npz["measure"][start:stop])
        self.stats.charge_read(rel.nrows, self.block_size)
        return rel

    def delete(self, token: str) -> None:
        """Remove a spill file (no I/O charge)."""
        if self.root is None:
            self._mem.pop(token, None)
        else:
            try:
                os.remove(os.path.join(self.root, token))
            except FileNotFoundError:
                pass

    def _payload(self, token: str) -> bytes:
        if self.root is None:
            try:
                return self._mem[token]
            except KeyError:
                raise FileNotFoundError(f"no spill file {token!r}") from None
        with open(os.path.join(self.root, token), "rb") as fh:
            return fh.read()

    # -- pure accounting hooks ------------------------------------------------

    def charge_scan(self, rows: int) -> None:
        """Charge a linear scan of ``rows`` rows without materialising it.

        Used where the simulation keeps data in memory but the modelled
        machine would have streamed it from disk (e.g. re-reading a stored
        view during the merge phase).
        """
        self.stats.charge_read(rows, self.block_size)

    def charge_store(self, rows: int) -> None:
        """Charge writing ``rows`` rows (e.g. final view materialisation)."""
        self._admit_write(rows)
        self.stats.charge_write(rows, self.block_size)
