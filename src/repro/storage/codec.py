"""Mixed-radix packing of dimension tuples into single ``int64`` keys.

Sorting and merging dominate data cube construction.  Comparing ``k``-column
rows with ``np.lexsort`` costs ``k`` passes; packing each row into one
``int64`` whose integer order equals the row's lexicographic order turns
every sort, merge, search and group-by boundary detection into a fast 1-D
operation.  This is the dictionary-encoded-composite-key idiom used by real
ROLAP engines, and is the main vectorisation lever of this code base
(see the HPC guide: vectorise, avoid per-row Python).

Packing requires the product of the (per-view) cardinalities to fit in 63
bits.  :meth:`KeyCodec.fits` checks this; callers fall back to ``lexsort``
on raw columns when it does not hold (see :func:`repro.storage.table.
Relation.sort_lex`).  All experiment presets in this repository fit easily
(e.g. 256·128·64·32·16·8·6·6 ≈ 2^33).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["KeyCodec"]

_MAX_KEY = np.int64(2**62)


class KeyCodec:
    """Order-preserving bijection between dim tuples and ``int64`` keys.

    Parameters
    ----------
    cardinalities:
        Per-column alphabet sizes; column ``i`` must hold codes in
        ``[0, cardinalities[i])``.  Column 0 is the most significant.
    """

    def __init__(self, cardinalities: Sequence[int]):
        cards = np.asarray(list(cardinalities), dtype=np.int64)
        if cards.ndim != 1:
            raise ValueError("cardinalities must be a flat sequence")
        if (cards < 1).any():
            raise ValueError(f"cardinalities must be >= 1, got {cards.tolist()}")
        self.cardinalities = cards
        #: (src_order, dst_order) -> precomputed remap plan (see remap()).
        self._remap_plans: dict = {}
        self.width = len(cards)
        # weights[i] = product of cardinalities of the less significant
        # columns, so key = sum_i dims[:, i] * weights[i].
        weights = np.ones(self.width, dtype=np.float64)
        for i in range(self.width - 2, -1, -1):
            weights[i] = weights[i + 1] * float(cards[i + 1])
        self._capacity = float(weights[0]) * float(cards[0]) if self.width else 1.0
        if not self.fits():
            raise OverflowError(
                "key space exceeds 63 bits: "
                f"product of cardinalities {cards.tolist()} ≈ {self._capacity:.3g}"
            )
        self.weights = weights.astype(np.int64)

    def fits(self) -> bool:
        """True iff every tuple packs into a non-negative ``int64``."""
        return self._capacity <= float(_MAX_KEY)

    @property
    def capacity(self) -> int:
        """Number of distinct keys this codec can produce."""
        return int(self._capacity)

    def pack(self, dims: np.ndarray) -> np.ndarray:
        """Pack an ``(n, width)`` code array into ``(n,)`` int64 keys."""
        dims = np.asarray(dims)
        if dims.ndim != 2 or dims.shape[1] != self.width:
            raise ValueError(
                f"expected (n, {self.width}) array, got shape {dims.shape}"
            )
        if self.width == 0:
            return np.zeros(dims.shape[0], dtype=np.int64)
        return dims @ self.weights

    def unpack(self, keys: np.ndarray) -> np.ndarray:
        """Invert :meth:`pack`: ``(n,)`` keys back to ``(n, width)`` codes."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.ndim != 1:
            raise ValueError(f"keys must be 1-D, got shape {keys.shape}")
        out = np.empty((keys.shape[0], self.width), dtype=np.int64)
        rem = keys
        for i in range(self.width):
            out[:, i], rem = np.divmod(rem, self.weights[i])
        return out

    def _remap_plan(
        self, src_order: tuple[int, ...], dst_order: tuple[int, ...]
    ):
        """Build (and cache) the digit-extraction plan for one remap."""
        plan = self._remap_plans.get((src_order, dst_order))
        if plan is not None:
            return plan
        if len(src_order) != self.width:
            raise ValueError(
                f"src_order {src_order} has {len(src_order)} dims but this "
                f"codec packs {self.width}"
            )
        pos = {dim: p for p, dim in enumerate(src_order)}
        if len(pos) != len(src_order):
            raise ValueError(f"src_order {src_order} repeats a dimension")
        if len(set(dst_order)) != len(dst_order):
            raise ValueError(f"dst_order {dst_order} repeats a dimension")
        missing = [dim for dim in dst_order if dim not in pos]
        if missing:
            raise ValueError(
                f"dst_order dims {missing} not present in src_order "
                f"{src_order}"
            )
        shared = 0
        limit = min(len(src_order), len(dst_order))
        while shared < limit and src_order[shared] == dst_order[shared]:
            shared += 1
        # Destination weights over the selected (permuted) cardinalities.
        dst_cards = [int(self.cardinalities[pos[dim]]) for dim in dst_order]
        dst_weights = [1] * len(dst_order)
        for j in range(len(dst_order) - 2, -1, -1):
            dst_weights[j] = dst_weights[j + 1] * dst_cards[j + 1]
        # Per non-shared destination digit: (src divisor, radix, dst weight).
        steps = [
            (
                int(self.weights[pos[dim]]),
                int(self.cardinalities[pos[dim]]),
                dst_weights[j],
            )
            for j, dim in enumerate(dst_order)
            if j >= shared
        ]
        prefix_div = int(self.weights[shared - 1]) if shared else 0
        prefix_mul = dst_weights[shared - 1] if shared else 0
        plan = (shared, prefix_div, prefix_mul, steps)
        self._remap_plans[(src_order, dst_order)] = plan
        return plan

    def remap(
        self,
        keys: np.ndarray,
        src_order: Sequence[int],
        dst_order: Sequence[int],
    ) -> tuple[np.ndarray, int]:
        """Re-encode keys packed under ``src_order`` into ``dst_order``.

        ``self`` must be the codec of ``src_order`` (its cardinalities
        aligned with that permutation); ``dst_order`` selects any subset
        of ``src_order``'s dimensions in any order.  The conversion is
        pure int64 arithmetic — one divmod per *non-shared* destination
        digit against the cached mixed-radix weights — and never
        materialises an ``(n, d)`` code array, unlike unpack → repack.

        Returns ``(new_keys, shared_prefix_len)``.  The shared-prefix
        length is the number of leading positions where the two orders
        agree; because the suffix capacities on both sides multiply the
        *same* remaining cardinality product per side, rows of a
        src-sorted array stay clustered by the shared prefix — callers
        route to the segmented sort kernel on that promise.
        """
        src_order = tuple(int(i) for i in src_order)
        dst_order = tuple(int(i) for i in dst_order)
        shared, prefix_div, prefix_mul, steps = self._remap_plan(
            src_order, dst_order
        )
        keys = np.asarray(keys, dtype=np.int64)
        if src_order == dst_order:
            return keys.copy(), shared
        if shared:
            out = keys // prefix_div
            if prefix_mul != 1:
                out *= prefix_mul
        else:
            out = np.zeros(keys.shape[0], dtype=np.int64)
        for divisor, radix, weight in steps:
            digit = keys // divisor
            digit %= radix
            if weight != 1:
                digit *= weight
            out += digit
        return out, shared

    def prefix_codec(self, k: int) -> "KeyCodec":
        """Codec over the first ``k`` columns only."""
        if not 0 <= k <= self.width:
            raise ValueError(f"prefix length {k} out of range 0..{self.width}")
        return KeyCodec(self.cardinalities[:k])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KeyCodec({self.cardinalities.tolist()})"
