"""Mixed-radix packing of dimension tuples into single ``int64`` keys.

Sorting and merging dominate data cube construction.  Comparing ``k``-column
rows with ``np.lexsort`` costs ``k`` passes; packing each row into one
``int64`` whose integer order equals the row's lexicographic order turns
every sort, merge, search and group-by boundary detection into a fast 1-D
operation.  This is the dictionary-encoded-composite-key idiom used by real
ROLAP engines, and is the main vectorisation lever of this code base
(see the HPC guide: vectorise, avoid per-row Python).

Packing requires the product of the (per-view) cardinalities to fit in 63
bits.  :meth:`KeyCodec.fits` checks this; callers fall back to ``lexsort``
on raw columns when it does not hold (see :func:`repro.storage.table.
Relation.sort_lex`).  All experiment presets in this repository fit easily
(e.g. 256·128·64·32·16·8·6·6 ≈ 2^33).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["KeyCodec"]

_MAX_KEY = np.int64(2**62)


class KeyCodec:
    """Order-preserving bijection between dim tuples and ``int64`` keys.

    Parameters
    ----------
    cardinalities:
        Per-column alphabet sizes; column ``i`` must hold codes in
        ``[0, cardinalities[i])``.  Column 0 is the most significant.
    """

    def __init__(self, cardinalities: Sequence[int]):
        cards = np.asarray(list(cardinalities), dtype=np.int64)
        if cards.ndim != 1:
            raise ValueError("cardinalities must be a flat sequence")
        if (cards < 1).any():
            raise ValueError(f"cardinalities must be >= 1, got {cards.tolist()}")
        self.cardinalities = cards
        self.width = len(cards)
        # weights[i] = product of cardinalities of the less significant
        # columns, so key = sum_i dims[:, i] * weights[i].
        weights = np.ones(self.width, dtype=np.float64)
        for i in range(self.width - 2, -1, -1):
            weights[i] = weights[i + 1] * float(cards[i + 1])
        self._capacity = float(weights[0]) * float(cards[0]) if self.width else 1.0
        if not self.fits():
            raise OverflowError(
                "key space exceeds 63 bits: "
                f"product of cardinalities {cards.tolist()} ≈ {self._capacity:.3g}"
            )
        self.weights = weights.astype(np.int64)

    def fits(self) -> bool:
        """True iff every tuple packs into a non-negative ``int64``."""
        return self._capacity <= float(_MAX_KEY)

    @property
    def capacity(self) -> int:
        """Number of distinct keys this codec can produce."""
        return int(self._capacity)

    def pack(self, dims: np.ndarray) -> np.ndarray:
        """Pack an ``(n, width)`` code array into ``(n,)`` int64 keys."""
        dims = np.asarray(dims)
        if dims.ndim != 2 or dims.shape[1] != self.width:
            raise ValueError(
                f"expected (n, {self.width}) array, got shape {dims.shape}"
            )
        if self.width == 0:
            return np.zeros(dims.shape[0], dtype=np.int64)
        return dims @ self.weights

    def unpack(self, keys: np.ndarray) -> np.ndarray:
        """Invert :meth:`pack`: ``(n,)`` keys back to ``(n, width)`` codes."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.ndim != 1:
            raise ValueError(f"keys must be 1-D, got shape {keys.shape}")
        out = np.empty((keys.shape[0], self.width), dtype=np.int64)
        rem = keys
        for i in range(self.width):
            out[:, i], rem = np.divmod(rem, self.weights[i])
        return out

    def prefix_codec(self, k: int) -> "KeyCodec":
        """Codec over the first ``k`` columns only."""
        if not 0 <= k <= self.width:
            raise ValueError(f"prefix length {k} out of range 0..{self.width}")
        return KeyCodec(self.cardinalities[:k])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KeyCodec({self.cardinalities.tolist()})"
