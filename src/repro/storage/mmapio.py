"""Memory-mapped ``.npy`` columns with DiskArray-style read accounting.

The serving tier (see :mod:`repro.olap.store` format 2) lays every view
out as raw contiguous ``.npy`` arrays so a reader can ``np.load(...,
mmap_mode="r")`` them and touch only the pages a query actually needs.
The simulated-cluster disks (:mod:`repro.storage.disk`,
:mod:`repro.storage.diskarray`) meter every access; this module gives
the *host* mmap path the same discipline: a :class:`MmapMeter` counts
maps opened, range reads vs full scans, and rows/bytes actually
materialised, so benchmarks can assert that the index path reads a tiny
fraction of what a scan reads (``benchmarks/bench_serving.py``).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

import numpy as np

__all__ = ["MappedColumn", "MmapMeter", "read_npy_mmap", "write_npy"]


@dataclass
class MmapMeter:
    """Cumulative read counters for one store handle (all its columns)."""

    maps_opened: int = 0
    range_reads: int = 0
    scan_reads: int = 0
    rows_touched: int = 0
    bytes_touched: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def charge_map(self) -> None:
        with self.lock:
            self.maps_opened += 1

    def charge_range(self, rows: int, itemsize: int) -> None:
        """Account for a fence-narrowed range read of ``rows`` rows."""
        with self.lock:
            self.range_reads += 1
            self.rows_touched += rows
            self.bytes_touched += rows * itemsize

    def charge_scan(self, rows: int, itemsize: int) -> None:
        """Account for a full-column scan."""
        with self.lock:
            self.scan_reads += 1
            self.rows_touched += rows
            self.bytes_touched += rows * itemsize

    def snapshot(self) -> dict[str, int]:
        with self.lock:
            return {
                "maps_opened": self.maps_opened,
                "range_reads": self.range_reads,
                "scan_reads": self.scan_reads,
                "rows_touched": self.rows_touched,
                "bytes_touched": self.bytes_touched,
            }


def write_npy(path: str, arr: np.ndarray) -> str:
    """Write one contiguous ``.npy`` column (parent dirs created)."""
    os.makedirs(os.path.dirname(path), exist_ok=True)
    np.save(path, np.ascontiguousarray(arr))
    return path


def read_npy_mmap(path: str, meter: MmapMeter | None = None) -> np.ndarray:
    """Open a ``.npy`` column read-only via mmap (zero-copy until sliced)."""
    arr = np.load(path, mmap_mode="r")
    if meter is not None:
        meter.charge_map()
    return arr


class MappedColumn:
    """One lazily-opened, read-only memory-mapped ``.npy`` column.

    Slicing through :meth:`read` (range) or :meth:`scan` (full column)
    materialises a private in-memory copy and charges the meter — the
    mmap page cache does the real I/O elision underneath; the meter
    records what the *caller* asked to touch.
    """

    def __init__(self, path: str, meter: MmapMeter | None = None):
        self.path = path
        self.meter = meter
        self._arr: np.ndarray | None = None

    @property
    def array(self) -> np.ndarray:
        """The raw memory-mapped array (no accounting; do not mutate)."""
        if self._arr is None:
            self._arr = read_npy_mmap(self.path, self.meter)
        return self._arr

    @property
    def nrows(self) -> int:
        return int(self.array.shape[0])

    def read(self, start: int, stop: int) -> np.ndarray:
        """Materialise rows ``[start, stop)`` (a metered range read)."""
        arr = self.array
        start = max(int(start), 0)
        stop = min(int(stop), arr.shape[0])
        if stop <= start:
            return np.empty(0, dtype=arr.dtype)
        out = np.array(arr[start:stop])  # copy out of the mapping
        if self.meter is not None:
            self.meter.charge_range(stop - start, arr.dtype.itemsize)
        return out

    def scan(self) -> np.ndarray:
        """Materialise the whole column (a metered full scan)."""
        arr = self.array
        out = np.array(arr)
        if self.meter is not None:
            self.meter.charge_scan(arr.shape[0], arr.dtype.itemsize)
        return out

    def close(self) -> None:
        """Drop the mapping (best-effort; Python mmaps close on GC)."""
        arr, self._arr = self._arr, None
        if arr is not None and hasattr(arr, "_mmap"):
            try:  # pragma: no cover - platform dependent
                arr._mmap.close()
            except (AttributeError, BufferError):
                pass
