"""Block-streaming merge of sorted on-disk runs.

:func:`repro.storage.external_sort.external_sort` loads whole runs into
memory during its merge passes (simulation-friendly; the disk meter still
charges per block).  This module provides the *truly* streaming variant a
memory-constrained machine would run: each input run is buffered one block
at a time, and memory never holds more than ``fan-in + 1`` blocks.

The merge itself stays vectorised: instead of a per-row heap, each round
computes the **safe boundary** — the smallest of the buffered runs'
maximum keys.  Every buffered row ≤ that boundary is guaranteed to precede
every unbuffered row, so those rows can be merged (pairwise
``searchsorted`` interleave) and emitted in one batch, after which
exhausted buffers are refilled.  This is the classic tournament-of-block-
maxima scheme, executed a block batch at a time.
"""

from __future__ import annotations

import numpy as np

from repro.storage.disk import LocalDisk
from repro.storage.scan import merge_sorted

__all__ = ["RunReader", "streaming_merge"]


class RunReader:
    """Cursor over one sorted on-disk run, one block in memory at a time."""

    def __init__(self, disk: LocalDisk, token: str, nrows: int):
        self.disk = disk
        self.token = token
        self.nrows = nrows
        self._next_row = 0
        self._keys = np.empty(0, dtype=np.int64)
        self._values = np.empty(0, dtype=np.float64)
        self.refill()

    @property
    def exhausted(self) -> bool:
        return self._keys.size == 0 and self._next_row >= self.nrows

    @property
    def buffer_max(self) -> int | None:
        """Largest buffered key, or None when the run is fully drained."""
        if self._keys.size:
            return int(self._keys[-1])
        return None

    @property
    def fully_buffered(self) -> bool:
        """True once the run's tail is in memory (its max is global)."""
        return self._next_row >= self.nrows

    def refill(self) -> None:
        """Load the next block if the buffer is empty and rows remain."""
        if self._keys.size or self._next_row >= self.nrows:
            return
        stop = min(self._next_row + self.disk.block_size, self.nrows)
        part = self.disk.load_slice(self.token, self._next_row, stop)
        self._keys = part.dims[:, 0]
        self._values = part.measure
        self._next_row = stop

    def take_upto(self, boundary: int) -> tuple[np.ndarray, np.ndarray]:
        """Remove and return buffered rows with key <= boundary."""
        cut = int(np.searchsorted(self._keys, boundary, side="right"))
        keys, values = self._keys[:cut], self._values[:cut]
        self._keys, self._values = self._keys[cut:], self._values[cut:]
        return keys, values


def streaming_merge(
    disk: LocalDisk, tokens: list[str], run_rows: list[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Merge sorted spill files into one sorted array pair, block-wise.

    ``run_rows`` gives each run's row count (known to the writer).  Memory
    holds at most one block per run plus the emitted chunk.
    """
    readers = [
        RunReader(disk, token, rows)
        for token, rows in zip(tokens, run_rows)
        if rows > 0
    ]
    out_keys: list[np.ndarray] = []
    out_values: list[np.ndarray] = []
    while readers:
        # Safe boundary: min over buffer maxima of runs that still have
        # unbuffered rows; fully buffered runs do not constrain it.
        constraining = [
            r.buffer_max for r in readers if not r.fully_buffered
        ]
        if constraining:
            boundary = min(constraining)
        else:
            boundary = max(
                r.buffer_max for r in readers if r.buffer_max is not None
            )
        chunk_keys = np.empty(0, dtype=np.int64)
        chunk_values = np.empty(0, dtype=np.float64)
        for reader in readers:
            keys, values = reader.take_upto(boundary)
            if keys.size:
                chunk_keys, chunk_values = merge_sorted(
                    chunk_keys, chunk_values, keys, values
                )
        if chunk_keys.size:
            out_keys.append(chunk_keys)
            out_values.append(chunk_values)
        for reader in readers:
            reader.refill()
        readers = [r for r in readers if not r.exhausted]
    if not out_keys:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    return np.concatenate(out_keys), np.concatenate(out_values)
