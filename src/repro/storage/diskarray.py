"""Vitter-Shriver striped disk arrays (the paper's multi-disk note).

Section 2: "it is easy to generalize our methods for machines with
multiple local disks per processor by applying the linear scan and
external memory sort methods for a single processor with multiple local
disks presented in [23]" — Vitter-Shriver two-level parallel memories,
where D independent disks move D blocks per I/O step.

``MachineSpec.disks_per_node`` already applies the *model* (per-block
cost divided by D).  This module supplies the *mechanism* that model
assumes and validates it: a :class:`DiskArray` stripes every file's
blocks round-robin over its member disks, so a spill or load of ``b``
blocks costs ``ceil(b / D)`` parallel I/O steps.  Tests assert the
mechanism meets the model (near-perfect balance for multi-block files).

The array quacks like :class:`~repro.storage.disk.LocalDisk` (``spill`` /
``load`` / ``load_slice`` / ``delete`` / charge hooks / ``work``), so any
kernel in this repository runs on it unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.storage.disk import DiskStats, LocalDisk, WorkMeter
from repro.storage.table import Relation

__all__ = ["DiskArray"]


class DiskArray:
    """D independent disks behind one LocalDisk-compatible facade."""

    def __init__(
        self,
        block_size: int,
        disks: int,
        root: str | None = None,
        work: WorkMeter | None = None,
    ):
        if disks < 1:
            raise ValueError(f"disks must be >= 1, got {disks}")
        self.block_size = block_size
        self.members = [
            LocalDisk(
                block_size,
                root=None if root is None else f"{root}/disk{d}",
            )
            for d in range(disks)
        ]
        self.work = work if work is not None else WorkMeter()
        self._files: dict[str, tuple[list[str | None], int]] = {}
        self._counter = 0

    @property
    def disks(self) -> int:
        return len(self.members)

    # -- aggregate accounting ------------------------------------------------

    @property
    def stats(self) -> DiskStats:
        """Aggregated counters across all member disks (fresh snapshot)."""
        agg = DiskStats()
        for member in self.members:
            agg.blocks_read += member.stats.blocks_read
            agg.blocks_written += member.stats.blocks_written
            agg.rows_read += member.stats.rows_read
            agg.rows_written += member.stats.rows_written
            agg.files_created += member.stats.files_created
        return agg

    def io_steps(self) -> int:
        """Parallel I/O steps so far: the busiest member's block count."""
        return max(m.stats.blocks_total for m in self.members)

    def balance(self) -> float:
        """Busiest-member share of total blocks (1/D is perfect)."""
        totals = [m.stats.blocks_total for m in self.members]
        total = sum(totals)
        if total == 0:
            return 1.0 / self.disks
        return max(totals) / total

    # -- striped file operations ------------------------------------------------

    def spill(self, rel: Relation, hint: str = "run") -> str:
        """Write a relation with its blocks striped round-robin."""
        self._counter += 1
        token = f"{hint}-striped-{self._counter:06d}"
        sub_tokens: list[str | None] = [None] * self.disks
        blocks = -(-rel.nrows // self.block_size) if rel.nrows else 0
        for d in range(self.disks):
            rows = self._member_rows(rel.nrows, d)
            if not rows:
                continue
            index = np.concatenate(
                [
                    np.arange(
                        b * self.block_size,
                        min((b + 1) * self.block_size, rel.nrows),
                    )
                    for b in range(d, blocks, self.disks)
                ]
            )
            sub_tokens[d] = self.members[d].spill(
                rel.take(index), hint=f"{hint}-d{d}"
            )
        self._files[token] = (sub_tokens, rel.nrows)
        return token

    def load(self, token: str) -> Relation:
        """Reassemble a striped file (blocks interleave back in order)."""
        sub_tokens, nrows = self._lookup(token)
        if nrows == 0:
            return Relation.empty(self._width_of(token))
        parts: list[Relation] = []
        positions: list[np.ndarray] = []
        blocks = -(-nrows // self.block_size)
        for d, sub in enumerate(sub_tokens):
            if sub is None:
                continue
            part = self.members[d].load(sub)
            parts.append(part)
            index = np.concatenate(
                [
                    np.arange(
                        b * self.block_size,
                        min((b + 1) * self.block_size, nrows),
                    )
                    for b in range(d, blocks, self.disks)
                ]
            )
            positions.append(index)
        dims = np.empty(
            (nrows, parts[0].width), dtype=np.int64
        )
        measure = np.empty(nrows, dtype=np.float64)
        for part, index in zip(parts, positions):
            dims[index] = part.dims
            measure[index] = part.measure
        return Relation(dims, measure)

    def load_slice(self, token: str, start: int, stop: int) -> Relation:
        """Row-range read touching only the blocks that cover the range.

        Member ``d`` stores global blocks ``d, d+D, d+2D, ...``
        consecutively in its sub-file, so the global block range covering
        ``[start, stop)`` maps to one contiguous sub-slice per member.
        """
        sub_tokens, nrows = self._lookup(token)
        start = max(start, 0)
        stop = min(stop, nrows)
        if stop <= start:
            return Relation.empty(1)
        B, D = self.block_size, self.disks
        first_block = start // B
        last_block = (stop - 1) // B
        rows: dict[int, tuple[Relation, np.ndarray]] = {}
        parts: list[Relation] = []
        positions: list[np.ndarray] = []
        for d, sub in enumerate(sub_tokens):
            if sub is None:
                continue
            # member-owned global blocks inside [first_block, last_block]
            lo_b = first_block + ((d - first_block) % D)
            if lo_b > last_block:
                continue
            member_first = (lo_b - d) // D  # index within the sub-file
            member_count = (last_block - lo_b) // D + 1
            part = self.members[d].load_slice(
                sub, member_first * B, (member_first + member_count) * B
            )
            global_rows = np.concatenate(
                [
                    np.arange(
                        gb * B, min((gb + 1) * B, nrows)
                    )
                    for gb in range(lo_b, last_block + 1, D)
                ]
            )
            parts.append(part)
            positions.append(global_rows[: part.nrows])
        width = parts[0].width
        span = stop - start
        dims = np.zeros((span, width), dtype=np.int64)
        measure = np.zeros(span, dtype=np.float64)
        for part, global_rows in zip(parts, positions):
            mask = (global_rows >= start) & (global_rows < stop)
            dims[global_rows[mask] - start] = part.dims[mask]
            measure[global_rows[mask] - start] = part.measure[mask]
        return Relation(dims, measure)

    def delete(self, token: str) -> None:
        entry = self._files.pop(token, None)
        if entry is None:
            return
        for d, sub in enumerate(entry[0]):
            if sub is not None:
                self.members[d].delete(sub)

    # -- charge hooks (striped) ---------------------------------------------------

    def charge_scan(self, rows: int) -> None:
        for d in range(self.disks):
            self.members[d].charge_scan(self._member_rows(rows, d))

    def charge_store(self, rows: int) -> None:
        for d in range(self.disks):
            self.members[d].charge_store(self._member_rows(rows, d))

    # -- helpers --------------------------------------------------------------------

    def _member_rows(self, nrows: int, d: int) -> int:
        """Rows that land on member ``d`` under round-robin block striping."""
        if nrows <= 0:
            return 0
        blocks = -(-nrows // self.block_size)
        my_blocks = len(range(d, blocks, self.disks))
        if my_blocks == 0:
            return 0
        rows = my_blocks * self.block_size
        # the final (short) block belongs to member (blocks-1) % D
        if (blocks - 1) % self.disks == d:
            rows -= blocks * self.block_size - nrows
        return rows

    def _lookup(self, token: str):
        try:
            return self._files[token]
        except KeyError:
            raise FileNotFoundError(f"no striped file {token!r}") from None

    def _width_of(self, token: str) -> int:
        return 1  # only reached for empty files; width is irrelevant
