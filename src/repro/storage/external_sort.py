"""Memory-budgeted external-memory sort over a per-rank local disk.

Implements the second local-disk primitive of the paper (after the linear
scan): an external sort with the Vitter two-level I/O cost
``O((n/B) · log_{m/B}(n/B))`` block transfers.

Structure
---------
* If the input fits the memory budget ``m``, sort in place (no disk traffic).
* Otherwise: *run formation* — slice the input into ``m``-row chunks, sort
  each, spill to disk; then *merge passes* — repeatedly merge groups of up
  to ``k = max(2, m/B - 1)`` runs into longer runs until one remains.  Each
  pass reads and writes every row once, so the pass count is
  ``ceil(log_k(#runs))``, exactly the textbook envelope.

Runs are merged with the vectorised ``searchsorted`` interleave
(:func:`repro.storage.scan.merge_sorted`) rather than a per-row heap; on a
real machine the merge would stream block-by-block, and the disk accounting
here charges precisely that traffic (one read per run row, one write per
output row, in units of ``B``), while the in-memory compute stays NumPy-fast.
"""

from __future__ import annotations

from functools import reduce

import numpy as np

from repro.storage.disk import LocalDisk
from repro.storage.scan import merge_sorted
from repro.storage.sortkernels import sort_pairs
from repro.storage.table import Relation

__all__ = ["external_sort", "merge_fanin", "sort_cost_blocks"]


def merge_fanin(memory_budget: int, block_size: int) -> int:
    """Merge fan-in ``k``: one block buffer per input run plus one output."""
    return max(2, memory_budget // block_size - 1)


def sort_cost_blocks(n: int, memory_budget: int, block_size: int) -> int:
    """Analytic block-transfer envelope for sorting ``n`` rows.

    Returns the exact traffic the run-formation + merge-pass schedule below
    generates; tests assert the implementation matches it.
    """
    if n <= memory_budget:
        return 0
    blocks = -(-n // block_size)
    runs = -(-n // memory_budget)
    k = merge_fanin(memory_budget, block_size)
    passes = 0
    while runs > 1:
        runs = -(-runs // k)
        passes += 1
    # Run formation writes everything once; each pass reads and writes
    # everything once; the caller reads the final run back.  Per-run block
    # rounding makes the true count slightly higher when run sizes do not
    # align with B; tests treat this value as the aligned-size exact count
    # and a lower bound otherwise.
    return blocks + 2 * blocks * passes + blocks


def external_sort(
    keys: np.ndarray,
    measure: np.ndarray,
    disk: LocalDisk,
    memory_budget: int,
    streaming: bool = False,
    kernel: str | None = None,
    key_bound: int | None = None,
    seg_divisor: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sort ``(keys, measure)`` rows by key, stable, charging disk traffic.

    Parameters
    ----------
    keys, measure:
        Parallel 1-D arrays; the payload follows its key.
    disk:
        The owning rank's local disk (accounting + spill space).
    memory_budget:
        Maximum rows the modelled machine can hold in memory.
    streaming:
        Use the block-streaming k-way merge (:mod:`repro.storage.runs`)
        instead of whole-run loads during merge passes.  Identical output
        and near-identical block accounting; memory held during a merge
        stays at one block per input run.
    kernel, key_bound, seg_divisor:
        Sort-kernel hint and key-structure hints forwarded to
        :func:`repro.storage.sortkernels.sort_pairs`.  Kernels only
        change host wall-clock: the output, the ``charge_sort`` metering
        and the block accounting are identical for every kernel (run
        formation spills the same runs either way; a ``seg_divisor``
        clustering promise holds on every contiguous slice of the
        input, so run-formation chunks inherit it).

    Returns
    -------
    ``(sorted_keys, permuted_measure)`` as new arrays.
    """
    keys = np.asarray(keys)
    measure = np.asarray(measure)
    if keys.shape != measure.shape or keys.ndim != 1:
        raise ValueError(
            f"keys/measure must be parallel 1-D arrays, got {keys.shape} "
            f"and {measure.shape}"
        )
    n = keys.shape[0]
    disk.work.charge_sort(n)
    if n <= memory_budget:
        return sort_pairs(
            keys, measure, kernel,
            key_bound=key_bound, seg_divisor=seg_divisor,
        )

    # Run formation: m-row sorted runs spilled to local disk.
    tokens: list[str] = []
    rows: list[int] = []
    for start in range(0, n, memory_budget):
        stop = min(start + memory_budget, n)
        run_keys, run_measure = sort_pairs(
            keys[start:stop], measure[start:stop], kernel,
            key_bound=key_bound, seg_divisor=seg_divisor,
        )
        run = Relation(run_keys[:, None], run_measure)
        tokens.append(disk.spill(run, hint="sortrun"))
        rows.append(stop - start)

    # Merge passes with fan-in k.
    k = merge_fanin(memory_budget, disk.block_size)
    while len(tokens) > 1:
        next_tokens: list[str] = []
        next_rows: list[int] = []
        for g in range(0, len(tokens), k):
            group = tokens[g : g + k]
            group_rows = rows[g : g + k]
            if len(group) == 1:
                next_tokens.append(group[0])
                next_rows.append(group_rows[0])
                continue
            if streaming:
                from repro.storage.runs import streaming_merge

                merged_k, merged_v = streaming_merge(disk, group, group_rows)
            else:
                loaded = [disk.load(tok) for tok in group]
                merged_k, merged_v = reduce(
                    lambda acc, run: merge_sorted(
                        acc[0], acc[1], run.dims[:, 0], run.measure
                    ),
                    loaded[1:],
                    (loaded[0].dims[:, 0], loaded[0].measure),
                )
            for tok in group:
                disk.delete(tok)
            next_tokens.append(
                disk.spill(Relation(merged_k[:, None], merged_v), hint="sortrun")
            )
            next_rows.append(merged_k.shape[0])
        tokens = next_tokens
        rows = next_rows

    final = disk.load(tokens[0])
    disk.delete(tokens[0])
    return final.dims[:, 0], final.measure
