"""Relational I/O: CSV ingestion with dictionary encoding, and view export.

The paper's pitch for ROLAP is "tight integration with current relational
database technology": cube inputs and outputs are plain relational tables.
This module supplies that boundary:

* :func:`read_csv` loads a fact table, dictionary-encodes each dimension
  column (arbitrary strings/numbers → dense codes), and — because the
  algorithm requires dimensions ordered by non-increasing cardinality —
  reorders the columns, remembering the permutation so results can be
  reported in the user's original terms.
* :func:`write_view_csv` exports a materialised view back to CSV with the
  original dimension names and decoded values.

Only the standard library's ``csv`` is used; no pandas dependency.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.storage.table import Relation

__all__ = ["EncodedDataset", "encode_dimensions", "read_csv", "write_view_csv"]


@dataclass
class EncodedDataset:
    """A dictionary-encoded fact table ready for cube construction."""

    #: Codes, columns already in non-increasing cardinality order.
    relation: Relation
    #: Per-column cardinalities (same order as the relation's columns).
    cardinalities: tuple[int, ...]
    #: Dimension names, same order as the relation's columns.
    names: tuple[str, ...]
    #: Per-column decoders: ``dictionaries[col][code] -> original value``.
    dictionaries: tuple[tuple[str, ...], ...]
    #: Name of the measure column.
    measure_name: str

    def dim_index(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            raise KeyError(
                f"unknown dimension {name!r}; have {self.names}"
            ) from None

    def view_of(self, *names: str) -> tuple[int, ...]:
        """Translate dimension names to a view identifier."""
        return tuple(sorted(self.dim_index(n) for n in names))

    def decode(self, col: int, codes: np.ndarray) -> list[str]:
        table = self.dictionaries[col]
        return [table[int(c)] for c in codes]


def encode_dimensions(
    columns: Sequence[Sequence[str]],
    names: Sequence[str],
    measure: Sequence[float],
    measure_name: str = "measure",
) -> EncodedDataset:
    """Dictionary-encode raw dimension columns into an ordered dataset.

    Columns are sorted by descending cardinality (ties broken by original
    position, keeping the encoding deterministic); codes are assigned by
    first-seen-in-sorted-value order so equal inputs encode identically
    across runs.
    """
    if len(columns) != len(names):
        raise ValueError(
            f"{len(columns)} columns but {len(names)} names"
        )
    n = len(measure)
    for name, col in zip(names, columns):
        if len(col) != n:
            raise ValueError(
                f"column {name!r} has {len(col)} values, measure has {n}"
            )

    encoded = []
    for col in columns:
        values = np.asarray(col, dtype=object)
        uniq, codes = np.unique(values.astype(str), return_inverse=True)
        encoded.append((tuple(uniq.tolist()), codes.astype(np.int64)))

    order = sorted(
        range(len(columns)),
        key=lambda i: (-len(encoded[i][0]), i),
    )
    dims = (
        np.column_stack([encoded[i][1] for i in order])
        if order
        else np.empty((n, 0), dtype=np.int64)
    )
    return EncodedDataset(
        relation=Relation(dims, np.asarray(measure, dtype=np.float64)),
        cardinalities=tuple(len(encoded[i][0]) for i in order),
        names=tuple(names[i] for i in order),
        dictionaries=tuple(encoded[i][0] for i in order),
        measure_name=measure_name,
    )


def read_csv(
    path: str,
    dimensions: Sequence[str],
    measure: str,
    delimiter: str = ",",
) -> EncodedDataset:
    """Load a CSV fact table and encode it for cube construction.

    ``dimensions`` names the group-by columns, ``measure`` the numeric
    column; other columns are ignored.  Raises on missing columns or
    non-numeric measures.
    """
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh, delimiter=delimiter)
        if reader.fieldnames is None:
            raise ValueError(f"{path}: empty CSV (no header)")
        missing = [
            c for c in list(dimensions) + [measure]
            if c not in reader.fieldnames
        ]
        if missing:
            raise ValueError(
                f"{path}: missing columns {missing}; "
                f"header has {reader.fieldnames}"
            )
        columns: list[list[str]] = [[] for _ in dimensions]
        values: list[float] = []
        for line_no, row in enumerate(reader, start=2):
            for slot, name in enumerate(dimensions):
                columns[slot].append(row[name])
            try:
                values.append(float(row[measure]))
            except (TypeError, ValueError):
                raise ValueError(
                    f"{path}:{line_no}: measure {row[measure]!r} is not "
                    "numeric"
                ) from None
    return encode_dimensions(columns, list(dimensions), values, measure)


def write_view_csv(
    path: str,
    view_relation: Relation,
    view: Sequence[int],
    dataset: EncodedDataset,
    delimiter: str = ",",
) -> str:
    """Export one materialised view with decoded dimension values."""
    view = list(view)
    if view_relation.width != len(view):
        raise ValueError(
            f"view has {len(view)} dims but relation is "
            f"{view_relation.width} wide"
        )
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh, delimiter=delimiter)
        writer.writerow(
            [dataset.names[dim] for dim in view] + [dataset.measure_name]
        )
        decoded = [
            dataset.decode(dim, view_relation.dims[:, pos])
            for pos, dim in enumerate(view)
        ]
        for row_idx in range(view_relation.nrows):
            writer.writerow(
                [col[row_idx] for col in decoded]
                + [repr(float(view_relation.measure[row_idx]))]
            )
    return path
