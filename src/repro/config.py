"""Machine and run configuration for the simulated shared-nothing cluster.

The paper's platform is a 16-node Beowulf cluster (1.8 GHz Xeon, 512 MB RAM,
IDE disks, 100 Mbit Ethernet).  We cannot attach real hardware, so every
quantity the paper's analysis reasons about is modelled explicitly here:

* ``p``                -- number of (virtual) processors,
* ``memory_budget``    -- per-processor main-memory budget in *rows* used by
                          the external-memory sort,
* ``block_size``       -- disk block transfer size in *rows* (the ``B`` of
                          the external-memory model),
* ``beta_sec_per_mb``  -- network inverse bandwidth (seconds per megabyte of
                          the maximum per-rank h-relation volume),
* ``latency_sec``      -- per-collective latency (the ``λ`` of a BSP
                          superstep),
* ``disk_sec_per_block`` -- cost charged per block transfer,
* ``compute_scale``    -- multiplier applied to measured per-rank CPU time
                          before it enters the simulated clock.

Defaults are calibrated to the paper's regime: "communication speed is
extremely slow in comparison to computation speed" (100 Mbit switch vs Xeon
CPUs), which is what makes the merge-avoidance machinery worthwhile.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


#: Row width used to convert row counts to bytes in the network/disk cost
#: model.  The paper's 2,000,000-row input is 72 MB, i.e. ~36 bytes/row
#: (8 dims + measure at 4 bytes each).
BYTES_PER_ROW_DEFAULT = 36

#: Balance threshold used by the data-partitioning global sort (Procedure 1,
#: step 1b): "In our implementation we use a threshold value of γ = 1%."
GAMMA_PARTITION_DEFAULT = 0.01

#: Balance threshold used by Merge-Partitions for the case-2/case-3 decision
#: and the case-3 re-sort (Procedure 3, step 5 uses γ = 3%).
GAMMA_MERGE_DEFAULT = 0.03


@dataclass(frozen=True)
class MachineSpec:
    """Static description of the simulated shared-nothing machine.

    Instances are immutable; derive variants with :meth:`with_processors`
    or :func:`dataclasses.replace`.
    """

    #: Number of virtual processors (MPI ranks).
    p: int = 4
    #: Execution backend for the SPMD engine: ``"thread"`` runs ranks as
    #: threads in one process (deterministic default; the GIL serialises
    #: Python-level rank code, so ``host_seconds`` does not improve with
    #: ``p``), ``"process"`` forks one worker process per rank with
    #: shared-memory collectives (``host_seconds`` scales with real
    #: cores).  Simulated-time accounting is backend-independent.
    backend: str = "thread"
    #: Per-processor in-memory row budget for external-memory operations.
    #: The default mirrors the paper's regime (512 MB nodes vs a 72-360 MB
    #: data set: sorts run in memory at benchmark scales on the sequential
    #: baseline too, so speedups stay sub-linear as in the paper).  Shrink
    #: it to force the external-memory sort paths.
    memory_budget: int = 1 << 21
    #: Disk block size in rows (``B`` in the external-memory model).
    block_size: int = 1 << 10
    #: Seconds charged per megabyte of max-per-rank h-relation traffic.
    #: 100 Mbit Ethernet moves ~12.5 MB/s; 0.08 s/MB matches that era.
    beta_sec_per_mb: float = 0.08
    #: Fixed latency charged per collective operation (seconds).
    latency_sec: float = 1e-3
    #: Seconds charged per disk block transfer.  7200 RPM IDE streamed
    #: ~25 MB/s; one 1024-row (36 KB) block ≈ 1.4 ms.
    disk_sec_per_block: float = 1.4e-3
    #: Independent local disks per processor (Section 2: the method
    #: generalises via Vitter-Shriver striping; the paper's own nodes had
    #: two IDE drives).  D disks move D blocks per I/O step, so the
    #: per-block cost divides by D.
    disks_per_node: int = 1
    #: Process-backend data plane: pool shared-memory segments in a
    #: per-worker arena and reuse them across supersteps (see
    #: :mod:`repro.mpi.shm`).  ``False`` falls back to the
    #: create/unlink-per-payload plane — kept as the benchmark baseline.
    #: Ignored by the thread backend, which never copies payloads at all.
    shm_pool: bool = True
    #: Process-backend data plane: decode received arrays as read-only
    #: views aliasing the shared segment instead of private copies.  Rank
    #: code mutating a received array must go through
    #: :func:`repro.mpi.shm.materialize` — the same read-only contract
    #: the thread backend has always imposed.  ``False`` restores
    #: copy-on-decode.  Ignored by the thread backend.
    shm_zero_copy: bool = True
    #: Host sort kernel used for every packed-key sort: ``"auto"`` (the
    #: calibrated cost model picks per call), ``"argsort"``, ``"radix"``,
    #: ``"segmented"`` or ``"presorted"`` — see
    #: :mod:`repro.storage.sortkernels`.  Kernels change *host* wall-clock
    #: only; outputs, ``charge_sort`` metering and disk-block accounting
    #: are bit-identical across kernels.  The ``REPRO_SORT_KERNEL``
    #: environment variable overrides this (CI forces each kernel in turn).
    sort_kernel: str = "auto"
    #: Multiplier from measured Python CPU seconds to simulated seconds.
    #: Host CPU is a *minor* term of the model (see the work-charge
    #: constants below, which carry the deterministic per-row costs);
    #: measured CPU mainly keeps genuinely unmodelled Python work visible.
    #: Set to 0 to drop the measured term entirely, making the simulated
    #: clock fully deterministic (used by the backend-equivalence tests).
    compute_scale: float = 1.0
    #: Modelled CPU cost of sorting: seconds per row per log2-level
    #: (``sort(n) = sort_sec_per_row_level · n · max(1, log2 n)``).
    #: 0.2 µs/row-level ≈ a 1.8 GHz Xeon comparison-sorting 36-byte
    #: records; it reproduces the paper's sequential magnitudes
    #: (n = 1M, 255 views → O(10^3) seconds).
    sort_sec_per_row_level: float = 2.0e-7
    #: Modelled CPU cost of streaming work (scan-aggregate, merge, pack):
    #: seconds per row touched.
    scan_sec_per_row: float = 2.0e-7
    #: Bytes per relation row, for cost conversions.
    bytes_per_row: int = BYTES_PER_ROW_DEFAULT
    #: Seed for randomised runtime behaviour that must stay reproducible
    #: across ranks and retries — currently the recovery backoff's full
    #: jitter (see :meth:`RecoveryPolicy.backoff_for`).
    seed: int = 0
    #: Supervision: how often (real seconds) the process backend's
    #: coordinator probes a silent worker's liveness while waiting for its
    #: next superstep message.  Protocol messages double as heartbeats, so
    #: a healthy worker is never probed; the interval only bounds how fast
    #: a SIGKILLed worker is detected.
    heartbeat_interval: float = 0.25
    #: Supervision: real seconds of pipe silence after which a *live*
    #: worker is declared a hung straggler (:class:`~repro.mpi.errors.
    #: RankHung`, a transient failure).  ``None`` falls back to the
    #: resolved barrier timeout — long compute between collectives never
    #: false-triggers by default.
    suspect_after: float | None = None
    #: Upper bound (real seconds) on how long one rank waits for its peers
    #: before the run is declared wedged, on both backends.  ``None`` uses
    #: the module default (600 s); the ``REPRO_BARRIER_TIMEOUT`` env var
    #: overrides everything (see
    #: :func:`repro.mpi.comm.resolve_barrier_timeout`).
    barrier_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.p < 1:
            raise ValueError(f"p must be >= 1, got {self.p}")
        if self.memory_budget < 4:
            raise ValueError(
                f"memory_budget must be >= 4 rows, got {self.memory_budget}"
            )
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")
        if self.block_size > self.memory_budget:
            raise ValueError(
                "block_size must not exceed memory_budget "
                f"({self.block_size} > {self.memory_budget})"
            )
        if self.beta_sec_per_mb < 0 or self.latency_sec < 0:
            raise ValueError("network cost parameters must be non-negative")
        if self.disk_sec_per_block < 0:
            raise ValueError("disk_sec_per_block must be non-negative")
        if self.disks_per_node < 1:
            raise ValueError("disks_per_node must be >= 1")
        if self.compute_scale < 0:
            raise ValueError("compute_scale must be non-negative")
        if self.backend not in ("thread", "process"):
            raise ValueError(
                f"unknown execution backend: {self.backend!r} "
                "(expected 'thread' or 'process')"
            )
        if self.bytes_per_row < 1:
            raise ValueError("bytes_per_row must be >= 1")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.suspect_after is not None and self.suspect_after <= 0:
            raise ValueError("suspect_after must be positive (or None)")
        if self.barrier_timeout is not None and self.barrier_timeout <= 0:
            raise ValueError("barrier_timeout must be positive (or None)")
        from repro.storage.sortkernels import KERNEL_NAMES

        if self.sort_kernel not in KERNEL_NAMES:
            raise ValueError(
                f"unknown sort_kernel: {self.sort_kernel!r} "
                f"(expected one of {KERNEL_NAMES})"
            )

    def with_processors(self, p: int) -> "MachineSpec":
        """Return a copy of this spec with a different processor count."""
        return replace(self, p=p)

    def with_backend(self, backend: str) -> "MachineSpec":
        """Return a copy of this spec with a different execution backend."""
        return replace(self, backend=backend)

    def rows_to_mb(self, rows: int) -> float:
        """Convert a row count to megabytes under this spec's row width."""
        return rows * self.bytes_per_row / 1e6

    @property
    def effective_disk_sec_per_block(self) -> float:
        """Per-block cost with Vitter-Shriver striping over D local disks."""
        return self.disk_sec_per_block / self.disks_per_node

    def comm_cost(self, max_rank_bytes: int) -> float:
        """BSP cost of one h-relation whose largest per-rank volume
        (bytes in + bytes out on the busiest rank) is ``max_rank_bytes``."""
        return self.latency_sec + self.beta_sec_per_mb * max_rank_bytes / 1e6


@dataclass(frozen=True)
class CubeConfig:
    """Algorithm-level knobs of the parallel cube construction."""

    #: Balance threshold γ for the partitioning sort (Procedure 1 step 1b).
    gamma_partition: float = GAMMA_PARTITION_DEFAULT
    #: Balance threshold γ for Merge-Partitions case selection / re-sort.
    gamma_merge: float = GAMMA_MERGE_DEFAULT
    #: Samples per processor used by the size-estimation array
    #: (paper: "a sample of only 100 p equal spaced sample elements").
    sample_factor: int = 100
    #: Use one global schedule tree per partition (paper's choice) or let
    #: every rank build its own local tree (the Figure 7 comparator).
    global_schedule_tree: bool = True
    #: Merge-phase policy for non-prefix views: "adaptive" (the paper's
    #: γ-driven case-2/case-3 choice), "always_resort" (every non-prefix
    #: view through the case-3 global sort) or "never_resort" (ownership
    #: routing regardless of imbalance) — the latter two exist for the
    #: ablation benchmarks.
    merge_policy: str = "adaptive"
    #: Derive each Di-root from the (already aggregated, already locally
    #: present) D(i-1)-root instead of re-sorting the raw chunk — an
    #: optimisation beyond the paper (its Procedure 1 step 1a always
    #: starts from the raw subset).  Aggregation is associative, so the
    #: result is identical; the sort input shrinks from n/p raw rows to
    #: the previous root's (smaller) row count.
    incremental_roots: bool = False
    #: Give Pipesort phase 1's ``sort_cost`` a shared-prefix discount so
    #: the matcher prefers sort parents whose order shares a leading
    #: prefix with the child — exactly the re-sorts the segmented kernel
    #: accelerates.  On by default; disable for the paper-faithful cost
    #: model (the paper's Pipesort has no such term).
    sort_prefix_discount: bool = True
    #: Aggregate function applied to the measure column.
    agg: str = "sum"
    #: Heterogeneity-aware partitioning: meter per-rank throughput during
    #: the sample-sort phase and size each rank's h-relation share
    #: proportional to its measured speed (Cérin-style non-uniform
    #: pivots) instead of uniform ``n/p``.  Content is unchanged — only
    #: the distribution across ranks moves.
    hetero: bool = False
    #: Clamp on any rank's share of the data under ``hetero``: no rank
    #: receives less than ``hetero_floor/p`` of the rows...
    hetero_floor: float = 0.5
    #: ...nor more than ``hetero_ceil/p``.
    hetero_ceil: float = 2.0
    #: EMA weight of each fresh throughput observation when updating the
    #: speed model between cube iterations (1.0 = always trust the latest
    #: probe, ignore the prior).
    hetero_blend: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.gamma_partition <= 1.0:
            raise ValueError(
                f"gamma_partition must be in (0, 1], got {self.gamma_partition}"
            )
        if not 0.0 < self.gamma_merge <= 1.0:
            raise ValueError(
                f"gamma_merge must be in (0, 1], got {self.gamma_merge}"
            )
        if self.sample_factor < 1:
            raise ValueError("sample_factor must be >= 1")
        if self.merge_policy not in ("adaptive", "always_resort", "never_resort"):
            raise ValueError(
                f"unknown merge_policy: {self.merge_policy!r}"
            )
        if self.agg not in ("sum", "count", "min", "max"):
            raise ValueError(f"unsupported aggregate: {self.agg!r}")
        if not 0.0 < self.hetero_floor <= 1.0 <= self.hetero_ceil:
            raise ValueError(
                "need 0 < hetero_floor <= 1 <= hetero_ceil, got "
                f"floor={self.hetero_floor} ceil={self.hetero_ceil}"
            )
        if not 0.0 < self.hetero_blend <= 1.0:
            raise ValueError(
                f"hetero_blend must be in (0, 1], got {self.hetero_blend}"
            )


@dataclass(frozen=True)
class RecoveryPolicy:
    """How :func:`~repro.core.cube.build_data_cube` reacts to rank failures.

    On a retryable failure (an injected fault, a corrupt payload, a dead
    or timed-out rank — any :class:`~repro.mpi.errors.MPIError` except
    :class:`~repro.mpi.errors.CollectiveMisuse`, which is a programming
    error and would fail identically on every retry), the driver restarts
    the SPMD run.  With a checkpoint directory configured the restart
    resumes from the last dimension iteration every rank completed;
    without one it re-executes from scratch.  Either way the failed
    attempts' committed simulated time, traffic and disk transfers are
    folded into the final metrics, so recovery cost is never hidden.

    ``mode="degrade"`` adds elastic width reduction on *permanent* rank
    loss (see :func:`repro.mpi.errors.classify_failure`): the dead rank is
    blacklisted, its checkpointed state is resharded across the p' = p - k
    survivors, and the build continues at width p'.  Transient failures
    still retry at the current width, with an exponential backoff and a
    fresh retry budget after every width change; a rank that exhausts the
    transient budget is promoted to a permanent loss.  ``min_ranks`` is
    the floor below which degradation gives up and re-raises.
    """

    #: Same-width restart attempts per width (0 = no transient retries).
    max_retries: int = 2
    #: Base simulated seconds charged per restart (models failure
    #: detection + respawn on the paper's cluster, e.g. an MPI job
    #: re-launch).  Grows exponentially with the attempt number:
    #: ``backoff_seconds * backoff_growth**(attempt - 1)``.
    backoff_seconds: float = 0.0
    #: Exponential growth factor of the restart backoff.
    backoff_growth: float = 2.0
    #: ``"restart"`` retries every failure at full width (the PR-2
    #: behaviour); ``"degrade"`` drops permanently lost ranks and
    #: continues at reduced width.
    mode: str = "restart"
    #: Smallest width degrade mode may shrink to; losing a rank that
    #: would drop below this floor re-raises the failure instead.
    min_ranks: int = 1
    #: Speculative straggler re-execution: when a *transient* hang
    #: (:class:`~repro.mpi.errors.RankHung`) names a culprit rank and
    #: checkpoints are configured, race a full-width retry (the straggler
    #: may have recovered) against a width-(p-1) continuation that clones
    #: the straggler's checkpoint chain onto the survivors; the first
    #: finisher (smaller simulated completion time) wins, the loser is
    #: cancelled, and both attempts' costs are banked in the metrics.
    speculate: bool = False
    #: Add seeded *full jitter* to the exponential restart backoff —
    #: each retry waits ``U(0, backoff_seconds * growth**(attempt-1))``
    #: instead of the deterministic full value, so simultaneous transient
    #: failures don't retry in lockstep.  Seeded (from
    #: :attr:`MachineSpec.seed` via ``backoff_for``'s ``seed``), so runs
    #: stay reproducible.
    backoff_jitter: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be non-negative")
        if self.backoff_growth < 1.0:
            raise ValueError("backoff_growth must be >= 1")
        if self.mode not in ("restart", "degrade"):
            raise ValueError(
                f"unknown recovery mode: {self.mode!r} "
                "(expected 'restart' or 'degrade')"
            )
        if self.min_ranks < 1:
            raise ValueError(f"min_ranks must be >= 1, got {self.min_ranks}")

    def backoff_for(self, attempt: int, seed: int | None = None) -> float:
        """Simulated backoff charged before retry number ``attempt``
        (exponential in the attempt index; attempt 1 pays the base).

        With :attr:`backoff_jitter` the full exponential value becomes
        the *upper bound* of a seeded uniform draw (AWS-style full
        jitter); ``(seed, attempt)`` keys the RNG, so every attempt's
        draw is independent yet reproducible.
        """
        if attempt < 1:
            return 0.0
        base = self.backoff_seconds * self.backoff_growth ** (attempt - 1)
        if not self.backoff_jitter or base <= 0.0:
            return base
        import numpy as np

        rng = np.random.default_rng(
            (0 if seed is None else int(seed), int(attempt))
        )
        return float(rng.uniform(0.0, base))

    def is_retryable(self, exc: BaseException) -> bool:
        # Imported lazily: repro.mpi.__init__ pulls in the engine, which
        # imports this module back.
        from repro.mpi.errors import CollectiveMisuse, MPIError

        if isinstance(exc, CollectiveMisuse):
            return False
        return isinstance(exc, MPIError)


@dataclass
class RunResult:
    """Outcome record of one parallel cube construction run."""

    #: Simulated parallel wall-clock seconds (BSP model).
    simulated_seconds: float
    #: Real wall-clock seconds the simulation itself took.
    host_seconds: float
    #: Total rows across all views of the produced cube.
    output_rows: int
    #: Number of views materialised.
    view_count: int
    #: Total bytes moved through the virtual network.
    comm_bytes: int
    #: Total disk block transfers across all ranks.
    disk_blocks: int
    #: Free-form per-phase breakdown (phase name -> simulated seconds).
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: Communication-only per-phase breakdown.
    phase_comm_seconds: dict[str, float] = field(default_factory=dict)
    #: Full superstep log (SuperstepRecord objects) — feeds the what-if
    #: network projection and the trace diagnostics.
    superstep_log: list = field(default_factory=list)
    #: SPMD attempts executed (1 = no failures; >1 means recovery ran).
    attempts: int = 1
    #: Simulated seconds consumed by *failed* attempts plus recovery
    #: backoff — already included in :attr:`simulated_seconds`.
    recovered_seconds: float = 0.0
    #: Network bytes of failed attempts — included in :attr:`comm_bytes`.
    recovered_bytes: int = 0
    #: Disk block transfers of failed attempts — included in
    #: :attr:`disk_blocks`.
    recovered_blocks: int = 0
    #: Shared-memory data-plane counters of the process backend (segment
    #: leases, pool hit rate, bytes reused — see
    #: :meth:`repro.mpi.shm.DataPlane.stats`), aggregated over all worker
    #: ranks and attempts.  Empty for the thread backend.
    shm_pool: dict = field(default_factory=dict)
    #: Ranks permanently lost (blacklisted) during a degraded-mode run,
    #: in loss order, numbered in the width they died at.  Empty unless
    #: ``RecoveryPolicy(mode="degrade")`` dropped someone.
    ranks_lost: list[int] = field(default_factory=list)
    #: Width the successful attempt ran at (== the spec's ``p`` unless
    #: degraded-mode recovery shrank the cluster).  0 in results produced
    #: by code paths that predate degradation (baselines).
    final_width: int = 0
    #: Same-width transient retries consumed across the whole run (every
    #: width's budget counted; permanent losses are not included).
    transient_retries: int = 0
    #: Post-build integrity audit summary (see :func:`repro.core.audit.
    #: audit_cube`): ``{"ok": bool, "checks": {...}, "issues": [...]}``.
    #: ``None`` when the audit was not requested.
    audit: dict | None = None
    #: The winning attempt's final per-rank speed model
    #: (:meth:`repro.mpi.speed.RankSpeedModel.to_dict`); ``None`` unless
    #: ``CubeConfig.hetero`` was on.
    speed_model: dict | None = None
    #: Speculative straggler races run (``RecoveryPolicy.speculate``).
    speculations: int = 0
    #: Races where the losing attempt also completed and its duplicate
    #: result was discarded (exactly once per race).
    speculation_discards: int = 0
    #: Per-rank cumulative local-work seconds of the winning attempt —
    #: the finish-time spread across ranks (empty for baselines).
    rank_busy_seconds: list[float] = field(default_factory=list)

    def summary(self) -> str:
        """One-line human-readable summary."""
        text = (
            f"{self.view_count} views, {self.output_rows} rows, "
            f"simulated {self.simulated_seconds:.2f}s "
            f"(host {self.host_seconds:.2f}s, "
            f"{self.comm_bytes / 1e6:.1f} MB communicated, "
            f"{self.disk_blocks} disk blocks)"
        )
        if self.attempts > 1:
            text += (
                f" [recovered after {self.attempts - 1} failed attempt(s), "
                f"{self.recovered_seconds:.2f}s re-execution]"
            )
        if self.ranks_lost:
            lost = ",".join(str(r) for r in self.ranks_lost)
            text += (
                f" [degraded: lost rank(s) {lost}, "
                f"finished at p={self.final_width}]"
            )
        if self.speculations:
            text += (
                f" [speculated {self.speculations} race(s), "
                f"{self.speculation_discards} duplicate(s) discarded]"
            )
        if self.audit is not None:
            text += " [audit: OK]" if self.audit.get("ok") else " [audit: FAILED]"
        return text
