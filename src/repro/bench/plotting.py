"""Terminal charts for experiment series.

The paper's figures are line plots; these ASCII renderings give the
benchmark output the same at-a-glance readability without any plotting
dependency.  Used by ``python -m repro.bench`` and stored alongside the
tables in ``benchmarks/results/``.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import Series

__all__ = ["ascii_chart"]

_MARKS = "ox+*#@%&"


def ascii_chart(
    title: str,
    series: Sequence[Series],
    y: str = "speedup",
    width: int = 56,
    height: int = 16,
) -> str:
    """Render curves as a character grid.

    ``y`` selects the metric: ``"speedup"``, ``"seconds"`` or ``"comm"``.
    X positions use the series' x values scaled linearly; one mark
    character per series, with a legend below.
    """
    pts: list[tuple[float, float, int]] = []
    for idx, s in enumerate(series):
        for pt in s.points:
            if y == "speedup":
                val = pt.speedup
            elif y == "comm":
                val = pt.comm_mb
            else:
                val = pt.seconds
            if val is not None:
                pts.append((pt.x, float(val), idx))
    if not pts:
        return f"{title}\n  (no data)"

    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = 0.0, max(ys) * 1.05 or 1.0
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, val, idx in pts:
        col = round((x - x_lo) / x_span * (width - 1))
        row = height - 1 - round(val / y_hi * (height - 1))
        row = min(max(row, 0), height - 1)
        grid[row][col] = _MARKS[idx % len(_MARKS)]

    lines = [title]
    for r, row in enumerate(grid):
        y_val = y_hi * (height - 1 - r) / (height - 1)
        label = f"{y_val:8.1f} |" if r % 4 == 0 or r == height - 1 else "         |"
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    x_axis = f"{x_lo:g}".ljust(width - len(f"{x_hi:g}")) + f"{x_hi:g}"
    lines.append("          " + x_axis)
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {s.label}" for i, s in enumerate(series)
    )
    lines.append(f"          [{y}]  {legend}")
    return "\n".join(lines)
