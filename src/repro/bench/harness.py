"""Experiment plumbing shared by all figure reproductions.

Scale
-----
The paper runs 1M-10M row inputs on a real 16-node cluster; Python's
per-row constants put that out of a test-suite budget, so every experiment
runs at a configurable scale.  ``BenchScale`` carries the two knobs:

* ``n_base`` — the row count that stands in for the paper's n = 1,000,000
  (default 25,000, i.e. a 1:40 scale),
* ``processors`` — the processor counts swept (default 1..16 like the
  paper's x-axes).

Environment overrides: ``REPRO_BENCH_N``, ``REPRO_BENCH_MAXP``, and
``REPRO_BENCH_BACKEND`` (execution backend for every cube build —
``thread`` or ``process``; simulated results are backend-independent, so
this only changes how long the experiments take on the host).  All shape
conclusions (who wins, where curves bend) are stable across scales;
EXPERIMENTS.md records the scale each stored result used.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.config import CubeConfig, MachineSpec
from repro.core.cube import CubeResult, build_data_cube
from repro.baselines.sequential import sequential_cube
from repro.data.generator import DatasetSpec, generate_dataset
from repro.storage.table import Relation

__all__ = [
    "BenchScale",
    "Series",
    "SeriesPoint",
    "backend_from_env",
    "scale_from_env",
    "speedup_sweep",
]


@dataclass(frozen=True)
class BenchScale:
    """Experiment scale knobs."""

    #: Stand-in for the paper's n = 1,000,000 rows.
    n_base: int = 25_000
    #: Processor counts swept where the paper sweeps 1..16.
    processors: tuple[int, ...] = (1, 2, 4, 8, 16)

    @property
    def scale_factor(self) -> float:
        """Row-count ratio to the paper's base size."""
        return self.n_base / 1_000_000


def scale_from_env() -> BenchScale:
    """Build a :class:`BenchScale` honouring environment overrides."""
    n_base = int(os.environ.get("REPRO_BENCH_N", 25_000))
    max_p = int(os.environ.get("REPRO_BENCH_MAXP", 16))
    processors = tuple(p for p in (1, 2, 4, 8, 16) if p <= max_p)
    return BenchScale(n_base=n_base, processors=processors or (1,))


def backend_from_env() -> str:
    """Execution backend for benchmark cube builds (``REPRO_BENCH_BACKEND``)."""
    return os.environ.get("REPRO_BENCH_BACKEND", "thread")


@dataclass
class SeriesPoint:
    """One measured point of one curve."""

    x: float
    seconds: float
    speedup: float | None = None
    comm_mb: float | None = None
    extra: dict = field(default_factory=dict)


@dataclass
class Series:
    """One labelled curve (e.g. "n=2,000,000" in Figure 5a)."""

    label: str
    x_name: str
    points: list[SeriesPoint] = field(default_factory=list)

    def xs(self) -> list[float]:
        return [pt.x for pt in self.points]

    def seconds(self) -> list[float]:
        return [pt.seconds for pt in self.points]

    def speedups(self) -> list[float | None]:
        return [pt.speedup for pt in self.points]


def speedup_sweep(
    label: str,
    dataset: Relation,
    cardinalities: Sequence[int],
    processors: Sequence[int],
    config: CubeConfig | None = None,
    builder: Callable[..., CubeResult] | None = None,
    sequential_seconds: float | None = None,
    spec_base: MachineSpec | None = None,
) -> Series:
    """Measure parallel wall-clock and relative speedup across ``p``.

    ``builder`` defaults to :func:`build_data_cube`; pass a baseline
    builder (e.g. the local-tree variant) to produce its curve instead.
    ``sequential_seconds`` (the speedup denominator) is measured once with
    the paper's sequential Pipesort when not supplied.
    """
    builder = builder or build_data_cube
    spec_base = spec_base or MachineSpec(backend=backend_from_env())
    if sequential_seconds is None:
        seq = sequential_cube(dataset, cardinalities, spec_base, config)
        sequential_seconds = seq.metrics.simulated_seconds
    series = Series(label=label, x_name="processors")
    for p in processors:
        cube = builder(
            dataset, cardinalities, spec_base.with_processors(p), config
        )
        series.points.append(
            SeriesPoint(
                x=p,
                seconds=cube.metrics.simulated_seconds,
                speedup=sequential_seconds / cube.metrics.simulated_seconds,
                comm_mb=cube.metrics.comm_bytes / 1e6,
                extra={
                    "output_rows": cube.metrics.output_rows,
                    "views": cube.metrics.view_count,
                },
            )
        )
    return series


def dataset_for(spec: DatasetSpec) -> Relation:
    """Generate (and cache per-process) the dataset of one experiment."""
    key = (spec.n, spec.cardinalities, spec.alphas, spec.seed)
    cached = _DATASET_CACHE.get(key)
    if cached is None:
        cached = generate_dataset(spec)
        _DATASET_CACHE[key] = cached
    return cached


_DATASET_CACHE: dict = {}
