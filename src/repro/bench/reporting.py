"""Plain-text rendering of experiment series (paper-figure style tables)."""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import Series

__all__ = ["format_series_table", "format_kv_block", "format_shm_pool"]


def format_series_table(
    title: str,
    series: Sequence[Series],
    show_speedup: bool = True,
    show_comm: bool = False,
) -> str:
    """Render curves as one aligned text table, x values as rows."""
    if not series:
        return f"{title}\n  (no data)"
    xs = sorted({pt.x for s in series for pt in s.points})
    x_name = series[0].x_name
    headers = [x_name]
    for s in series:
        headers.append(f"{s.label} [s]")
        if show_speedup:
            headers.append(f"{s.label} [speedup]")
        if show_comm:
            headers.append(f"{s.label} [MB]")
    rows = []
    for x in xs:
        row = [_fmt(x)]
        for s in series:
            pt = next((q for q in s.points if q.x == x), None)
            row.append("-" if pt is None else f"{pt.seconds:.2f}")
            if show_speedup:
                row.append(
                    "-" if pt is None or pt.speedup is None
                    else f"{pt.speedup:.2f}"
                )
            if show_comm:
                row.append(
                    "-" if pt is None or pt.comm_mb is None
                    else f"{pt.comm_mb:.2f}"
                )
        rows.append(row)
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows))
        for c in range(len(headers))
    ]
    lines = [title]
    lines.append("  " + "  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  " + "  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  " + "  ".join(c.rjust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_kv_block(title: str, pairs: Sequence[tuple[str, str]]) -> str:
    """Render scalar findings (headline numbers) as an aligned block."""
    width = max((len(k) for k, _ in pairs), default=0)
    lines = [title]
    for key, value in pairs:
        lines.append(f"  {key.ljust(width)} : {value}")
    return "\n".join(lines)


def format_shm_pool(title: str, pool: dict) -> str:
    """Render the process backend's data-plane counters
    (:attr:`repro.config.RunResult.shm_pool`) as a findings block.

    Empty stats (thread backend) render as a one-line note so callers
    can print unconditionally.
    """
    if not pool:
        return f"{title}\n  (no shared-memory data plane: thread backend)"
    mode = (
        f"{'pooled' if pool.get('pooled') else 'unpooled'}, "
        f"{'zero-copy' if pool.get('zero_copy') else 'copy'}"
    )
    pairs = [
        ("mode", mode),
        ("segment leases", str(pool.get("leases", 0))),
        ("segments created", str(pool.get("segments_created", 0))),
        ("segments reused", str(pool.get("segments_reused", 0))),
        ("pool hit rate", f"{pool.get('hit_rate', 0.0):.1%}"),
        ("bytes created", f"{pool.get('bytes_created', 0) / 1e6:.2f} MB"),
        ("bytes reused", f"{pool.get('bytes_reused', 0) / 1e6:.2f} MB"),
        ("attaches", str(pool.get("attaches", 0))),
        ("attach reuses", str(pool.get("attach_reuses", 0))),
    ]
    return format_kv_block(title, pairs)


def _fmt(x: float) -> str:
    if float(x).is_integer():
        return str(int(x))
    return f"{x:g}"
