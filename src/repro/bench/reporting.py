"""Plain-text rendering of experiment series (paper-figure style tables)."""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import Series

__all__ = ["format_series_table", "format_kv_block"]


def format_series_table(
    title: str,
    series: Sequence[Series],
    show_speedup: bool = True,
    show_comm: bool = False,
) -> str:
    """Render curves as one aligned text table, x values as rows."""
    if not series:
        return f"{title}\n  (no data)"
    xs = sorted({pt.x for s in series for pt in s.points})
    x_name = series[0].x_name
    headers = [x_name]
    for s in series:
        headers.append(f"{s.label} [s]")
        if show_speedup:
            headers.append(f"{s.label} [speedup]")
        if show_comm:
            headers.append(f"{s.label} [MB]")
    rows = []
    for x in xs:
        row = [_fmt(x)]
        for s in series:
            pt = next((q for q in s.points if q.x == x), None)
            row.append("-" if pt is None else f"{pt.seconds:.2f}")
            if show_speedup:
                row.append(
                    "-" if pt is None or pt.speedup is None
                    else f"{pt.speedup:.2f}"
                )
            if show_comm:
                row.append(
                    "-" if pt is None or pt.comm_mb is None
                    else f"{pt.comm_mb:.2f}"
                )
        rows.append(row)
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows))
        for c in range(len(headers))
    ]
    lines = [title]
    lines.append("  " + "  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  " + "  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  " + "  ".join(c.rjust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_kv_block(title: str, pairs: Sequence[tuple[str, str]]) -> str:
    """Render scalar findings (headline numbers) as an aligned block."""
    width = max((len(k) for k, _ in pairs), default=0)
    lines = [title]
    for key, value in pairs:
        lines.append(f"  {key.ljust(width)} : {value}")
    return "\n".join(lines)


def _fmt(x: float) -> str:
    if float(x).is_integer():
        return str(int(x))
    return f"{x:g}"
