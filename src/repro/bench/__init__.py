"""Benchmark harness: regenerates every figure of the paper's evaluation.

The paper's evaluation (Section 4) consists of Figures 5-11 plus two
headline claims; :mod:`repro.bench.experiments` has one entry point per
figure, each returning a :class:`repro.bench.harness.Series` bundle that
prints in the same rows/axes the paper plots.  The ``benchmarks/``
directory wires these into pytest-benchmark; ``python -m repro.bench``
regenerates everything and writes the EXPERIMENTS.md data block.
"""

from repro.bench.harness import BenchScale, Series, SeriesPoint, scale_from_env
from repro.bench.reporting import format_series_table

__all__ = [
    "BenchScale",
    "Series",
    "SeriesPoint",
    "format_series_table",
    "scale_from_env",
]
