"""Regenerate every experiment and print paper-style tables.

Usage::

    python -m repro.bench                 # all figures, default scale
    REPRO_BENCH_N=50000 python -m repro.bench fig5 fig8
    REPRO_BENCH_EXPORT=out/ python -m repro.bench   # also write CSV + JSON

The output block is what EXPERIMENTS.md's measured sections are built from.
"""

from __future__ import annotations

import os
import sys
import time

from repro.bench import experiments
from repro.bench.harness import scale_from_env
from repro.bench.plotting import ascii_chart
from repro.bench.reporting import format_kv_block, format_series_table

ALL = {
    "fig5": (experiments.fig5_speedup, {"show_comm": False}),
    "fig6": (experiments.fig6_partial, {"show_comm": False}),
    "fig7": (experiments.fig7_schedule_trees, {"show_comm": False}),
    "fig8": (experiments.fig8_skew, {"show_speedup": False, "show_comm": True}),
    "fig9": (experiments.fig9_cardinality, {"show_comm": False}),
    "fig10": (experiments.fig10_dimensionality, {"show_speedup": False, "show_comm": True}),
    "fig11": (experiments.fig11_balance, {"show_comm": False}),
    "headline": (experiments.headline, {}),
    "ablation-merge": (experiments.ablation_merge_cases, {"show_comm": True}),
    "ablation-onedim": (experiments.ablation_onedim, {"show_comm": False}),
}


def main(argv: list[str]) -> int:
    wanted = argv or list(ALL)
    unknown = [w for w in wanted if w not in ALL]
    if unknown:
        print(f"unknown experiments: {unknown}; choose from {list(ALL)}")
        return 2
    scale = scale_from_env()
    print(
        f"# scale: n_base={scale.n_base:,} "
        f"(1:{1 / scale.scale_factor:.0f} of the paper's 1M), "
        f"p in {list(scale.processors)}\n"
    )
    for name in wanted:
        fn, fmt = ALL[name]
        t0 = time.perf_counter()
        title, payload, notes = fn(scale)
        took = time.perf_counter() - t0
        if name == "headline":
            print(format_kv_block(title, payload))
        else:
            print(format_series_table(title, payload, **fmt))
            metric = "speedup" if fmt.get("show_speedup", True) else "seconds"
            print()
            print(ascii_chart(f"{title} — chart", payload, y=metric))
            export_dir = os.environ.get("REPRO_BENCH_EXPORT")
            if export_dir:
                from repro.bench.export import series_to_csv, series_to_json

                os.makedirs(export_dir, exist_ok=True)
                series_to_csv(os.path.join(export_dir, f"{name}.csv"), payload)
                series_to_json(
                    os.path.join(export_dir, f"{name}.json"), title, payload
                )
        print(f"  note: {notes}")
        print(f"  (measured in {took:.1f} host-seconds)\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
