"""Machine-readable export of experiment series (CSV / JSON).

The text tables in ``benchmarks/results/`` are for humans; these exports
feed plotting scripts and regression tracking.  ``python -m repro.bench``
writes them next to the text tables when ``REPRO_BENCH_EXPORT`` is set.
"""

from __future__ import annotations

import csv
import json
from typing import Sequence

from repro.bench.harness import Series

__all__ = ["series_to_csv", "series_to_json"]


def series_to_csv(path: str, series: Sequence[Series]) -> str:
    """One row per (series, x) point with every metric as a column."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["series", "x_name", "x", "seconds", "speedup", "comm_mb"]
        )
        for s in series:
            for pt in s.points:
                writer.writerow(
                    [
                        s.label,
                        s.x_name,
                        pt.x,
                        f"{pt.seconds:.6f}",
                        "" if pt.speedup is None else f"{pt.speedup:.6f}",
                        "" if pt.comm_mb is None else f"{pt.comm_mb:.6f}",
                    ]
                )
    return path


def series_to_json(path: str, title: str, series: Sequence[Series]) -> str:
    """A self-describing JSON document per experiment."""
    payload = {
        "title": title,
        "series": [
            {
                "label": s.label,
                "x_name": s.x_name,
                "points": [
                    {
                        "x": pt.x,
                        "seconds": pt.seconds,
                        "speedup": pt.speedup,
                        "comm_mb": pt.comm_mb,
                        "extra": pt.extra,
                    }
                    for pt in s.points
                ],
            }
            for s in series
        ],
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1)
    return path
