"""One entry point per figure of the paper's evaluation (Section 4).

Every function returns ``(title, series, notes)`` where ``series`` is a
list of :class:`~repro.bench.harness.Series` ready for
:func:`~repro.bench.reporting.format_series_table`.  Parameters follow the
paper exactly, modulo the documented scale-down and two cardinality
substitutions forced by the 63-bit packed-key space (see DESIGN.md):

* Figure 9 mix A uses ``|Di| = 128`` instead of 256 (256^8 = 2^64 exceeds
  the key space; the sparsity regime is unchanged at our row counts).
* Figure 10 sweeps dimensionality with ``|Di| = 32`` instead of 256
  (256^10 = 2^80); the figure's subject — output size growing ~2^d — is
  preserved.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.baselines.local_tree import local_tree_cube
from repro.baselines.onedim import onedim_partition_cube
from repro.baselines.sequential import sequential_cube
from repro.bench.harness import (
    BenchScale,
    Series,
    SeriesPoint,
    dataset_for,
    speedup_sweep,
)
from repro.config import CubeConfig, MachineSpec
from repro.core.cube import build_data_cube
from repro.core.views import View, all_views
from repro.data.generator import DatasetSpec, paper_preset

__all__ = [
    "fig5_speedup",
    "fig6_partial",
    "fig7_schedule_trees",
    "fig8_skew",
    "fig9_cardinality",
    "fig10_dimensionality",
    "fig11_balance",
    "headline",
    "ablation_merge_cases",
    "ablation_onedim",
]


def _p8(n: int, **kw) -> DatasetSpec:
    return paper_preset(n, **kw)


# ---------------------------------------------------------------------------
# Figure 5: relative speedup, full cube, two input sizes
# ---------------------------------------------------------------------------


def fig5_speedup(scale: BenchScale) -> tuple[str, list[Series], str]:
    series = []
    for mult in (1, 2):
        n = scale.n_base * mult
        spec = _p8(n)
        data = dataset_for(spec)
        series.append(
            speedup_sweep(
                f"n={n:,}", data, spec.cardinalities, scale.processors
            )
        )
    notes = (
        "Paper: n=1M and n=2M on 16 nodes; larger n amortises communication "
        "better, approaching linear speedup."
    )
    return "Figure 5: full-cube wall clock and relative speedup", series, notes


# ---------------------------------------------------------------------------
# Figure 6: partial cubes at 25/50/75/100% selected views
# ---------------------------------------------------------------------------


def select_views(d: int, percent: int, seed: int = 1701) -> list[View]:
    """A reproducible ``percent``-% sample of the 2^d - 1 non-trivial views
    (the raw-data view itself is never 'selected')."""
    pool = [v for v in all_views(d) if 0 < len(v) < d]
    pool.append(())  # ALL is selectable
    rng = random.Random(seed)
    k = max(1, round(len(pool) * percent / 100))
    chosen = rng.sample(pool, k)
    if percent == 100:
        chosen = pool + [tuple(range(d))]
    return chosen


def fig6_partial(scale: BenchScale) -> tuple[str, list[Series], str]:
    n = scale.n_base * 2
    spec = _p8(n)
    data = dataset_for(spec)
    d = spec.d
    series = []
    for percent in (25, 50, 75, 100):
        selected = None if percent == 100 else select_views(d, percent)
        seq = sequential_cube(
            data, spec.cardinalities, selected=selected
        ).metrics.simulated_seconds
        s = Series(label=f"{percent}% selected", x_name="processors")
        for p in scale.processors:
            cube = build_data_cube(
                data,
                spec.cardinalities,
                MachineSpec(p=p),
                selected=selected,
            )
            s.points.append(
                SeriesPoint(
                    x=p,
                    seconds=cube.metrics.simulated_seconds,
                    speedup=seq / cube.metrics.simulated_seconds,
                    comm_mb=cube.metrics.comm_bytes / 1e6,
                )
            )
        series.append(s)
    notes = (
        "Paper: >=50% selected tracks the full-cube speedup with a small "
        "penalty; 25% stays above half of linear; tiny selections collapse."
    )
    return "Figure 6: partial-cube wall clock and speedup", series, notes


# ---------------------------------------------------------------------------
# Figure 7: local vs global schedule trees
# ---------------------------------------------------------------------------


def fig7_schedule_trees(scale: BenchScale) -> tuple[str, list[Series], str]:
    spec = _p8(scale.n_base)
    data = dataset_for(spec)
    seq = sequential_cube(data, spec.cardinalities).metrics.simulated_seconds
    global_series = speedup_sweep(
        "global tree", data, spec.cardinalities, scale.processors,
        sequential_seconds=seq,
    )
    local_series = speedup_sweep(
        "local trees", data, spec.cardinalities, scale.processors,
        builder=lambda rel, cards, mspec, cfg: local_tree_cube(
            rel, cards, mspec, cfg
        ),
        sequential_seconds=seq,
    )
    notes = (
        "Paper conclusion (Sections 2.3/4.2 text, Figure 7 curves): the "
        "global schedule tree wins because local trees force per-view "
        "re-sorts into a common order before Merge-Partitions.  (The paper "
        "contains a typo calling local trees 'superior'; its own Section "
        "2.3 states the opposite twice.)"
    )
    return "Figure 7: local vs global schedule trees", \
        [global_series, local_series], notes


# ---------------------------------------------------------------------------
# Figure 8: data skew — time and communication volume vs alpha
# ---------------------------------------------------------------------------


def fig8_skew(scale: BenchScale) -> tuple[str, list[Series], str]:
    p = max(scale.processors)
    series = Series(label=f"p={p}", x_name="alpha")
    for alpha in (0.0, 0.5, 1.0, 1.5, 2.0, 3.0):
        spec = _p8(scale.n_base, alpha=alpha)
        data = dataset_for(spec)
        cube = build_data_cube(data, spec.cardinalities, MachineSpec(p=p))
        series.points.append(
            SeriesPoint(
                x=alpha,
                seconds=cube.metrics.simulated_seconds,
                comm_mb=cube.metrics.comm_bytes / 1e6,
                extra={"output_rows": cube.metrics.output_rows},
            )
        )
    notes = (
        "Paper: time falls as skew rises (data reduction); communicated "
        "bytes spike around alpha=1 then collapse for alpha>1."
    )
    return "Figure 8: skew vs time and communicated data", [series], notes


# ---------------------------------------------------------------------------
# Figure 9: cardinality mixes A-D
# ---------------------------------------------------------------------------


def fig9_cardinality(scale: BenchScale) -> tuple[str, list[Series], str]:
    mixes: list[tuple[str, DatasetSpec]] = [
        # (A) all-high cardinality: 128 substitutes the paper's 256 (2^64
        #     would overflow the packed-key space); equally ultra-sparse.
        ("A: |Di|=128", DatasetSpec(scale.n_base, (128,) * 8, (0.0,) * 8)),
        ("B: paper mix", _p8(scale.n_base)),
        ("C: |Di|=16", DatasetSpec(scale.n_base, (16,) * 8, (0.0,) * 8)),
        ("D: B + a0=3", _p8(scale.n_base, mix="D")),
    ]
    series = []
    for label, spec in mixes:
        data = dataset_for(spec)
        series.append(
            speedup_sweep(label, data, spec.cardinalities, scale.processors)
        )
    notes = (
        "Paper: sparser mixes (A) take longer in absolute time with similar "
        "speedup; the hard case D (high-skew, high-cardinality leading "
        "dimension) loses speedup but stays above half of linear."
    )
    return "Figure 9: cardinality mixes", series, notes


# ---------------------------------------------------------------------------
# Figure 10: dimensionality sweep
# ---------------------------------------------------------------------------


def fig10_dimensionality(scale: BenchScale) -> tuple[str, list[Series], str]:
    p = max(scale.processors)
    series = Series(label=f"p={p}", x_name="dimensions")
    for d in (6, 7, 8, 9, 10):
        spec = DatasetSpec(scale.n_base, (32,) * d, (0.0,) * d)
        data = dataset_for(spec)
        cube = build_data_cube(data, spec.cardinalities, MachineSpec(p=p))
        series.points.append(
            SeriesPoint(
                x=d,
                seconds=cube.metrics.simulated_seconds,
                comm_mb=cube.metrics.comm_bytes / 1e6,
                extra={"output_rows": cube.metrics.output_rows},
            )
        )
    notes = (
        "Paper: wall clock grows essentially linearly with the output size, "
        "which itself grows ~2^d.  (|Di|=32 substitutes the paper's 256: "
        "256^10 exceeds the 63-bit packed-key space; the 2^d view-count "
        "growth driving the figure is unchanged.)"
    )
    return "Figure 10: wall clock vs dimensionality", [series], notes


# ---------------------------------------------------------------------------
# Figure 11: balance-threshold sweep
# ---------------------------------------------------------------------------


def fig11_balance(scale: BenchScale) -> tuple[str, list[Series], str]:
    spec = _p8(scale.n_base)
    data = dataset_for(spec)
    seq = sequential_cube(data, spec.cardinalities).metrics.simulated_seconds
    series = []
    for gamma in (0.03, 0.05, 0.07):
        config = CubeConfig(gamma_merge=gamma)
        series.append(
            speedup_sweep(
                f"gamma={gamma:.0%}", data, spec.cardinalities,
                scale.processors, config=config,
                sequential_seconds=seq,
            )
        )
    notes = (
        "Paper: smaller gamma means better per-view balance at slightly "
        "higher construction time; the effect is small and 3% is a good "
        "default."
    )
    return "Figure 11: balance thresholds", series, notes


# ---------------------------------------------------------------------------
# Headline claims (abstract / Section 4.1)
# ---------------------------------------------------------------------------


def headline(scale: BenchScale) -> tuple[str, list[tuple[str, str]], str]:
    pairs = []
    p = max(scale.processors)
    for mult, paper_rows, paper_out in ((2, "2,000,000", 227e6),):
        n = scale.n_base * mult
        spec = _p8(n)
        data = dataset_for(spec)
        cube = build_data_cube(data, spec.cardinalities, MachineSpec(p=p))
        seq = sequential_cube(data, spec.cardinalities)
        pairs.extend(
            [
                (f"input rows (stands in for {paper_rows})", f"{n:,}"),
                ("output rows", f"{cube.metrics.output_rows:,}"),
                (
                    "output/input ratio (paper: ~113x at n=2M)",
                    f"{cube.metrics.output_rows / max(n, 1):.1f}x",
                ),
                (
                    f"parallel time p={p}",
                    f"{cube.metrics.simulated_seconds:.1f} s (simulated)",
                ),
                (
                    "sequential time",
                    f"{seq.metrics.simulated_seconds:.1f} s (simulated)",
                ),
                (
                    "relative speedup",
                    f"{seq.metrics.simulated_seconds / cube.metrics.simulated_seconds:.2f}",
                ),
                (
                    "communication",
                    f"{cube.metrics.comm_bytes / 1e6:.1f} MB",
                ),
            ]
        )
    notes = (
        "Paper: 2M rows -> ~227M-row cube in under 6 minutes on 16 nodes "
        "(close to optimal speedup).  The output/input ratio is density-"
        "dependent and therefore differs at reduced scale; the speedup and "
        "the sub-6-minute-equivalent shape are the reproduced claims."
    )
    return "Headline claims", pairs, notes


# ---------------------------------------------------------------------------
# Ablations beyond the paper's figures (DESIGN.md section 5)
# ---------------------------------------------------------------------------


def ablation_merge_cases(scale: BenchScale) -> tuple[str, list[Series], str]:
    """Force the merge down each path to show why the 3-case design wins."""
    spec = _p8(scale.n_base)
    data = dataset_for(spec)
    seq = sequential_cube(data, spec.cardinalities).metrics.simulated_seconds
    variants = [
        ("adaptive (paper)", CubeConfig()),
        ("always re-sort (case 3)", CubeConfig(merge_policy="always_resort")),
        ("never re-sort (case 2)", CubeConfig(merge_policy="never_resort")),
    ]
    series = []
    for label, config in variants:
        series.append(
            speedup_sweep(
                label, data, spec.cardinalities, scale.processors,
                config=config, sequential_seconds=seq,
            )
        )
    notes = (
        "Always re-sorting pays sample-sort traffic for every non-prefix "
        "view; never re-sorting leaves skew-lopsided views (slower OLAP "
        "scans later) but builds fastest.  The adaptive rule buys balance "
        "at a small premium."
    )
    return "Ablation: merge case policy", series, notes


def ablation_onedim(scale: BenchScale) -> tuple[str, list[Series], str]:
    """Section 2.2's rejected design vs the paper's, on the hard mix D."""
    spec = _p8(scale.n_base, mix="D")
    data = dataset_for(spec)
    seq = sequential_cube(data, spec.cardinalities).metrics.simulated_seconds
    main = speedup_sweep(
        "partition all dims (paper)", data, spec.cardinalities,
        scale.processors, sequential_seconds=seq,
    )
    onedim = Series(label="partition on D0 only", x_name="processors")
    for p in scale.processors:
        cube = onedim_partition_cube(
            data, spec.cardinalities, MachineSpec(p=p)
        )
        onedim.points.append(
            SeriesPoint(
                x=p,
                seconds=cube.metrics.simulated_seconds,
                speedup=seq / cube.metrics.simulated_seconds,
                comm_mb=cube.metrics.comm_bytes / 1e6,
            )
        )
    notes = (
        "With alpha0=3 most rows share one leading-dimension value, so "
        "single-dimension partitioning stops scaling (its heaviest rank "
        "holds most of the data) while the paper's all-dims partitioning "
        "keeps improving with p."
    )
    return "Ablation: one-dimensional data partitioning", [main, onedim], notes
