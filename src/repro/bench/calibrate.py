"""Cost-model calibration against the host machine.

The simulated machine charges *modelled* per-row costs
(``MachineSpec.sort_sec_per_row_level`` / ``scan_sec_per_row``) so results
do not depend on the host's speed.  This utility measures what the host
actually achieves on the same kernels and derives the spec values that
would emulate a target machine — e.g. "this cluster node is 40× slower
per row than my laptop".

Targets ship for the paper's platform (1.8 GHz Xeon, 2003) and for a
same-speed-as-host profile (useful when projecting onto modern clusters).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace

import numpy as np

from repro.config import MachineSpec

__all__ = ["HostConstants", "measure_host_constants", "calibrated_spec"]

#: Published per-row profiles (seconds); "xeon2003" reproduces the
#: repository defaults and the paper's magnitudes.
TARGET_PROFILES = {
    "xeon2003": {"sort_sec_per_row_level": 2.0e-7, "scan_sec_per_row": 2.0e-7},
}


@dataclass(frozen=True)
class HostConstants:
    """Measured per-row costs of this host's kernels."""

    sort_sec_per_row_level: float
    scan_sec_per_row: float
    rows_measured: int

    def slowdown_vs(self, spec: MachineSpec) -> float:
        """How many times slower the modelled machine is than this host
        (geometric mean over the two kernels)."""
        s = spec.sort_sec_per_row_level / max(self.sort_sec_per_row_level, 1e-12)
        c = spec.scan_sec_per_row / max(self.scan_sec_per_row, 1e-12)
        return math.sqrt(s * c)

    def describe(self) -> str:
        return (
            f"host kernels over {self.rows_measured:,} rows: sort "
            f"{self.sort_sec_per_row_level * 1e9:.2f} ns/row/level, scan "
            f"{self.scan_sec_per_row * 1e9:.2f} ns/row"
        )


def measure_host_constants(
    rows: int = 1_000_000, repeats: int = 3, seed: int = 0
) -> HostConstants:
    """Time the two kernels the cost model charges for.

    Uses the best of ``repeats`` runs (the usual micro-benchmark hygiene:
    the minimum is the least noise-contaminated sample).
    """
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 2**60, rows).astype(np.int64)
    values = rng.random(rows)
    levels = max(1.0, math.log2(rows))

    best_sort = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        order = np.argsort(keys, kind="stable")
        best_sort = min(best_sort, time.perf_counter() - t0)
    sorted_keys = keys[order]
    sorted_values = values[order]

    from repro.storage.scan import aggregate_sorted_keys

    best_scan = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        aggregate_sorted_keys(sorted_keys, sorted_values, "sum")
        best_scan = min(best_scan, time.perf_counter() - t0)

    return HostConstants(
        sort_sec_per_row_level=best_sort / (rows * levels),
        scan_sec_per_row=best_scan / rows,
        rows_measured=rows,
    )


def calibrated_spec(
    base: MachineSpec,
    target: str | float = "xeon2003",
    host: HostConstants | None = None,
) -> MachineSpec:
    """Derive a spec whose modelled CPU matches a target profile.

    ``target`` is either a named profile (see ``TARGET_PROFILES``) or a
    slowdown factor relative to this host (e.g. ``3.0`` = a machine 3×
    slower per row than the host running the simulation; ``host`` is
    measured on demand when needed).
    """
    if isinstance(target, str):
        try:
            profile = TARGET_PROFILES[target]
        except KeyError:
            raise ValueError(
                f"unknown target {target!r}; have {sorted(TARGET_PROFILES)}"
            ) from None
        return replace(base, **profile)
    factor = float(target)
    if factor <= 0:
        raise ValueError(f"slowdown factor must be positive, got {factor}")
    if host is None:
        host = measure_host_constants(rows=200_000, repeats=2)
    return replace(
        base,
        sort_sec_per_row_level=host.sort_sec_per_row_level * factor,
        scan_sec_per_row=host.scan_sec_per_row * factor,
    )
