"""Parallel ROLAP data cube construction on shared-nothing multiprocessors.

A faithful, fully self-contained reproduction of:

    Ying Chen, Frank Dehne, Todd Eavis, Andrew Rau-Chaplin,
    "Parallel ROLAP Data Cube Construction On Shared-Nothing
    Multiprocessors", IPDPS 2003.

Quickstart::

    from repro import MachineSpec, build_data_cube, generate_dataset, paper_preset

    spec = paper_preset(n=50_000)
    data = generate_dataset(spec)
    cube = build_data_cube(data, spec.cardinalities, MachineSpec(p=8))
    print(cube.describe())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproductions.
"""

from repro.config import CubeConfig, MachineSpec, RecoveryPolicy, RunResult
from repro.core.cube import CubeResult, build_data_cube, build_partial_cube
from repro.core.views import View, canonical_view, parse_view_name, view_name
from repro.data.generator import DatasetSpec, generate_dataset, paper_preset
from repro.mpi.faults import FaultPlan, ServeFaultPlan

__version__ = "1.0.0"

__all__ = [
    "CubeConfig",
    "CubeResult",
    "DatasetSpec",
    "FaultPlan",
    "MachineSpec",
    "RecoveryPolicy",
    "RunResult",
    "ServeFaultPlan",
    "View",
    "build_data_cube",
    "build_partial_cube",
    "canonical_view",
    "generate_dataset",
    "paper_preset",
    "parse_view_name",
    "view_name",
]
