"""Command-line interface.

Subcommands::

    python -m repro build   --rows 20000 --p 8 --out ./cube.d
    python -m repro info    ./cube.d
    python -m repro query   ./cube.d --group-by 0,1 --filter 2=0:3
    python -m repro refresh ./cube.d --rows 1000
    python -m repro demo

``build`` generates a synthetic data set (the paper's parameter presets)
and constructs its cube on the simulated cluster; ``query`` serves
group-bys from a stored cube; ``info`` prints a stored cube's inventory;
``refresh`` folds a delta batch into a stored cube as a new generation
(incremental maintenance — see ``repro.olap.refresh``).
For the paper-figure experiments use ``python -m repro.bench``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _parse_view(text: str) -> tuple[int, ...]:
    text = text.strip()
    if not text or text.lower() == "all":
        return ()
    return tuple(int(part) for part in text.split(","))


def _parse_filter(text: str) -> tuple[int, tuple[int, int]]:
    """``dim=lo:hi`` or ``dim=value``."""
    dim_part, _, range_part = text.partition("=")
    if not range_part:
        raise argparse.ArgumentTypeError(
            f"filter {text!r} must look like DIM=LO:HI or DIM=VALUE"
        )
    lo, _, hi = range_part.partition(":")
    return int(dim_part), (int(lo), int(hi or lo))


def cmd_build(args: argparse.Namespace) -> int:
    from repro import CubeConfig, MachineSpec, build_data_cube, generate_dataset, paper_preset
    from repro.olap import CubeStore

    if args.from_csv:
        from repro.storage.relio import read_csv

        if not args.dimensions or not args.measure:
            print("--from-csv needs --dimensions and --measure")
            return 2
        ds = read_csv(
            args.from_csv, args.dimensions.split(","), args.measure
        )
        data, cards = ds.relation, ds.cardinalities
        print(
            f"loaded {data.nrows:,} rows from {args.from_csv}; dimensions "
            f"{ds.names} (cardinalities {cards})"
        )
    else:
        spec = paper_preset(
            args.rows, alpha=args.alpha, mix=args.mix, seed=args.seed,
            d=args.dims,
        )
        data = generate_dataset(spec)
        cards = spec.cardinalities
        print(
            f"generated {data.nrows:,} rows x {data.width} dims "
            f"(cardinalities {cards}, alpha {args.alpha})"
        )
    faults = None
    if args.faults:
        from repro.mpi.faults import FaultPlan

        if args.faults.startswith("random:"):
            faults = FaultPlan.random(seed=int(args.faults[7:]), p=args.p)
        else:
            faults = FaultPlan.parse(args.faults)
        print(f"fault plan: {faults.describe()}")
    recovery = None
    if (faults is not None or args.max_retries is not None or args.degrade
            or args.speculate):
        from repro import RecoveryPolicy

        recovery = RecoveryPolicy(
            max_retries=2 if args.max_retries is None else args.max_retries,
            mode="degrade" if args.degrade else "restart",
            min_ranks=args.min_ranks,
            speculate=args.speculate,
        )
    reorder = None
    if args.reorder:
        from repro.storage.reorder import reorder_relation

        data, reorder = reorder_relation(data, cards)
        print(
            "reordered attribute values by sampled frequency "
            f"({data.width} dims; inverse recorded in the manifest)"
        )
    machine = MachineSpec(
        p=args.p,
        backend=args.backend,
        sort_kernel=args.sort_kernel,
        heartbeat_interval=args.heartbeat,
    )
    cube = build_data_cube(
        data,
        cards,
        machine,
        CubeConfig(agg=args.agg, hetero=args.hetero),
        selected=None,
        faults=faults,
        checkpoint_dir=args.checkpoint_dir,
        recovery=recovery,
        audit=args.audit,
    )
    print(cube.describe())
    metrics = cube.metrics
    if metrics.speed_model is not None:
        speeds = ", ".join(
            f"{s:.2f}" for s in metrics.speed_model["speeds"]
        )
        print(f"rank speed model (mean 1.0): [{speeds}]")
    if metrics.speculations:
        print(
            f"speculated: {metrics.speculations} straggler race(s), "
            f"{metrics.speculation_discards} duplicate result(s) "
            f"discarded"
        )
    if metrics.attempts > 1:
        print(
            f"recovered: {metrics.attempts - 1} failed attempt(s) "
            f"({metrics.transient_retries} transient retr"
            f"{'y' if metrics.transient_retries == 1 else 'ies'}), "
            f"{metrics.recovered_seconds:.2f}s simulated re-execution"
        )
    if metrics.ranks_lost:
        lost = ", ".join(str(r) for r in metrics.ranks_lost)
        print(
            f"degraded: lost rank(s) {lost} permanently; finished at "
            f"p={metrics.final_width} of {args.p}"
        )
    if args.out:
        fmt = 3 if args.hybrid else 2
        CubeStore.save(
            cube,
            args.out,
            format=fmt,
            reorder=reorder,
            density_threshold=args.density_threshold,
        )
        print(f"stored at {args.out} (format {fmt})")
    if metrics.audit is not None:
        if metrics.audit["ok"]:
            print(f"audit: OK ({len(metrics.audit['checks'])} checks)")
        else:
            issues = "; ".join(metrics.audit["issues"])
            print(f"audit: FAILED ({issues})")
            return 1
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    from repro.core.views import view_name
    from repro.olap import CubeStore

    cube = CubeStore.load(args.path)
    print(
        f"cube at {args.path}: {cube.view_count} views, "
        f"{cube.total_rows():,} rows, p={len(cube.rank_views)}, "
        f"agg={cube.agg}, cardinalities={cube.cardinalities}"
    )
    if args.views:
        for view in cube.views:
            dist = cube.distribution(view)
            print(
                f"  {view_name(view):12s} {cube.view_rows(view):10,} rows"
                f"  (per-rank max/mean "
                f"{dist.max() / max(dist.mean(), 1e-9):.2f})"
            )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    from repro.olap import CubeStore, Query

    # open() (rather than load()) serves format-2 stores through the
    # mmap-backed index path where the view order allows it.
    engine = CubeStore.open(args.path).query_engine()
    query = Query(
        group_by=_parse_view(args.group_by),
        filters=dict(args.filter or []),
    )
    plan = engine.explain(query)
    print(f"plan: {plan.describe()}")
    if args.parallel:
        result, latency = engine.answer_parallel(query)
        print(f"parallel latency: {latency * 1e3:.2f} ms (simulated)")
    else:
        result = engine.answer(query)
    limit = args.limit
    order = np.argsort(-result.measure)[:limit]
    for row_idx in order:
        key = ",".join(str(v) for v in result.dims[row_idx])
        print(f"  ({key})  {result.measure[row_idx]:,.3f}")
    if result.nrows > limit:
        print(f"  ... {result.nrows - limit} more groups")
    return 0


def cmd_refresh(args: argparse.Namespace) -> int:
    from repro import MachineSpec
    from repro.olap import CubeStore
    from repro.olap.refresh import refresh_store
    from repro.storage.table import Relation

    handle = CubeStore.open(args.path)
    cards = handle.cardinalities
    if args.from_csv:
        from repro.storage.relio import read_csv

        if not args.dimensions or not args.measure:
            print("--from-csv needs --dimensions and --measure")
            return 2
        ds = read_csv(
            args.from_csv, args.dimensions.split(","), args.measure
        )
        delta = ds.relation
        print(f"loaded {delta.nrows:,} delta rows from {args.from_csv}")
    else:
        rng = np.random.default_rng(args.seed)
        dims = np.column_stack(
            [
                rng.integers(0, c, size=args.rows, dtype=np.int64)
                for c in cards
            ]
        )
        measure = rng.integers(1, 100, size=args.rows).astype(np.float64)
        delta = Relation(dims, measure)
        print(f"generated {delta.nrows:,} synthetic delta rows")
    report = refresh_store(
        args.path, delta, spec=MachineSpec(p=args.p), gc=args.gc
    )
    print(
        f"refreshed {args.path}: generation "
        f"{report.previous_generation} -> {report.generation} "
        f"({report.path})"
    )
    print(
        f"  {report.views_merged} views merged, {report.views_linked} "
        f"hard-linked unchanged, {report.rows_added:,} rows added, "
        f"{report.blocks_promoted} blocks promoted to dense"
    )
    print(
        f"  delta build {report.delta_build_seconds:.3f}s + merge "
        f"{report.merge_seconds:.3f}s; {report.files_written} files "
        f"written, {report.files_linked} linked"
    )
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    import os
    import tempfile

    from repro.mpi.faults import ServeFaultPlan
    from repro.olap import CubeStore, QueryService, ServicePolicy
    from repro.olap.servebench import (
        run_at_rate,
        run_with_refresh,
        serving_workload,
        synthetic_serving_cube,
    )

    serve_faults = (
        ServeFaultPlan.parse(args.serve_faults)
        if args.serve_faults
        else None
    )
    policy = ServicePolicy(
        heartbeat_interval=args.heartbeat,
        suspect_after=args.suspect_after,
        deadline_s=args.deadline if args.deadline > 0 else None,
        max_retries=args.max_retries,
        max_queue_depth=args.max_queue,
        max_restarts=args.max_restarts,
    )
    with tempfile.TemporaryDirectory() as tmpdir:
        if args.store:
            store_path = args.store
            cards = CubeStore.open(store_path).cardinalities
            print(f"serving existing store {store_path}")
        else:
            cards = (128, 64, 32, 16)
            cube = synthetic_serving_cube(
                args.rows, cards, p=4, seed=args.seed
            )
            store_path = os.path.join(tmpdir, "cube.d")
            CubeStore.save(cube, store_path)
            print(
                f"synthesized {args.rows:,}-row serving cube "
                f"({len(cube.views)} views) at {store_path}"
            )
        if serve_faults is not None:
            print(f"injecting serve faults: {serve_faults.describe()}")
        workload = [q for _, q in serving_workload(cards, n=512,
                                                   seed=args.seed)]
        with QueryService(
            store_path,
            workers=args.workers,
            byte_budget=args.cache_mb << 20 if args.cache_mb else None,
            policy=policy,
            serve_faults=serve_faults,
        ) as service:
            service.answer_many(workload[:8])  # warm the pool
            if args.refresh_every:
                from repro.olap import Query
                from repro.storage.table import Relation

                rng = np.random.default_rng(args.seed + 1)
                offered = args.qps[0]
                n_total = max(
                    int(offered * args.duration), args.refresh_every + 1
                )
                n_batches = max(n_total // args.refresh_every, 1)
                batches = []
                for _ in range(n_batches):
                    dims = np.column_stack(
                        [
                            rng.integers(
                                0, c, size=args.delta_rows,
                                dtype=np.int64,
                            )
                            for c in cards
                        ]
                    )
                    measure = rng.integers(
                        1, 100, size=args.delta_rows
                    ).astype(np.float64)
                    batches.append(Relation(dims, measure))
                print(
                    f"live refresh: {n_batches} delta batches x "
                    f"{args.delta_rows:,} rows, one every "
                    f"{args.refresh_every} submissions"
                )
                rung = run_with_refresh(
                    service,
                    workload,
                    batches,
                    offered,
                    n_total,
                    args.refresh_every,
                    probe=Query(group_by=(0,)),
                )
                window = rung["refresh_window"]
                print(
                    f"  availability {rung['availability']:.4f} "
                    f"({rung['completed']}/{rung['offered']}), "
                    f"generation {rung['generation_start']} -> "
                    f"{rung['generation_end']}, probe fresh: "
                    f"{rung['probe_fresh']}"
                )
                print(
                    f"  overall p50 {rung['p50_ms']:.2f} ms  p99 "
                    f"{rung['p99_ms']:.2f} ms; during refresh windows "
                    f"({window['completed']} queries) p99 "
                    f"{window['p99_ms'] if window['p99_ms'] is None else round(window['p99_ms'], 2)} ms"
                )
            for offered in args.qps:
                rung = run_at_rate(
                    service, workload, offered, args.duration
                )
                print(
                    f"  offered {rung['offered_qps']:7g} QPS -> achieved "
                    f"{rung['achieved_qps']:7.1f}  p50 "
                    f"{rung['p50_ms']:7.2f} ms  p95 {rung['p95_ms']:7.2f}"
                    f" ms  p99 {rung['p99_ms']:7.2f} ms"
                    + (
                        f"  (shed {rung['shed']}, deadline misses "
                        f"{rung['deadline_timeouts']})"
                        if rung["shed"] or rung["deadline_timeouts"]
                        else ""
                    )
                )
            stats = service.stats()
            print(f"service stats: {stats}")
            if stats["worker_deaths"] or stats["worker_hangs"]:
                print(
                    f"survived {stats['worker_deaths']} worker deaths "
                    f"and {stats['worker_hangs']} hangs with "
                    f"{stats['restarts']} restarts and "
                    f"{stats['retries']} query retries"
                )
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    from repro import MachineSpec, build_data_cube, generate_dataset, paper_preset

    spec = paper_preset(10_000, seed=1)
    data = generate_dataset(spec)
    cube = build_data_cube(
        data,
        spec.cardinalities,
        MachineSpec(p=args.p, backend=args.backend,
                    sort_kernel=args.sort_kernel),
    )
    print(cube.describe())
    print("phase breakdown:")
    for phase, secs in sorted(cube.metrics.phase_seconds.items()):
        if secs > 0.01:
            print(f"  {phase:20s} {secs:7.2f} s")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel ROLAP data cube construction (IPDPS 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="generate data and build a cube")
    p_build.add_argument("--rows", type=int, default=20_000)
    p_build.add_argument("--p", type=int, default=8, help="virtual processors")
    p_build.add_argument("--backend", default="thread",
                         choices=("thread", "process"),
                         help="execution backend (process = one worker "
                              "process per rank, parallel host execution)")
    p_build.add_argument("--alpha", type=float, default=0.0, help="Zipf skew")
    p_build.add_argument("--mix", default="B", choices="ABCD")
    p_build.add_argument("--dims", type=int, default=None)
    p_build.add_argument("--agg", default="sum",
                         choices=("sum", "count", "min", "max"))
    p_build.add_argument("--sort-kernel", default="auto",
                         choices=("auto", "argsort", "radix", "segmented",
                                  "presorted"),
                         help="host sort kernel for packed-key sorts "
                              "(auto = calibrated cost model; outputs and "
                              "simulated metering are kernel-independent)")
    p_build.add_argument("--seed", type=int, default=0xC0FFEE)
    p_build.add_argument("--out", default=None, help="store directory")
    p_build.add_argument("--from-csv", default=None,
                         help="build from a CSV fact table instead of "
                              "synthetic data")
    p_build.add_argument("--dimensions", default=None,
                         help="comma-separated dimension columns "
                              "(with --from-csv)")
    p_build.add_argument("--measure", default=None,
                         help="measure column (with --from-csv)")
    p_build.add_argument("--faults", default=None,
                         help="fault plan, e.g. 'crash@r1s5;delay@r0s2x0.5' "
                              "or 'random:<seed>' (see repro.mpi.faults)")
    p_build.add_argument("--checkpoint-dir", default=None,
                         help="persist per-rank checkpoints after each "
                              "dimension iteration; recovery resumes there")
    p_build.add_argument("--max-retries", type=int, default=None,
                         help="restarts allowed on rank failure "
                              "(default 2 when --faults is given)")
    p_build.add_argument("--degrade", action="store_true",
                         help="survive permanent rank loss: blacklist the "
                              "dead rank, reshard its checkpointed state "
                              "and finish at reduced width")
    p_build.add_argument("--min-ranks", type=int, default=1,
                         help="lowest width --degrade may fall to before "
                              "giving up (default 1)")
    p_build.add_argument("--heartbeat", type=float, default=0.25,
                         help="supervisor liveness-poll interval in "
                              "seconds (process backend)")
    p_build.add_argument("--hetero", action="store_true",
                         help="meter per-rank throughput during sampling "
                              "and size each rank's h-relation share to "
                              "its measured speed (clamped to "
                              "[1/2p, 2/p])")
    p_build.add_argument("--speculate", action="store_true",
                         help="on a hung rank, race a full-width retry "
                              "against a width-(p-1) clone of the "
                              "straggler's checkpoints and keep the "
                              "first finisher")
    p_build.add_argument("--audit", action="store_true",
                         help="run the post-build integrity audit; a "
                              "failed audit exits non-zero")
    p_build.add_argument("--reorder", action="store_true",
                         help="reorder attribute values by sampled "
                              "frequency before the build (queries still "
                              "speak original values via the manifest's "
                              "recorded inverse permutations)")
    p_build.add_argument("--hybrid", action="store_true",
                         help="store as format 3: per-block dense/sparse "
                              "hybrid views (combine with --reorder for "
                              "maximum dense coverage)")
    p_build.add_argument("--density-threshold", type=float, default=None,
                         help="block occupancy above which a block is "
                              "stored dense (default: the calibrated "
                              "byte-cost break-even, 0.5078125)")
    p_build.set_defaults(fn=cmd_build)

    p_info = sub.add_parser("info", help="describe a stored cube")
    p_info.add_argument("path")
    p_info.add_argument("--views", action="store_true",
                        help="list every view with its distribution")
    p_info.set_defaults(fn=cmd_info)

    p_query = sub.add_parser("query", help="group-by query over a stored cube")
    p_query.add_argument("path")
    p_query.add_argument("--group-by", default="", help="e.g. 0,2 (empty = ALL)")
    p_query.add_argument("--filter", type=_parse_filter, action="append",
                         help="DIM=LO:HI, repeatable")
    p_query.add_argument("--parallel", action="store_true",
                         help="execute across the virtual cluster")
    p_query.add_argument("--limit", type=int, default=10)
    p_query.set_defaults(fn=cmd_query)

    p_serve = sub.add_parser(
        "serve-bench",
        help="drive a QueryService worker pool at fixed offered QPS",
    )
    p_serve.add_argument("--store", default=None,
                         help="existing cube store to serve (default: "
                              "synthesize one)")
    p_serve.add_argument("--rows", type=int, default=200_000,
                         help="base-view rows for the synthetic store")
    p_serve.add_argument("--workers", type=int, default=2)
    p_serve.add_argument("--qps", type=float, nargs="+",
                         default=[25.0, 50.0, 100.0],
                         help="offered-rate ladder")
    p_serve.add_argument("--duration", type=float, default=2.0,
                         help="seconds per rung")
    p_serve.add_argument("--cache-mb", type=int, default=0,
                         help="result-cache byte budget in MiB "
                              "(0 = cache off)")
    p_serve.add_argument("--seed", type=int, default=0xC0FFEE)
    p_serve.add_argument("--serve-faults", default=None,
                         help="serving fault plan, e.g. "
                              "'kill@w0q5;hang@w1q3x2.5;corrupt@w2q4' "
                              "(keyed by each worker's executed-query "
                              "count; optional g<generation> suffix)")
    p_serve.add_argument("--deadline", type=float, default=0.0,
                         help="per-query deadline in seconds "
                              "(0 = no deadline)")
    p_serve.add_argument("--max-queue", type=int, default=1024,
                         help="in-flight query cap; submissions past it "
                              "are shed with ServiceOverloaded")
    p_serve.add_argument("--max-retries", type=int, default=3,
                         help="re-executions allowed per query after "
                              "worker failures")
    p_serve.add_argument("--max-restarts", type=int, default=16,
                         help="replacement workers the supervisor may "
                              "spawn over the run")
    p_serve.add_argument("--heartbeat", type=float, default=0.05,
                         help="supervision interval in seconds")
    p_serve.add_argument("--suspect-after", type=float, default=5.0,
                         help="declare a silent worker hung after this "
                              "many seconds")
    p_serve.add_argument("--refresh-every", type=int, default=0,
                         help="fold a delta batch into the store every N "
                              "submissions (background refresh thread; "
                              "0 = off) and report availability plus "
                              "p99 during refresh windows")
    p_serve.add_argument("--delta-rows", type=int, default=5_000,
                         help="rows per delta batch (with "
                              "--refresh-every)")
    p_serve.set_defaults(fn=cmd_serve_bench)

    p_refresh = sub.add_parser(
        "refresh",
        help="fold a delta batch into a stored cube as a new generation",
    )
    p_refresh.add_argument("path")
    p_refresh.add_argument("--rows", type=int, default=1_000,
                           help="synthetic delta rows (uniform over the "
                                "store's cardinalities)")
    p_refresh.add_argument("--p", type=int, default=4,
                           help="virtual processors for the delta build")
    p_refresh.add_argument("--seed", type=int, default=0xC0FFEE)
    p_refresh.add_argument("--gc", action="store_true",
                           help="remove superseded generation "
                                "directories after publishing")
    p_refresh.add_argument("--from-csv", default=None,
                           help="read the delta from a CSV fact table "
                                "instead of synthesizing one")
    p_refresh.add_argument("--dimensions", default=None,
                           help="comma-separated dimension columns "
                                "(with --from-csv)")
    p_refresh.add_argument("--measure", default=None,
                           help="measure column (with --from-csv)")
    p_refresh.set_defaults(fn=cmd_refresh)

    p_demo = sub.add_parser("demo", help="tiny end-to-end demonstration")
    p_demo.add_argument("--p", type=int, default=8)
    p_demo.add_argument("--backend", default="thread",
                        choices=("thread", "process"))
    p_demo.add_argument("--sort-kernel", default="auto",
                        choices=("auto", "argsort", "radix", "segmented",
                                 "presorted"))
    p_demo.set_defaults(fn=cmd_demo)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
