"""Named example datasets built on the synthetic generator.

These give the examples and docs realistic-feeling scenarios (the kind of
warehouse workload the paper's introduction motivates) while staying fully
synthetic and reproducible.  Each dataset carries human-readable dimension
names alongside the generator spec; dimension order follows the paper's
non-increasing-cardinality convention.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.generator import DatasetSpec, generate_dataset
from repro.storage.table import Relation

__all__ = ["NamedDataset", "retail_sales", "weblog_hits"]


@dataclass(frozen=True)
class NamedDataset:
    """A synthetic dataset with named dimensions and a named measure."""

    name: str
    dimension_names: tuple[str, ...]
    measure_name: str
    spec: DatasetSpec

    @property
    def cardinalities(self) -> tuple[int, ...]:
        return self.spec.cardinalities

    def generate(self) -> Relation:
        return generate_dataset(self.spec)

    def dim_index(self, name: str) -> int:
        """Dimension index for a name (raises on unknown names)."""
        try:
            return self.dimension_names.index(name)
        except ValueError:
            raise KeyError(
                f"unknown dimension {name!r}; have {self.dimension_names}"
            ) from None

    def view_of(self, *names: str) -> tuple[int, ...]:
        """Translate dimension names into a view identifier."""
        return tuple(sorted(self.dim_index(n) for n in names))


def retail_sales(n: int = 50_000, seed: int = 2003) -> NamedDataset:
    """A retail fact table: sales transactions across stores and products.

    Skews mirror reality: products follow a heavy-tailed popularity curve,
    most traffic concentrates in a few big stores, and the calendar
    dimensions are uniform.
    """
    return NamedDataset(
        name="retail_sales",
        dimension_names=(
            "product",      # 256 SKUs, Zipf-popular
            "customer_seg", # 128 micro-segments
            "store",        # 64 stores, a few dominate
            "promotion",    # 32 concurrent promotions
            "day_of_month", # 31 days
            "region",       # 8 sales regions
            "channel",      # 4: web/app/store/phone
        ),
        measure_name="revenue",
        spec=DatasetSpec(
            n=n,
            cardinalities=(256, 128, 64, 32, 31, 8, 4),
            alphas=(1.2, 0.5, 1.0, 0.3, 0.0, 0.2, 0.4),
            seed=seed,
        ),
    )


def weblog_hits(n: int = 50_000, seed: int = 77) -> NamedDataset:
    """A clickstream fact table: page hits with heavy URL/user skew."""
    return NamedDataset(
        name="weblog_hits",
        dimension_names=(
            "url",         # 512 pages, extremely skewed
            "referrer",    # 128 referrers
            "user_agent",  # 64 agent families
            "country",     # 32 countries
            "hour",        # 24 hours
            "status",      # 6 HTTP status classes
        ),
        measure_name="bytes_served",
        spec=DatasetSpec(
            n=n,
            cardinalities=(512, 128, 64, 32, 24, 6),
            alphas=(2.0, 1.0, 0.8, 1.2, 0.1, 1.5),
            seed=seed,
        ),
    )
