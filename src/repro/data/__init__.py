"""Synthetic data generation matching the paper's experimental setup.

Data sets are parameterised by ``n`` (rows), ``d`` (dimensions), per-
dimension cardinalities ``|Di|`` and per-dimension Zipf skews ``αi``
(Section 4: "we generated a large number of synthetic data sets which
varied in terms of ... n, d, |D0|..|Dd-1|, and α0..αd-1").
"""

from repro.data.generator import DatasetSpec, generate_dataset, paper_preset
from repro.data.zipf import zipf_sample

__all__ = ["DatasetSpec", "generate_dataset", "paper_preset", "zipf_sample"]
