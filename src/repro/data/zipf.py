"""Bounded Zipf sampling (the paper's skew generator, ref. [26]).

``P(X = k) ∝ (k+1)^-α`` over the ``K`` values ``0..K-1``.  ``α = 0`` is the
uniform distribution; the paper sweeps ``α`` from 0 (no skew) to 3 (high
skew).  Sampling is vectorised through inverse-CDF lookup on the exact
normalised mass function — no rejection loops, reproducible under a seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["zipf_pmf", "zipf_sample"]


def zipf_pmf(cardinality: int, alpha: float) -> np.ndarray:
    """Probability mass over the ``cardinality`` ranked values."""
    if cardinality < 1:
        raise ValueError(f"cardinality must be >= 1, got {cardinality}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    ranks = np.arange(1, cardinality + 1, dtype=np.float64)
    weights = ranks**-alpha
    return weights / weights.sum()


def zipf_sample(
    cardinality: int,
    alpha: float,
    size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``size`` Zipf(α)-distributed codes in ``[0, cardinality)``."""
    if size < 0:
        raise ValueError(f"size must be >= 0, got {size}")
    if alpha == 0.0:
        return rng.integers(0, cardinality, size=size, dtype=np.int64)
    cdf = np.cumsum(zipf_pmf(cardinality, alpha))
    u = rng.random(size)
    return np.searchsorted(cdf, u, side="right").astype(np.int64)
