"""Bounded Zipf sampling (the paper's skew generator, ref. [26]).

``P(X = k) ∝ (k+1)^-α`` over the ``K`` values ``0..K-1``.  ``α = 0`` is the
uniform distribution; the paper sweeps ``α`` from 0 (no skew) to 3 (high
skew).  Sampling is vectorised through inverse-CDF lookup on the exact
normalised mass function — no rejection loops, reproducible under a seed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["scramble_labels", "skew_profile", "zipf_pmf", "zipf_sample"]


def zipf_pmf(cardinality: int, alpha: float) -> np.ndarray:
    """Probability mass over the ``cardinality`` ranked values."""
    if cardinality < 1:
        raise ValueError(f"cardinality must be >= 1, got {cardinality}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    ranks = np.arange(1, cardinality + 1, dtype=np.float64)
    weights = ranks**-alpha
    return weights / weights.sum()


def zipf_sample(
    cardinality: int,
    alpha: float,
    size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``size`` Zipf(α)-distributed codes in ``[0, cardinality)``."""
    if size < 0:
        raise ValueError(f"size must be >= 0, got {size}")
    if alpha == 0.0:
        return rng.integers(0, cardinality, size=size, dtype=np.int64)
    cdf = np.cumsum(zipf_pmf(cardinality, alpha))
    u = rng.random(size)
    return np.searchsorted(cdf, u, side="right").astype(np.int64)


def skew_profile(
    d: int,
    profile: str = "mixed",
    *,
    alpha_hi: float = 1.3,
    alpha_lo: float = 0.3,
    seed: int = 0,
) -> tuple[float, ...]:
    """A per-dimension skew vector for mixed dense/sparse cubes.

    Uniform skew across all dims produces cubes that are uniformly
    dense or uniformly sparse; hybrid-storage benchmarks need views
    that *mix* — some dimensions heavy-tailed, some nearly flat — so
    that within one cube some blocks go dense and others stay sparse.

    Profiles (all deterministic under ``seed``):

    * ``"mixed"`` — a seeded shuffle of half ``alpha_hi`` / half
      ``alpha_lo`` dims (``ceil(d/2)`` high).
    * ``"ramp"`` — linear sweep from ``alpha_hi`` (dim 0) down to
      ``alpha_lo`` (last dim).
    * ``"head"`` — ``alpha_hi`` on dim 0, ``alpha_lo`` elsewhere (the
      shape of the paper's Figure-9 mix D).
    * ``"flat"`` — ``alpha_hi`` everywhere (control case).
    """
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    if alpha_hi < alpha_lo:
        raise ValueError(
            f"alpha_hi {alpha_hi} < alpha_lo {alpha_lo}"
        )
    if profile == "flat":
        return (float(alpha_hi),) * d
    if profile == "head":
        return (float(alpha_hi),) + (float(alpha_lo),) * (d - 1)
    if profile == "ramp":
        if d == 1:
            return (float(alpha_hi),)
        return tuple(
            float(a) for a in np.linspace(alpha_hi, alpha_lo, d)
        )
    if profile == "mixed":
        n_hi = -(-d // 2)
        alphas = np.array(
            [alpha_hi] * n_hi + [alpha_lo] * (d - n_hi), dtype=np.float64
        )
        rng = np.random.default_rng(seed)
        rng.shuffle(alphas)
        return tuple(float(a) for a in alphas)
    raise ValueError(
        f"unknown skew profile {profile!r} "
        "(expected mixed | ramp | head | flat)"
    )


def scramble_labels(
    dims: np.ndarray,
    cardinalities: Sequence[int],
    seed: int = 0,
) -> np.ndarray:
    """Re-label every dimension column by a seeded random permutation.

    :func:`zipf_sample` emits codes in frequency-rank order (code 0 is
    the most frequent), which is exactly the layout attribute-value
    reordering would *produce* — synthetic data straight from the
    sampler makes a reorder pass look like a no-op.  Scrambling gives
    each dimension arbitrary labels, the way real categorical data
    arrives, so a reorder has clustering to recover.
    """
    dims = np.asarray(dims, dtype=np.int64)
    if dims.ndim != 2 or dims.shape[1] != len(cardinalities):
        raise ValueError(
            f"expected (n, {len(cardinalities)}) codes, got {dims.shape}"
        )
    rng = np.random.default_rng(seed)
    out = np.empty_like(dims)
    for col, card in enumerate(cardinalities):
        perm = rng.permutation(int(card)).astype(np.int64)
        out[:, col] = perm[dims[:, col]]
    return out
