"""Synthetic raw data sets with per-dimension cardinality and skew.

:func:`paper_preset` reproduces the parameter sets used throughout the
paper's Section 4 (the "P8" configuration: d = 8, cardinalities 256, 128,
64, 32, 16, 8, 6, 6, plus the Figure 9 mixes A-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.zipf import scramble_labels, zipf_sample
from repro.storage.table import Relation

__all__ = ["DatasetSpec", "generate_dataset", "paper_preset", "PAPER_CARDINALITIES"]

#: The cardinality vector used by Figures 5-8 and 11 ("P8").
PAPER_CARDINALITIES = (256, 128, 64, 32, 16, 8, 6, 6)


@dataclass(frozen=True)
class DatasetSpec:
    """Parameters of one synthetic raw data set."""

    n: int
    cardinalities: tuple[int, ...]
    alphas: tuple[float, ...]
    seed: int = 0xC0FFEE
    #: Re-label each dimension by a seeded random permutation after
    #: sampling.  Zipf codes arrive frequency-ranked (code 0 most
    #: frequent); scrambling restores the arbitrary labelling of real
    #: categorical data, which is what attribute-value reordering
    #: (:mod:`repro.storage.reorder`) exists to undo.
    scramble: bool = False

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError(f"n must be >= 0, got {self.n}")
        cards = tuple(int(c) for c in self.cardinalities)
        alphas = tuple(float(a) for a in self.alphas)
        if len(cards) != len(alphas):
            raise ValueError(
                f"{len(cards)} cardinalities vs {len(alphas)} alphas"
            )
        if any(c < 1 for c in cards):
            raise ValueError(f"cardinalities must be >= 1: {cards}")
        if any(a < 0 for a in alphas):
            raise ValueError(f"alphas must be >= 0: {alphas}")
        if list(cards) != sorted(cards, reverse=True):
            raise ValueError(
                "cardinalities must be non-increasing (the paper's "
                f"dimension ordering): {cards}"
            )
        object.__setattr__(self, "cardinalities", cards)
        object.__setattr__(self, "alphas", alphas)

    @property
    def d(self) -> int:
        return len(self.cardinalities)


def generate_dataset(spec: DatasetSpec) -> Relation:
    """Draw the raw data set: independent per-dimension Zipf columns plus a
    uniform measure in [0, 100)."""
    rng = np.random.default_rng(spec.seed)
    dims = np.empty((spec.n, spec.d), dtype=np.int64)
    for col, (card, alpha) in enumerate(zip(spec.cardinalities, spec.alphas)):
        dims[:, col] = zipf_sample(card, alpha, spec.n, rng)
    if spec.scramble:
        dims = scramble_labels(dims, spec.cardinalities, seed=spec.seed)
    measure = rng.random(spec.n) * 100.0
    return Relation(dims, measure)


def paper_preset(
    n: int,
    *,
    alpha: float | Sequence[float] = 0.0,
    mix: str = "B",
    d: int | None = None,
    seed: int = 0xC0FFEE,
) -> DatasetSpec:
    """Named parameter sets from the paper's evaluation.

    Parameters
    ----------
    n:
        Row count.
    alpha:
        Uniform skew for every dimension, or one value per dimension
        (Figure 9's mix D uses ``α0 = 3`` and ``αi>0 = 0``).
    mix:
        Cardinality mix: ``"A"`` = all 256, ``"B"`` = the P8 vector
        (default), ``"C"`` = all 16, ``"D"`` = P8 with ``α0 = 3``.
    d:
        Override dimensionality (Figure 10 sweeps d with all-256 cards).
    """
    if d is not None:
        cards: tuple[int, ...] = (256,) * d
    elif mix == "A":
        cards = (256,) * 8
    elif mix == "B":
        cards = PAPER_CARDINALITIES
    elif mix == "C":
        cards = (16,) * 8
    elif mix == "D":
        cards = PAPER_CARDINALITIES
        if not isinstance(alpha, Sequence):
            alpha = (3.0,) + (0.0,) * (len(cards) - 1)
    else:
        raise ValueError(f"unknown cardinality mix {mix!r}")
    if isinstance(alpha, Sequence):
        alphas = tuple(float(a) for a in alpha)
        if len(alphas) != len(cards):
            raise ValueError(
                f"alpha vector length {len(alphas)} != d={len(cards)}"
            )
    else:
        alphas = (float(alpha),) * len(cards)
    return DatasetSpec(n=n, cardinalities=cards, alphas=alphas, seed=seed)
