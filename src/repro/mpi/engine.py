"""SPMD execution engine for the simulated shared-nothing cluster.

:func:`run_spmd` is the ``mpiexec`` of this reproduction: it runs ``p``
rank programs — each executing the *same* code against its own
communicator endpoint and private local disk — waits for completion, and
returns per-rank results together with the BSP clock and traffic meters.

*How* the ranks execute is pluggable (see :mod:`repro.mpi.backends` and
``MachineSpec.backend``): the default ``thread`` backend runs ranks as
threads in this process (deterministic, shared mailboxes), while the
``process`` backend forks one worker process per rank and runs the
collectives over shared memory, so ``host_seconds`` scales with real
cores.  Simulated-time and traffic accounting are backend-independent.

Failure semantics: if any rank raises, every peer blocked in a collective
unblocks with :class:`~repro.mpi.errors.RankFailure`; the engine then
re-raises the originating exception to the caller.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.config import MachineSpec
from repro.mpi.clock import BSPClock
from repro.mpi.comm import Comm, ThreadTransport, resolve_barrier_timeout
from repro.mpi.errors import CollectiveMisuse, MPIError
from repro.mpi.stats import CommStats
from repro.storage.disk import LocalDisk, WorkMeter
from repro.storage.sortkernels import set_default_kernel

__all__ = ["Cluster", "ClusterResult", "run_spmd"]

#: Hard ceiling on virtual processors: beyond this the one-host simulation
#: stops being meaningful (thread scheduling noise dominates).
MAX_RANKS = 64


@dataclass
class ClusterResult:
    """Everything a finished SPMD run produced."""

    #: Per-rank return values of the rank program.
    rank_results: list
    #: The BSP clock (simulated wall-clock, per-phase breakdown, log).
    clock: BSPClock
    #: Network traffic meters.
    stats: CommStats
    #: Per-rank local disks (for I/O accounting inspection).
    disks: list[LocalDisk]
    #: Real host seconds the simulation took.
    host_seconds: float = 0.0
    #: Shared-memory data-plane counters (process backend only): segment
    #: leases, pool hits, bytes reused, attach reuse — summed over worker
    #: ranks (see :meth:`repro.mpi.shm.DataPlane.stats`).  Empty for the
    #: thread backend, whose payloads never leave the address space.
    shm_pool: dict = field(default_factory=dict)

    @property
    def simulated_seconds(self) -> float:
        return self.clock.sim_time

    def total_disk_blocks(self) -> int:
        return sum(d.stats.blocks_total for d in self.disks)


class Cluster:
    """A reusable virtual cluster: mailboxes, clock, meters, disks.

    ``faults`` installs a :class:`~repro.mpi.faults.FaultPlan`: every
    rank's transport is wrapped for deterministic fault injection and
    CRC-sealed payloads (backend-independent), and disk-full quotas are
    armed on the targeted ranks.  ``attempt`` is the recovery attempt
    index the plan's faults are gated on (see
    :class:`~repro.config.RecoveryPolicy`).
    """

    def __init__(
        self,
        spec: MachineSpec,
        disk_root: str | None = None,
        faults=None,
        attempt: int = 0,
    ):
        if not 1 <= spec.p <= MAX_RANKS:
            raise MPIError(
                f"processor count {spec.p} outside supported range "
                f"1..{MAX_RANKS}"
            )
        self.spec = spec
        self.faults = faults
        self.attempt = attempt
        # Supervision deadlines, resolved once in the parent: forked
        # process-backend workers inherit the resolved values, so an env
        # override set before the run applies uniformly.
        self.barrier_timeout = resolve_barrier_timeout(spec.barrier_timeout)
        self.suspect_after = (
            spec.suspect_after
            if spec.suspect_after is not None
            else self.barrier_timeout
        )
        # Pin the host sort kernel for every rank.  Thread workers share
        # this module state directly; process workers inherit it through
        # fork.  The REPRO_SORT_KERNEL env var still wins everywhere
        # (see repro.storage.sortkernels.resolve_kernel).
        set_default_kernel(spec.sort_kernel)
        self.clock = BSPClock(spec)
        self.stats = CommStats()
        self.disks = [
            LocalDisk(
                spec.block_size,
                root=None
                if disk_root is None
                else os.path.join(disk_root, f"rank{j:02d}"),
                work=WorkMeter(
                    spec.sort_sec_per_row_level, spec.scan_sec_per_row
                ),
            )
            for j in range(spec.p)
        ]
        # Thread-backend state (mailboxes + superstep barriers).  The
        # process backend replays the same commit parent-side instead.
        self._slots: list = [None] * spec.p
        self._action_error: BaseException | None = None
        self._enter = threading.Barrier(spec.p, action=self._safe_action)
        self._leave = threading.Barrier(spec.p)
        # Filled by the process backend's coordinator with the aggregated
        # data-plane counters of its workers; stays empty under threads.
        self.shm_pool: dict = {}

    def _safe_action(self) -> None:
        try:
            self._superstep_action()
        except BaseException as exc:  # noqa: BLE001 - must break the barrier
            self._action_error = exc
            raise

    # -- superstep commit (runs in exactly one thread per superstep) --------

    def _superstep_action(self) -> None:
        kinds = {slot[2] for slot in self._slots}
        if len(kinds) > 1:
            # Mismatched collectives are undefined behaviour under MPI;
            # raising here breaks the barrier so every rank aborts loudly
            # instead of silently mixing payloads.
            raise CollectiveMisuse(
                f"ranks disagree on the collective: {sorted(kinds)}"
            )
        rows = [slot[1] for slot in self._slots]
        kind = self._slots[0][2]
        matrix = np.vstack(rows) if rows else np.zeros((0, 0), dtype=np.int64)
        total, max_rank = self.stats.record(
            kind, self.clock._phase[0], matrix
        )
        self.clock.commit_superstep(kind, total, max_rank)

    # -- running -------------------------------------------------------------

    def transport_for(self, rank: int, inner):
        """Apply the fault plan (if any) to one rank's transport.

        Shared by both backends: the thread backend wraps its mailbox
        transport here, the process backend wraps its pipe transport
        inside each forked worker (the cluster object crosses the fork).
        """
        if self.faults is None:
            return inner
        return self.faults.instrument(
            rank, self.attempt, inner, self.clock, self.disks[rank],
            backend=self.spec.backend,
        )

    def comm(self, rank: int) -> Comm:
        """Thread-backend communicator endpoint for ``rank`` (also used by
        tests to drive a single endpoint directly)."""
        return Comm(
            rank,
            self.spec.p,
            self.transport_for(
                rank,
                ThreadTransport(
                    rank, self.spec.p, self._slots, self._enter, self._leave,
                    timeout=self.barrier_timeout,
                ),
            ),
            self.clock,
            self.stats,
            self.disks[rank],
        )

    def run(
        self,
        rank_program: Callable[..., Any],
        args: Sequence[Any] = (),
    ) -> ClusterResult:
        """Execute ``rank_program(comm, *args)`` on every rank."""
        from repro.mpi.backends import get_backend

        backend = get_backend(self.spec.backend)
        t0 = time.perf_counter()
        results = backend.run(self, rank_program, args)
        return ClusterResult(
            rank_results=results,
            clock=self.clock,
            stats=self.stats,
            disks=self.disks,
            host_seconds=time.perf_counter() - t0,
            shm_pool=dict(self.shm_pool),
        )


def run_spmd(
    rank_program: Callable[..., Any],
    spec: MachineSpec,
    args: Sequence[Any] = (),
    disk_root: str | None = None,
    faults=None,
    attempt: int = 0,
) -> ClusterResult:
    """Spawn a fresh virtual cluster and run one SPMD program on it.

    Parameters
    ----------
    rank_program:
        ``fn(comm, *args)`` executed identically on every rank.
    spec:
        Machine description (rank count, execution backend, cost-model
        parameters).
    args:
        Extra positional arguments passed to every rank.
    disk_root:
        Directory for real spill files; ``None`` keeps disks in memory.
    faults:
        Optional :class:`~repro.mpi.faults.FaultPlan` to inject
        deterministic failures (crash, corruption, straggler, disk-full).
    attempt:
        Recovery attempt index the plan's faults are gated on.
    """
    return Cluster(
        spec, disk_root=disk_root, faults=faults, attempt=attempt
    ).run(rank_program, args)
