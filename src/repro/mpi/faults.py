"""Deterministic fault injection for the simulated cluster.

The paper targets Beowulf clusters where losing a node mid-build is the
expected failure mode.  This module makes that failure mode *injectable*
and *observable* in the simulation, deterministically and on both
execution backends:

* :class:`FaultPlan` — a declarative, seedable set of faults:

  - :class:`CrashFault` — the rank raises :class:`InjectedFault` as it
    enters its k-th collective (a process dying at a superstep boundary);
  - :class:`KillFault` — the rank's worker process SIGKILLs itself
    entering the k-th collective (a hard node loss; under the thread
    backend, where ranks are threads and cannot be killed, it degrades
    to an injected crash — both classify as *permanent* for
    degraded-mode recovery);
  - :class:`CorruptFault` — the rank's payload bytes are flipped *after*
    its CRC is stamped, so every reader of the slot surfaces
    :class:`CorruptPayload` (a wire/driver data-integrity failure);
  - :class:`DelayFault` — the rank charges extra simulated seconds to the
    superstep (a straggler node; honest BSP accounting, no real sleep);
  - :class:`DiskFullFault` — the rank's :class:`LocalDisk` refuses writes
    with :class:`DiskFull` once a block quota trips (a spilled-over local
    disk).

* :class:`FaultyTransport` — a wrapper around any
  :class:`~repro.mpi.comm.Transport` (thread mailboxes or the process
  backend's pipes+shared-memory), so the same plan runs unchanged under
  both backends.  While a plan is active every payload is *sealed*:
  pickled, CRC-32 stamped, and verified at each reader — corruption
  cannot travel silently.

Faults carry an ``attempt`` index (default 0): a fault fires only during
that recovery attempt, which is what lets
``build_data_cube(..., recovery=RecoveryPolicy(...))`` demonstrate an
honest crash-then-recover cycle without any cross-process mutable state.

Sealing costs host CPU (an extra pickle round per payload) but does not
change the traffic metering: byte rows are computed from the unsealed
payload before the transport sees it.
"""

from __future__ import annotations

import os
import pickle
import re
import signal
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.mpi.errors import (
    CorruptPayload,
    DiskFull,
    InjectedFault,
    MPIError,
    RankHung,
)

__all__ = [
    "CrashFault",
    "CorruptFault",
    "DelayFault",
    "DiskFullFault",
    "HangFault",
    "KillFault",
    "SlowFault",
    "FaultPlan",
    "FaultyTransport",
    "ServeCorruptFault",
    "ServeFaultPlan",
    "ServeFaultSchedule",
    "ServeHangFault",
    "ServeKillFault",
]


# ---------------------------------------------------------------------------
# fault descriptions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CrashFault:
    """Rank ``rank`` raises :class:`InjectedFault` entering superstep
    ``superstep`` (0-based count of that rank's collectives)."""

    rank: int
    superstep: int
    attempt: int = 0
    kind: str = field(default="crash", init=False)


@dataclass(frozen=True)
class KillFault:
    """Rank ``rank``'s worker SIGKILLs itself entering superstep
    ``superstep`` — a hard node loss, detected by the process backend's
    :class:`~repro.mpi.backends.Supervisor` as
    :class:`~repro.mpi.errors.RankDead`.  Under the thread backend ranks
    are threads of the test process and cannot be killed, so the fault
    degrades to an injected crash; both forms classify as *permanent*
    for degraded-mode recovery."""

    rank: int
    superstep: int
    attempt: int = 0
    kind: str = field(default="kill", init=False)


@dataclass(frozen=True)
class CorruptFault:
    """Rank ``rank``'s payload at superstep ``superstep`` is corrupted on
    the wire; readers of the slot raise :class:`CorruptPayload`."""

    rank: int
    superstep: int
    attempt: int = 0
    kind: str = field(default="corrupt", init=False)


@dataclass(frozen=True)
class DelayFault:
    """Rank ``rank`` straggles by ``seconds`` simulated seconds at
    superstep ``superstep`` (charged to the BSP clock, no real sleep)."""

    rank: int
    superstep: int
    seconds: float = 1.0
    attempt: int = 0
    kind: str = field(default="delay", init=False)


@dataclass(frozen=True)
class DiskFullFault:
    """Rank ``rank``'s local disk raises :class:`DiskFull` on the write
    that would push its cumulative written-block count past ``blocks``.
    One-shot: the quota disarms after firing (the operator freed space),
    so a recovery retry can proceed."""

    rank: int
    blocks: int
    attempt: int = 0
    kind: str = field(default="diskfull", init=False)


@dataclass(frozen=True)
class SlowFault:
    """Rank ``rank`` runs ``factor``× slower: every superstep's local
    segment (measured CPU + modelled disk/work) is multiplied before the
    BSP commit reads it — a deterministic heterogeneous-host model, no
    real sleep.  Persistent for the whole run; an optional ``iteration``
    restricts the slowdown to supersteps whose phase label carries that
    cube-iteration index (``...[i]``)."""

    rank: int
    factor: float
    iteration: int | None = None
    attempt: int = 0
    kind: str = field(default="slow", init=False)


@dataclass(frozen=True)
class HangFault:
    """Rank ``rank`` is declared a hung straggler entering superstep
    ``superstep``: the rank raises :class:`~repro.mpi.errors.RankHung`
    with itself as culprit — the verdict the process backend's
    :class:`~repro.mpi.backends.Supervisor` reaches after
    ``suspect_after`` of real silence, synthesised deterministically so
    straggler handling (transient retry, speculative re-execution) is
    testable on both backends without wall-clock stalls."""

    rank: int
    superstep: int
    attempt: int = 0
    kind: str = field(default="hang", init=False)


Fault = (
    CrashFault
    | KillFault
    | CorruptFault
    | DelayFault
    | DiskFullFault
    | SlowFault
    | HangFault
)

#: CLI grammar, one entry per fault, ``;``-separated:
#:   crash@r<rank>s<superstep>[a<attempt>]
#:   kill@r<rank>s<superstep>[a<attempt>]
#:   corrupt@r<rank>s<superstep>[a<attempt>]
#:   delay@r<rank>s<superstep>x<seconds>[a<attempt>]
#:   diskfull@r<rank>b<blocks>[a<attempt>]
#:   slow@r<rank>x<factor>[i<iteration>][a<attempt>]
#:   hang@r<rank>s<superstep>[a<attempt>]
_SPEC_RE = re.compile(
    r"^(?P<kind>crash|kill|corrupt|delay|diskfull|slow|hang)@r(?P<rank>\d+)"
    r"(?:s(?P<step>\d+))?(?:b(?P<blocks>\d+))?"
    r"(?:x(?P<seconds>[0-9.]+))?(?:i(?P<iteration>\d+))?"
    r"(?:a(?P<attempt>\d+))?$"
)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults to inject into one SPMD run.

    The plan is immutable and carries no execution state; per-run state
    (superstep counters, disk quotas) lives in the wrappers it installs,
    so the same plan object can drive every attempt of a recovery loop.
    """

    faults: tuple[Fault, ...] = ()
    #: Seal every payload with a CRC-32 (needed to *detect* corruption;
    #: kept on even for plans without corrupt faults so the wire contract
    #: is uniform whenever fault injection is active).
    seal_payloads: bool = True

    def __post_init__(self) -> None:
        for f in self.faults:
            if f.rank < 0:
                raise ValueError(f"fault rank must be >= 0: {f}")

    # -- construction -------------------------------------------------------

    @staticmethod
    def parse(text: str) -> "FaultPlan":
        """Parse the CLI grammar, e.g. ``"crash@r1s5;delay@r0s2x0.5"``."""
        faults: list[Fault] = []
        for raw in re.split(r"[;,]", text):
            raw = raw.strip()
            if not raw:
                continue
            m = _SPEC_RE.match(raw)
            if m is None:
                raise ValueError(
                    f"bad fault spec {raw!r}; expected e.g. crash@r1s5, "
                    "kill@r1s5, corrupt@r2s3, delay@r0s2x0.5, diskfull@r1b40, "
                    "slow@r0x2, hang@r1s5 (optional a<attempt> suffix)"
                )
            kind = m.group("kind")
            rank = int(m.group("rank"))
            attempt = int(m.group("attempt") or 0)
            if kind == "diskfull":
                if m.group("blocks") is None:
                    raise ValueError(f"{raw!r}: diskfull needs b<blocks>")
                faults.append(
                    DiskFullFault(rank, int(m.group("blocks")), attempt)
                )
                continue
            if kind == "slow":
                if m.group("seconds") is None:
                    raise ValueError(f"{raw!r}: slow needs x<factor>")
                factor = float(m.group("seconds"))
                if factor <= 0:
                    raise ValueError(f"{raw!r}: slow factor must be > 0")
                iteration = (
                    int(m.group("iteration"))
                    if m.group("iteration") is not None
                    else None
                )
                faults.append(SlowFault(rank, factor, iteration, attempt))
                continue
            if m.group("step") is None:
                raise ValueError(f"{raw!r}: {kind} needs s<superstep>")
            step = int(m.group("step"))
            if kind == "crash":
                faults.append(CrashFault(rank, step, attempt))
            elif kind == "kill":
                faults.append(KillFault(rank, step, attempt))
            elif kind == "corrupt":
                faults.append(CorruptFault(rank, step, attempt))
            elif kind == "hang":
                faults.append(HangFault(rank, step, attempt))
            else:
                faults.append(
                    DelayFault(
                        rank, step, float(m.group("seconds") or 1.0), attempt
                    )
                )
        if not faults:
            raise ValueError(f"empty fault spec: {text!r}")
        return FaultPlan(tuple(faults))

    @staticmethod
    def random(
        seed: int,
        p: int,
        n_faults: int = 2,
        max_superstep: int = 20,
        kinds: Sequence[str] = ("crash", "corrupt", "delay", "diskfull"),
        attempts: int = 1,
    ) -> "FaultPlan":
        """A seeded random plan (the chaos-matrix generator)."""
        rng = np.random.default_rng(seed)
        faults: list[Fault] = []
        for _ in range(n_faults):
            kind = kinds[int(rng.integers(len(kinds)))]
            rank = int(rng.integers(p))
            attempt = int(rng.integers(attempts))
            if kind == "crash":
                faults.append(
                    CrashFault(rank, int(rng.integers(max_superstep)), attempt)
                )
            elif kind == "corrupt":
                faults.append(
                    CorruptFault(
                        rank, int(rng.integers(max_superstep)), attempt
                    )
                )
            elif kind == "delay":
                faults.append(
                    DelayFault(
                        rank,
                        int(rng.integers(max_superstep)),
                        float(rng.uniform(0.1, 2.0)),
                        attempt,
                    )
                )
            elif kind == "slow":
                faults.append(
                    SlowFault(
                        rank, float(rng.uniform(1.25, 3.0)), None, attempt
                    )
                )
            elif kind == "hang":
                faults.append(
                    HangFault(rank, int(rng.integers(max_superstep)), attempt)
                )
            else:
                faults.append(
                    DiskFullFault(
                        rank, int(rng.integers(1, 200)), attempt
                    )
                )
        return FaultPlan(tuple(faults))

    # -- queries ------------------------------------------------------------

    def for_rank(self, rank: int, attempt: int) -> list[Fault]:
        return [
            f
            for f in self.faults
            if f.rank == rank and f.attempt == attempt
        ]

    def describe(self) -> str:
        return "; ".join(
            f"{f.kind}@r{f.rank}"
            + (f"s{f.superstep}" if hasattr(f, "superstep") else "")
            + (f"b{f.blocks}" if isinstance(f, DiskFullFault) else "")
            + (
                f"x{f.seconds:g}"
                if isinstance(f, DelayFault)
                else ""
            )
            + (f"x{f.factor:g}" if isinstance(f, SlowFault) else "")
            + (
                f"i{f.iteration}"
                if isinstance(f, SlowFault) and f.iteration is not None
                else ""
            )
            + (f"a{f.attempt}" if f.attempt else "")
            for f in self.faults
        )

    # -- installation (called by the engine / worker main) -------------------

    def instrument(
        self, rank: int, attempt: int, transport, clock, disk,
        backend: str = "thread",
    ):
        """Wrap ``transport`` and arm ``disk`` for one rank execution.

        Returns the transport the rank's :class:`~repro.mpi.comm.Comm`
        should use.  Every rank is wrapped whenever a plan is active —
        the sealed wire format must be uniform across ranks — while
        the per-rank fault schedule only carries this rank's faults.
        ``backend`` selects the realisation of :class:`KillFault`: a real
        ``SIGKILL`` of the worker process under ``"process"``, an
        injected crash under ``"thread"`` (killing a rank thread would
        kill the host).
        """
        mine = self.for_rank(rank, attempt)
        quota = min(
            (f.blocks for f in mine if isinstance(f, DiskFullFault)),
            default=None,
        )
        if quota is not None:
            _arm_disk_quota(disk, rank, quota)
        else:
            disk.write_guard = None
        return FaultyTransport(
            rank,
            transport,
            clock,
            crash_at={
                f.superstep for f in mine if isinstance(f, CrashFault)
            },
            kill_at={
                f.superstep for f in mine if isinstance(f, KillFault)
            },
            corrupt_at={
                f.superstep for f in mine if isinstance(f, CorruptFault)
            },
            delay_at={
                f.superstep: f.seconds
                for f in mine
                if isinstance(f, DelayFault)
            },
            hang_at={
                f.superstep for f in mine if isinstance(f, HangFault)
            },
            slow=tuple(f for f in mine if isinstance(f, SlowFault)),
            seal=self.seal_payloads,
            hard_kill=(backend == "process"),
        )


# ---------------------------------------------------------------------------
# serving-side faults
# ---------------------------------------------------------------------------
#
# The build engine's faults key on a rank's superstep count; a serving
# worker has no supersteps, so its faults key on the worker's
# *executed-query count* instead — the q-th query that worker process
# executes in its lifetime.  A respawned replacement starts counting
# from zero again, which is what lets one spec drive sustained chaos
# (``kill@w0q5`` fells every generation of slot 0 at its 5th query);
# the optional ``g<generation>`` suffix pins a fault to one generation
# when a test needs the worker to survive afterwards.


@dataclass(frozen=True)
class ServeKillFault:
    """Serving worker in slot ``worker`` SIGKILLs itself entering its
    ``query``-th executed query (0-based, per process lifetime) — the
    hard mid-query node loss the service supervisor must absorb."""

    worker: int
    query: int
    generation: int | None = None
    kind: str = field(default="kill", init=False)


@dataclass(frozen=True)
class ServeHangFault:
    """Serving worker in slot ``worker`` goes silent for ``seconds``
    (a real sleep, heartbeats included) entering its ``query``-th
    executed query — a straggler the supervisor must declare hung."""

    worker: int
    query: int
    seconds: float = 5.0
    generation: int | None = None
    kind: str = field(default="hang", init=False)


@dataclass(frozen=True)
class ServeCorruptFault:
    """Serving worker in slot ``worker`` flips a byte in its
    ``query``-th result blob *after* the result CRC is stamped, so the
    coordinator's integrity check catches it and retries elsewhere."""

    worker: int
    query: int
    generation: int | None = None
    kind: str = field(default="corrupt", init=False)


ServeFault = ServeKillFault | ServeHangFault | ServeCorruptFault

#: ``--serve-faults`` grammar, one entry per fault, ``;``-separated:
#:   kill@w<worker>q<query>[g<generation>]
#:   hang@w<worker>q<query>[x<seconds>][g<generation>]
#:   corrupt@w<worker>q<query>[g<generation>]
_SERVE_SPEC_RE = re.compile(
    r"^(?P<kind>kill|hang|corrupt)@w(?P<worker>\d+)q(?P<query>\d+)"
    r"(?:x(?P<seconds>[0-9.]+))?(?:g(?P<generation>\d+))?$"
)


@dataclass(frozen=True)
class ServeFaultSchedule:
    """One worker generation's resolved fault schedule, keyed by its
    executed-query counter.  Built by :meth:`ServeFaultPlan.schedule`;
    interpreted by the serving worker's main loop."""

    kill_at: frozenset[int] = frozenset()
    hang_at: tuple[tuple[int, float], ...] = ()
    corrupt_at: frozenset[int] = frozenset()

    def hang_seconds(self, query_index: int) -> float | None:
        for at, seconds in self.hang_at:
            if at == query_index:
                return seconds
        return None


@dataclass(frozen=True)
class ServeFaultPlan:
    """A deterministic set of serving-side faults for one
    :class:`~repro.olap.service.QueryService` run.  Immutable and free
    of execution state, like :class:`FaultPlan`."""

    faults: tuple[ServeFault, ...] = ()

    def __post_init__(self) -> None:
        for f in self.faults:
            if f.worker < 0 or f.query < 0:
                raise ValueError(
                    f"serve fault worker/query must be >= 0: {f}"
                )

    @staticmethod
    def parse(text: str) -> "ServeFaultPlan":
        """Parse the CLI grammar, e.g. ``"kill@w0q5;hang@w1q3x2.5g0"``."""
        faults: list[ServeFault] = []
        for raw in re.split(r"[;,]", text):
            raw = raw.strip()
            if not raw:
                continue
            m = _SERVE_SPEC_RE.match(raw)
            if m is None:
                raise ValueError(
                    f"bad serve-fault spec {raw!r}; expected e.g. "
                    "kill@w0q5, hang@w1q3x2.5, corrupt@w2q4 "
                    "(optional g<generation> suffix)"
                )
            kind = m.group("kind")
            worker = int(m.group("worker"))
            query = int(m.group("query"))
            generation = (
                int(m.group("generation"))
                if m.group("generation") is not None
                else None
            )
            if kind == "kill":
                faults.append(ServeKillFault(worker, query, generation))
            elif kind == "corrupt":
                faults.append(
                    ServeCorruptFault(worker, query, generation)
                )
            else:
                faults.append(
                    ServeHangFault(
                        worker,
                        query,
                        float(m.group("seconds") or 5.0),
                        generation,
                    )
                )
        if not faults:
            raise ValueError(f"empty serve-fault spec: {text!r}")
        return ServeFaultPlan(tuple(faults))

    def describe(self) -> str:
        return "; ".join(
            f"{f.kind}@w{f.worker}q{f.query}"
            + (
                f"x{f.seconds:g}"
                if isinstance(f, ServeHangFault)
                else ""
            )
            + (f"g{f.generation}" if f.generation is not None else "")
            for f in self.faults
        )

    def schedule(
        self, worker: int, generation: int
    ) -> ServeFaultSchedule:
        """Resolve the schedule one worker generation must honour."""
        mine = [
            f
            for f in self.faults
            if f.worker == worker
            and (f.generation is None or f.generation == generation)
        ]
        return ServeFaultSchedule(
            kill_at=frozenset(
                f.query for f in mine if isinstance(f, ServeKillFault)
            ),
            hang_at=tuple(
                (f.query, f.seconds)
                for f in mine
                if isinstance(f, ServeHangFault)
            ),
            corrupt_at=frozenset(
                f.query
                for f in mine
                if isinstance(f, ServeCorruptFault)
            ),
        )


def _arm_disk_quota(disk, rank: int, blocks: int) -> None:
    """Install a one-shot write quota on a rank's local disk."""

    def guard(pending_blocks: int) -> None:
        if disk.stats.blocks_written + pending_blocks > blocks:
            disk.write_guard = None  # one-shot: disarm before raising
            raise DiskFull(
                f"rank {rank}: injected disk-full after "
                f"{disk.stats.blocks_written} blocks "
                f"(quota {blocks}, write of {pending_blocks} refused)",
                rank=rank,
            )

    disk.write_guard = guard


# ---------------------------------------------------------------------------
# sealed (checksummed) payloads
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Sealed:
    """A payload pickled + CRC-stamped by the sending rank."""

    data: bytes
    crc: int
    source: int

    @property
    def nbytes(self) -> int:  # keeps payload_nbytes sane if ever metered
        return len(self.data)


def _seal(payload: Any, source: int) -> _Sealed:
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return _Sealed(data, zlib.crc32(data), source)


def _unseal(sealed: Any, reader_rank: int) -> Any:
    if sealed is None:
        return None
    if not isinstance(sealed, _Sealed):
        raise MPIError(
            f"rank {reader_rank}: expected a sealed payload, got "
            f"{type(sealed).__name__} (mixed fault-injection wiring?)"
        )
    if zlib.crc32(sealed.data) != sealed.crc:
        # The *sender* is the culprit rank: its wire corrupted the bytes.
        raise CorruptPayload(
            f"rank {reader_rank}: payload from rank {sealed.source} "
            f"failed its CRC check (stamped {sealed.crc:#010x})",
            rank=sealed.source,
        )
    return pickle.loads(sealed.data)


class _UnsealingSlots:
    """Lazy slot table: verify + unpickle a slot only when it is read."""

    def __init__(self, slots: Sequence[Any], reader_rank: int):
        self._slots = slots
        self._rank = reader_rank
        self._cache: dict[int, Any] = {}

    def __len__(self) -> int:
        return len(self._slots)

    def __getitem__(self, idx: int):
        if idx not in self._cache:
            self._cache[idx] = _unseal(self._slots[idx], self._rank)
        return self._cache[idx]

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]


def _flip_byte(sealed: _Sealed) -> _Sealed:
    """Corrupt one byte of the sealed stream, keeping the stale CRC."""
    data = bytearray(sealed.data)
    if not data:  # pragma: no cover - pickle streams are never empty
        data = bytearray(b"\0")
    pos = len(data) // 2
    data[pos] ^= 0xFF
    return _Sealed(bytes(data), sealed.crc, sealed.source)


# ---------------------------------------------------------------------------
# the transport wrapper
# ---------------------------------------------------------------------------


class FaultyTransport:
    """Transport decorator realising a rank's fault schedule.

    Counts this rank's collectives (the superstep index faults refer to),
    fires crash/delay faults before the underlying exchange, and runs the
    seal/verify wire protocol around it.  Wraps both
    :class:`~repro.mpi.comm.ThreadTransport` and the process backend's
    pipe transport — fault semantics are backend-independent.
    """

    def __init__(
        self,
        rank: int,
        inner,
        clock,
        crash_at: set[int] | None = None,
        kill_at: set[int] | None = None,
        corrupt_at: set[int] | None = None,
        delay_at: dict[int, float] | None = None,
        hang_at: set[int] | None = None,
        slow: tuple[SlowFault, ...] = (),
        seal: bool = True,
        hard_kill: bool = False,
    ):
        self.rank = rank
        self.inner = inner
        self.clock = clock
        self.crash_at = crash_at or set()
        self.kill_at = kill_at or set()
        self.corrupt_at = corrupt_at or set()
        self.delay_at = delay_at or {}
        self.hang_at = hang_at or set()
        self.slow = slow
        self.seal = seal
        self.hard_kill = hard_kill
        self.superstep = 0

    def exchange(
        self,
        kind: str,
        payload: Any,
        send_row: np.ndarray,
        reader: Callable[[Sequence[Any]], Any],
    ) -> Any:
        step = self.superstep
        self.superstep += 1
        if step in self.kill_at:
            if self.hard_kill:
                # Process backend: die for real.  The Supervisor observes
                # the pipe close + exit code and raises RankDead.
                os.kill(os.getpid(), signal.SIGKILL)
            raise InjectedFault(
                f"rank {self.rank}: injected kill at superstep {step} "
                f"({kind}; thread backend degrades SIGKILL to a crash)",
                rank=self.rank,
            )
        if step in self.crash_at:
            raise InjectedFault(
                f"rank {self.rank}: injected crash at superstep {step} "
                f"({kind})",
                rank=self.rank,
            )
        if step in self.hang_at:
            # Synthesised supervisor verdict: the straggler is declared
            # hung without a real wall-clock stall, so both backends see
            # the same deterministic transient failure.
            raise RankHung(
                f"rank {self.rank}: injected hang at superstep {step} "
                f"({kind}; synthesised straggler verdict)",
                rank=self.rank,
            )
        delay = self.delay_at.get(step)
        if delay is not None:
            # Straggle: charge extra simulated seconds to this rank's
            # pending segment (and its phase accrual, so attribution
            # stays consistent) before the superstep commit reads them.
            self.clock._pending_segment[self.rank] += delay
            self.clock._phase_accrual[self.rank][
                self.clock._phase[self.rank]
            ] += delay
        if self.slow:
            phase = self.clock._phase[self.rank]
            factor = 1.0
            for f in self.slow:
                if f.iteration is None or phase.endswith(f"[{f.iteration}]"):
                    factor *= f.factor
            if factor != 1.0:
                # Multiply the segment the BSP commit is about to read;
                # Comm always marks the segment before calling the
                # transport, so the full local work is in pending here.
                extra = (
                    (factor - 1.0)
                    * self.clock._pending_segment[self.rank]
                )
                self.clock._pending_segment[self.rank] += extra
                self.clock._phase_accrual[self.rank][phase] += extra
        if not self.seal:
            return self.inner.exchange(kind, payload, send_row, reader)
        sealed = _seal(payload, self.rank)
        if step in self.corrupt_at:
            sealed = _flip_byte(sealed)
        rank = self.rank
        return self.inner.exchange(
            kind,
            sealed,
            send_row,
            lambda slots: reader(_UnsealingSlots(slots, rank)),
        )
