"""Shared-memory payload codec for the process execution backend.

Collective payloads in this code base are NumPy-heavy (packed key arrays,
measures, :class:`~repro.storage.table.Relation` /
:class:`~repro.core.viewdata.ViewData` values) with a thin shell of small
Python control objects (schedule trees, pivot lists, report dataclasses).
Shipping them between worker *processes* through a pipe would pickle the
arrays byte-for-byte into the stream — an avoidable copy through the
kernel.  Instead, :func:`encode` pickles the object graph while diverting
every large numeric array into a POSIX ``multiprocessing.shared_memory``
segment; what crosses the pipe is a small pickle blob holding segment
descriptors.  :func:`decode` reattaches the segments and copies the arrays
back out (one ``memcpy`` — the receiver owns its data, matching the
"treat received buffers as read-only or copy" contract of the thread
backend).

Lifecycle: the *creator* of a blob owns its segments and must call
:func:`unlink_segments` once every consumer has decoded — the engine's
superstep protocol sequences this with an ack/resume round, mirroring the
leave-barrier of the thread backend.  Unlinking is idempotent so the
coordinator can also sweep segments during failure cleanup.

Small arrays (under :data:`SHM_MIN_BYTES`), object-dtype arrays and
non-array values ride the pickle stream unchanged — the mpi4py object
path, with the buffer-protocol fast path reserved for payloads where it
pays.
"""

from __future__ import annotations

import io
import os
import pickle
import re
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Iterable

import numpy as np

__all__ = [
    "SHM_MIN_BYTES",
    "ShmBlob",
    "decode",
    "encode",
    "sweep_orphans",
    "unlink_segments",
]

#: Arrays smaller than one page are cheaper inline than as a segment
#: (``shm_open`` + ``mmap`` + ``unlink`` cost more than pickling 4 KB).
SHM_MIN_BYTES = 1 << 12

#: NumPy dtype kinds eligible for the shared-memory fast path
#: (fixed-width numeric buffers; the hot lanes are int64/float64).
_SHM_DTYPE_KINDS = "biufc"

_PID_TAG = "repro-shm-ndarray"

#: Segment naming scheme: ``rp<creator-pid>x<random-hex>``.  Embedding the
#: creator's pid makes leaked segments attributable: a worker SIGKILL'd
#: mid-collective cannot unlink its own segments, but anyone can later tell
#: that their creator is dead and sweep them (:func:`sweep_orphans`).  The
#: name stays well under the 31-character POSIX minimum for shm names.
_SEGMENT_RE = re.compile(r"^rp(\d+)x[0-9a-f]{8}$")

#: Where Linux exposes POSIX shared memory as files.  On platforms without
#: an enumerable shm filesystem the sweep degrades to a targeted-pids no-op.
_SHM_DIR = "/dev/shm"


def _create_segment(size: int) -> shared_memory.SharedMemory:
    """Create a session-attributable segment (name carries our pid)."""
    for _ in range(32):
        name = f"rp{os.getpid()}x{os.urandom(4).hex()}"
        try:
            return shared_memory.SharedMemory(
                name=name, create=True, size=size
            )
        except FileExistsError:  # pragma: no cover - 1-in-2^32 collision
            continue
    raise RuntimeError("could not allocate a unique shm segment name")


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - foreign live process
        return True
    return True


def sweep_orphans(pids: Iterable[int] | None = None) -> list[str]:
    """Unlink leaked segments whose creator process is dead.

    A SIGKILL'd worker leaves its in-flight segments behind — it never
    reaches its ``finally: unlink`` and the coordinator may never learn
    the segment names.  This sweep walks the shm filesystem for names
    matching our ``rp<pid>x...`` scheme and unlinks every segment whose
    creator pid no longer exists.  With ``pids`` given, only segments
    created by those (known-dead) processes are touched — the targeted
    form the coordinator uses after reaping workers.  Returns the swept
    segment names.  Idempotent and safe to race: concurrent live sessions
    are identified by their live creator pids and left alone.
    """
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-Linux host
        return []
    targets = None if pids is None else {int(pid) for pid in pids}
    swept: list[str] = []
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:  # pragma: no cover - defensive
        return []
    for name in names:
        match = _SEGMENT_RE.match(name)
        if match is None:
            continue
        pid = int(match.group(1))
        if targets is not None and pid not in targets:
            continue
        if _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(_SHM_DIR, name))
            swept.append(name)
        except OSError:  # pragma: no cover - raced cleanup
            pass
    return swept


@dataclass(frozen=True)
class ShmBlob:
    """One encoded payload: pickle bytes + the segments it references.

    ``segments`` lists the shared-memory names *created* by the encoder;
    the blob itself is cheap to pickle and may be relayed to any number of
    processes before the creator unlinks.
    """

    data: bytes
    segments: tuple[str, ...]

    @property
    def nbytes(self) -> int:
        return len(self.data)


class _ShmPickler(pickle.Pickler):
    """Pickler that spills large numeric ndarrays to shared memory."""

    def __init__(self, file: io.BytesIO, segments: list[str]):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._segments = segments
        # pickle consults persistent_id before its memo, so an array
        # referenced twice would otherwise get two segments.
        self._seen: dict[int, tuple] = {}

    def persistent_id(self, obj: Any):
        if not isinstance(obj, np.ndarray):
            return None
        if (
            obj.dtype.kind not in _SHM_DTYPE_KINDS
            or obj.nbytes < SHM_MIN_BYTES
        ):
            return None
        pid = self._seen.get(id(obj))
        if pid is not None:
            return pid
        arr = np.ascontiguousarray(obj)
        seg = _create_segment(arr.nbytes)
        try:
            dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
            dst[...] = arr
            pid = (_PID_TAG, seg.name, arr.dtype.str, arr.shape)
        finally:
            seg.close()  # the mapping; the segment lives until unlink
        self._segments.append(seg.name)
        self._seen[id(obj)] = pid
        return pid


class _ShmUnpickler(pickle.Unpickler):
    """Unpickler that copies persistent ndarrays back out of segments."""

    def persistent_load(self, pid):
        tag, name, dtype_str, shape = pid
        if tag != _PID_TAG:  # pragma: no cover - foreign persistent id
            raise pickle.UnpicklingError(f"unknown persistent id {tag!r}")
        seg = _attach(name)
        try:
            src = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=seg.buf)
            return src.copy()
        finally:
            seg.close()


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its ownership.

    On Python 3.10–3.12 ``SharedMemory(name=...)`` registers the segment
    with the (process-tree-wide) resource tracker even for plain
    attaches, which then races the real owner's register/unlink pair
    (cpython bpo-39959).  3.13 grew ``track=False``; earlier versions
    need registration suppressed for the duration of the attach.  The
    engine only attaches from single-threaded worker/coordinator code, so
    the brief monkeypatch cannot race other shared-memory users.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    real_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = real_register


def encode(obj: Any) -> ShmBlob:
    """Encode one payload; large numeric arrays land in shared memory."""
    segments: list[str] = []
    buf = io.BytesIO()
    try:
        _ShmPickler(buf, segments).dump(obj)
    except Exception:
        unlink_segments(segments)  # don't leak partial encodings
        raise
    return ShmBlob(buf.getvalue(), tuple(segments))


def decode(blob: ShmBlob) -> Any:
    """Decode a blob; the result owns private copies of every array."""
    return _ShmUnpickler(io.BytesIO(blob.data)).load()


def unlink_segments(names) -> None:
    """Free segments by name; missing segments are ignored (idempotent)."""
    for name in names:
        try:
            seg = _attach(name)
        except FileNotFoundError:
            continue
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - raced cleanup
            pass
        finally:
            seg.close()
