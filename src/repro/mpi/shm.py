"""Pooled, zero-copy shared-memory data plane for the process backend.

Collective payloads in this code base are NumPy-heavy (packed key arrays,
measures, :class:`~repro.storage.table.Relation` /
:class:`~repro.core.viewdata.ViewData` values) with a thin shell of small
Python control objects (schedule trees, pivot lists, report dataclasses).
Shipping them between worker *processes* through a pipe would pickle the
arrays byte-for-byte into the stream — an avoidable copy through the
kernel.  Instead, :func:`encode` pickles the object graph while diverting
every large numeric array into a POSIX ``multiprocessing.shared_memory``
segment; what crosses the pipe is a small pickle blob holding segment
descriptors.

This module provides three coordinated pieces (the MPI analogy for each
in parentheses — cf. the registered buffer pools and zero-copy rendezvous
of mpi4py's buffer-protocol path):

:class:`SegmentArena` (registered buffer pool)
    A per-process pool of size-classed segments reused across supersteps.
    ``lease`` hands out a segment (creating one only on a pool miss),
    ``recycle`` returns it once every consumer has dropped its lease, and
    ``close`` unlinks everything at backend shutdown.  This replaces the
    per-payload ``shm_open``/``mmap``/``unlink`` syscall churn of the
    naive plane.  With ``pooled=False`` the arena degrades to the
    create/unlink-per-payload behaviour (the benchmark baseline).

:class:`LeaseTracker` + zero-copy :meth:`DataPlane.decode` (rendezvous)
    Decoding can return ndarrays that *alias* the segment — read-only
    views pinned by a lease that is dropped automatically when the last
    view is garbage collected.  The superstep protocol in
    :mod:`repro.mpi.backends` reports still-held segments to the
    coordinator, which recycles a creator's segment only after every
    consumer rank has released it.  Callers that need to mutate a
    received array use :func:`materialize`.

Lane batching (:meth:`DataPlane.encode_lanes`)
    ``alltoall``/``scatter`` payloads encode all ``p`` lanes into **one**
    arena segment with an offset table — one segment per collective
    instead of one per lane — while each lane stays independently
    decodable, so receivers still only pay for lanes addressed to them.

Small arrays (under :data:`SHM_MIN_BYTES`), object-dtype arrays and
non-array values ride the pickle stream unchanged — the mpi4py object
path, with the buffer-protocol fast path reserved for payloads where it
pays.  Traffic metering (:func:`repro.mpi.stats.payload_nbytes`) happens
on the raw payloads *before* encoding and is unaffected by any of this;
so is :class:`~repro.mpi.faults.FaultyTransport` sealing, which wraps the
payload before the transport sees it.

Zero-copy safety rests on POSIX unlink semantics: unlinking a segment
only removes its *name* — the backing memory survives until the last
mapping is closed, so a consumer's read-only views outlive the creator's
unlink.  The only operation that must wait for consumers is *reuse*
(writing new data into a pooled segment), which is exactly what the
coordinator's release accounting gates.

Lifecycle without an arena (the module-level :func:`encode` /
:func:`decode` convenience API): the creator owns the blob's segment and
must call :func:`unlink_segments` once every consumer has decoded.
Unlinking is idempotent so cleanup paths can always sweep.
"""

from __future__ import annotations

import io
import os
import pickle
import re
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Iterable, Sequence

import numpy as np

__all__ = [
    "SHM_MIN_BYTES",
    "SHM_MIN_BYTES_POOLED",
    "DataPlane",
    "LeaseTracker",
    "SegmentArena",
    "ShmBlob",
    "decode",
    "encode",
    "encode_lanes",
    "materialize",
    "share_resource_tracker",
    "sweep_orphans",
    "unlink_segments",
]

#: Arrays smaller than one page are cheaper inline than as a segment
#: (``shm_open`` + ``mmap`` + ``unlink`` cost more than pickling 4 KB).
#: This calibration is for the *unpooled* plane, where every divert pays
#: the full segment-lifecycle syscalls; it is also what the arena-less
#: module-level :func:`encode` uses.
SHM_MIN_BYTES = 1 << 12

#: Divert threshold under a pooled arena.  Leasing from the pool reduces
#: the marginal cost of a divert to a memcpy into an already-mapped
#: segment, so much smaller arrays are worth keeping out of the pickle
#: stream (inline bytes cross the pipe twice per hop; diverted bytes are
#: written once and read zero-copy).
SHM_MIN_BYTES_POOLED = 1 << 9

#: NumPy dtype kinds eligible for the shared-memory fast path
#: (fixed-width numeric buffers; the hot lanes are int64/float64).
_SHM_DTYPE_KINDS = "biufc"

#: Cache-line alignment of array slots inside a shared segment.
_ALIGN = 64

#: Pool retention cap per size class: beyond this, recycled segments are
#: unlinked instead of pooled (bounds arena memory on bursty payloads).
_MAX_POOLED_PER_CLASS = 8

_PID_TAG = "repro-shm-ndarray"

#: Segment naming scheme: ``rp<creator-pid>x<random-hex>``.  Embedding the
#: creator's pid makes leaked segments attributable: a worker SIGKILL'd
#: mid-collective cannot unlink its own segments, but anyone can later tell
#: that their creator is dead and sweep them (:func:`sweep_orphans`).  The
#: name stays well under the 31-character POSIX minimum for shm names.
_SEGMENT_RE = re.compile(r"^rp(\d+)x[0-9a-f]{8}$")

#: Where Linux exposes POSIX shared memory as files.  On platforms without
#: an enumerable shm filesystem the sweep degrades to a targeted-pids no-op.
_SHM_DIR = "/dev/shm"


def _create_segment(size: int) -> shared_memory.SharedMemory:
    """Create a session-attributable segment (name carries our pid)."""
    for _ in range(32):
        name = f"rp{os.getpid()}x{os.urandom(4).hex()}"
        try:
            return shared_memory.SharedMemory(
                name=name, create=True, size=size
            )
        except FileExistsError:  # pragma: no cover - 1-in-2^32 collision
            continue
    raise RuntimeError("could not allocate a unique shm segment name")


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - foreign live process
        return True
    return True


def sweep_orphans(pids: Iterable[int] | None = None) -> list[str]:
    """Unlink leaked segments whose creator process is dead.

    A SIGKILL'd worker leaves its arena segments behind — it never
    reaches its ``finally: close`` and the coordinator may never learn
    the segment names.  This sweep walks the shm filesystem for names
    matching our ``rp<pid>x...`` scheme and unlinks every segment whose
    creator pid no longer exists.  With ``pids`` given, only segments
    created by those (known-dead) processes are touched — the targeted
    form the coordinator uses after reaping workers.  Returns the swept
    segment names.  Idempotent and safe to race: concurrent live sessions
    are identified by their live creator pids and left alone.
    """
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-Linux host
        return []
    targets = None if pids is None else {int(pid) for pid in pids}
    swept: list[str] = []
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:  # pragma: no cover - defensive
        return []
    for name in names:
        match = _SEGMENT_RE.match(name)
        if match is None:
            continue
        pid = int(match.group(1))
        if targets is not None and pid not in targets:
            continue
        if _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(_SHM_DIR, name))
            swept.append(name)
        except OSError:  # pragma: no cover - raced cleanup
            continue
        # A dead *child* of ours registered the segment with the
        # fork-shared resource tracker; deregister on its behalf so the
        # tracker does not warn about (and re-attempt) the cleanup at
        # exit.  Global sweeps (pids=None) reclaim other sessions'
        # leftovers, which our tracker never saw — skip those.
        if targets is not None:
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister("/" + name, "shared_memory")
            except Exception:  # pragma: no cover - tracker gone
                pass
    return swept


def share_resource_tracker() -> None:
    """Start the resource tracker *now*, before any worker is forked.

    CPython starts the tracker lazily on first shared-resource creation.
    If the first segment is created inside a forked worker, that worker
    spawns its own private tracker: its registrations are invisible to
    the coordinator (whose later :func:`sweep_orphans` unregister hits a
    different tracker and KeyErrors there), and when the worker is
    SIGKILL'd its orphaned tracker races the coordinator's sweep and
    warns about "leaked" segments at shutdown.  Starting the tracker in
    the coordinator first means every forked worker inherits the shared
    pipe, so register (worker) and unregister (coordinator sweep) meet
    in the same tracker.  Best-effort: supervision works without it, it
    is only quieter with it.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:  # pragma: no cover - non-POSIX or patched tracker
        pass


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its ownership.

    On Python 3.10–3.12 ``SharedMemory(name=...)`` registers the segment
    with the (process-tree-wide) resource tracker even for plain
    attaches, which then races the real owner's register/unlink pair
    (cpython bpo-39959).  3.13 grew ``track=False``; earlier versions
    need registration suppressed for the duration of the attach.  The
    engine only attaches from single-threaded worker/coordinator code, so
    the brief monkeypatch cannot race other shared-memory users.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    real_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = real_register


def materialize(arr: Any) -> Any:
    """Writable private copy of a possibly segment-aliasing array.

    The escape hatch for rank code that must mutate a received payload:
    zero-copy decode hands out read-only views pinned to the sender's
    segment; ``materialize`` detaches them (and drops the lease as soon
    as the view is garbage collected).  Writable arrays — including
    everything the thread backend delivers — pass through untouched.
    """
    if isinstance(arr, np.ndarray) and not arr.flags.writeable:
        return arr.copy()
    return arr


# ---------------------------------------------------------------------------
# blob format
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShmBlob:
    """One encoded payload: pickle bytes + its shared-segment directory.

    ``segments`` names the shared-memory segments holding the diverted
    arrays of this payload.  The pooled plane packs every array of a
    payload — and all lanes of one collective — into a *single* arena
    segment, so the tuple usually has one entry; the legacy (unpooled)
    plane creates one segment per array.  ``arrays`` is the offset
    table: entry ``i`` is ``(segment_index, offset, dtype_str, shape)``
    for the array whose persistent id in ``data`` is ``(tag, i)``.  The
    blob itself is cheap to pickle and may be relayed to any number of
    processes before the creator recycles or unlinks its segments.
    """

    data: bytes
    segments: tuple[str, ...] = ()
    arrays: tuple[tuple[int, int, str, tuple[int, ...]], ...] = ()

    @property
    def nbytes(self) -> int:
        return len(self.data)


class _CollectingPickler(pickle.Pickler):
    """Pickler that diverts large numeric ndarrays into an array list.

    The stream carries ``(tag, index)`` persistent ids; the arrays
    themselves are collected (contiguous, pinned) for a single copy pass
    into one shared segment after the dump.
    """

    def __init__(self, file: io.BytesIO, min_bytes: int = SHM_MIN_BYTES):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._min_bytes = min_bytes
        self.arrays: list[np.ndarray] = []
        # pickle consults persistent_id before its memo, so an array
        # referenced twice would otherwise be copied twice.  The map pins
        # the object itself: keying by id() alone would let a temporary
        # array be gc'd mid-dump, its id recycled, and a later array
        # silently aliased to the wrong slot.
        self._seen: dict[int, tuple[Any, int]] = {}

    def persistent_id(self, obj: Any):
        if not isinstance(obj, np.ndarray):
            return None
        if (
            obj.dtype.kind not in _SHM_DTYPE_KINDS
            or obj.nbytes < self._min_bytes
        ):
            return None
        entry = self._seen.get(id(obj))
        if entry is not None and entry[0] is obj:
            return (_PID_TAG, entry[1])
        index = len(self.arrays)
        self.arrays.append(np.ascontiguousarray(obj))
        self._seen[id(obj)] = (obj, index)
        return (_PID_TAG, index)


def _collect_dump(
    obj: Any, min_bytes: int = SHM_MIN_BYTES
) -> tuple[bytes, list[np.ndarray]]:
    buf = io.BytesIO()
    pickler = _CollectingPickler(buf, min_bytes)
    pickler.dump(obj)
    return buf.getvalue(), pickler.arrays


def _divert_threshold(arena: "SegmentArena | None") -> int:
    """The arena's economics decide how small a divert still pays."""
    if arena is not None and arena.pooled:
        return SHM_MIN_BYTES_POOLED
    return SHM_MIN_BYTES


def _aligned_layout(
    arrays: Sequence[np.ndarray],
) -> tuple[list[int], int]:
    """Cache-line-aligned offsets for packing ``arrays`` into one segment."""
    offsets: list[int] = []
    total = 0
    for arr in arrays:
        total = (total + _ALIGN - 1) & ~(_ALIGN - 1)
        offsets.append(total)
        total += arr.nbytes
    return offsets, total


def _pack_arrays(
    seg: shared_memory.SharedMemory,
    arrays: Sequence[np.ndarray],
    offsets: Sequence[int],
) -> tuple[tuple[int, int, str, tuple[int, ...]], ...]:
    """Copy ``arrays`` into one segment; return their blob table."""
    table = []
    for arr, offset in zip(arrays, offsets):
        dst = np.ndarray(
            arr.shape, dtype=arr.dtype, buffer=seg.buf, offset=offset
        )
        dst[...] = arr
        table.append((0, offset, arr.dtype.str, arr.shape))
    return tuple(table)


class _ShmUnpickler(pickle.Unpickler):
    """Unpickler resolving ``(tag, index)`` ids against a blob's table.

    ``view_of(seg_index, shape, dtype, offset)`` maps a table entry to
    an ndarray over the attached segment — a private copy or a pinned
    read-only view, the caller's choice.  Repeated references to the
    same index return the same object.
    """

    def __init__(self, blob: ShmBlob, view_of):
        super().__init__(io.BytesIO(blob.data))
        self._blob = blob
        self._view_of = view_of
        self._loaded: dict[int, np.ndarray] = {}

    def persistent_load(self, pid):
        tag, index = pid
        if tag != _PID_TAG:  # pragma: no cover - foreign persistent id
            raise pickle.UnpicklingError(f"unknown persistent id {tag!r}")
        arr = self._loaded.get(index)
        if arr is None:
            seg_idx, offset, dtype_str, shape = self._blob.arrays[index]
            arr = self._view_of(seg_idx, shape, np.dtype(dtype_str), offset)
            self._loaded[index] = arr
        return arr


# ---------------------------------------------------------------------------
# segment arena (creator side)
# ---------------------------------------------------------------------------


class SegmentArena:
    """Per-process pool of size-classed shared-memory segments.

    ``lease`` returns an open segment of at least the requested size,
    reusing a pooled one when available (sizes are rounded to powers of
    two, so steady-state supersteps hit the pool).  A leased segment is
    *in flight* until :meth:`recycle` is called with its name — which the
    backend does only once the coordinator has confirmed every consumer
    rank released it.  ``pooled=False`` turns recycling into an immediate
    unlink (the unpooled baseline).  :meth:`close` unlinks every segment,
    pooled or in flight — the backend-shutdown path; segments a crashed
    worker never closed are reclaimed by :func:`sweep_orphans` instead.
    """

    def __init__(self, pooled: bool = True):
        self.pooled = pooled
        self._pool: dict[int, list[shared_memory.SharedMemory]] = {}
        self._in_flight: dict[str, shared_memory.SharedMemory] = {}
        self._class_of: dict[str, int] = {}
        self.segments_created = 0
        self.segments_reused = 0
        self.bytes_created = 0
        self.bytes_reused = 0
        self.leases = 0

    @staticmethod
    def _size_class(nbytes: int) -> int:
        return 1 << max(nbytes - 1, SHM_MIN_BYTES - 1).bit_length()

    def lease(self, nbytes: int) -> shared_memory.SharedMemory:
        """Check out a segment with room for ``nbytes`` bytes."""
        if not self.pooled:
            # Legacy plane: exact-size segment per payload, unlinked on
            # recycle — no reuse, so no point rounding to a size class.
            seg = _create_segment(max(nbytes, 1))
            self.leases += 1
            self.segments_created += 1
            self.bytes_created += max(nbytes, 1)
            self._in_flight[seg.name] = seg
            self._class_of[seg.name] = 0
            return seg
        size = self._size_class(nbytes)
        self.leases += 1
        bucket = self._pool.get(size)
        if bucket:
            seg = bucket.pop()
            self.segments_reused += 1
            self.bytes_reused += nbytes
        else:
            seg = _create_segment(size)
            self.segments_created += 1
            self.bytes_created += size
        self._in_flight[seg.name] = seg
        self._class_of[seg.name] = size
        return seg

    def recycle(self, names: Iterable[str]) -> None:
        """Return released segments to the pool (or unlink, if unpooled)."""
        for name in names:
            seg = self._in_flight.pop(name, None)
            if seg is None:
                continue
            size = self._class_of[name]
            bucket = self._pool.setdefault(size, [])
            if self.pooled and len(bucket) < _MAX_POOLED_PER_CLASS:
                bucket.append(seg)
            else:
                self._class_of.pop(name, None)
                _destroy(seg)

    @property
    def pooled_segments(self) -> int:
        return sum(len(b) for b in self._pool.values())

    def stats(self) -> dict[str, int | float]:
        """Pool counters (aggregated across ranks by the coordinator)."""
        hit_rate = self.segments_reused / self.leases if self.leases else 0.0
        return {
            "leases": self.leases,
            "segments_created": self.segments_created,
            "segments_reused": self.segments_reused,
            "bytes_created": self.bytes_created,
            "bytes_reused": self.bytes_reused,
            "hit_rate": round(hit_rate, 4),
        }

    def close(self) -> None:
        """Unlink every segment this arena ever handed out and still owns."""
        for bucket in self._pool.values():
            for seg in bucket:
                _destroy(seg)
        for seg in self._in_flight.values():
            _destroy(seg)
        self._pool.clear()
        self._in_flight.clear()
        self._class_of.clear()


def _destroy(seg: shared_memory.SharedMemory) -> None:
    """Unlink + close one owned segment, tolerating raced cleanup and
    still-exported local views (the mapping dies with the process)."""
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - raced cleanup
        pass
    try:
        seg.close()
    except BufferError:  # pragma: no cover - local views still alive
        pass


# ---------------------------------------------------------------------------
# lease tracker (consumer side)
# ---------------------------------------------------------------------------


class _Attachment:
    """One consumer-side mapping of a foreign segment, with pinned views.

    ``pins`` counts the live zero-copy views aliasing the mapping; each
    view carries a weakref finalizer that unpins it on garbage
    collection, so "no pins" means no rank code can still observe the
    segment's bytes.
    """

    def __init__(self, name: str):
        self.name = name
        self.shm = _attach(name)
        self.pins = 0
        self.closed = False

    def view(
        self, shape: tuple[int, ...], dtype: np.dtype, offset: int
    ) -> np.ndarray:
        arr = np.ndarray(shape, dtype=dtype, buffer=self.shm.buf, offset=offset)
        arr.flags.writeable = False
        self.pins += 1
        weakref.finalize(arr, _Attachment._unpin, self)
        return arr

    @staticmethod
    def _unpin(att: "_Attachment") -> None:
        att.pins -= 1

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - views still exported
            self.closed = False


class LeaseTracker:
    """Consumer-side registry of segment attachments and their leases.

    ``cache=True`` (pooled planes) keeps attachments open across
    supersteps — segment names are stable under pooling, so the next
    superstep's decode reuses the mapping without another ``shm_open``.
    ``cache=False`` (unpooled planes) closes an attachment as soon as its
    last pin drops, releasing the backing memory of segments the owner
    has already unlinked.
    """

    def __init__(self, cache: bool = True):
        self.cache = cache
        self._attachments: dict[str, _Attachment] = {}
        self.attaches = 0
        self.attach_reuses = 0

    def attachment(self, name: str) -> _Attachment:
        att = self._attachments.get(name)
        if att is not None and not att.closed:
            self.attach_reuses += 1
            return att
        att = _Attachment(name)
        self._attachments[name] = att
        self.attaches += 1
        return att

    def held(self) -> list[str]:
        """Names of segments still pinned by live zero-copy views."""
        return [
            name
            for name, att in self._attachments.items()
            if not att.closed and att.pins > 0
        ]

    def sweep(self) -> None:
        """Drop attachments with no remaining pins (unpooled mode only)."""
        if self.cache:
            return
        dead = []
        for name, att in self._attachments.items():
            if att.pins <= 0:
                att.close()
                if att.closed:
                    dead.append(name)
        for name in dead:
            del self._attachments[name]

    def stats(self) -> dict[str, int]:
        return {"attaches": self.attaches, "attach_reuses": self.attach_reuses}

    def close(self) -> None:
        for att in self._attachments.values():
            att.close()
        self._attachments.clear()


# ---------------------------------------------------------------------------
# encode / decode
# ---------------------------------------------------------------------------


def _encode_packed(
    data: bytes, arrays: list[np.ndarray], arena: SegmentArena | None
) -> ShmBlob:
    """Pack every diverted array into one segment (the pooled layout)."""
    offsets, total = _aligned_layout(arrays)
    if arena is not None:
        seg = arena.lease(total)
        return ShmBlob(data, (seg.name,), _pack_arrays(seg, arrays, offsets))
    seg = _create_segment(total)
    try:
        table = _pack_arrays(seg, arrays, offsets)
    except Exception:
        _destroy(seg)  # don't leak partial encodings
        raise
    seg.close()  # the mapping; the segment lives until unlink
    return ShmBlob(data, (seg.name,), table)


def _encode_legacy(
    data: bytes, arrays: list[np.ndarray], arena: SegmentArena
) -> ShmBlob:
    """One exact-size segment per array — the plane this PR replaces,
    kept behind ``pooled=False`` as the benchmark baseline."""
    names = []
    table = []
    for i, arr in enumerate(arrays):
        seg = arena.lease(arr.nbytes)
        dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        dst[...] = arr
        names.append(seg.name)
        table.append((i, 0, arr.dtype.str, arr.shape))
    return ShmBlob(data, tuple(names), tuple(table))


def encode(obj: Any, arena: SegmentArena | None = None) -> ShmBlob:
    """Encode one payload; large numeric arrays land in shared memory.

    With a pooled ``arena`` every array is packed into one leased
    segment; an unpooled arena reproduces the legacy segment-per-array
    layout.  Without an arena a dedicated packed segment is created and
    the caller owns it (:func:`unlink_segments`).
    """
    data, arrays = _collect_dump(obj, _divert_threshold(arena))
    if not arrays:
        return ShmBlob(data)
    if arena is not None and not arena.pooled:
        return _encode_legacy(data, arrays, arena)
    return _encode_packed(data, arrays, arena)


def encode_lanes(
    lanes: Sequence[Any], arena: SegmentArena | None = None
) -> list[ShmBlob | None]:
    """Encode a per-destination lane list of one scatter/alltoall.

    Every lane is pickled independently (receivers decode only the lanes
    addressed to them).  Under a pooled arena all diverted arrays of all
    ``p`` lanes are packed into a *single* segment with a shared offset
    table — one segment per collective instead of one per lane; the
    returned blobs alias that segment.  An unpooled arena keeps the
    legacy per-lane, per-array segments.  ``None`` lanes stay ``None``.
    """
    if arena is not None and not arena.pooled:
        return [
            None if lane is None else encode(lane, arena) for lane in lanes
        ]
    min_bytes = _divert_threshold(arena)
    dumped: list[tuple[bytes, list[np.ndarray]] | None] = [
        None if lane is None else _collect_dump(lane, min_bytes)
        for lane in lanes
    ]
    all_arrays: list[np.ndarray] = []
    for item in dumped:
        if item is not None:
            all_arrays.extend(item[1])
    if not all_arrays:
        return [
            None if item is None else ShmBlob(item[0]) for item in dumped
        ]
    packed = _encode_packed(b"", all_arrays, arena)
    blobs: list[ShmBlob | None] = []
    cursor = 0
    for item in dumped:
        if item is None:
            blobs.append(None)
            continue
        data, arrays = item
        lane_table = packed.arrays[cursor : cursor + len(arrays)]
        cursor += len(arrays)
        blobs.append(
            ShmBlob(data, packed.segments if arrays else (), lane_table)
        )
    return blobs


def decode(
    blob: ShmBlob,
    tracker: LeaseTracker | None = None,
    zero_copy: bool = False,
) -> Any:
    """Decode a blob.

    Default (no tracker): every array is a private writable copy and the
    one-shot attachments are closed before returning — the legacy copy
    plane.  With a ``tracker`` and ``zero_copy=True``: arrays are
    read-only views aliasing the segments, pinned on the tracker's
    attachments until garbage collected (see :func:`materialize`).
    """
    if not blob.segments:
        return _ShmUnpickler(blob, None).load()
    if tracker is not None:
        atts: dict[int, _Attachment] = {}

        def view_of(seg_idx, shape, dtype, offset):
            att = atts.get(seg_idx)
            if att is None:
                att = atts[seg_idx] = tracker.attachment(
                    blob.segments[seg_idx]
                )
            if zero_copy:
                return att.view(shape, dtype, offset)
            return np.ndarray(
                shape, dtype=dtype, buffer=att.shm.buf, offset=offset
            ).copy()

        return _ShmUnpickler(blob, view_of).load()
    segs: dict[int, shared_memory.SharedMemory] = {}
    try:

        def view_of(seg_idx, shape, dtype, offset):
            seg = segs.get(seg_idx)
            if seg is None:
                seg = segs[seg_idx] = _attach(blob.segments[seg_idx])
            return np.ndarray(
                shape, dtype=dtype, buffer=seg.buf, offset=offset
            ).copy()

        return _ShmUnpickler(blob, view_of).load()
    finally:
        for seg in segs.values():
            seg.close()


def unlink_segments(names: Iterable[str]) -> None:
    """Free segments by name; missing segments are ignored (idempotent)."""
    for name in names:
        try:
            seg = _attach(name)
        except FileNotFoundError:
            continue
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - raced cleanup
            pass
        finally:
            seg.close()


# ---------------------------------------------------------------------------
# the data plane (one per worker process)
# ---------------------------------------------------------------------------


class DataPlane:
    """One worker's view of the shared-memory data plane.

    Bundles the creator-side :class:`SegmentArena` and the consumer-side
    :class:`LeaseTracker` under the (pooled, zero_copy) mode switches of
    :class:`~repro.config.MachineSpec`.  The process backend constructs
    one per worker; mode selection also decides the superstep release
    protocol (see :mod:`repro.mpi.backends`).
    """

    def __init__(self, pooled: bool = True, zero_copy: bool = True):
        self.pooled = pooled
        self.zero_copy = zero_copy
        self.arena = SegmentArena(pooled=pooled)
        self.tracker = LeaseTracker(cache=pooled)

    def encode(self, obj: Any) -> ShmBlob:
        return encode(obj, arena=self.arena)

    def encode_lanes(self, lanes: Sequence[Any]) -> list[ShmBlob | None]:
        return encode_lanes(lanes, arena=self.arena)

    def decode(self, blob: ShmBlob) -> Any:
        return decode(blob, tracker=self.tracker, zero_copy=self.zero_copy)

    def held(self) -> list[str]:
        """Foreign segments still pinned by this worker's live views."""
        return self.tracker.held()

    def recycle(self, names: Iterable[str]) -> None:
        """Coordinator confirmed release: pool (or unlink) own segments."""
        self.arena.recycle(names)

    def sweep(self) -> None:
        self.tracker.sweep()

    def stats(self) -> dict[str, int | float]:
        return {**self.arena.stats(), **self.tracker.stats()}

    def close(self) -> None:
        self.tracker.close()
        self.arena.close()
