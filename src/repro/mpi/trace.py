"""Superstep trace export and timeline rendering.

Turns a finished run's :class:`~repro.mpi.clock.BSPClock` log into
diagnostics: a JSON-serialisable trace (for external tooling) and a
terminal timeline that shows where simulated time went, superstep by
superstep — the "why is my cube build slow" tool.
"""

from __future__ import annotations

import json
from typing import Any

from repro.mpi.clock import BSPClock

__all__ = ["render_timeline", "trace_to_json", "phase_summary"]


def trace_to_json(clock: BSPClock) -> str:
    """Serialise the superstep log (schema: list of superstep objects)."""
    records: list[dict[str, Any]] = []
    for step, rec in enumerate(clock.log):
        records.append(
            {
                "step": step,
                "kind": rec.kind,
                "phase": rec.phase,
                "compute_seconds": rec.compute_seconds,
                "comm_seconds": rec.comm_seconds,
                "offrank_bytes": rec.offrank_bytes,
                "max_rank_bytes": rec.max_rank_bytes,
            }
        )
    return json.dumps(
        {
            "simulated_seconds": clock.sim_time,
            "compute_seconds": clock.compute_time,
            "comm_seconds": clock.comm_time,
            "supersteps": records,
        },
        indent=1,
    )


def phase_summary(clock: BSPClock) -> list[tuple[str, float, float, int]]:
    """Per-phase ``(phase, compute_s, comm_s, supersteps)``, by time desc."""
    agg: dict[str, list[float]] = {}
    for rec in clock.log:
        entry = agg.setdefault(rec.phase, [0.0, 0.0, 0])
        entry[0] += rec.compute_seconds
        entry[1] += rec.comm_seconds
        entry[2] += 1
    rows = [
        (phase, vals[0], vals[1], int(vals[2]))
        for phase, vals in agg.items()
    ]
    rows.sort(key=lambda row: -(row[1] + row[2]))
    return rows


def render_timeline(clock: BSPClock, width: int = 64) -> str:
    """One bar per phase, compute (=) vs communication (~), to scale."""
    rows = phase_summary(clock)
    total = sum(compute + comm for _, compute, comm, _ in rows) or 1.0
    name_w = max((len(r[0]) for r in rows), default=5)
    lines = [
        f"simulated {clock.sim_time:.2f}s over {clock.superstep_count()} "
        f"supersteps ({clock.comm_fraction():.0%} communication)"
    ]
    for phase, compute, comm, steps in rows:
        share = (compute + comm) / total
        bar_len = max(1, round(share * width))
        comm_len = (
            round(bar_len * comm / (compute + comm))
            if compute + comm > 0
            else 0
        )
        bar = "=" * (bar_len - comm_len) + "~" * comm_len
        lines.append(
            f"  {phase.ljust(name_w)} |{bar.ljust(width)}| "
            f"{compute + comm:7.3f}s  ({steps} steps)"
        )
    lines.append("  (= compute/disk, ~ network)")
    return "\n".join(lines)
