"""BSP cost clock: turns a single-host simulation into cluster wall-clock.

Model
-----
Execution is a sequence of *supersteps* separated by collectives.  In
superstep ``s`` every rank ``j`` performs local work (CPU + disk I/O) and
then enters the collective.  Simulated time advances by::

    T_s = max_j (cpu_j * compute_scale + blocks_j * disk_sec_per_block)
          + latency + beta * h_s / 1e6

where ``h_s`` is the busiest rank's in+out byte volume of the collective
(the h-relation measure the paper's analysis uses).  Total simulated time
is ``sum_s T_s``.

Per-rank CPU is measured with :func:`time.thread_time`, which charges each
rank thread only the CPU it actually consumed — the GIL serialises the
threads but does not distort the per-thread totals, so ``max_j`` is a
faithful critical-path estimate of what the same SPMD program would cost
with ranks on separate machines.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.config import MachineSpec

__all__ = ["BSPClock", "SuperstepRecord"]


@dataclass
class SuperstepRecord:
    """One superstep's accounting, for introspection and tests."""

    kind: str
    phase: str
    compute_seconds: float
    comm_seconds: float
    offrank_bytes: int
    max_rank_bytes: int


class BSPClock:
    """Accumulates simulated parallel wall-clock time for one cluster run."""

    def __init__(self, spec: MachineSpec):
        self.spec = spec
        self.sim_time = 0.0
        self.compute_time = 0.0
        self.comm_time = 0.0
        self.phase_seconds: dict[str, float] = defaultdict(float)
        self.phase_comm_seconds: dict[str, float] = defaultdict(float)
        self.phase_compute_seconds: dict[str, float] = defaultdict(float)
        self.log: list[SuperstepRecord] = []
        p = spec.p
        # Per-rank bookkeeping, touched only by the owning rank thread
        # (except inside the barrier action, where all rank threads are
        # parked).
        self._cpu_mark = [0.0] * p
        self._io_mark = [0] * p
        self._work_mark = [0.0] * p
        self._pending_segment = [0.0] * p
        # Cumulative local-work seconds per rank across the whole run —
        # the raw signal for per-rank throughput (rows/sec) estimation.
        # Thread backend + the process-backend coordinator see the full
        # vector; a process-backend worker only maintains its own entry.
        self.rank_busy = [0.0] * p
        self._phase = ["startup"] * p
        # Per-rank accrual of local work split by the phase it happened in
        # (rank 0's split is used to apportion each superstep's cost).
        self._phase_accrual: list[dict[str, float]] = [
            defaultdict(float) for _ in range(p)
        ]
        self.max_log = 100_000

    # -- rank-side hooks ------------------------------------------------------

    def rank_start(
        self, rank: int, io_blocks: int, work_seconds: float = 0.0
    ) -> None:
        """Called by each rank thread as it begins executing."""
        self._cpu_mark[rank] = time.thread_time()
        self._io_mark[rank] = io_blocks
        self._work_mark[rank] = work_seconds

    def set_phase(
        self,
        rank: int,
        phase: str,
        io_blocks: int | None = None,
        work_seconds: float | None = None,
    ) -> None:
        """Label subsequent work; SPMD code keeps ranks in lockstep, so the
        labels agree across ranks whenever a superstep completes.  Work done
        since the previous label (measured CPU always; modelled disk/work
        when the caller passes the counters) is banked against the old
        phase so that phases without their own collectives still show up
        in the breakdown."""
        self._accrue(rank)
        if io_blocks is not None:
            blocks = io_blocks - self._io_mark[rank]
            self._io_mark[rank] = io_blocks
            self._phase_accrual[rank][self._phase[rank]] += (
                blocks * self.spec.effective_disk_sec_per_block
            )
        if work_seconds is not None:
            work = work_seconds - self._work_mark[rank]
            self._work_mark[rank] = work_seconds
            self._phase_accrual[rank][self._phase[rank]] += work
        self._phase[rank] = phase

    def _accrue(self, rank: int) -> float:
        """Bank local work since the last mark under the current phase."""
        now = time.thread_time()
        cpu = (now - self._cpu_mark[rank]) * self.spec.compute_scale
        self._cpu_mark[rank] = now
        # io/work marks are only advanced in mark_segment (they need the
        # caller-supplied counters); cpu is the only live-measured piece.
        self._phase_accrual[rank][self._phase[rank]] += cpu
        return cpu

    def mark_segment(
        self, rank: int, io_blocks: int, work_seconds: float = 0.0
    ) -> None:
        """Snapshot the rank's local work since the previous superstep.

        Must be called immediately before entering a collective.  The
        segment cost is measured host CPU (scaled) + modelled disk block
        time + modelled per-row CPU work.
        """
        self._accrue(rank)
        blocks = io_blocks - self._io_mark[rank]
        work = work_seconds - self._work_mark[rank]
        self._io_mark[rank] = io_blocks
        self._work_mark[rank] = work_seconds
        # Modelled disk + work join the accrual under the *current* phase
        # (they are not split across a mid-segment phase change; phases
        # that matter set their label before doing their work).
        self._phase_accrual[rank][self._phase[rank]] += (
            blocks * self.spec.effective_disk_sec_per_block + work
        )
        self._pending_segment[rank] = sum(
            self._phase_accrual[rank].values()
        )

    # -- barrier-action side ---------------------------------------------------

    def commit_superstep(
        self,
        kind: str,
        offrank_bytes: int,
        max_rank_bytes: int,
    ) -> None:
        """Advance simulated time; runs in exactly one thread per superstep."""
        compute = max(self._pending_segment)
        comm = self.spec.comm_cost(max_rank_bytes)
        self.sim_time += compute + comm
        self.compute_time += compute
        self.comm_time += comm
        phase = self._phase[0]
        # Apportion the superstep's compute across phases using rank 0's
        # accrual split; comm goes to the phase the collective runs in.
        accrual = self._phase_accrual[0]
        banked = sum(accrual.values())
        if banked > 0:
            for ph, amount in accrual.items():
                share = compute * (amount / banked)
                self.phase_seconds[ph] += share
                self.phase_compute_seconds[ph] += share
        else:
            self.phase_seconds[phase] += compute
            self.phase_compute_seconds[phase] += compute
        self.phase_seconds[phase] += comm
        self.phase_comm_seconds[phase] += comm
        if len(self.log) < self.max_log:
            self.log.append(
                SuperstepRecord(
                    kind=kind,
                    phase=phase,
                    compute_seconds=compute,
                    comm_seconds=comm,
                    offrank_bytes=offrank_bytes,
                    max_rank_bytes=max_rank_bytes,
                )
            )
        for j in range(len(self._pending_segment)):
            self.rank_busy[j] += self._pending_segment[j]
            self._pending_segment[j] = 0.0
            self._phase_accrual[j].clear()

    def finish(self, segments: list[float]) -> None:
        """Fold in the final (post-last-collective) per-rank segments."""
        compute = max(segments) if segments else 0.0
        for j, seg in enumerate(segments):
            if j < len(self.rank_busy):
                self.rank_busy[j] += seg
        self.sim_time += compute
        self.compute_time += compute
        self.phase_seconds[self._phase[0]] += compute
        self.phase_compute_seconds[self._phase[0]] += compute

    # -- reading ---------------------------------------------------------------

    def phase_breakdown(self) -> dict[str, float]:
        """Simulated seconds per phase label."""
        return dict(self.phase_seconds)

    def phase_comm_breakdown(self) -> dict[str, float]:
        """Communication seconds per phase label."""
        return dict(self.phase_comm_seconds)

    def phase_compute_breakdown(self) -> dict[str, float]:
        """Local-work seconds per phase label."""
        return dict(self.phase_compute_seconds)

    def superstep_count(self) -> int:
        return len(self.log)

    def comm_fraction(self) -> float:
        """Share of simulated time spent in communication."""
        if self.sim_time <= 0:
            return 0.0
        return self.comm_time / self.sim_time

    def as_array(self) -> np.ndarray:
        """``(supersteps, 2)`` array of (compute, comm) seconds, for plots."""
        return np.array(
            [[rec.compute_seconds, rec.comm_seconds] for rec in self.log]
        ).reshape(-1, 2)
