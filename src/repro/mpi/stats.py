"""Network traffic metering for the simulated cluster.

All updates happen inside the exchange barrier action, which runs in exactly
one thread per superstep, so no locking is needed beyond the barrier itself.

The headline quantity is :attr:`CommStats.total_bytes` — every byte that
crossed between two distinct ranks — which reproduces the paper's
"Data Communicated in Megabytes" axis (Figure 8b).  Totals are also broken
down by collective kind and by algorithm phase.
"""

from __future__ import annotations

import pickle
import sys
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["CommStats", "payload_nbytes", "throughput_rates"]


def throughput_rates(
    rows: np.ndarray, busy_seconds: np.ndarray, eps: float = 1e-12
) -> np.ndarray:
    """Per-rank rows/sec from ``(rows processed, busy seconds)`` samples.

    The raw signal for :class:`~repro.mpi.speed.RankSpeedModel`.  A rank
    with no rows or no measurable busy time carries no information, so it
    is presumed to run at the mean rate of the ranks that do (never zero:
    a zero rate would starve the rank of data forever).  All ones when no
    rank produced a usable sample.
    """
    rows = np.asarray(rows, dtype=np.float64)
    busy = np.asarray(busy_seconds, dtype=np.float64)
    rates = np.ones_like(rows)
    valid = (rows > 0) & (busy > eps)
    if valid.any():
        measured = rows[valid] / busy[valid]
        rates[valid] = measured
        rates[~valid] = measured.mean()
    return rates


def payload_nbytes(obj: Any) -> int:
    """Approximate wire size of a payload in bytes.

    NumPy arrays and Relations report their buffer sizes (the fast
    buffer-protocol path of real MPI); small control objects fall back to
    their pickle length (the mpi4py object path).
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    nbytes = getattr(obj, "nbytes", None)
    if isinstance(nbytes, (int, np.integer)):
        return int(nbytes)
    if isinstance(obj, (tuple, list)):
        return sum(payload_nbytes(item) for item in obj)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (bool, int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, str):
        return len(obj.encode())
    if isinstance(obj, dict):
        return sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items()
        )
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        # Unpicklable control objects (only possible in the simulation;
        # real MPI could not ship them either) — approximate.
        return sys.getsizeof(obj)


@dataclass
class CommStats:
    """Cumulative traffic counters for one cluster run."""

    #: Bytes that crossed between distinct ranks, total.
    total_bytes: int = 0
    #: Number of collective operations performed.
    collectives: int = 0
    #: Bytes by collective kind ("alltoall", "bcast", ...).
    bytes_by_kind: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    #: Bytes by algorithm phase label.
    bytes_by_phase: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    #: Largest single-rank (in + out) volume seen in any one superstep.
    peak_rank_bytes: int = 0

    def record(
        self,
        kind: str,
        phase: str,
        send_matrix: np.ndarray,
    ) -> tuple[int, int]:
        """Record one collective.

        Parameters
        ----------
        kind:
            Collective name.
        phase:
            Current algorithm phase label.
        send_matrix:
            ``(p, p)`` array; ``send_matrix[j, k]`` = bytes rank ``j``
            addressed to rank ``k``.  The diagonal (self-delivery) is
            excluded from network accounting.

        Returns
        -------
        ``(offrank_total, max_rank_bytes)`` where ``max_rank_bytes`` is the
        busiest rank's in+out volume (the h-relation ``h``).
        """
        mat = np.asarray(send_matrix, dtype=np.int64)
        offrank = mat.copy()
        np.fill_diagonal(offrank, 0)
        sent = offrank.sum(axis=1)
        received = offrank.sum(axis=0)
        total = int(offrank.sum())
        max_rank = int((sent + received).max()) if mat.size else 0
        self.total_bytes += total
        self.collectives += 1
        self.bytes_by_kind[kind] += total
        self.bytes_by_phase[phase] += total
        self.peak_rank_bytes = max(self.peak_rank_bytes, max_rank)
        return total, max_rank

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict snapshot (deep-copied) of the counters."""
        return {
            "total_bytes": self.total_bytes,
            "collectives": self.collectives,
            "bytes_by_kind": dict(self.bytes_by_kind),
            "bytes_by_phase": dict(self.bytes_by_phase),
            "peak_rank_bytes": self.peak_rank_bytes,
        }
