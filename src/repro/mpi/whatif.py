"""What-if machine projection from a finished run's superstep log.

Every modelled quantity of a run is recorded per superstep (local-work
seconds, h-relation byte volumes), so a finished build can be *re-costed*
under a different machine without re-running it.  This answers the
paper's own forward-looking claim directly — "We will shortly be
replacing our 100 Megabyte interconnect with a 1 Gigabyte Ethernet
interconnect and expect that this will further improve the relative
speedup results" (Section 4) — and the general capacity-planning question
"what does a faster network/switch buy my workload?".

Only network parameters can be re-projected exactly: the log keeps each
superstep's ``max_rank_bytes``, so ``latency + β·h`` recomputes precisely.
Local work (CPU + disk) is kept as measured; changing those knobs needs a
re-run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MachineSpec
from repro.mpi.clock import BSPClock

__all__ = ["NetworkProjection", "gigabit_upgrade", "recost_cube", "recost_network"]


@dataclass
class NetworkProjection:
    """A run re-costed under a different network."""

    measured_seconds: float
    projected_seconds: float
    measured_comm_seconds: float
    projected_comm_seconds: float
    supersteps: int

    @property
    def speedup_gain(self) -> float:
        """measured / projected (>1 when the new network is faster)."""
        if self.projected_seconds <= 0:
            return 1.0
        return self.measured_seconds / self.projected_seconds

    def describe(self) -> str:
        return (
            f"network projection over {self.supersteps} supersteps: "
            f"{self.measured_seconds:.2f}s -> {self.projected_seconds:.2f}s "
            f"(comm {self.measured_comm_seconds:.2f}s -> "
            f"{self.projected_comm_seconds:.2f}s, "
            f"{self.speedup_gain:.2f}x)"
        )


def recost_network(clock: BSPClock, new_spec: MachineSpec) -> NetworkProjection:
    """Re-price every superstep's communication under ``new_spec``.

    Requires the run to have kept its full superstep log (all runs in
    this repository do, up to the 100k-superstep cap).
    """
    return _recost(clock.log, clock.sim_time, new_spec)


def recost_cube(cube, new_spec: MachineSpec) -> NetworkProjection:
    """Re-price a finished cube build (uses ``metrics.superstep_log``)."""
    return _recost(
        cube.metrics.superstep_log,
        cube.metrics.simulated_seconds,
        new_spec,
    )


def _recost(log, sim_time: float, new_spec: MachineSpec) -> NetworkProjection:
    measured_comm = 0.0
    projected_comm = 0.0
    compute = 0.0
    for rec in log:
        measured_comm += rec.comm_seconds
        projected_comm += new_spec.comm_cost(rec.max_rank_bytes)
        compute += rec.compute_seconds
    # The tail segment after the final collective is in sim_time but not
    # in the log; carry it over unchanged.
    tail = sim_time - (compute + measured_comm)
    return NetworkProjection(
        measured_seconds=sim_time,
        projected_seconds=compute + projected_comm + tail,
        measured_comm_seconds=measured_comm,
        projected_comm_seconds=projected_comm,
        supersteps=len(log),
    )


def gigabit_upgrade(spec: MachineSpec) -> MachineSpec:
    """The paper's announced hardware refresh: 100 Mbit -> 1 Gbit switch.

    Bandwidth improves tenfold; per-collective latency also drops (better
    switching silicon), conservatively halved.
    """
    from dataclasses import replace

    return replace(
        spec,
        beta_sec_per_mb=spec.beta_sec_per_mb / 10.0,
        latency_sec=spec.latency_sec / 2.0,
    )
