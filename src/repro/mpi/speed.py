"""Per-rank throughput modelling for heterogeneity-aware partitioning.

The paper's sample sort targets *uniform* h-relation shares: every rank
receives ``N/p`` rows, which is optimal only when all p ranks are equally
fast.  On mixed-speed hosts (or degraded width-(p-k) runs resharded onto
survivors) the superstep ends when the *slowest* rank finishes, so the
right target is work proportional to measured speed — the partitioning
strategy of Cérin et al. for sorting on heterogeneous clusters.

:class:`RankSpeedModel` is the published model: relative per-rank speeds
(normalised to mean 1) plus the *clamped* share vector derived from
them.  The clamp keeps any single rank's share inside
``[floor/p, ceil/p]`` (default ``[1/(2p), 2/p]``) so a mis-measured or
briefly-idle rank can neither starve nor drown; :func:`clamped_shares`
solves for the unique scaling of the raw proportional shares whose
clipped sum is 1 (monotone in the scale factor, found by bisection).

:class:`HeteroState` is the per-run tracker: each cube iteration's
sample-sort phase observes fresh ``(rows, busy-seconds)`` samples from
every rank (allgathered, so all ranks derive an identical model) and
blends them into the running model with an exponential moving average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.mpi.stats import throughput_rates

__all__ = ["RankSpeedModel", "HeteroState", "clamped_shares"]

_EPS = 1e-12


def clamped_shares(
    speeds: Sequence[float], floor: float = 0.5, ceil: float = 2.0
) -> np.ndarray:
    """Shares proportional to ``speeds``, clipped to ``[floor/p, ceil/p]``.

    Solves ``sum_j clip(t * s_j / sum(s), floor/p, ceil/p) == 1`` for the
    scale ``t`` by bisection (the sum is continuous and nondecreasing in
    ``t``, ranging from ``floor`` to ``ceil``, and ``floor <= 1 <= ceil``
    guarantees a solution).  Deterministic, and exactly uniform for equal
    speeds.
    """
    s = np.maximum(np.asarray(speeds, dtype=np.float64), _EPS)
    p = s.size
    if p == 0:
        raise ValueError("clamped_shares needs at least one rank")
    if not (0.0 < floor <= 1.0 <= ceil):
        raise ValueError(
            f"need 0 < floor <= 1 <= ceil, got floor={floor} ceil={ceil}"
        )
    if p == 1:
        return np.ones(1)
    lo, hi = floor / p, ceil / p
    base = s / s.sum()

    def total(t: float) -> float:
        return float(np.clip(t * base, lo, hi).sum())

    t_lo, t_hi = 0.0, 1.0
    while total(t_hi) < 1.0:
        t_hi *= 2.0
    for _ in range(64):
        mid = 0.5 * (t_lo + t_hi)
        if total(mid) < 1.0:
            t_lo = mid
        else:
            t_hi = mid
    out = np.clip(t_hi * base, lo, hi)
    return out / out.sum()


@dataclass(frozen=True)
class RankSpeedModel:
    """Relative per-rank speeds and the clamped share targets they imply.

    ``speeds`` are normalised to mean 1 (a homogeneous cluster is all
    ones); ``floor``/``ceil`` bound any rank's share of the data to
    ``[floor/p, ceil/p]``.
    """

    speeds: tuple[float, ...]
    floor: float = 0.5
    ceil: float = 2.0

    def __post_init__(self) -> None:
        if not self.speeds:
            raise ValueError("RankSpeedModel needs at least one rank")
        if not (0.0 < self.floor <= 1.0 <= self.ceil):
            raise ValueError(
                f"need 0 < floor <= 1 <= ceil, got "
                f"floor={self.floor} ceil={self.ceil}"
            )

    # -- construction -------------------------------------------------------

    @staticmethod
    def uniform(
        p: int, floor: float = 0.5, ceil: float = 2.0
    ) -> "RankSpeedModel":
        return RankSpeedModel((1.0,) * p, floor, ceil)

    @staticmethod
    def from_rates(
        rates: Sequence[float], floor: float = 0.5, ceil: float = 2.0
    ) -> "RankSpeedModel":
        """Normalise raw rows/sec rates to a mean-1 speed vector."""
        r = np.maximum(np.asarray(rates, dtype=np.float64), _EPS)
        speeds = r / r.mean()
        return RankSpeedModel(tuple(float(x) for x in speeds), floor, ceil)

    # -- derived quantities -------------------------------------------------

    @property
    def p(self) -> int:
        return len(self.speeds)

    @property
    def shares(self) -> tuple[float, ...]:
        """Clamped fraction of the data each rank should receive."""
        return tuple(
            float(x) for x in clamped_shares(self.speeds, self.floor, self.ceil)
        )

    def counts(self, total: int) -> np.ndarray:
        """Integer row targets summing exactly to ``total``
        (largest-remainder apportionment; ties broken by rank index)."""
        shares = np.asarray(self.shares, dtype=np.float64)
        raw = shares * int(total)
        base = np.floor(raw).astype(np.int64)
        rem = int(total) - int(base.sum())
        if rem > 0:
            order = np.argsort(-(raw - base), kind="stable")
            base[order[:rem]] += 1
        return base

    # -- evolution ----------------------------------------------------------

    def blend(
        self, rates: Sequence[float], alpha: float
    ) -> "RankSpeedModel":
        """EMA-blend fresh measured rates into the model
        (``alpha`` = weight of the new observation)."""
        fresh = np.asarray(
            RankSpeedModel.from_rates(rates, self.floor, self.ceil).speeds
        )
        mixed = alpha * fresh + (1.0 - alpha) * np.asarray(self.speeds)
        return RankSpeedModel.from_rates(mixed, self.floor, self.ceil)

    def restrict(self, indices: Sequence[int]) -> "RankSpeedModel":
        """The model induced on a surviving subset of ranks (renormalised
        and re-clamped at the new width) — the prior for degraded
        width-(p-k) resharding."""
        picked = [self.speeds[i] for i in indices]
        if not picked:
            raise ValueError("restrict() needs at least one surviving rank")
        return RankSpeedModel.from_rates(picked, self.floor, self.ceil)

    # -- persistence --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "speeds": list(self.speeds),
            "shares": list(self.shares),
            "floor": self.floor,
            "ceil": self.ceil,
        }

    @staticmethod
    def from_dict(data: dict) -> "RankSpeedModel":
        return RankSpeedModel(
            tuple(float(x) for x in data["speeds"]),
            float(data.get("floor", 0.5)),
            float(data.get("ceil", 2.0)),
        )


class HeteroState:
    """Mutable per-run tracker threading the speed model through a build.

    Owned by each rank's program; every rank feeds it the *same*
    allgathered samples, so the models (and hence the pivot targets) stay
    identical across ranks without further coordination.
    """

    def __init__(
        self,
        p: int,
        floor: float = 0.5,
        ceil: float = 2.0,
        blend: float = 0.5,
        prior: RankSpeedModel | None = None,
    ):
        self.p = p
        self.floor = floor
        self.ceil = ceil
        self.blend = blend
        self.model = prior

    def observe(
        self, samples: Sequence[tuple[int, float]]
    ) -> RankSpeedModel:
        """Fold one round of per-rank ``(rows, busy_seconds)`` samples
        into the model and return the updated model."""
        rows = np.asarray([s[0] for s in samples], dtype=np.float64)
        busy = np.asarray([s[1] for s in samples], dtype=np.float64)
        rates = throughput_rates(rows, busy)
        if self.model is None:
            self.model = RankSpeedModel.from_rates(
                rates, self.floor, self.ceil
            )
        else:
            self.model = self.model.blend(rates, self.blend)
        return self.model
