"""Execution backends for the SPMD engine.

The engine's contract (see :mod:`repro.mpi.engine`) is backend-neutral:
run the same rank program on ``p`` communicator endpoints, meter every
superstep through :meth:`~repro.mpi.stats.CommStats.record` +
:meth:`~repro.mpi.clock.BSPClock.commit_superstep`, and surface the first
real failure while breaking every peer with
:class:`~repro.mpi.errors.RankFailure`.  Two backends implement it:

``thread`` (default)
    ``p`` rank threads over shared mailboxes.  Deterministic, cheap to
    spawn, zero-copy payload delivery — but the GIL serialises all
    Python-level rank code, so ``host_seconds`` does not shrink with
    ``p``.  Simulated time is unaffected (per-rank CPU is measured with
    ``thread_time``), which is why this stays the default for tests and
    figure reproductions.

``process``
    ``p`` forked worker processes coordinated by the parent.  Collectives
    run over the :mod:`repro.mpi.shm` data plane: large numeric arrays
    cross through pooled POSIX shared-memory segments, everything else
    rides a small pickle blob on the worker's pipe.  The parent replays
    the exact superstep commit of the thread backend from per-rank
    metering shipped with each collective, so ``simulated_seconds`` /
    ``comm_bytes`` / ``disk_blocks`` are identical between backends
    whenever the clock's measured-CPU term is disabled
    (``compute_scale=0``) — and statistically equal otherwise.
    ``host_seconds`` now scales with real cores.

Superstep wire protocol (process backend), one round per collective::

    worker j -> parent : ("step", kind, send_row, segment_j, phase_j,
                          accrual_0 if j == 0, encoded_payload, held_j)
    parent             : meters + commits exactly like the barrier action
    parent -> worker j : ("deliver", [encoded payloads by source rank],
                          recycle_j)

``held_j`` lists the foreign segments rank ``j`` still aliases through
live zero-copy views; ``recycle_j`` hands rank ``j`` back its *own*
segments once every rank has stopped aliasing them — the release round of
the pooled plane.  Sending ``step`` N+1 doubles as rank ``j``'s release
notification for superstep N: its reader has returned by then, so any
superstep-N segment absent from ``held_j`` can never be touched by rank
``j`` again.  The parent tracks each in-flight segment in a ledger and
recycles it to its creator only after all ``p`` ranks have released it —
the owner never overwrites bytes a consumer can still observe.

With pooling disabled (``MachineSpec.shm_pool=False``) the protocol
degrades to the legacy four-message round — ``deliver`` is followed by an
``("ack",)`` / ``("resume",)`` leave barrier and the creator unlinks its
segments immediately after — kept as the benchmark baseline.  Unlinking
under live consumer views is safe either way: POSIX keeps the backing
memory until the last mapping closes; only *reuse* needs the ledger.

On any failure the parent broadcasts ``("abort",)`` and drains the pipes;
a worker that errors waits for that abort before tearing down its data
plane, so its segments outlive every peer still inside a reader.  Peers
blocked in a collective observe :class:`RankFailure`, exactly like a
broken barrier.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import time
import traceback
from typing import Any, Callable, Sequence

import numpy as np

from repro.mpi import shm
from repro.mpi.comm import Comm, ThreadTransport
from repro.mpi.errors import (
    CollectiveMisuse,
    MPIError,
    RankDead,
    RankFailure,
    RankHung,
)

__all__ = [
    "BACKENDS",
    "ProcessBackend",
    "Supervisor",
    "ThreadBackend",
    "get_backend",
]

#: How long failure cleanup waits for workers to exit on their own before
#: terminating them.  Workers notice an abort at their next collective, so
#: only a rank wedged in local compute ever hits the hard kill.
_ABORT_DRAIN_SEC = 5.0


def get_backend(name: str):
    """Resolve a backend name (``MachineSpec.backend``) to an instance."""
    try:
        return BACKENDS[name]()
    except KeyError:
        raise MPIError(
            f"unknown execution backend {name!r}; "
            f"expected one of {sorted(BACKENDS)}"
        ) from None


# ---------------------------------------------------------------------------
# thread backend
# ---------------------------------------------------------------------------


class ThreadBackend:
    """Rank-per-thread execution over the cluster's shared mailboxes."""

    name = "thread"

    def run(
        self,
        cluster,
        rank_program: Callable[..., Any],
        args: Sequence[Any],
    ) -> list:
        p = cluster.spec.p
        results: list = [None] * p
        finals: list[float] = [0.0] * p
        errors: list[BaseException | None] = [None] * p

        def worker(rank: int) -> None:
            comm = cluster.comm(rank)
            disk = cluster.disks[rank]
            cluster.clock.rank_start(
                rank, disk.stats.blocks_total, disk.work.seconds
            )
            try:
                results[rank] = rank_program(comm, *args)
                # Fold in the tail segment after the last collective.
                cluster.clock.mark_segment(
                    rank, disk.stats.blocks_total, disk.work.seconds
                )
                finals[rank] = cluster.clock._pending_segment[rank]
                cluster.clock._pending_segment[rank] = 0.0
            except BaseException as exc:  # noqa: BLE001 - must not hang peers
                errors[rank] = exc
                cluster._enter.abort()
                cluster._leave.abort()

        threads = [
            threading.Thread(
                target=worker, args=(j,), name=f"rank-{j}", daemon=True
            )
            for j in range(p)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        if cluster._action_error is not None:
            raise cluster._action_error
        origin = next(
            (
                e
                for e in errors
                if e is not None and not isinstance(e, RankFailure)
            ),
            None,
        )
        if origin is not None:
            raise origin
        if any(errors):
            raise next(e for e in errors if e is not None)

        cluster.clock.finish(finals)
        return results


# ---------------------------------------------------------------------------
# process backend: worker side
# ---------------------------------------------------------------------------


_MISSING = object()


class _LazyLanes:
    """Per-source lane list of a scatter/alltoall slot, decoded on access.

    Keeps the h-relation O(own traffic): a rank only pays the decode for
    lanes actually addressed to it, even though every rank receives the
    full descriptor table.
    """

    def __init__(self, blobs: list, decode: Callable[[Any], Any]):
        self._blobs = blobs
        self._decode = decode
        self._cache: list = [_MISSING] * len(blobs)

    def __len__(self) -> int:
        return len(self._blobs)

    def __getitem__(self, idx: int):
        val = self._cache[idx]
        if val is _MISSING:
            blob = self._blobs[idx]
            val = None if blob is None else self._decode(blob)
            self._cache[idx] = val
        return val

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]


class _LazySlots:
    """The per-rank payload table a collective's reader indexes into."""

    def __init__(self, entries: list, decode: Callable[[Any], Any]):
        self._entries = entries
        self._decode = decode
        self._cache: list = [_MISSING] * len(entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, idx: int):
        val = self._cache[idx]
        if val is _MISSING:
            val = self._cache[idx] = _decode_entry(
                self._entries[idx], self._decode
            )
        return val

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]


def _encode_payload(kind: str, payload: Any, plane: shm.DataPlane):
    """Encode one rank's payload for the wire.

    Scatter/alltoall payloads are lane lists: each lane is its own blob
    (receivers decode only the lanes addressed to them) but all lanes of
    the collective share one arena segment (`encode_lanes`).
    """
    if payload is None:
        return None
    if kind in ("scatter", "alltoall") and isinstance(payload, list):
        return ("lanes", plane.encode_lanes(payload))
    return ("obj", plane.encode(payload))


def _decode_entry(entry, decode: Callable[[Any], Any]):
    if entry is None:
        return None
    tag, body = entry
    if tag == "obj":
        return decode(body)
    return _LazyLanes(body, decode)


def _prune_entries(kind: str, entries: list, dest: int) -> list:
    """Strip a deliver table down to what rank ``dest`` can actually read.

    :class:`~repro.mpi.comm.Comm` fixes the access pattern per collective:
    scatter/alltoall readers index only lane ``[dest]`` of each source's
    lane list.  Pruning the other lanes keeps the
    per-rank deliver pickle O(own traffic) instead of O(p^2) — the bytes
    never cross the pipe at all.  Sealed payloads (fault injection) ride
    the ``"obj"`` path and pass through untouched, and metering happened
    before encoding, so neither is affected.  Pooled plane only: the
    unpooled baseline broadcasts one shared table, like the legacy plane.
    """
    if kind not in ("scatter", "alltoall"):
        return entries
    pruned = []
    for entry in entries:
        if entry is None or entry[0] != "lanes":
            pruned.append(entry)
            continue
        blobs = entry[1]
        lane = [None] * len(blobs)
        lane[dest] = blobs[dest]
        pruned.append(("lanes", lane))
    return pruned


def _encoded_segments(entry) -> list[str]:
    """Deduped shared-memory segment names of one encoded payload."""
    if entry is None:
        return []
    tag, body = entry
    if tag == "obj":
        names = body.segments
    else:
        names = tuple(
            name
            for blob in body
            if blob is not None
            for name in blob.segments
        )
    return list(dict.fromkeys(names))


class _ProcessTransport:
    """Pipe+shared-memory transport of one worker process."""

    def __init__(
        self, rank: int, size: int, conn, clock, disk, plane,
        timeout: float | None = None,
    ):
        self.rank = rank
        self.size = size
        self._conn = conn
        self._clock = clock
        self._disk = disk
        self._plane = plane
        from repro.mpi.comm import resolve_barrier_timeout

        self._timeout = resolve_barrier_timeout(timeout)

    def _send(self, msg) -> None:
        try:
            self._conn.send(msg)
        except (BrokenPipeError, EOFError, OSError):
            raise RankFailure(
                f"rank {self.rank}: the coordinator vanished"
            ) from None

    def _recv(self):
        try:
            if not self._conn.poll(self._timeout):
                raise RankFailure(
                    f"rank {self.rank}: timed out waiting for peers"
                )
            return self._conn.recv()
        except (EOFError, OSError):
            raise RankFailure(
                f"rank {self.rank}: the coordinator vanished"
            ) from None

    def exchange(
        self,
        kind: str,
        payload: Any,
        send_row: np.ndarray,
        reader: Callable[[Sequence[Any]], Any],
    ) -> Any:
        clock, rank, plane = self._clock, self.rank, self._plane
        # Ship the same quantities the barrier action reads in-process:
        # this rank's pending segment, its phase label, and (from rank 0)
        # the phase accrual used to apportion the superstep's compute.
        segment = clock._pending_segment[rank]
        phase = clock._phase[rank]
        accrual = dict(clock._phase_accrual[rank]) if rank == 0 else None
        plane.sweep()  # unpooled: drop attachments whose views are gone
        enc = _encode_payload(kind, payload, plane)
        own = _encoded_segments(enc)
        try:
            self._send(
                (
                    "step",
                    kind,
                    np.asarray(send_row, dtype=np.int64),
                    segment,
                    phase,
                    accrual,
                    enc,
                    plane.held(),
                )
            )
            msg = self._recv()
            if msg[0] != "deliver":
                raise RankFailure(
                    f"rank {rank}: a peer rank aborted the computation"
                )
            if plane.pooled:
                # The parent only returns segments every rank released;
                # recycling before the read is safe because this round's
                # own segments are still in flight, not in the list.
                plane.recycle(msg[2])
                result = reader(_LazySlots(msg[1], plane.decode))
            else:
                try:
                    result = reader(_LazySlots(msg[1], plane.decode))
                finally:
                    # The legacy leave barrier: senders keep segments
                    # alive until every reader acked.
                    self._send(("ack",))
                    resumed = self._recv()
                if resumed[0] != "resume":
                    raise RankFailure(
                        f"rank {rank}: a peer rank aborted the computation"
                    )
        finally:
            if not plane.pooled:
                # Unpooled recycle == unlink.  Live zero-copy views of
                # consumers survive this: only the name goes away.
                plane.recycle(own)
        # Mirror the superstep commit clearing the rank's local accrual.
        # The worker's forked clock never runs commit_superstep, so fold
        # the shipped segment into its own rank_busy entry here to keep
        # the throughput profiler's view consistent across backends.
        clock.rank_busy[rank] += segment
        clock._pending_segment[rank] = 0.0
        clock._phase_accrual[rank].clear()
        return result


def _ship_exception(rank: int, exc: BaseException, disk=None):
    """Best-effort picklable form of a worker failure.

    Carries the rank's disk/work counters so the parent can account the
    failed attempt's local I/O (recovery folds it into run metrics)."""
    tb = traceback.format_exc()
    try:
        pickle.dumps(exc)
    except Exception:
        exc = MPIError(
            f"rank {rank} failed with unpicklable "
            f"{type(exc).__name__}: {exc}"
        )
    disk_snap = work_snap = None
    if disk is not None:
        try:
            disk_snap = disk.stats.snapshot()
            work_snap = {
                "seconds": disk.work.seconds,
                "rows_sorted": disk.work.rows_sorted,
                "rows_scanned": disk.work.rows_scanned,
                "spill_counter": disk._counter,
            }
        except Exception:  # pragma: no cover - defensive
            pass
    return (exc, tb, disk_snap, work_snap)


def _worker_main(
    rank: int,
    conn,
    stale_conns,
    cluster,
    rank_program: Callable[..., Any],
    args: Sequence[Any],
) -> None:
    """Entry point of one forked rank process."""
    # Forked children inherit every pipe end created before their fork;
    # close the ones that aren't ours so EOF detection works in the parent.
    for stale in stale_conns:
        try:
            stale.close()
        except Exception:  # pragma: no cover - defensive
            pass
    disk = cluster.disks[rank]
    clock = cluster.clock  # forked copy: authoritative only for this rank
    spec = cluster.spec
    plane = shm.DataPlane(
        pooled=spec.shm_pool, zero_copy=spec.shm_zero_copy
    )
    transport = cluster.transport_for(
        rank,
        _ProcessTransport(
            rank, spec.p, conn, clock, disk, plane,
            timeout=cluster.barrier_timeout,
        ),
    )
    comm = Comm(rank, spec.p, transport, clock, cluster.stats, disk)
    clock.rank_start(rank, disk.stats.blocks_total, disk.work.seconds)
    try:
        result = rank_program(comm, *args)
        clock.mark_segment(rank, disk.stats.blocks_total, disk.work.seconds)
        blob = plane.encode(result)
        conn.send(
            (
                "done",
                clock._pending_segment[rank],
                clock._phase[rank],
                blob,
                disk.stats.snapshot(),
                {
                    "seconds": disk.work.seconds,
                    "rows_sorted": disk.work.rows_sorted,
                    "rows_scanned": disk.work.rows_scanned,
                    "spill_counter": disk._counter,
                },
                plane.stats(),
            )
        )
        conn.recv()  # release (or abort) — parent decoded the result
    except BaseException as exc:  # noqa: BLE001 - ship, don't hang peers
        try:
            conn.send(("error", _ship_exception(rank, exc, disk)))
            # Peers may still be reading this rank's segments; wait for
            # the parent's abort before tearing the data plane down so a
            # mid-read attach never finds the name already gone.
            if conn.poll(_ABORT_DRAIN_SEC):
                conn.recv()
        except Exception:
            pass
    finally:
        # Unlinks every segment this worker created — pooled, in flight,
        # or holding the result blob — and closes foreign attachments.
        plane.close()
        try:
            conn.close()
        except Exception:  # pragma: no cover - defensive
            pass


# ---------------------------------------------------------------------------
# process backend: coordinator side
# ---------------------------------------------------------------------------


class Supervisor:
    """Deadline-based liveness supervision of the process backend's workers.

    Liveness has two signals, both piggybacked on the superstep protocol
    rather than a separate ping channel:

    * **Protocol messages as heartbeats** — any ``step``/``done``/``error``
      message from a rank proves it alive; a healthy worker is never
      probed and pays zero overhead.
    * **OS-level probes while silent** — while a pipe is quiet the
      supervisor polls in ``heartbeat_interval`` slices, checking the
      worker process between slices.  A process that exited (or was
      SIGKILLed) is reported as :class:`~repro.mpi.errors.RankDead` with
      its exit code / signal — a *permanent* loss.  A process still alive
      but silent past ``suspect_after`` is declared a hung straggler —
      :class:`~repro.mpi.errors.RankHung`, a *transient* failure.

    This replaces the old flat ``conn.poll(600)``: detection latency for
    a dead rank drops from the barrier timeout to one heartbeat interval,
    and the deadline for stragglers is a per-run knob instead of a
    module constant.
    """

    def __init__(
        self,
        procs: Sequence,
        heartbeat_interval: float = 0.25,
        suspect_after: float = 600.0,
        now: Callable[[], float] | None = None,
    ):
        self.procs = procs
        self.heartbeat_interval = float(heartbeat_interval)
        self.suspect_after = float(suspect_after)
        # Injectable clock so the deadline boundary (exactly-at vs
        # just-under) is testable without real sleeps.
        self._now = time.monotonic if now is None else now

    def await_message(self, conn, rank: int):
        """Block until rank's next protocol message, supervising its
        liveness; raises :class:`RankDead` / :class:`RankHung`."""
        deadline = self._now() + self.suspect_after
        while True:
            budget = min(
                self.heartbeat_interval,
                max(0.0, deadline - self._now()),
            )
            try:
                if conn.poll(budget):
                    return conn.recv()
            except (EOFError, OSError):
                raise self.post_mortem(rank, "its pipe closed") from None
            proc = self.procs[rank]
            if not proc.is_alive():
                # A worker that exited cleanly may have left a final
                # message buffered; drain it before declaring death.
                try:
                    if conn.poll(0):
                        continue
                except (EOFError, OSError):
                    pass
                raise self.post_mortem(rank, "its process exited")
            if self._now() >= deadline:
                raise RankHung(
                    f"rank {rank} exceeded its {self.suspect_after:.1f}s "
                    "superstep deadline (process alive: straggler declared "
                    "hung)",
                    rank=rank,
                )

    def post_mortem(self, rank: int, detail: str) -> RankDead:
        """Describe a dead worker (exit code / fatal signal attached)."""
        proc = self.procs[rank]
        try:
            proc.join(timeout=0.5)  # let the exit code settle
            code = proc.exitcode
        except Exception:  # pragma: no cover - defensive
            code = None
        if code is None:
            cause = "exit status unknown"
        elif code < 0:
            import signal as _signal

            try:
                cause = f"killed by {_signal.Signals(-code).name}"
            except ValueError:  # pragma: no cover - exotic signal
                cause = f"killed by signal {-code}"
        else:
            cause = f"exit code {code}"
        return RankDead(
            f"rank {rank} worker process died: {detail} ({cause})", rank=rank
        )


class ProcessBackend:
    """Rank-per-process execution with shared-memory collectives."""

    name = "process"

    def run(
        self,
        cluster,
        rank_program: Callable[..., Any],
        args: Sequence[Any],
    ) -> list:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise MPIError(
                "the process backend needs the fork start method "
                "(unavailable on this platform); use backend='thread'"
            )
        # A SIGKILL'd worker from an earlier run leaks its arena segments
        # (it never reaches plane.close() and the coordinator may never
        # have learnt the names).  Segment names embed their creator pid,
        # so stale ones are identifiable and safe to reclaim here.
        shm.sweep_orphans()
        ctx = multiprocessing.get_context("fork")
        p = cluster.spec.p
        pipes = [ctx.Pipe(duplex=True) for _ in range(p)]
        parent_conns = [pc for pc, _ in pipes]
        procs = []
        for j in range(p):
            stale = parent_conns + [cc for k, (_, cc) in enumerate(pipes) if k != j]
            procs.append(
                ctx.Process(
                    target=_worker_main,
                    args=(j, pipes[j][1], stale, cluster,
                          rank_program, tuple(args)),
                    name=f"rank-{j}",
                    daemon=True,
                )
            )
        for proc in procs:
            proc.start()
        for _, child_conn in pipes:
            child_conn.close()
        coordinator = _Coordinator(cluster, parent_conns, procs)
        try:
            return coordinator.run()
        finally:
            coordinator.close()


class _Abort(Exception):
    """Internal control flow: carries the failure to surface."""

    def __init__(self, origin: BaseException):
        self.origin = origin


class _Coordinator:
    """Parent-side replay of the thread backend's barrier action.

    Under the pooled plane the coordinator additionally keeps the segment
    *ledger*: every shared segment delivered in a superstep is in flight
    until all ``p`` ranks have released it (reported via the ``held``
    list on their next message), at which point its name is queued for
    the creator's next ``deliver`` and the creator's arena may reuse it.
    """

    def __init__(self, cluster, conns, procs):
        self.cluster = cluster
        self.conns = conns
        self.procs = procs
        self.p = cluster.spec.p
        self.pooled = cluster.spec.shm_pool
        self.supervisor = Supervisor(
            procs,
            heartbeat_interval=cluster.spec.heartbeat_interval,
            suspect_after=cluster.suspect_after,
        )
        # segment name -> (owner rank, ranks yet to release it)
        self._ledger: dict[str, tuple[int, set[int]]] = {}
        # owner rank -> segment names cleared for reuse
        self._releasable: dict[int, list[str]] = {}

    # -- plumbing ---------------------------------------------------------

    def _recv(self, rank: int):
        try:
            return self.supervisor.await_message(self.conns[rank], rank)
        except (RankDead, RankHung) as verdict:
            raise _Abort(verdict) from None

    def _broadcast(self, msg) -> None:
        for conn in self.conns:
            try:
                conn.send(msg)
            except (BrokenPipeError, OSError):
                pass

    # -- main loop --------------------------------------------------------

    def run(self) -> list:
        try:
            while True:
                msgs = self._collect_round()
                kinds = {
                    m[1] if m[0] == "step" else "<exit>"
                    for m in msgs.values()
                }
                if len(kinds) > 1:
                    raise _Abort(
                        CollectiveMisuse(
                            "ranks disagree on the collective: "
                            f"{sorted(kinds)}"
                        )
                    )
                if "<exit>" in kinds:
                    return self._finish(msgs)
                self._superstep(msgs)
        except _Abort as abort:
            raise self._cleanup_failure(abort.origin) from None

    def _collect_round(self) -> dict[int, tuple]:
        """One message per rank: either all "step" or all "done"."""
        msgs: dict[int, tuple] = {}
        for j in range(self.p):
            msg = self._recv(j)
            if msg[0] == "error":
                raise _Abort(self._absorb_error(j, msg))
            if msg[0] == "step" and self.pooled:
                self._release(j, msg[7])
            msgs[j] = msg
        return msgs

    def _release(self, rank: int, held: list[str]) -> None:
        """Process one rank's release notification.

        ``rank`` sending its next step message means its reader for the
        previous superstep has returned; any in-flight segment it does
        not report as held can never be touched by it again.  A segment
        released by all ranks moves to its owner's releasable queue.
        """
        held_set = set(held)
        freed = []
        for name, (owner, waiting) in self._ledger.items():
            if rank in waiting and name not in held_set:
                waiting.discard(rank)
                if not waiting:
                    freed.append((name, owner))
        for name, owner in freed:
            del self._ledger[name]
            self._releasable.setdefault(owner, []).append(name)

    def _absorb_error(self, rank: int, msg) -> BaseException:
        """Unpack a worker error, adopting its shipped disk/work counters
        so a failed attempt's local I/O stays visible to recovery."""
        exc, _tb, disk_snap, work_snap = msg[1]
        if disk_snap is not None and work_snap is not None:
            try:
                self._apply_local_state(rank, disk_snap, work_snap)
            except Exception:  # pragma: no cover - defensive
                pass
        return exc

    def _superstep(self, msgs: dict[int, tuple]) -> None:
        """Meter + commit exactly like the thread backend's barrier
        action, then deliver payloads (with each creator's recycled
        segments under the pooled plane, or followed by the legacy
        ack/resume leave round otherwise)."""
        clock = self.cluster.clock
        kind = msgs[0][1]
        rows = []
        for j in range(self.p):
            _, _, row, segment, phase, accrual, _, _ = msgs[j]
            rows.append(np.asarray(row, dtype=np.int64))
            clock._pending_segment[j] = segment
            clock._phase[j] = phase
            if j == 0:
                clock._phase_accrual[0].clear()
                clock._phase_accrual[0].update(accrual or {})
        matrix = (
            np.vstack(rows) if rows else np.zeros((0, 0), dtype=np.int64)
        )
        total, max_rank = self.cluster.stats.record(
            kind, clock._phase[0], matrix
        )
        clock.commit_superstep(kind, total, max_rank)

        entries = [msgs[j][6] for j in range(self.p)]
        if self.pooled:
            # Register this round's segments before handing anything out:
            # all p ranks must release a segment before it is reused.
            for j in range(self.p):
                for name in _encoded_segments(entries[j]):
                    self._ledger[name] = (j, set(range(self.p)))
            for j, conn in enumerate(self.conns):
                recycle = tuple(self._releasable.pop(j, ()))
                try:
                    conn.send(
                        ("deliver", _prune_entries(kind, entries, j), recycle)
                    )
                except (BrokenPipeError, OSError):
                    pass
            return
        self._broadcast(("deliver", entries, ()))
        failure: BaseException | None = None
        for j in range(self.p):
            msg = self._recv(j)
            if msg[0] == "error" and failure is None:
                failure = self._absorb_error(j, msg)
            elif msg[0] != "ack" and failure is None:
                failure = MPIError(
                    f"rank {j} broke the superstep protocol: {msg[0]!r}"
                )
        if failure is not None:
            raise _Abort(failure)
        self._broadcast(("resume",))

    def _finish(self, msgs: dict[int, tuple]) -> list:
        """All ranks exited together: collect results and fold tails."""
        clock = self.cluster.clock
        results: list = [None] * self.p
        finals: list[float] = [0.0] * self.p
        pool_totals: dict[str, float] = {}
        for j in range(self.p):
            _, final, phase, blob, disk_snap, work_snap, plane_stats = msgs[j]
            finals[j] = final
            clock._phase[j] = phase
            results[j] = shm.decode(blob)
            self._apply_local_state(j, disk_snap, work_snap)
            for key, val in plane_stats.items():
                if key != "hit_rate":
                    pool_totals[key] = pool_totals.get(key, 0) + val
        leases = pool_totals.get("leases", 0)
        pool_totals["hit_rate"] = (
            round(pool_totals.get("segments_reused", 0) / leases, 4)
            if leases
            else 0.0
        )
        pool_totals["pooled"] = self.cluster.spec.shm_pool
        pool_totals["zero_copy"] = self.cluster.spec.shm_zero_copy
        self.cluster.shm_pool = pool_totals
        self._broadcast(("release",))
        for proc in self.procs:
            proc.join(timeout=_ABORT_DRAIN_SEC)
        clock.finish(finals)
        return results

    def _apply_local_state(self, rank: int, disk_snap, work_snap) -> None:
        """Adopt the worker's absolute disk/work counters into the parent
        cluster (workers start from a fork of the parent state, so the
        shipped totals are directly assignable — cluster reuse included)."""
        disk = self.cluster.disks[rank]
        stats = disk.stats
        stats.blocks_read = disk_snap["blocks_read"]
        stats.blocks_written = disk_snap["blocks_written"]
        stats.rows_read = disk_snap["rows_read"]
        stats.rows_written = disk_snap["rows_written"]
        stats.files_created = disk_snap["files_created"]
        disk.work.seconds = work_snap["seconds"]
        disk.work.rows_sorted = work_snap["rows_sorted"]
        disk.work.rows_scanned = work_snap["rows_scanned"]
        disk._counter = work_snap["spill_counter"]

    # -- failure / shutdown ------------------------------------------------

    def _cleanup_failure(self, origin: BaseException) -> BaseException:
        """Abort every worker and pick the best origin (a real error
        beats a secondary RankFailure, like the thread engine's triage).

        Segment cleanup needs no parent-side unlinking any more: every
        worker tears down its own :class:`~repro.mpi.shm.DataPlane` in
        its ``finally`` (a worker that errors first waits for our abort,
        so it never yanks a segment from under a mid-read peer), and
        SIGKILL'd workers are reaped by the targeted orphan sweep in
        :meth:`close`."""
        self._broadcast(("abort",))
        deadline = time.monotonic() + _ABORT_DRAIN_SEC
        for j, conn in enumerate(self.conns):
            while True:
                try:
                    budget = max(0.0, deadline - time.monotonic())
                    if not conn.poll(budget):
                        break
                    msg = conn.recv()
                except (EOFError, OSError):
                    break
                if msg[0] == "error":
                    exc = self._absorb_error(j, msg)
                    if isinstance(origin, RankFailure) and not isinstance(
                        exc, RankFailure
                    ):
                        origin = exc
                    # Workers hold their plane teardown until the parent
                    # acknowledges; the initial broadcast covered errors
                    # already in flight, late ones get a direct reply.
                    try:
                        conn.send(("abort",))
                    except (BrokenPipeError, OSError):
                        pass
        return origin

    def close(self) -> None:
        for proc in self.procs:
            proc.join(timeout=_ABORT_DRAIN_SEC)
            if proc.is_alive():  # pragma: no cover - wedged worker
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self.conns:
            try:
                conn.close()
            except Exception:  # pragma: no cover - defensive
                pass
        # Reap segments of workers that died without unlinking (SIGKILL,
        # hard crash): every worker is joined by now, so a targeted sweep
        # of their pids cannot race a live creator.
        pids = [proc.pid for proc in self.procs if proc.pid is not None]
        if pids:
            shm.sweep_orphans(pids=pids)


BACKENDS: dict[str, type] = {
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}
