"""Execution backends for the SPMD engine.

The engine's contract (see :mod:`repro.mpi.engine`) is backend-neutral:
run the same rank program on ``p`` communicator endpoints, meter every
superstep through :meth:`~repro.mpi.stats.CommStats.record` +
:meth:`~repro.mpi.clock.BSPClock.commit_superstep`, and surface the first
real failure while breaking every peer with
:class:`~repro.mpi.errors.RankFailure`.  Two backends implement it:

``thread`` (default)
    ``p`` rank threads over shared mailboxes.  Deterministic, cheap to
    spawn, zero-copy payload delivery — but the GIL serialises all
    Python-level rank code, so ``host_seconds`` does not shrink with
    ``p``.  Simulated time is unaffected (per-rank CPU is measured with
    ``thread_time``), which is why this stays the default for tests and
    figure reproductions.

``process``
    ``p`` forked worker processes coordinated by the parent.  Collectives
    run over :mod:`repro.mpi.shm`: large numeric arrays cross through
    POSIX shared memory (one memcpy in, one out), everything else rides a
    small pickle blob on the worker's pipe.  The parent replays the exact
    superstep commit of the thread backend from per-rank metering shipped
    with each collective, so ``simulated_seconds`` / ``comm_bytes`` /
    ``disk_blocks`` are identical between backends whenever the clock's
    measured-CPU term is disabled (``compute_scale=0``) — and statistically
    equal otherwise.  ``host_seconds`` now scales with real cores.

Superstep wire protocol (process backend), one round per collective::

    worker j -> parent : ("step", kind, send_row, segment_j, phase_j,
                          accrual_0 if j == 0, encoded_payload)
    parent             : meters + commits exactly like the barrier action
    parent -> worker j : ("deliver", [encoded payloads by source rank])
    worker j -> parent : ("ack",)          # after reading its slots
    parent -> worker j : ("resume",)       # slots reusable; creator
    worker j           : unlinks its own shared-memory segments

The ack/resume round is the leave-barrier of the thread backend: it keeps
a sender's segments alive until every reader has copied out.  On any
failure the parent broadcasts ``("abort",)``, drains the pipes to free
orphaned segments, and re-raises the originating exception; peers blocked
in a collective observe :class:`RankFailure`, exactly like a broken
barrier.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import time
import traceback
from typing import Any, Callable, Sequence

import numpy as np

from repro.mpi import shm
from repro.mpi.comm import BARRIER_TIMEOUT_SEC, Comm, ThreadTransport
from repro.mpi.errors import CollectiveMisuse, MPIError, RankFailure

__all__ = ["BACKENDS", "ProcessBackend", "ThreadBackend", "get_backend"]

#: How long failure cleanup waits for workers to exit on their own before
#: terminating them.  Workers notice an abort at their next collective, so
#: only a rank wedged in local compute ever hits the hard kill.
_ABORT_DRAIN_SEC = 5.0


def get_backend(name: str):
    """Resolve a backend name (``MachineSpec.backend``) to an instance."""
    try:
        return BACKENDS[name]()
    except KeyError:
        raise MPIError(
            f"unknown execution backend {name!r}; "
            f"expected one of {sorted(BACKENDS)}"
        ) from None


# ---------------------------------------------------------------------------
# thread backend
# ---------------------------------------------------------------------------


class ThreadBackend:
    """Rank-per-thread execution over the cluster's shared mailboxes."""

    name = "thread"

    def run(
        self,
        cluster,
        rank_program: Callable[..., Any],
        args: Sequence[Any],
    ) -> list:
        p = cluster.spec.p
        results: list = [None] * p
        finals: list[float] = [0.0] * p
        errors: list[BaseException | None] = [None] * p

        def worker(rank: int) -> None:
            comm = cluster.comm(rank)
            disk = cluster.disks[rank]
            cluster.clock.rank_start(
                rank, disk.stats.blocks_total, disk.work.seconds
            )
            try:
                results[rank] = rank_program(comm, *args)
                # Fold in the tail segment after the last collective.
                cluster.clock.mark_segment(
                    rank, disk.stats.blocks_total, disk.work.seconds
                )
                finals[rank] = cluster.clock._pending_segment[rank]
                cluster.clock._pending_segment[rank] = 0.0
            except BaseException as exc:  # noqa: BLE001 - must not hang peers
                errors[rank] = exc
                cluster._enter.abort()
                cluster._leave.abort()

        threads = [
            threading.Thread(
                target=worker, args=(j,), name=f"rank-{j}", daemon=True
            )
            for j in range(p)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        if cluster._action_error is not None:
            raise cluster._action_error
        origin = next(
            (
                e
                for e in errors
                if e is not None and not isinstance(e, RankFailure)
            ),
            None,
        )
        if origin is not None:
            raise origin
        if any(errors):
            raise next(e for e in errors if e is not None)

        cluster.clock.finish(finals)
        return results


# ---------------------------------------------------------------------------
# process backend: worker side
# ---------------------------------------------------------------------------


class _LazyLanes:
    """Per-source lane list of a scatter/alltoall slot, decoded on access.

    Keeps the h-relation O(own traffic): a rank only pays the copy-out for
    lanes actually addressed to it, even though every rank receives the
    full descriptor table.
    """

    def __init__(self, blobs: list):
        self._blobs = blobs
        self._cache: list = [_MISSING] * len(blobs)

    def __len__(self) -> int:
        return len(self._blobs)

    def __getitem__(self, idx: int):
        val = self._cache[idx]
        if val is _MISSING:
            blob = self._blobs[idx]
            val = None if blob is None else shm.decode(blob)
            self._cache[idx] = val
        return val

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]


_MISSING = object()


class _LazySlots:
    """The per-rank payload table a collective's reader indexes into."""

    def __init__(self, entries: list):
        self._entries = entries
        self._cache: list = [_MISSING] * len(entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, idx: int):
        val = self._cache[idx]
        if val is _MISSING:
            val = self._cache[idx] = _decode_entry(self._entries[idx])
        return val

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]


def _encode_payload(kind: str, payload: Any):
    """Encode one rank's payload for the wire.

    Scatter/alltoall payloads are lane lists; encoding each lane as its
    own blob lets receivers decode only the lanes addressed to them.
    """
    if payload is None:
        return None
    if kind in ("scatter", "alltoall") and isinstance(payload, list):
        return (
            "lanes",
            [None if lane is None else shm.encode(lane) for lane in payload],
        )
    return ("obj", shm.encode(payload))


def _decode_entry(entry):
    if entry is None:
        return None
    tag, body = entry
    if tag == "obj":
        return shm.decode(body)
    return _LazyLanes(body)


def _encoded_segments(entry) -> list[str]:
    """All shared-memory segment names referenced by one encoded payload."""
    if entry is None:
        return []
    tag, body = entry
    if tag == "obj":
        return list(body.segments)
    return [name for blob in body if blob is not None for name in blob.segments]


class _ProcessTransport:
    """Pipe+shared-memory transport of one worker process."""

    def __init__(self, rank: int, size: int, conn, clock, disk):
        self.rank = rank
        self.size = size
        self._conn = conn
        self._clock = clock
        self._disk = disk

    def _send(self, msg) -> None:
        try:
            self._conn.send(msg)
        except (BrokenPipeError, EOFError, OSError):
            raise RankFailure(
                f"rank {self.rank}: the coordinator vanished"
            ) from None

    def _recv(self):
        try:
            if not self._conn.poll(BARRIER_TIMEOUT_SEC):
                raise RankFailure(
                    f"rank {self.rank}: timed out waiting for peers"
                )
            return self._conn.recv()
        except (EOFError, OSError):
            raise RankFailure(
                f"rank {self.rank}: the coordinator vanished"
            ) from None

    def exchange(
        self,
        kind: str,
        payload: Any,
        send_row: np.ndarray,
        reader: Callable[[Sequence[Any]], Any],
    ) -> Any:
        clock, rank = self._clock, self.rank
        # Ship the same quantities the barrier action reads in-process:
        # this rank's pending segment, its phase label, and (from rank 0)
        # the phase accrual used to apportion the superstep's compute.
        segment = clock._pending_segment[rank]
        phase = clock._phase[rank]
        accrual = dict(clock._phase_accrual[rank]) if rank == 0 else None
        enc = _encode_payload(kind, payload)
        try:
            self._send(
                (
                    "step",
                    kind,
                    np.asarray(send_row, dtype=np.int64),
                    segment,
                    phase,
                    accrual,
                    enc,
                )
            )
            msg = self._recv()
            if msg[0] != "deliver":
                raise RankFailure(
                    f"rank {rank}: a peer rank aborted the computation"
                )
            try:
                result = reader(_LazySlots(msg[1]))
            finally:
                # The leave barrier: senders keep segments alive until
                # every reader acked.
                self._send(("ack",))
                resumed = self._recv()
            if resumed[0] != "resume":
                raise RankFailure(
                    f"rank {rank}: a peer rank aborted the computation"
                )
        finally:
            shm.unlink_segments(_encoded_segments(enc))
        # Mirror the superstep commit clearing the rank's local accrual.
        clock._pending_segment[rank] = 0.0
        clock._phase_accrual[rank].clear()
        return result


def _ship_exception(rank: int, exc: BaseException, disk=None):
    """Best-effort picklable form of a worker failure.

    Carries the rank's disk/work counters so the parent can account the
    failed attempt's local I/O (recovery folds it into run metrics)."""
    tb = traceback.format_exc()
    try:
        pickle.dumps(exc)
    except Exception:
        exc = MPIError(
            f"rank {rank} failed with unpicklable "
            f"{type(exc).__name__}: {exc}"
        )
    disk_snap = work_snap = None
    if disk is not None:
        try:
            disk_snap = disk.stats.snapshot()
            work_snap = {
                "seconds": disk.work.seconds,
                "rows_sorted": disk.work.rows_sorted,
                "rows_scanned": disk.work.rows_scanned,
                "spill_counter": disk._counter,
            }
        except Exception:  # pragma: no cover - defensive
            pass
    return (exc, tb, disk_snap, work_snap)


def _worker_main(
    rank: int,
    conn,
    stale_conns,
    cluster,
    rank_program: Callable[..., Any],
    args: Sequence[Any],
) -> None:
    """Entry point of one forked rank process."""
    # Forked children inherit every pipe end created before their fork;
    # close the ones that aren't ours so EOF detection works in the parent.
    for stale in stale_conns:
        try:
            stale.close()
        except Exception:  # pragma: no cover - defensive
            pass
    disk = cluster.disks[rank]
    clock = cluster.clock  # forked copy: authoritative only for this rank
    transport = cluster.transport_for(
        rank, _ProcessTransport(rank, cluster.spec.p, conn, clock, disk)
    )
    comm = Comm(
        rank, cluster.spec.p, transport, clock, cluster.stats, disk
    )
    clock.rank_start(rank, disk.stats.blocks_total, disk.work.seconds)
    try:
        result = rank_program(comm, *args)
        clock.mark_segment(rank, disk.stats.blocks_total, disk.work.seconds)
        blob = shm.encode(result)
        try:
            conn.send(
                (
                    "done",
                    clock._pending_segment[rank],
                    clock._phase[rank],
                    blob,
                    disk.stats.snapshot(),
                    {
                        "seconds": disk.work.seconds,
                        "rows_sorted": disk.work.rows_sorted,
                        "rows_scanned": disk.work.rows_scanned,
                        "spill_counter": disk._counter,
                    },
                )
            )
            conn.recv()  # release (or abort) — parent decoded the result
        finally:
            shm.unlink_segments(blob.segments)
    except BaseException as exc:  # noqa: BLE001 - ship, don't hang peers
        try:
            conn.send(("error", _ship_exception(rank, exc, disk)))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:  # pragma: no cover - defensive
            pass


# ---------------------------------------------------------------------------
# process backend: coordinator side
# ---------------------------------------------------------------------------


class ProcessBackend:
    """Rank-per-process execution with shared-memory collectives."""

    name = "process"

    def run(
        self,
        cluster,
        rank_program: Callable[..., Any],
        args: Sequence[Any],
    ) -> list:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise MPIError(
                "the process backend needs the fork start method "
                "(unavailable on this platform); use backend='thread'"
            )
        # A SIGKILL'd worker from an earlier run leaks its in-flight
        # segments (it never reaches its unlink and the coordinator may
        # never have learnt the names).  Segment names embed their creator
        # pid, so stale ones are identifiable and safe to reclaim here.
        shm.sweep_orphans()
        ctx = multiprocessing.get_context("fork")
        p = cluster.spec.p
        pipes = [ctx.Pipe(duplex=True) for _ in range(p)]
        parent_conns = [pc for pc, _ in pipes]
        procs = []
        for j in range(p):
            stale = parent_conns + [cc for k, (_, cc) in enumerate(pipes) if k != j]
            procs.append(
                ctx.Process(
                    target=_worker_main,
                    args=(j, pipes[j][1], stale, cluster,
                          rank_program, tuple(args)),
                    name=f"rank-{j}",
                    daemon=True,
                )
            )
        for proc in procs:
            proc.start()
        for _, child_conn in pipes:
            child_conn.close()
        coordinator = _Coordinator(cluster, parent_conns, procs)
        try:
            return coordinator.run()
        finally:
            coordinator.close()


class _Abort(Exception):
    """Internal control flow: carries the failure to surface."""

    def __init__(self, origin: BaseException):
        self.origin = origin


class _Coordinator:
    """Parent-side replay of the thread backend's barrier action."""

    def __init__(self, cluster, conns, procs):
        self.cluster = cluster
        self.conns = conns
        self.procs = procs
        self.p = cluster.spec.p

    # -- plumbing ---------------------------------------------------------

    def _recv(self, rank: int):
        conn = self.conns[rank]
        try:
            if not conn.poll(BARRIER_TIMEOUT_SEC):
                raise _Abort(
                    MPIError(f"rank {rank} stopped responding (timeout)")
                )
            return conn.recv()
        except (EOFError, OSError):
            raise _Abort(
                MPIError(f"rank {rank} worker process died unexpectedly")
            ) from None

    def _broadcast(self, msg) -> None:
        for conn in self.conns:
            try:
                conn.send(msg)
            except (BrokenPipeError, OSError):
                pass

    # -- main loop --------------------------------------------------------

    def run(self) -> list:
        try:
            while True:
                msgs = self._collect_round()
                kinds = {
                    m[1] if m[0] == "step" else "<exit>"
                    for m in msgs.values()
                }
                if len(kinds) > 1:
                    raise _Abort(
                        CollectiveMisuse(
                            "ranks disagree on the collective: "
                            f"{sorted(kinds)}"
                        )
                    )
                if "<exit>" in kinds:
                    return self._finish(msgs)
                self._superstep(msgs)
        except _Abort as abort:
            raise self._cleanup_failure(abort.origin) from None

    def _collect_round(self) -> dict[int, tuple]:
        """One message per rank: either all "step" or all "done"."""
        msgs: dict[int, tuple] = {}
        for j in range(self.p):
            msg = self._recv(j)
            if msg[0] == "error":
                raise _Abort(self._absorb_error(j, msg))
            msgs[j] = msg
        return msgs

    def _absorb_error(self, rank: int, msg) -> BaseException:
        """Unpack a worker error, adopting its shipped disk/work counters
        so a failed attempt's local I/O stays visible to recovery."""
        exc, _tb, disk_snap, work_snap = msg[1]
        if disk_snap is not None and work_snap is not None:
            try:
                self._apply_local_state(rank, disk_snap, work_snap)
            except Exception:  # pragma: no cover - defensive
                pass
        return exc

    def _superstep(self, msgs: dict[int, tuple]) -> None:
        """Meter + commit exactly like the thread backend's barrier action,
        then deliver payloads and run the ack/resume (leave) round."""
        clock = self.cluster.clock
        kind = msgs[0][1]
        rows = []
        for j in range(self.p):
            _, _, row, segment, phase, accrual, _ = msgs[j]
            rows.append(np.asarray(row, dtype=np.int64))
            clock._pending_segment[j] = segment
            clock._phase[j] = phase
            if j == 0:
                clock._phase_accrual[0].clear()
                clock._phase_accrual[0].update(accrual or {})
        matrix = (
            np.vstack(rows) if rows else np.zeros((0, 0), dtype=np.int64)
        )
        total, max_rank = self.cluster.stats.record(
            kind, clock._phase[0], matrix
        )
        clock.commit_superstep(kind, total, max_rank)

        entries = [msgs[j][6] for j in range(self.p)]
        self._broadcast(("deliver", entries))
        failure: BaseException | None = None
        for j in range(self.p):
            msg = self._recv(j)
            if msg[0] == "error" and failure is None:
                failure = self._absorb_error(j, msg)
            elif msg[0] != "ack" and failure is None:
                failure = MPIError(
                    f"rank {j} broke the superstep protocol: {msg[0]!r}"
                )
        if failure is not None:
            raise _Abort(failure)
        self._broadcast(("resume",))

    def _finish(self, msgs: dict[int, tuple]) -> list:
        """All ranks exited together: collect results and fold tails."""
        clock = self.cluster.clock
        results: list = [None] * self.p
        finals: list[float] = [0.0] * self.p
        for j in range(self.p):
            _, final, phase, blob, disk_snap, work_snap = msgs[j]
            finals[j] = final
            clock._phase[j] = phase
            results[j] = shm.decode(blob)
            self._apply_local_state(j, disk_snap, work_snap)
        self._broadcast(("release",))
        for proc in self.procs:
            proc.join(timeout=_ABORT_DRAIN_SEC)
        clock.finish(finals)
        return results

    def _apply_local_state(self, rank: int, disk_snap, work_snap) -> None:
        """Adopt the worker's absolute disk/work counters into the parent
        cluster (workers start from a fork of the parent state, so the
        shipped totals are directly assignable — cluster reuse included)."""
        disk = self.cluster.disks[rank]
        stats = disk.stats
        stats.blocks_read = disk_snap["blocks_read"]
        stats.blocks_written = disk_snap["blocks_written"]
        stats.rows_read = disk_snap["rows_read"]
        stats.rows_written = disk_snap["rows_written"]
        stats.files_created = disk_snap["files_created"]
        disk.work.seconds = work_snap["seconds"]
        disk.work.rows_sorted = work_snap["rows_sorted"]
        disk.work.rows_scanned = work_snap["rows_scanned"]
        disk._counter = work_snap["spill_counter"]

    # -- failure / shutdown ------------------------------------------------

    def _cleanup_failure(self, origin: BaseException) -> BaseException:
        """Abort every worker, free orphaned segments, pick the best origin
        (a real error beats a secondary RankFailure, like the thread
        engine's error triage)."""
        self._broadcast(("abort",))
        deadline = time.monotonic() + _ABORT_DRAIN_SEC
        for j, conn in enumerate(self.conns):
            while True:
                try:
                    budget = max(0.0, deadline - time.monotonic())
                    if not conn.poll(budget):
                        break
                    msg = conn.recv()
                except (EOFError, OSError):
                    break
                if msg[0] == "step":
                    shm.unlink_segments(_encoded_segments(msg[6]))
                elif msg[0] == "done":
                    shm.unlink_segments(msg[3].segments)
                elif msg[0] == "error":
                    exc = self._absorb_error(j, msg)
                    if isinstance(origin, RankFailure) and not isinstance(
                        exc, RankFailure
                    ):
                        origin = exc
        return origin

    def close(self) -> None:
        for proc in self.procs:
            proc.join(timeout=_ABORT_DRAIN_SEC)
            if proc.is_alive():  # pragma: no cover - wedged worker
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self.conns:
            try:
                conn.close()
            except Exception:  # pragma: no cover - defensive
                pass
        # Reap segments of workers that died without unlinking (SIGKILL,
        # hard crash): every worker is joined by now, so a targeted sweep
        # of their pids cannot race a live creator.
        pids = [proc.pid for proc in self.procs if proc.pid is not None]
        if pids:
            shm.sweep_orphans(pids=pids)


BACKENDS: dict[str, type] = {
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}
