"""Error types of the simulated MPI runtime."""

from __future__ import annotations

__all__ = [
    "MPIError",
    "RankFailure",
    "CollectiveMisuse",
    "InjectedFault",
    "CorruptPayload",
    "DiskFull",
    "CheckpointError",
]


class MPIError(RuntimeError):
    """Base class for simulated-MPI failures."""


class RankFailure(MPIError):
    """Raised in surviving ranks when a peer rank aborted the computation.

    The engine re-raises the *originating* rank's exception to the caller;
    ``RankFailure`` is only ever observed inside other rank threads (or by
    the caller if the origin could not be identified).
    """


class CollectiveMisuse(MPIError):
    """A collective was called with inconsistent arguments across ranks
    (e.g. a scatter list of the wrong length, or mismatched roots)."""


class InjectedFault(MPIError):
    """A deterministic fault fired by a :class:`repro.mpi.faults.FaultPlan`
    (rank crash or injected disk failure).  Retryable by a
    :class:`~repro.config.RecoveryPolicy`."""


class CorruptPayload(MPIError):
    """A collective payload failed its CRC check at the receiver.

    Raised by the checksumming transport wrapper (see
    :mod:`repro.mpi.faults`) on every rank that reads the corrupted slot —
    the simulation's equivalent of a NIC/driver-level data-integrity
    failure surfacing through a checksummed wire protocol."""


class DiskFull(InjectedFault):
    """A rank's :class:`~repro.storage.disk.LocalDisk` refused a write
    because an injected disk-full fault tripped its block quota."""


class CheckpointError(MPIError):
    """A checkpoint manifest or payload failed validation (missing file,
    CRC mismatch, truncated chain).  Recovery treats the damaged entry as
    absent and resumes from the last intact iteration instead."""
