"""Error types of the simulated MPI runtime."""

from __future__ import annotations

__all__ = ["MPIError", "RankFailure", "CollectiveMisuse"]


class MPIError(RuntimeError):
    """Base class for simulated-MPI failures."""


class RankFailure(MPIError):
    """Raised in surviving ranks when a peer rank aborted the computation.

    The engine re-raises the *originating* rank's exception to the caller;
    ``RankFailure`` is only ever observed inside other rank threads (or by
    the caller if the origin could not be identified).
    """


class CollectiveMisuse(MPIError):
    """A collective was called with inconsistent arguments across ranks
    (e.g. a scatter list of the wrong length, or mismatched roots)."""
