"""Error types and failure taxonomy of the simulated MPI runtime.

Besides the exception classes, this module owns the *failure taxonomy*
that degraded-mode recovery (see :class:`repro.config.RecoveryPolicy`)
acts on: :func:`classify_failure` maps any exception to ``transient``
(worth retrying at the same width), ``permanent`` (the rank is gone —
blacklist it and continue at reduced width) or ``fatal`` (not a runtime
failure at all; never retried).

Exceptions raised at a site that can identify the *culprit* rank carry a
``rank`` attribute (set via the ``rank=`` keyword).  The attribute rides
:attr:`BaseException.__dict__` and therefore survives pickling across the
process backend's worker pipes.  Sites that only *observe* a failure
(e.g. a surviving rank's broken barrier) leave it unset — recovery must
never blacklist a bystander.
"""

from __future__ import annotations

__all__ = [
    "MPIError",
    "RankFailure",
    "CollectiveMisuse",
    "InjectedFault",
    "CorruptPayload",
    "DiskFull",
    "RankDead",
    "RankHung",
    "CheckpointError",
    "classify_failure",
]


class MPIError(RuntimeError):
    """Base class for simulated-MPI failures.

    ``rank`` (optional keyword) names the culprit rank when the raise
    site knows it; it is stored as an instance attribute so it survives
    cross-process pickling.
    """

    def __init__(self, *args, rank: int | None = None):
        super().__init__(*args)
        if rank is not None:
            self.rank = rank


class RankFailure(MPIError):
    """Raised in surviving ranks when a peer rank aborted the computation.

    The engine re-raises the *originating* rank's exception to the caller;
    ``RankFailure`` is only ever observed inside other rank threads (or by
    the caller if the origin could not be identified).
    """


class CollectiveMisuse(MPIError):
    """A collective was called with inconsistent arguments across ranks
    (e.g. a scatter list of the wrong length, or mismatched roots)."""


class InjectedFault(MPIError):
    """A deterministic fault fired by a :class:`repro.mpi.faults.FaultPlan`
    (rank crash or injected disk failure).  Retryable by a
    :class:`~repro.config.RecoveryPolicy`."""


class CorruptPayload(MPIError):
    """A collective payload failed its CRC check at the receiver.

    Raised by the checksumming transport wrapper (see
    :mod:`repro.mpi.faults`) on every rank that reads the corrupted slot —
    the simulation's equivalent of a NIC/driver-level data-integrity
    failure surfacing through a checksummed wire protocol.  Carries the
    *sender* as its culprit rank: the bytes went bad on that rank's wire."""


class DiskFull(InjectedFault):
    """A rank's :class:`~repro.storage.disk.LocalDisk` refused a write
    because an injected disk-full fault tripped its block quota."""


class RankDead(MPIError):
    """A worker process is gone for good: its process exited (or was
    SIGKILLed) while the run still needed it.  Permanent by definition —
    retrying at the same width would wait on a corpse.  Raised by the
    process backend's :class:`~repro.mpi.backends.Supervisor` with the
    dead rank attached."""


class RankHung(MPIError):
    """A worker exceeded its supervision deadline (``suspect_after``)
    while its process is still alive — a straggler declared hung.
    Transient: the rank may merely be slow, so recovery retries at full
    width before giving up on it."""


class CheckpointError(MPIError):
    """A checkpoint manifest or payload failed validation (missing file,
    CRC mismatch, truncated chain).  Recovery treats the damaged entry as
    absent and resumes from the last intact iteration instead."""


# ---------------------------------------------------------------------------
# failure taxonomy
# ---------------------------------------------------------------------------

#: Classification labels returned by :func:`classify_failure`.
TRANSIENT = "transient"
PERMANENT = "permanent"
FATAL = "fatal"


def classify_failure(exc: BaseException) -> tuple[str, int | None]:
    """Classify a run failure for degraded-mode recovery.

    Returns ``(kind, rank)`` where ``kind`` is one of

    ``"transient"``
        Worth retrying at the same width: a corrupt payload (the wire
        failed, not the node), a straggler past its deadline
        (:class:`RankHung`), an injected disk-full (quota disarms after
        firing), or a secondary :class:`RankFailure` whose origin was
        never identified.
    ``"permanent"``
        The rank is gone: its process died (:class:`RankDead`) or a
        deterministic crash fault felled it (:class:`InjectedFault`).
        Degrade-mode recovery blacklists the rank and continues at
        reduced width.
    ``"fatal"``
        Not a runtime failure: operator interrupts, programming errors
        (:class:`CollectiveMisuse`), or anything that is not an
        :class:`MPIError`.  Never retried.

    ``rank`` is the culprit rank when the raise site attached one, else
    ``None`` (bystander reports never name a culprit).
    """
    rank = getattr(exc, "rank", None)
    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
        return FATAL, rank
    if isinstance(exc, CollectiveMisuse):
        return FATAL, rank
    if isinstance(exc, RankDead):
        return PERMANENT, rank
    # Order matters: DiskFull subclasses InjectedFault but is transient
    # (the one-shot quota disarms — "the operator freed space").
    if isinstance(exc, DiskFull):
        return TRANSIENT, rank
    if isinstance(exc, InjectedFault):
        return PERMANENT, rank
    if isinstance(exc, (CorruptPayload, RankHung, RankFailure)):
        return TRANSIENT, rank
    if isinstance(exc, MPIError):
        return TRANSIENT, rank
    return FATAL, rank
