"""Rank-side communicator endpoint of the simulated cluster.

Every collective here is blocking and must be called by *all* ranks in the
same order — the same contract real MPI imposes on the paper's code.  Each
call is one BSP superstep: the rank's local work since the previous
collective is snapshotted into the cluster clock, payloads are exchanged
through shared mailboxes, and the barrier action (see
:mod:`repro.mpi.engine`) advances simulated time and the traffic meters.

Payloads are ordinary Python objects; NumPy arrays and
:class:`~repro.storage.table.Relation` values travel by reference (the
simulation shares one address space) but are metered at their buffer size,
matching the buffer-protocol fast path of mpi4py.  Rank code must treat
received arrays as read-only or copy them, exactly as it would after a real
``MPI_Recv``.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

import numpy as np

from repro.mpi.errors import CollectiveMisuse, MPIError, RankFailure
from repro.mpi.stats import payload_nbytes

__all__ = ["Comm"]

#: Upper bound on how long one rank waits for its peers before the run is
#: declared wedged.  Generous: the whole benchmark suite runs in minutes.
BARRIER_TIMEOUT_SEC = 600.0


class Comm:
    """One rank's view of the cluster (constructed by the engine)."""

    def __init__(
        self,
        rank: int,
        size: int,
        slots: list,
        enter: threading.Barrier,
        leave: threading.Barrier,
        clock,
        stats,
        disk,
    ):
        self.rank = rank
        self.size = size
        self._slots = slots
        self._enter = enter
        self._leave = leave
        self.clock = clock
        self.stats = stats
        self.disk = disk

    # -- phase labelling --------------------------------------------------

    def set_phase(self, phase: str) -> None:
        """Label subsequent supersteps for time/traffic attribution."""
        self.clock.set_phase(
            self.rank,
            phase,
            io_blocks=self.disk.stats.blocks_total,
            work_seconds=self.disk.work.seconds,
        )

    # -- superstep plumbing -------------------------------------------------

    def _wait(self, barrier: threading.Barrier) -> None:
        try:
            barrier.wait(timeout=BARRIER_TIMEOUT_SEC)
        except threading.BrokenBarrierError:
            raise RankFailure(
                f"rank {self.rank}: a peer rank aborted the computation"
            ) from None

    def _exchange(
        self,
        kind: str,
        payload: Any,
        send_row: np.ndarray,
        reader: Callable[[list], Any],
    ) -> Any:
        """Run one collective superstep and return this rank's result."""
        self.clock.mark_segment(
            self.rank, self.disk.stats.blocks_total, self.disk.work.seconds
        )
        self._slots[self.rank] = (payload, send_row, kind)
        self._wait(self._enter)  # barrier action meters + advances the clock
        try:
            result = reader([slot[0] for slot in self._slots])
        finally:
            self._wait(self._leave)  # everyone done reading; slots reusable
        return result

    def _zeros(self) -> np.ndarray:
        return np.zeros(self.size, dtype=np.int64)

    # -- collectives -------------------------------------------------------

    def barrier(self) -> None:
        """Synchronise all ranks (superstep boundary with no traffic)."""
        self._exchange("barrier", None, self._zeros(), lambda slots: None)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; every rank returns the value."""
        self._check_root(root)
        row = self._zeros()
        payload = None
        if self.rank == root:
            payload = obj
            nbytes = payload_nbytes(obj)
            row[:] = nbytes
            row[root] = 0
        return self._exchange("bcast", payload, row, lambda slots: slots[root])

    def gather(self, obj: Any, root: int = 0) -> list | None:
        """Gather one value per rank at ``root`` (others get ``None``)."""
        self._check_root(root)
        row = self._zeros()
        if self.rank != root:
            row[root] = payload_nbytes(obj)
        reader = (
            (lambda slots: list(slots))
            if self.rank == root
            else (lambda slots: None)
        )
        return self._exchange("gather", obj, row, reader)

    def allgather(self, obj: Any) -> list:
        """Gather one value per rank at every rank."""
        row = self._zeros()
        row[:] = payload_nbytes(obj)
        row[self.rank] = 0
        return self._exchange("allgather", obj, row, list)

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        """Distribute ``values[k]`` from ``root`` to rank ``k``."""
        self._check_root(root)
        row = self._zeros()
        payload = None
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise CollectiveMisuse(
                    "scatter at root needs exactly one value per rank, got "
                    f"{None if values is None else len(values)}"
                )
            payload = list(values)
            for k, val in enumerate(payload):
                if k != root:
                    row[k] = payload_nbytes(val)
        rank = self.rank
        return self._exchange(
            "scatter", payload, row, lambda slots: slots[root][rank]
        )

    def alltoall(self, lanes: Sequence[Any]) -> list:
        """The h-relation: rank ``j`` sends ``lanes[k]`` to rank ``k``.

        Returns the list of ``size`` payloads addressed to this rank
        (indexed by source rank).  This is the simulation's
        ``MPI_ALLTOALLV``; lanes may be ``None`` / empty arrays.
        """
        if len(lanes) != self.size:
            raise CollectiveMisuse(
                f"alltoall needs {self.size} lanes, got {len(lanes)}"
            )
        row = np.fromiter(
            (payload_nbytes(lane) for lane in lanes),
            dtype=np.int64,
            count=self.size,
        )
        row[self.rank] = 0 if lanes[self.rank] is None else row[self.rank]
        rank = self.rank
        return self._exchange(
            "alltoall",
            list(lanes),
            row,
            lambda slots: [slots[j][rank] for j in range(len(slots))],
        )

    def allreduce(self, value: float, op: str = "sum") -> float:
        """All-reduce a scalar with ``sum``/``max``/``min``."""
        values = self.allgather(float(value))
        if op == "sum":
            return float(sum(values))
        if op == "max":
            return float(max(values))
        if op == "min":
            return float(min(values))
        raise CollectiveMisuse(f"unsupported allreduce op: {op!r}")

    def sendrecv_left(self, obj: Any) -> Any:
        """Every rank sends ``obj`` to rank-1 and receives rank+1's value.

        Rank 0 sends nothing; the last rank receives ``None``.  Implemented
        as one sparse h-relation (the paper's case-1 boundary exchange).
        """
        lanes: list[Any] = [None] * self.size
        if self.rank > 0:
            lanes[self.rank - 1] = obj
        received = self.alltoall(lanes)
        if self.rank < self.size - 1:
            return received[self.rank + 1]
        return None

    # -- misc -------------------------------------------------------------

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise CollectiveMisuse(
                f"root {root} out of range for {self.size} ranks"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Comm(rank={self.rank}, size={self.size})"
