"""Rank-side communicator endpoint of the simulated cluster.

Every collective here is blocking and must be called by *all* ranks in the
same order — the same contract real MPI imposes on the paper's code.  Each
call is one BSP superstep: the rank's local work since the previous
collective is snapshotted into the cluster clock, payloads are exchanged
through the rank's :class:`Transport`, and the superstep commit (see
:mod:`repro.mpi.engine` / :mod:`repro.mpi.backends`) advances simulated
time and the traffic meters.

:class:`Comm` is transport-agnostic: the same collective algebra and
metering runs over the in-process mailbox transport of the thread backend
(:class:`ThreadTransport`, payloads travel by reference) and over the
shared-memory transport of the process backend (payloads cross address
spaces; see :mod:`repro.mpi.backends`).  Under both backends rank code
must treat received arrays as read-only or copy them, exactly as after a
real ``MPI_Recv``: the thread backend delivers them by reference, the
process backend as read-only views aliasing the sender's shared segment
(:func:`repro.mpi.shm.materialize` yields a writable copy when mutation
is genuinely needed).  Payloads are metered at their buffer size either
way, matching the buffer-protocol fast path of mpi4py.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Protocol, Sequence

import numpy as np

from repro.mpi.errors import CollectiveMisuse, RankFailure
from repro.mpi.stats import payload_nbytes

__all__ = [
    "BARRIER_TIMEOUT_SEC",
    "Comm",
    "ThreadTransport",
    "Transport",
    "resolve_barrier_timeout",
]

#: Default upper bound on how long one rank waits for its peers before the
#: run is declared wedged.  Generous: the whole benchmark suite runs in
#: minutes.  Configurable per run via ``MachineSpec.barrier_timeout`` and
#: overridable everywhere with the ``REPRO_BARRIER_TIMEOUT`` environment
#: variable (chaos tests use a short deadline instead of risking 600 s
#: hangs) — see :func:`resolve_barrier_timeout`.
BARRIER_TIMEOUT_SEC = 600.0

#: Environment override for the barrier timeout (seconds).  Wins over both
#: the module default and ``MachineSpec.barrier_timeout``.
_TIMEOUT_ENV = "REPRO_BARRIER_TIMEOUT"


def resolve_barrier_timeout(value: float | None = None) -> float:
    """Resolve the effective peer-wait deadline in seconds.

    Priority: ``REPRO_BARRIER_TIMEOUT`` env var > ``value`` (normally
    ``MachineSpec.barrier_timeout``) > :data:`BARRIER_TIMEOUT_SEC`.
    """
    env = os.environ.get(_TIMEOUT_ENV)
    if env:
        try:
            parsed = float(env)
        except ValueError:
            parsed = -1.0
        if parsed > 0:
            return parsed
    if value is not None:
        return float(value)
    return BARRIER_TIMEOUT_SEC


class Transport(Protocol):
    """One rank's wire: runs a single collective superstep.

    ``exchange`` blocks until every rank has entered the same collective,
    hands the metering row to the superstep commit, applies ``reader`` to
    the per-rank payload slots (index = source rank), and returns its
    result.  Implementations must also guarantee the commit protocol of
    :meth:`repro.mpi.clock.BSPClock.commit_superstep` +
    :meth:`repro.mpi.stats.CommStats.record` runs exactly once per
    superstep.
    """

    def exchange(
        self,
        kind: str,
        payload: Any,
        send_row: np.ndarray,
        reader: Callable[[Sequence[Any]], Any],
    ) -> Any: ...


class ThreadTransport:
    """Shared-mailbox transport of the thread backend.

    All ranks live in one address space; ``slots[j]`` is rank ``j``'s
    mailbox and two barriers frame each superstep.  The *enter* barrier's
    action (installed by the engine) meters traffic and advances the
    clock; the *leave* barrier keeps slots stable until every reader is
    done.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        slots: list,
        enter: threading.Barrier,
        leave: threading.Barrier,
        timeout: float | None = None,
    ):
        self.rank = rank
        self.size = size
        self._slots = slots
        self._enter = enter
        self._leave = leave
        self._timeout = resolve_barrier_timeout(timeout)

    def _wait(self, barrier: threading.Barrier) -> None:
        try:
            barrier.wait(timeout=self._timeout)
        except threading.BrokenBarrierError:
            raise RankFailure(
                f"rank {self.rank}: a peer rank aborted the computation"
            ) from None

    def exchange(
        self,
        kind: str,
        payload: Any,
        send_row: np.ndarray,
        reader: Callable[[Sequence[Any]], Any],
    ) -> Any:
        self._slots[self.rank] = (payload, send_row, kind)
        self._wait(self._enter)  # barrier action meters + advances the clock
        try:
            result = reader([slot[0] for slot in self._slots])
        finally:
            self._wait(self._leave)  # everyone done reading; slots reusable
        return result


class Comm:
    """One rank's view of the cluster (constructed by the engine)."""

    def __init__(
        self,
        rank: int,
        size: int,
        transport: Transport,
        clock,
        stats,
        disk,
    ):
        self.rank = rank
        self.size = size
        self._transport = transport
        self.clock = clock
        self.stats = stats
        self.disk = disk

    # -- phase labelling --------------------------------------------------

    def set_phase(self, phase: str) -> None:
        """Label subsequent supersteps for time/traffic attribution."""
        self.clock.set_phase(
            self.rank,
            phase,
            io_blocks=self.disk.stats.blocks_total,
            work_seconds=self.disk.work.seconds,
        )

    # -- superstep plumbing -------------------------------------------------

    def _exchange(
        self,
        kind: str,
        payload: Any,
        send_row: np.ndarray,
        reader: Callable[[list], Any],
    ) -> Any:
        """Run one collective superstep and return this rank's result."""
        self.clock.mark_segment(
            self.rank, self.disk.stats.blocks_total, self.disk.work.seconds
        )
        return self._transport.exchange(kind, payload, send_row, reader)

    def _zeros(self) -> np.ndarray:
        return np.zeros(self.size, dtype=np.int64)

    def _misuse(self, detail: str) -> CollectiveMisuse:
        """A :class:`CollectiveMisuse` carrying rank + phase context, so a
        misuse raised deep inside an SPMD program is attributable without
        a debugger attached to the failing rank."""
        phase = self.clock._phase[self.rank]
        return CollectiveMisuse(
            f"rank {self.rank} [phase {phase}]: {detail}"
        )

    # -- collectives -------------------------------------------------------

    def barrier(self) -> None:
        """Synchronise all ranks (superstep boundary with no traffic)."""
        self._exchange("barrier", None, self._zeros(), lambda slots: None)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; every rank returns the value."""
        self._check_root(root)
        row = self._zeros()
        payload = None
        if self.rank == root:
            payload = obj
            nbytes = payload_nbytes(obj)
            row[:] = nbytes
            row[root] = 0
        return self._exchange("bcast", payload, row, lambda slots: slots[root])

    def gather(self, obj: Any, root: int = 0) -> list | None:
        """Gather one value per rank at ``root`` (others get ``None``)."""
        self._check_root(root)
        row = self._zeros()
        if self.rank != root:
            row[root] = payload_nbytes(obj)
        reader = (
            (lambda slots: list(slots))
            if self.rank == root
            else (lambda slots: None)
        )
        return self._exchange("gather", obj, row, reader)

    def allgather(self, obj: Any) -> list:
        """Gather one value per rank at every rank."""
        row = self._zeros()
        row[:] = payload_nbytes(obj)
        row[self.rank] = 0
        return self._exchange("allgather", obj, row, list)

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        """Distribute ``values[k]`` from ``root`` to rank ``k``."""
        self._check_root(root)
        # Validate on *every* rank: a wrong-length list on a non-root rank
        # is a latent bug that would only surface when roles rotate.
        if values is not None and len(values) != self.size:
            raise self._misuse(
                f"scatter needs exactly one value per rank "
                f"({self.size}), got {len(values)}"
            )
        row = self._zeros()
        payload = None
        if self.rank == root:
            if values is None:
                raise self._misuse(
                    "scatter at root needs a value list, got None"
                )
            payload = list(values)
            for k, val in enumerate(payload):
                if k != root:
                    row[k] = payload_nbytes(val)
        rank = self.rank
        return self._exchange(
            "scatter", payload, row, lambda slots: slots[root][rank]
        )

    def alltoall(self, lanes: Sequence[Any]) -> list:
        """The h-relation: rank ``j`` sends ``lanes[k]`` to rank ``k``.

        Returns the list of ``size`` payloads addressed to this rank
        (indexed by source rank).  This is the simulation's
        ``MPI_ALLTOALLV``; lanes may be ``None`` / empty arrays.
        """
        if len(lanes) != self.size:
            raise self._misuse(
                f"alltoall needs {self.size} lanes, got {len(lanes)}"
            )
        row = np.fromiter(
            (payload_nbytes(lane) for lane in lanes),
            dtype=np.int64,
            count=self.size,
        )
        row[self.rank] = 0 if lanes[self.rank] is None else row[self.rank]
        rank = self.rank
        return self._exchange(
            "alltoall",
            list(lanes),
            row,
            lambda slots: [slots[j][rank] for j in range(len(slots))],
        )

    def allreduce(self, value: float, op: str = "sum") -> float:
        """All-reduce a scalar with ``sum``/``max``/``min``.

        Metered as a true reduction: the wire carries one 8-byte float64
        per rank pair (``payload_nbytes`` of a 1-element ndarray), and the
        superstep is recorded under its own ``"allreduce"`` kind instead
        of masquerading as a list-of-objects allgather.
        """
        if op not in ("sum", "max", "min"):
            raise self._misuse(f"unsupported allreduce op: {op!r}")
        arr = np.array([float(value)], dtype=np.float64)
        row = self._zeros()
        row[:] = arr.nbytes
        row[self.rank] = 0
        values = self._exchange(
            "allreduce",
            arr,
            row,
            lambda slots: [float(np.asarray(s)[0]) for s in slots],
        )
        if op == "sum":
            return float(sum(values))
        if op == "max":
            return float(max(values))
        return float(min(values))

    def sendrecv_left(self, obj: Any) -> Any:
        """Every rank sends ``obj`` to rank-1 and receives rank+1's value.

        Rank 0 sends nothing; the last rank receives ``None``.  Implemented
        as one sparse h-relation (the paper's case-1 boundary exchange).
        """
        lanes: list[Any] = [None] * self.size
        if self.rank > 0:
            lanes[self.rank - 1] = obj
        received = self.alltoall(lanes)
        if self.rank < self.size - 1:
            return received[self.rank + 1]
        return None

    # -- misc -------------------------------------------------------------

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise self._misuse(
                f"root {root} out of range for {self.size} ranks"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Comm(rank={self.rank}, size={self.size})"
