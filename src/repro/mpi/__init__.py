"""Simulated shared-nothing message-passing substrate.

The paper runs on a Beowulf cluster under MPI/LAM.  Neither multi-node
hardware nor mpi4py is available here, so this package provides an
in-process SPMD runtime with MPI semantics:

* :func:`repro.mpi.engine.run_spmd` spawns ``p`` rank threads, each running
  the identical rank program against its own :class:`~repro.mpi.comm.Comm`
  endpoint and its own private :class:`~repro.storage.disk.LocalDisk`.
* Collectives — ``barrier``, ``bcast``, ``gather``, ``allgather``,
  ``scatter``, ``alltoall`` (the paper's h-relation,
  ``MPI_ALLTOALLV``), ``allreduce`` — run over shared mailboxes with the
  blocking semantics of their MPI counterparts.
* Every collective is a BSP superstep boundary: the
  :class:`~repro.mpi.clock.BSPClock` advances simulated time by the maximum
  per-rank segment cost (CPU + disk) plus an h-relation communication cost,
  which is how this reproduction obtains cluster-like wall-clock and
  speedup curves on a single host.
* :class:`~repro.mpi.stats.CommStats` meters every byte crossing the
  virtual network (needed verbatim for the paper's Figure 8b).
"""

from repro.mpi.clock import BSPClock
from repro.mpi.comm import Comm
from repro.mpi.engine import Cluster, run_spmd
from repro.mpi.errors import MPIError, RankFailure
from repro.mpi.stats import CommStats

__all__ = [
    "BSPClock",
    "Cluster",
    "Comm",
    "CommStats",
    "MPIError",
    "RankFailure",
    "run_spmd",
]
