"""Simulated shared-nothing message-passing substrate.

The paper runs on a Beowulf cluster under MPI/LAM.  Neither multi-node
hardware nor mpi4py is available here, so this package provides an SPMD
runtime with MPI semantics and pluggable execution backends:

* :func:`repro.mpi.engine.run_spmd` runs ``p`` rank programs — as threads
  over shared mailboxes (the deterministic default) or as forked worker
  processes with shared-memory collectives (``MachineSpec(backend=
  "process")``; see :mod:`repro.mpi.backends`) — each against its own
  :class:`~repro.mpi.comm.Comm` endpoint and its own private
  :class:`~repro.storage.disk.LocalDisk`.
* Collectives — ``barrier``, ``bcast``, ``gather``, ``allgather``,
  ``scatter``, ``alltoall`` (the paper's h-relation,
  ``MPI_ALLTOALLV``), ``allreduce`` — have the blocking semantics of
  their MPI counterparts on every backend.
* Every collective is a BSP superstep boundary: the
  :class:`~repro.mpi.clock.BSPClock` advances simulated time by the maximum
  per-rank segment cost (CPU + disk) plus an h-relation communication cost,
  which is how this reproduction obtains cluster-like wall-clock and
  speedup curves on a single host.  The superstep commit is replayed
  identically by both backends, so simulated time and traffic metering do
  not depend on how the ranks physically execute.
* :class:`~repro.mpi.stats.CommStats` meters every byte crossing the
  virtual network (needed verbatim for the paper's Figure 8b).
"""

from repro.mpi.backends import ProcessBackend, ThreadBackend, get_backend
from repro.mpi.clock import BSPClock
from repro.mpi.comm import Comm, ThreadTransport, Transport
from repro.mpi.engine import Cluster, run_spmd
from repro.mpi.errors import MPIError, RankFailure
from repro.mpi.stats import CommStats

__all__ = [
    "BSPClock",
    "Cluster",
    "Comm",
    "CommStats",
    "MPIError",
    "ProcessBackend",
    "RankFailure",
    "ThreadBackend",
    "ThreadTransport",
    "Transport",
    "get_backend",
    "run_spmd",
]
