"""Brute-force group-by reference: the correctness oracle.

Computes each view directly from the raw relation with
``np.unique(return_inverse=True)`` plus unbuffered ``ufunc.at``
scatter-aggregation.  Slow relative to the pipelined cube algorithms but
independent of every code path under test.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.views import View, all_views, canonical_view
from repro.storage.codec import KeyCodec
from repro.storage.table import Relation

__all__ = ["reference_cube", "reference_view"]


def reference_view(
    relation: Relation,
    cardinalities: Sequence[int],
    view: View,
    agg: str = "sum",
) -> Relation:
    """Ground-truth aggregation of one view, canonical column order."""
    view = canonical_view(view)
    cards = [int(cardinalities[i]) for i in view]
    codec = KeyCodec(cards)
    keys = codec.pack(relation.dims[:, view])
    uniq, inverse = np.unique(keys, return_inverse=True)
    m = uniq.shape[0]
    if agg == "sum":
        out = np.zeros(m)
        np.add.at(out, inverse, relation.measure)
    elif agg == "count":
        out = np.zeros(m)
        np.add.at(out, inverse, 1.0)
    elif agg == "min":
        out = np.full(m, np.inf)
        np.minimum.at(out, inverse, relation.measure)
    elif agg == "max":
        out = np.full(m, -np.inf)
        np.maximum.at(out, inverse, relation.measure)
    else:
        raise ValueError(f"unsupported aggregate: {agg!r}")
    if relation.nrows == 0:
        return Relation.empty(len(view))
    return Relation(codec.unpack(uniq), out)


def reference_cube(
    relation: Relation,
    cardinalities: Sequence[int],
    views: Sequence[View] | None = None,
    agg: str = "sum",
) -> dict[View, Relation]:
    """Ground-truth cube over ``views`` (default: all ``2^d``)."""
    if views is None:
        views = all_views(relation.width)
    return {
        canonical_view(v): reference_view(relation, cardinalities, v, agg)
        for v in views
    }
