"""Section 2.2's rejected alternative: partition on the leading dimension.

Methods like Goil-Choudhary [9] partition the raw data on one (or a few)
dimensions so that views containing those dimensions need no merge.  The
paper rejects this because the available parallelism is capped by the
partitioning dimension's cardinality and wrecked by its skew.  This
baseline makes that failure mode measurable:

* rows are range-partitioned on ``D0`` (contiguous code ranges chosen from
  a histogram, so the *row* counts are as balanced as the data allows);
* every rank builds the full local cube with sequential Pipesort;
* views containing ``D0`` are complete per rank (no merge, but they are as
  unbalanced as the value distribution of ``D0``);
* views without ``D0`` are merged by a global sort + aggregate.

With high leading-dimension skew (Figure 9's mix D) most rows share one
``D0`` code and land on one rank, so the local-compute critical path stops
shrinking with p — the scalability wall the paper describes.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.config import CubeConfig, MachineSpec, RunResult
from repro.core.cube import CubeResult
from repro.core.aggregate import prepare_measure
from repro.core.estimate import estimate_view_sizes
from repro.core.merge import _merge_prefix_view
from repro.core.pipesort import build_schedule_tree, execute_schedule
from repro.core.sample_sort import adaptive_sample_sort
from repro.core.viewdata import ViewData
from repro.core.views import View, all_views
from repro.mpi.engine import run_spmd
from repro.storage.codec import KeyCodec
from repro.storage.external_sort import external_sort
from repro.storage.scan import aggregate_sorted_keys
from repro.storage.table import Relation

__all__ = ["onedim_partition_cube"]


def _range_partition_d0(
    relation: Relation, card0: int, p: int
) -> list[Relation]:
    """Split rows into p groups by contiguous ``D0`` code ranges, choosing
    the range ends from the code histogram to even out row counts."""
    codes = relation.dims[:, 0]
    hist = np.bincount(codes, minlength=card0)
    cum = np.cumsum(hist)
    total = cum[-1] if cum.size else 0
    targets = (np.arange(1, p) * total) / p
    ends = np.searchsorted(cum, targets, side="left")  # code range ends
    bucket_of_code = np.zeros(card0, dtype=np.int64)
    for k, e in enumerate(ends):
        bucket_of_code[e + 1 :] = k + 1
    owner = bucket_of_code[codes]
    return [relation.take(np.flatnonzero(owner == j)) for j in range(p)]


def _onedim_program(
    comm,
    chunks: list[Relation],
    cards: tuple[int, ...],
    config: CubeConfig,
    estimate_method: str,
    memory_budget: int,
):
    local = chunks[comm.rank]
    d = len(cards)
    agg = config.agg
    root = tuple(range(d))

    # Local full cube via sequential Pipesort on this rank's D0 slice.
    comm.set_phase("onedim-local")
    codec = KeyCodec(cards)
    keys = codec.pack(local.dims)
    comm.disk.charge_scan(local.nrows)
    comm.disk.work.charge_scan(local.nrows)  # pack
    keys, measure = external_sort(keys, local.measure, comm.disk, memory_budget)
    comm.disk.work.charge_scan(keys.shape[0])
    keys, measure = aggregate_sorted_keys(keys, measure, agg)
    root_data = ViewData(root, keys, measure)
    views = all_views(d)
    estimates = estimate_view_sizes(
        codec.unpack(keys), cards, views, method=estimate_method
    )
    tree = build_schedule_tree(views, root, estimates, root)
    out = execute_schedule(
        tree, root_data, cards, comm.disk, memory_budget, agg
    )

    # Views without D0 overlap across ranks: merge by global sort.
    comm.set_phase("onedim-merge")
    merged: dict[View, ViewData] = {}
    for view in sorted(out, key=lambda v: (-len(v), v)):
        data = out[view]
        if view and view[0] == 0:
            merged[view] = data  # D0 views are disjoint across ranks
        else:
            canon = data.view
            if tuple(data.order) != canon:
                # bring to a common order before the global sort
                view_codec = KeyCodec([cards[i] for i in data.order])
                dims = view_codec.unpack(data.keys)
                col_of = {dim: pos for pos, dim in enumerate(data.order)}
                cols = [col_of[dim] for dim in canon]
                canon_codec = KeyCodec([cards[i] for i in canon])
                vkeys = canon_codec.pack(dims[:, cols]) if cols else data.keys * 0
            else:
                vkeys = data.keys
            comm.disk.work.charge_scan(data.nrows)
            outcome = adaptive_sample_sort(
                comm, vkeys, data.measure, config.gamma_merge
            )
            mk, mm = aggregate_sorted_keys(outcome.keys, outcome.measure, agg)
            result = ViewData(canon, mk, mm)
            if outcome.shifted:
                # the positional global shift can split a key across ranks
                result = _merge_prefix_view(comm, result, agg)
            merged[view] = result
        comm.disk.charge_store(merged[view].nrows)
    return merged


def onedim_partition_cube(
    relation: Relation,
    cardinalities,
    spec: MachineSpec | None = None,
    config: CubeConfig | None = None,
    estimate_method: str = "sample",
) -> CubeResult:
    """Build the full cube with leading-dimension data partitioning."""
    spec = spec or MachineSpec()
    config = config or CubeConfig()
    relation, internal_agg = prepare_measure(relation, config.agg)
    if internal_agg != config.agg:
        config = replace(config, agg=internal_agg)
    cards = tuple(int(c) for c in cardinalities)
    chunks = _range_partition_d0(relation, cards[0], spec.p)
    cluster = run_spmd(
        _onedim_program,
        spec,
        args=(chunks, cards, config, estimate_method, spec.memory_budget),
    )
    rank_views = cluster.rank_results
    metrics = RunResult(
        simulated_seconds=cluster.simulated_seconds,
        host_seconds=cluster.host_seconds,
        output_rows=sum(
            data.nrows for rv in rank_views for data in rv.values()
        ),
        view_count=len(rank_views[0]),
        comm_bytes=cluster.stats.total_bytes,
        disk_blocks=cluster.total_disk_blocks(),
        phase_seconds=cluster.clock.phase_breakdown(),
        phase_comm_seconds=cluster.clock.phase_comm_breakdown(),
        superstep_log=list(cluster.clock.log),
    )
    return CubeResult(
        rank_views=rank_views, cardinalities=cards, metrics=metrics
    )
