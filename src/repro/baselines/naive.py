"""Naive baseline: every view from an independent sort of the raw data.

Section 4.1's closing remark: "when there are only a handful of selected
views, creating each view from an independent sort of the original data
set may be preferable."  This baseline makes that regime measurable: no
schedule tree, no pipelining — each view costs one full scan + sort of the
raw relation.
"""

from __future__ import annotations

from typing import Sequence

from repro.config import CubeConfig, MachineSpec, RunResult
from repro.core.aggregate import prepare_measure
from repro.core.cube import CubeResult
from repro.core.viewdata import ViewData, codec_for_order
from repro.core.views import View, all_views, canonical_view
from repro.mpi.engine import run_spmd
from repro.storage.external_sort import external_sort
from repro.storage.scan import aggregate_sorted_keys
from repro.storage.table import Relation

__all__ = ["naive_sequential_cube"]


def _naive_program(
    comm,
    relation: Relation,
    cards: tuple[int, ...],
    agg: str,
    views: tuple[View, ...],
    memory_budget: int,
):
    out: dict[View, ViewData] = {}
    comm.set_phase("naive")
    for view in views:
        codec = codec_for_order(view, cards)
        if view:
            keys = codec.pack(relation.dims[:, view])
        else:
            keys = relation.dims[:, :0].sum(axis=1)  # zeros, int64
        comm.disk.charge_scan(relation.nrows)
        comm.disk.work.charge_scan(relation.nrows)  # pack
        keys, measure = external_sort(
            keys, relation.measure, comm.disk, memory_budget
        )
        comm.disk.work.charge_scan(keys.shape[0])
        keys, measure = aggregate_sorted_keys(keys, measure, agg)
        out[view] = ViewData(view, keys, measure)
        comm.disk.charge_store(keys.shape[0])
    return out


def naive_sequential_cube(
    relation: Relation,
    cardinalities: Sequence[int],
    spec: MachineSpec | None = None,
    config: CubeConfig | None = None,
    selected: Sequence[View] | None = None,
) -> CubeResult:
    """Build each requested view by an independent sort of the raw data."""
    spec = (spec or MachineSpec()).with_processors(1)
    config = config or CubeConfig()
    relation, internal_agg = prepare_measure(relation, config.agg)
    agg = internal_agg
    cards = tuple(int(c) for c in cardinalities)
    if selected is None:
        views = tuple(all_views(relation.width))
    else:
        views = tuple(
            sorted({canonical_view(v) for v in selected},
                   key=lambda v: (len(v), v))
        )
    cluster = run_spmd(
        _naive_program,
        spec,
        args=(relation, cards, agg, views, spec.memory_budget),
    )
    rank_views = cluster.rank_results[0]
    metrics = RunResult(
        simulated_seconds=cluster.simulated_seconds,
        host_seconds=cluster.host_seconds,
        output_rows=sum(v.nrows for v in rank_views.values()),
        view_count=len(rank_views),
        comm_bytes=cluster.stats.total_bytes,
        disk_blocks=cluster.total_disk_blocks(),
        phase_seconds=cluster.clock.phase_breakdown(),
        phase_comm_seconds=cluster.clock.phase_comm_breakdown(),
        superstep_log=list(cluster.clock.log),
    )
    return CubeResult(
        rank_views=[rank_views], cardinalities=cards, metrics=metrics
    )
