"""Baselines and ablation comparators.

* :mod:`repro.baselines.reference` — brute-force per-view group-by; the
  ground truth every other implementation is tested against.
* :mod:`repro.baselines.sequential` — the paper's sequential comparator:
  Pipesort (full cube, [3]) / Partial-cube ([4]) on a single processor,
  metered under the same cost model (speedup denominators).
* :mod:`repro.baselines.naive` — every view from an independent sort of
  the raw data set (the strategy the paper suggests for tiny selections).
* :mod:`repro.baselines.local_tree` — per-rank local schedule trees
  (the losing strategy of Figure 7).
* :mod:`repro.baselines.onedim` — partitioning on the leading dimension
  only, the rejected alternative of Section 2.2.
"""

from repro.baselines.local_tree import local_tree_cube
from repro.baselines.naive import naive_sequential_cube
from repro.baselines.onedim import onedim_partition_cube
from repro.baselines.reference import reference_cube, reference_view
from repro.baselines.sequential import sequential_cube

__all__ = [
    "local_tree_cube",
    "naive_sequential_cube",
    "onedim_partition_cube",
    "reference_cube",
    "reference_view",
    "sequential_cube",
]
