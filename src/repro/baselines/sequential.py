"""Sequential comparator: Pipesort / Partial-cube on one processor.

This is the denominator of every relative-speedup figure.  Matching the
paper, the sequential method is *not* the parallel algorithm at p = 1 but
the underlying sequential top-down method run over the whole lattice with
a single schedule tree: sort the raw data once into the top view, then
execute Pipesort phase 2 (or the partial-cube schedule of [4]) — all under
the same cost model (CPU + disk; no communication).
"""

from __future__ import annotations

from typing import Sequence

from dataclasses import replace

from repro.config import CubeConfig, MachineSpec, RunResult
from repro.core.aggregate import prepare_measure
from repro.core.cube import CubeResult
from repro.core.estimate import estimate_view_sizes
from repro.core.partial import build_partial_schedule_tree, prune_full_tree
from repro.core.pipesort import build_schedule_tree, execute_schedule
from repro.core.viewdata import ViewData
from repro.core.views import View, all_views, canonical_view
from repro.mpi.engine import run_spmd
from repro.storage.codec import KeyCodec
from repro.storage.scan import aggregate_sorted_keys
from repro.storage.external_sort import external_sort
from repro.storage.table import Relation

__all__ = ["sequential_cube"]


def _seq_program(
    comm,
    relation: Relation,
    cards: tuple[int, ...],
    config: CubeConfig,
    selected: tuple[View, ...] | None,
    estimate_method: str,
    memory_budget: int,
):
    d = len(cards)
    root = tuple(range(d))
    comm.set_phase("seq-sort")
    codec = KeyCodec(cards)
    keys = codec.pack(relation.dims)
    comm.disk.charge_scan(relation.nrows)
    comm.disk.work.charge_scan(relation.nrows)  # pack
    keys, measure = external_sort(keys, relation.measure, comm.disk, memory_budget)
    comm.disk.work.charge_scan(keys.shape[0])
    keys, measure = aggregate_sorted_keys(keys, measure, config.agg)
    root_data = ViewData(root, keys, measure)

    comm.set_phase("seq-schedule")
    views = all_views(d)
    estimates = estimate_view_sizes(
        codec.unpack(keys), cards, views, method=estimate_method
    )
    if selected is None:
        tree = build_schedule_tree(views, root, estimates, root)
    else:
        wanted = [v for v in selected if v != root]
        direct = build_partial_schedule_tree(wanted, root, estimates, root)
        pruned = prune_full_tree(
            build_schedule_tree(views, root, estimates, root), wanted
        )
        tree = min(
            (direct, pruned), key=lambda t: t.estimated_cost(estimates)
        )

    comm.set_phase("seq-compute")
    out = execute_schedule(
        tree, root_data, cards, comm.disk, memory_budget, config.agg
    )
    if selected is not None:
        out = {v: data for v, data in out.items() if v in set(selected)}
    for data in out.values():
        comm.disk.charge_store(data.nrows)
    return out, [], [tree]


def sequential_cube(
    relation: Relation,
    cardinalities: Sequence[int],
    spec: MachineSpec | None = None,
    config: CubeConfig | None = None,
    selected: Sequence[View] | None = None,
    estimate_method: str = "sample",
) -> CubeResult:
    """Build the cube sequentially; returns the same result shape as
    :func:`repro.core.cube.build_data_cube` (with one rank)."""
    spec = (spec or MachineSpec()).with_processors(1)
    config = config or CubeConfig()
    relation, internal_agg = prepare_measure(relation, config.agg)
    if internal_agg != config.agg:
        config = replace(config, agg=internal_agg)
    cards = tuple(int(c) for c in cardinalities)
    if selected is not None:
        selected = tuple(
            sorted({canonical_view(v) for v in selected},
                   key=lambda v: (len(v), v))
        )
    cluster = run_spmd(
        _seq_program,
        spec,
        args=(relation, cards, config, selected, estimate_method,
              spec.memory_budget),
    )
    views, reports, trees = cluster.rank_results[0]
    metrics = RunResult(
        simulated_seconds=cluster.simulated_seconds,
        host_seconds=cluster.host_seconds,
        output_rows=sum(v.nrows for v in views.values()),
        view_count=len(views),
        comm_bytes=cluster.stats.total_bytes,
        disk_blocks=cluster.total_disk_blocks(),
        phase_seconds=cluster.clock.phase_breakdown(),
        phase_comm_seconds=cluster.clock.phase_comm_breakdown(),
        superstep_log=list(cluster.clock.log),
    )
    return CubeResult(
        rank_views=[views],
        cardinalities=cards,
        metrics=metrics,
        merge_reports=reports,
        schedule_trees=trees,
        agg=config.agg,
    )
