"""Figure 7 comparator: per-rank *local* schedule trees.

Identical to the main algorithm except each rank builds its own schedule
tree from its own size estimates (no broadcast).  Views then come out in
rank-specific sort orders and must be re-sorted into a common (canonical)
order before Merge-Partitions — "that re-sort creates a large amount of
additional computation" (Section 2.3), which is exactly what this variant
measures.
"""

from __future__ import annotations

from typing import Sequence

from repro.config import CubeConfig, MachineSpec
from repro.core.cube import CubeResult, build_data_cube
from repro.core.views import View

__all__ = ["local_tree_cube"]


def local_tree_cube(
    relation,
    cardinalities: Sequence[int],
    spec: MachineSpec | None = None,
    config: CubeConfig | None = None,
    selected: Sequence[View] | None = None,
    **kwargs,
) -> CubeResult:
    """Build the cube with per-rank local schedule trees."""
    from dataclasses import replace

    config = replace(config or CubeConfig(), global_schedule_tree=False)
    return build_data_cube(
        relation, cardinalities, spec=spec, config=config,
        selected=selected, **kwargs,
    )
