"""A minimal MOLAP comparator: dense multi-dimensional array cubes.

The paper's introduction positions ROLAP against MOLAP (views as
multi-dimensional arrays, the Goil-Choudhary line of work [7, 8]) and
claims ROLAP's "principal advantage ... is that it requires only linear
space and is therefore particularly suitable for the construction of very
large data cubes".  This baseline makes that claim measurable: each view
is a dense ``|Di1| x |Di2| x ...`` array, so a view's footprint is its
*key-space* size regardless of how many cells are occupied, while the
ROLAP representation stores one row per occupied cell.

Only practical for small cardinality products (the point!).  Aggregation
uses the classic MOLAP trick: compute each view from its smallest
materialised superset by summing out one axis — cheap on dense arrays.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.views import View, all_views, canonical_view
from repro.storage.table import Relation

__all__ = ["MolapCube", "build_molap_cube", "space_comparison"]

#: Refuse to allocate dense cubes beyond this many total cells.
MAX_TOTAL_CELLS = 50_000_000


class MolapCube:
    """A fully materialised dense-array data cube.

    ``counts`` (parallel occupancy-count arrays, when supplied by the
    builder) let :meth:`view_relation` distinguish an *absent* cell
    from an occupied cell whose measures sum to exactly 0.0 — a dense
    value array alone cannot.  Without counts the historical
    ``nonzero(values)`` behaviour applies.
    """

    def __init__(
        self,
        arrays: dict[View, np.ndarray],
        cardinalities: tuple[int, ...],
        counts: dict[View, np.ndarray] | None = None,
    ):
        self.arrays = arrays
        self.cardinalities = cardinalities
        self.counts = counts or {}

    @property
    def views(self) -> list[View]:
        return sorted(self.arrays, key=lambda v: (len(v), v))

    def cells(self, view: View) -> int:
        return int(self.arrays[canonical_view(view)].size)

    def total_cells(self) -> int:
        return sum(arr.size for arr in self.arrays.values())

    def total_bytes(self) -> int:
        return sum(arr.nbytes for arr in self.arrays.values())

    def view_relation(self, view: View) -> Relation:
        """Densify-to-ROLAP: rows for occupied cells only (for checks)."""
        view = canonical_view(view)
        arr = self.arrays[view]
        cnt = self.counts.get(view)
        if arr.ndim == 0:
            if cnt is not None and int(cnt) == 0:
                return Relation.empty(0)
            return Relation(
                np.empty((1, 0), dtype=np.int64), np.array([float(arr)])
            )
        occupied = np.nonzero(cnt if cnt is not None else arr)
        dims = np.column_stack(occupied).astype(np.int64)
        return Relation(dims, arr[occupied])


def build_molap_cube(
    relation: Relation,
    cardinalities: Sequence[int],
    views: Sequence[View] | None = None,
) -> MolapCube:
    """Materialise a dense-array cube (top-down, smallest-parent order)."""
    cards = tuple(int(c) for c in cardinalities)
    d = relation.width
    if views is None:
        views = all_views(d)
    views = sorted(
        {canonical_view(v) for v in views}, key=lambda v: (-len(v), v)
    )
    total = sum(
        int(np.prod([cards[i] for i in v])) if v else 1 for v in views
    )
    if total > MAX_TOTAL_CELLS:
        raise MemoryError(
            f"dense cube would need {total:,} cells (> {MAX_TOTAL_CELLS:,});"
            " this is exactly the MOLAP scaling wall the paper cites"
        )

    arrays: dict[View, np.ndarray] = {}
    counts: dict[View, np.ndarray] = {}
    top = tuple(range(d))
    cells = tuple(relation.dims[:, i] for i in range(d))
    base = np.zeros(tuple(cards), dtype=np.float64)
    np.add.at(base, cells, relation.measure)
    # Occupancy counts roll up in lockstep with the values: a cell is
    # occupied iff at least one input row landed in it, however its
    # measures sum.
    base_counts = np.zeros(tuple(cards), dtype=np.int64)
    np.add.at(base_counts, cells, 1)
    if top in views:
        arrays[top] = base
        counts[top] = base_counts

    for view in views:
        if view == top:
            continue
        # cheapest materialised (or base) superset, fewest cells
        candidates = [
            u for u in arrays if set(view) < set(u)
        ] or [top]
        parent = min(
            candidates,
            key=lambda u: int(np.prod([cards[i] for i in u])) if u else 1,
        )
        source = arrays.get(parent, base)
        source_counts = counts.get(parent, base_counts)
        axes = tuple(
            pos for pos, dim in enumerate(parent) if dim not in view
        )
        if axes:
            arrays[view] = source.sum(axis=axes)
            counts[view] = source_counts.sum(axis=axes)
        else:
            arrays[view] = source.copy()
            counts[view] = source_counts.copy()
    if top in views and top not in arrays:
        arrays[top] = base
        counts[top] = base_counts
    return MolapCube(arrays, cards, counts)


def space_comparison(
    rolap_rows: Mapping[View, int],
    cardinalities: Sequence[int],
    bytes_per_rolap_row: int = 16,
    bytes_per_cell: int = 8,
) -> list[tuple[View, int, int]]:
    """Per-view ``(view, rolap_bytes, molap_bytes)`` — the linear-space
    argument quantified without materialising anything."""
    cards = [int(c) for c in cardinalities]
    out = []
    for view, rows in rolap_rows.items():
        view = canonical_view(view)
        cells = 1
        for dim in view:
            cells *= cards[dim]
        out.append((view, rows * bytes_per_rolap_row, cells * bytes_per_cell))
    out.sort(key=lambda t: (len(t[0]), t[0]))
    return out
