#!/usr/bin/env python
"""Capacity planning: how many nodes, and how tight a balance threshold?

Uses the simulator's cost model to answer the two operational questions
the paper's evaluation raises: where does adding nodes stop paying
(Figure 5), and what does tightening the balance threshold γ cost
(Figure 11)?  Point the generator at your own data profile by editing the
dataset spec.

Run with::

    python examples/cluster_capacity_planning.py
"""

from repro import CubeConfig, MachineSpec, build_data_cube, generate_dataset
from repro.baselines.sequential import sequential_cube
from repro.data.generator import DatasetSpec


def main() -> None:
    # Your warehouse's profile: row volume, cardinalities, skew.
    profile = DatasetSpec(
        n=30_000,
        cardinalities=(128, 64, 32, 16, 8, 4),
        alphas=(1.0, 0.5, 0.0, 0.0, 0.5, 0.0),
        seed=7,
    )
    data = generate_dataset(profile)
    seq = sequential_cube(data, profile.cardinalities)
    print(
        f"profile: n={profile.n:,}, d={profile.d}, sequential build "
        f"{seq.metrics.simulated_seconds:.1f}s (simulated)"
    )

    # Sweep the cluster size: keep growing while each step still buys a
    # >= 20% time reduction.
    print("\ncluster-size sweep:")
    print("  p   time[s]  speedup  efficiency  comm[MB]")
    best_p, prev = 1, None
    for p in (1, 2, 4, 8, 12, 16, 24, 32):
        cube = build_data_cube(data, profile.cardinalities, MachineSpec(p=p))
        t = cube.metrics.simulated_seconds
        speedup = seq.metrics.simulated_seconds / t
        eff = speedup / p
        print(
            f"  {p:2d}  {t:7.1f}  {speedup:7.2f}  {eff:10.1%}"
            f"  {cube.metrics.comm_bytes / 1e6:8.1f}"
        )
        if prev is None or t <= prev * 0.8:
            best_p = p
        prev = t
    print(f"  -> diminishing returns past p={best_p}")

    # Sweep the balance threshold at the chosen size.
    print("\nbalance-threshold sweep (gamma, at p=%d):" % best_p)
    print("  gamma  time[s]  case2  case3  worst view imbalance")
    for gamma in (0.01, 0.03, 0.05, 0.10, 0.25):
        cube = build_data_cube(
            data,
            profile.cardinalities,
            MachineSpec(p=best_p),
            CubeConfig(gamma_merge=gamma),
        )
        case2 = sum(r.count("case2") for r in cube.merge_reports)
        case3 = sum(r.count("case3") for r in cube.merge_reports)
        # balance matters where the I/O is: check the ten largest views
        big = sorted(cube.views, key=cube.view_rows, reverse=True)[:10]
        worst = max(
            cube.distribution(v).max()
            / max(cube.distribution(v).mean(), 1e-9)
            for v in big
        )
        print(
            f"  {gamma:5.0%}  {cube.metrics.simulated_seconds:7.1f}"
            f"  {case2:5d}  {case3:5d}  {worst - 1:18.1%} over even"
        )
    print(
        "\nreading: gamma bounds the pre-merge row imbalance of each "
        "view; smaller gamma re-sorts more views (case 3) and tightens "
        "the distribution of the large views at a small time premium.  "
        "The paper recommends 3% as the sweet spot."
    )


if __name__ == "__main__":
    main()
