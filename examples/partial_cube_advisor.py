#!/usr/bin/env python
"""Partial cubes: materialise only the views a query workload needs.

Section 3 of the paper: with d = 20 you would never build 2^20 views.
This example takes a clickstream workload, derives the selected view set
(queried views plus their roll-up closure), builds the partial cube, and
compares its cost against the full cube and against the naive
one-sort-per-view strategy the paper recommends for tiny selections.

Run with::

    python examples/partial_cube_advisor.py
"""

from repro import MachineSpec, build_data_cube, build_partial_cube
from repro.baselines.naive import naive_sequential_cube
from repro.baselines.sequential import sequential_cube
from repro.core.estimate import estimate_view_sizes
from repro.core.views import all_views, view_name
from repro.data.datasets import weblog_hits
from repro.olap.advisor import select_views


def workload_views(dataset):
    """The dashboards this warehouse actually serves."""
    queries = [
        ("traffic by country",            ("country",)),
        ("errors by url",                 ("url", "status")),
        ("hourly traffic",                ("hour",)),
        ("hourly errors",                 ("hour", "status")),
        ("referrer quality",              ("referrer", "status")),
        ("agent share by country",        ("user_agent", "country")),
        ("url popularity",                ("url",)),
        ("grand total",                   ()),
    ]
    return [(label, dataset.view_of(*dims)) for label, dims in queries]


def main() -> None:
    dataset = weblog_hits(n=40_000)
    data = dataset.generate()
    d = data.width
    queries = workload_views(dataset)
    print(
        f"{dataset.name}: {data.nrows:,} hits, {d} dimensions "
        f"(2^{d} = {2**d} possible views)"
    )

    # let the HRU greedy advisor pick what to materialise for the workload
    sizes = estimate_view_sizes(
        data.dims, dataset.cardinalities, all_views(d), method="sample"
    )
    advice = select_views(
        [view for _, view in queries], sizes, max_views=10
    )
    print(advice.describe())
    # materialise the advisor's picks plus the queried views themselves
    selected = sorted(
        set(advice.selected) | {view for _, view in queries},
        key=lambda v: (len(v), v),
    )
    print(f"materialising {len(selected)} views: "
          + ", ".join(view_name(v) for v in selected))

    machine = MachineSpec(p=8)

    partial = build_partial_cube(data, dataset.cardinalities, selected, machine)
    full = build_data_cube(data, dataset.cardinalities, machine)
    naive = naive_sequential_cube(data, dataset.cardinalities, selected=selected)
    seq_partial = sequential_cube(data, dataset.cardinalities, selected=selected)

    print("\nstrategy comparison (simulated seconds):")
    rows = [
        ("partial cube, 8 nodes (this paper)", partial.metrics),
        ("full cube, 8 nodes", full.metrics),
        ("partial cube, sequential", seq_partial.metrics),
        ("naive per-view sorts, sequential", naive.metrics),
    ]
    for label, metrics in rows:
        print(
            f"  {label:36s} {metrics.simulated_seconds:8.1f}s   "
            f"{metrics.output_rows:10,} rows materialised"
        )

    saved = 1 - partial.metrics.simulated_seconds / full.metrics.simulated_seconds
    print(
        f"\nthe partial build is {saved:.0%} cheaper than the full cube "
        f"while serving the entire workload:"
    )
    for label, view in queries:
        rel = partial.view_relation(view)
        print(f"  {label:28s} <- view {view_name(view):6s} ({rel.nrows:,} rows)")

    # intermediate views: scheduled but not returned
    tree_views = {
        v for tree in partial.schedule_trees for v in tree.views()
    }
    intermediates = tree_views - set(partial.views)
    print(
        f"\nschedule trees computed {len(intermediates)} intermediate "
        f"view(s) on the way: "
        + (", ".join(sorted(view_name(v) for v in intermediates)) or "none")
    )


if __name__ == "__main__":
    main()
