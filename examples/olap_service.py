#!/usr/bin/env python
"""A warehouse lifecycle: build once, persist, reopen, serve queries.

Covers the full downstream loop the paper's system would live in:

1. nightly build — construct the cube in parallel,
2. persist — write the distributed cube to disk (`CubeStore`),
3. serve — reopen the store and answer a query workload, with per-query
   plans (which view, how many rows scanned) and simulated parallel
   latency from the cluster cost model.

Run with::

    python examples/olap_service.py
"""

import tempfile

from repro import MachineSpec, build_data_cube
from repro.core.overlap import analyze_overlap
from repro.core.views import view_name
from repro.data.datasets import retail_sales
from repro.olap import CubeStore, Query, QueryEngine


def main() -> None:
    dataset = retail_sales(n=30_000)
    data = dataset.generate()

    # --- 1. nightly build -------------------------------------------------
    cube = build_data_cube(data, dataset.cardinalities, MachineSpec(p=8))
    print(
        f"built {cube.view_count} views ({cube.total_rows():,} rows) in "
        f"{cube.metrics.simulated_seconds:.1f} simulated seconds"
    )
    print(analyze_overlap(cube).describe())

    with tempfile.TemporaryDirectory() as tmp:
        # --- 2. persist ----------------------------------------------------
        path = CubeStore.save(cube, f"{tmp}/retail_cube")
        print(f"persisted to {path}")

        # --- 3. serve ------------------------------------------------------
        warehouse = CubeStore.load(path)
        engine = QueryEngine(warehouse)
        workload = [
            Query(group_by=dataset.view_of("region")),
            Query(
                group_by=dataset.view_of("store", "channel"),
                filters={dataset.dim_index("region"): (0, 3)},
            ),
            Query(
                group_by=dataset.view_of("product"),
                filters={dataset.dim_index("promotion"): 0},
            ),
            Query(group_by=dataset.view_of("day_of_month", "channel")),
            Query(group_by=()),
        ]
        print("\nserving the workload:")
        total_latency = 0.0
        for query in workload:
            plan = engine.explain(query)
            result, latency = engine.answer_parallel(query)
            total_latency += latency
            print(
                f"  {query.describe():55s} -> view "
                f"{view_name(plan.view):6s} scan {plan.scan_rows:7,} rows, "
                f"{result.nrows:5,} groups, {latency * 1e3:6.2f} ms"
            )
        print(f"workload latency: {total_latency * 1e3:.2f} ms (simulated)")

        # The planner always picks the smallest covering view; show the
        # price of NOT having the cube: answer one query from the base view.
        q = workload[0]
        base = Query(group_by=q.group_by)
        full_view = tuple(range(data.width))
        scan_cube = engine.explain(base).scan_rows
        scan_raw = warehouse.view_rows(full_view)
        print(
            f"\nview selection saves {scan_raw / max(scan_cube, 1):,.0f}x "
            f"on '{base.describe()}' ({scan_cube:,} vs {scan_raw:,} rows)"
        )


if __name__ == "__main__":
    main()
