#!/usr/bin/env python
"""Retail OLAP: pre-compute a cube, then answer analyst queries from it.

The workload the paper's introduction motivates: a sales fact table too
slow to aggregate per query, so the data cube is pre-computed once in
parallel and OLAP queries become view lookups.

Run with::

    python examples/retail_olap.py
"""

import time

import numpy as np

from repro import MachineSpec, build_data_cube
from repro.baselines.sequential import sequential_cube
from repro.data.datasets import retail_sales
from repro.storage.codec import KeyCodec


def olap_query(cube, dataset, *dims: str, top: int = 3):
    """GROUP BY <dims> ORDER BY revenue DESC LIMIT <top> — answered
    entirely from the pre-computed view."""
    view = dataset.view_of(*dims)
    rel = cube.view_relation(view)
    order = np.argsort(-rel.measure)[:top]
    names = [dataset.dimension_names[i] for i in view]
    print(f"  top {top} by revenue, grouped by {', '.join(names)}:")
    for row_idx in order:
        keys = ", ".join(
            f"{name}={rel.dims[row_idx, col]}"
            for col, name in enumerate(names)
        )
        print(f"    {keys:40s} revenue={rel.measure[row_idx]:12,.2f}")
    return rel


def main() -> None:
    dataset = retail_sales(n=40_000)
    data = dataset.generate()
    print(
        f"{dataset.name}: {data.nrows:,} transactions, "
        f"dimensions {dataset.dimension_names}"
    )

    # Pre-compute the full cube on a 16-node virtual cluster, and compare
    # against the sequential build the warehouse would otherwise run.
    t0 = time.perf_counter()
    cube = build_data_cube(data, dataset.cardinalities, MachineSpec(p=16))
    host = time.perf_counter() - t0
    seq = sequential_cube(data, dataset.cardinalities)
    print(
        f"cube: {cube.view_count} views, {cube.total_rows():,} rows; "
        f"simulated {cube.metrics.simulated_seconds:.1f}s parallel vs "
        f"{seq.metrics.simulated_seconds:.1f}s sequential "
        f"(speedup {seq.metrics.simulated_seconds / cube.metrics.simulated_seconds:.1f}x; "
        f"host {host:.1f}s)"
    )

    # Analyst session: every query is a view lookup, no raw-data scans.
    print("\nanalyst queries (served from materialised views):")
    olap_query(cube, dataset, "region", "channel")
    olap_query(cube, dataset, "store")
    olap_query(cube, dataset, "product", "promotion")

    # Drill-down consistency: revenue by region must roll up to the total.
    region_view = cube.view_relation(dataset.view_of("region"))
    total_view = cube.view_relation(())
    assert abs(region_view.measure.sum() - total_view.measure[0]) < 1e-6 * total_view.measure[0]
    print("\nroll-up consistency verified: sum over regions == grand total")

    # Point query: revenue of one (region, channel) cell via packed keys.
    view = dataset.view_of("region", "channel")
    rel = cube.view_relation(view)
    codec = KeyCodec([dataset.cardinalities[i] for i in view])
    keys = codec.pack(rel.dims)
    wanted = codec.pack(np.array([[2, 1]]))[0]  # region 2, channel 1
    hits = np.flatnonzero(keys == wanted)
    if hits.size:
        print(f"point query region=2,channel=1 -> {rel.measure[hits[0]]:,.2f}")


if __name__ == "__main__":
    main()
