#!/usr/bin/env python
"""Quickstart: build a full data cube on the simulated cluster.

Generates a small synthetic data set with the paper's parameters, builds
all 2^d views in parallel on 8 virtual processors, checks one view against
the raw data, and prints the run's metering.

Run with::

    python examples/quickstart.py
"""

from repro import MachineSpec, build_data_cube, generate_dataset, paper_preset
from repro.core.views import view_name


def main() -> None:
    # 1. A raw data set R: n rows, d=8 dimensions, the paper's cardinality
    #    vector (256, 128, 64, 32, 16, 8, 6, 6), no skew.
    spec = paper_preset(n=20_000, seed=42)
    data = generate_dataset(spec)
    print(
        f"raw data: {data.nrows:,} rows x {data.width} dimensions "
        f"(cardinalities {spec.cardinalities})"
    )

    # 2. Build the full cube on a simulated 8-node shared-nothing cluster.
    machine = MachineSpec(p=8)
    cube = build_data_cube(data, spec.cardinalities, machine)
    print(cube.describe())

    # 3. The cube holds every group-by.  Inspect a few views.
    for view in [(), (0,), (0, 1), (5, 6, 7)]:
        rel = cube.view_relation(view)
        print(
            f"  view {view_name(view):8s}: {rel.nrows:6,} rows, "
            f"measure total {rel.measure.sum():14,.2f}"
        )

    # 4. Sanity: the ALL view equals the raw measure total, and every view
    #    aggregates the same grand total.
    grand = data.measure.sum()
    all_view = cube.view_relation(())
    assert abs(all_view.measure[0] - grand) < 1e-6 * max(grand, 1)
    print(f"grand total checks out: {grand:,.2f}")

    # 5. Each view is spread evenly across the virtual disks, ready for
    #    parallel OLAP scans (the paper's output contract).
    top = tuple(range(data.width))
    print(f"per-rank distribution of {view_name(top)}: "
          f"{cube.distribution(top).tolist()}")

    # 6. Where did the time go?
    print("phase breakdown (simulated seconds):")
    for phase, secs in sorted(cube.metrics.phase_seconds.items()):
        if secs > 0.005:
            print(f"  {phase:20s} {secs:8.2f}")


if __name__ == "__main__":
    main()
