"""Legacy setup shim.

The execution environment is offline with setuptools 65 and no ``wheel``
package, so PEP 660 editable installs (which build an editable wheel) are
unavailable.  This shim lets ``pip install -e . --no-build-isolation``
fall back to the classic ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``; keep the two in sync.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Parallel ROLAP data cube construction on (simulated) shared-nothing "
        "multiprocessors — reproduction of Chen, Dehne, Eavis, Rau-Chaplin, "
        "IPDPS 2003"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
