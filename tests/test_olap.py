"""Tests for the OLAP query layer: Query, QueryPlanner, QueryEngine."""

import numpy as np
import pytest

from repro.baselines.reference import reference_view
from repro.config import CubeConfig, MachineSpec
from repro.core.cube import build_data_cube, build_partial_cube
from repro.olap import Query, QueryEngine, QueryPlanner
from repro.storage.table import Relation
from tests.conftest import make_relation

CARDS = (12, 8, 5, 3)


@pytest.fixture(scope="module")
def dataset():
    return make_relation(5000, CARDS, seed=3)


@pytest.fixture(scope="module")
def cube(dataset):
    return build_data_cube(dataset, CARDS, MachineSpec(p=4))


@pytest.fixture(scope="module")
def engine(cube):
    return QueryEngine(cube)


def oracle(dataset, group_by, filters=None, agg="sum"):
    """Answer a query straight from the raw data."""
    mask = np.ones(dataset.nrows, dtype=bool)
    for dim, (lo, hi) in (filters or {}).items():
        mask &= (dataset.dims[:, dim] >= lo) & (dataset.dims[:, dim] <= hi)
    filtered = Relation(dataset.dims[mask], dataset.measure[mask])
    return reference_view(filtered, CARDS, group_by, agg)


class TestQuery:
    def test_normalises_group_by(self):
        q = Query(group_by=(2, 0, 2))
        assert q.group_by == (0, 2)

    def test_scalar_filter_becomes_range(self):
        q = Query(group_by=(0,), filters={1: 3})
        assert q.filters[1] == (3, 3)

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            Query(group_by=(0,), filters={1: (5, 2)})

    def test_required_dims_includes_filters(self):
        q = Query(group_by=(0,), filters={2: (1, 2)})
        assert q.required_dims == (0, 2)

    def test_describe(self):
        q = Query(group_by=(0, 1), filters={2: (1, 2)})
        text = q.describe()
        assert "GROUP BY AB" in text and "D2 in [1,2]" in text


class TestPlanner:
    def test_picks_smallest_covering_view(self):
        planner = QueryPlanner({(0,): 10, (0, 1): 50, (0, 1, 2): 200})
        plan = planner.plan(Query(group_by=(0,)))
        assert plan.view == (0,)
        assert plan.scan_rows == 10

    def test_filter_dims_force_bigger_view(self):
        planner = QueryPlanner({(0,): 10, (0, 1): 50})
        plan = planner.plan(Query(group_by=(0,), filters={1: (0, 3)}))
        assert plan.view == (0, 1)

    def test_raises_when_uncovered(self):
        planner = QueryPlanner({(0,): 10})
        with pytest.raises(LookupError):
            planner.plan(Query(group_by=(1,)))

    def test_tie_breaks_deterministically(self):
        planner = QueryPlanner({(0, 1): 50, (0, 2): 50})
        assert planner.plan(Query(group_by=(0,))).view == (0, 1)


class TestEngine:
    def test_plain_group_by(self, dataset, engine):
        for group_by in [(), (0,), (1, 3), (0, 1, 2, 3)]:
            got = engine.answer(Query(group_by=group_by))
            assert got.same_content(oracle(dataset, group_by)), group_by

    def test_filtered_group_by(self, dataset, engine):
        q = Query(group_by=(1,), filters={0: (2, 7), 3: (0, 1)})
        got = engine.answer(q)
        assert got.same_content(
            oracle(dataset, (1,), {0: (2, 7), 3: (0, 1)})
        )

    def test_highly_selective_filter(self, dataset, engine):
        filters = {0: (11, 11), 2: (4, 4), 3: (2, 2)}
        q = Query(group_by=(1,), filters=filters)
        got = engine.answer(q)
        assert got.same_content(oracle(dataset, (1,), filters))

    def test_having_iceberg(self, dataset, engine):
        full = engine.answer(Query(group_by=(0,)))
        threshold = float(np.median(full.measure))
        got = engine.answer(Query(group_by=(0,), having=(">=", threshold)))
        assert got.nrows == int((full.measure >= threshold).sum())
        assert np.all(got.measure >= threshold)

    def test_having_parallel_matches(self, engine):
        q = Query(group_by=(1,), having=(">", 5000.0))
        gathered = engine.answer(q)
        parallel, _ = engine.answer_parallel(q)
        assert parallel.same_content(gathered)

    def test_having_ops(self, engine):
        full = engine.answer(Query(group_by=(2,)))
        t = float(full.measure.mean())
        below = engine.answer(Query(group_by=(2,), having=("<", t)))
        above = engine.answer(Query(group_by=(2,), having=(">=", t)))
        assert below.nrows + above.nrows == full.nrows

    def test_having_bad_op(self):
        with pytest.raises(ValueError, match="having op"):
            Query(group_by=(0,), having=("==", 1.0))

    def test_having_in_describe(self):
        q = Query(group_by=(0,), having=(">=", 10.0))
        assert "HAVING" in q.describe()

    def test_empty_cube_query(self):
        from repro.storage.table import Relation

        empty = build_data_cube(
            Relation.empty(len(CARDS)), CARDS, MachineSpec(p=2)
        )
        got = QueryEngine(empty).answer(Query(group_by=(0,)))
        assert got.nrows == 0

    def test_explain_view_covers_query(self, engine):
        q = Query(group_by=(1,), filters={2: (0, 1)})
        plan = engine.explain(q)
        assert set(q.required_dims) <= set(plan.view)

    def test_parallel_matches_gathered(self, dataset, engine):
        for q in [
            Query(group_by=(0,)),
            Query(group_by=(1, 2), filters={0: (0, 5)}),
            Query(group_by=()),
        ]:
            gathered = engine.answer(q)
            parallel, secs = engine.answer_parallel(q)
            assert parallel.same_content(gathered), q
            assert secs > 0

    def test_parallel_wrong_p_rejected(self, engine):
        with pytest.raises(ValueError, match="p="):
            engine.answer_parallel(Query(group_by=(0,)), MachineSpec(p=3))

    def test_count_cube_queries(self, dataset):
        cube = build_data_cube(
            dataset, CARDS, MachineSpec(p=3), CubeConfig(agg="count")
        )
        engine = QueryEngine(cube)
        got = engine.answer(Query(group_by=(2,)))
        want = oracle(dataset, (2,), agg="count")
        assert got.same_content(want)

    def test_min_cube_queries(self, dataset):
        cube = build_data_cube(
            dataset, CARDS, MachineSpec(p=3), CubeConfig(agg="min")
        )
        engine = QueryEngine(cube)
        got = engine.answer(Query(group_by=(0, 3)))
        assert got.same_content(oracle(dataset, (0, 3), agg="min"))

    def test_partial_cube_coverage_errors(self, dataset):
        cube = build_partial_cube(
            dataset, CARDS, [(0,), (0, 1)], MachineSpec(p=2)
        )
        engine = QueryEngine(cube)
        assert engine.answer(Query(group_by=(0,))).nrows > 0
        with pytest.raises(LookupError):
            engine.answer(Query(group_by=(2,)))

    def test_balance_bounds_parallel_latency(self, dataset):
        """The gamma contract pays off at query time: a balanced cube
        answers a big-view scan faster than a deliberately loose one."""
        skewed = make_relation(6000, CARDS, seed=9, alphas=(2.5, 0, 0, 0))
        tight = build_data_cube(
            skewed, CARDS, MachineSpec(p=4), CubeConfig(gamma_merge=0.03)
        )
        q = Query(group_by=(1, 2, 3))
        _, t_tight = QueryEngine(tight).answer_parallel(q)
        # worst case comparison: all rows of the view on one rank
        view = QueryEngine(tight).explain(q).view
        rows = tight.view_rows(view)
        spec = MachineSpec(p=4)
        per_rank = tight.distribution(view)
        assert per_rank.max() < rows  # actually distributed
