"""Tests for the pluggable execution backends (thread vs process).

The process backend must be *observationally identical* to the thread
backend: same rank results, same simulated clock, same byte metering,
same disk accounting — only ``host_seconds`` may differ.  These tests
pin that equivalence down on end-to-end cube builds and on the raw
collectives, plus the shared-memory payload codec underneath.

All equivalence runs use ``compute_scale=0.0`` so the clock carries no
measured host CPU and the comparison can demand exact equality.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.config import CubeConfig, MachineSpec
from repro.core.cube import build_data_cube
from repro.mpi import shm
from repro.mpi.backends import ProcessBackend, ThreadBackend, get_backend
from repro.mpi.engine import run_spmd
from repro.mpi.errors import CollectiveMisuse, MPIError

from .conftest import make_relation

requires_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process backend needs the fork start method",
)


def det_spec(p, backend, **kw):
    """Deterministic machine: no measured-CPU term in the clock."""
    return MachineSpec(p=p, backend=backend, compute_scale=0.0, **kw)


class TestBackendRegistry:
    def test_get_backend(self):
        assert isinstance(get_backend("thread"), ThreadBackend)
        assert isinstance(get_backend("process"), ProcessBackend)

    def test_unknown_backend(self):
        with pytest.raises(MPIError, match="unknown execution backend"):
            get_backend("ray")


@requires_fork
class TestProcessCollectives:
    """The raw collectives under the process backend (cf. test_mpi.py)."""

    def test_allgather_large_arrays(self):
        # Arrays above SHM_MIN_BYTES travel through shared memory.
        n = shm.SHM_MIN_BYTES // 8 + 10

        def prog(c):
            got = c.allgather(np.full(n, c.rank, dtype=np.int64))
            return [int(g[0]) for g in got]

        res = run_spmd(prog, det_spec(3, "process"))
        assert res.rank_results == [[0, 1, 2]] * 3

    def test_bcast_gather_roundtrip(self):
        def prog(c):
            seed = c.bcast({"base": 7} if c.rank == 1 else None, root=1)
            return c.gather(seed["base"] * c.rank, root=0)

        res = run_spmd(prog, det_spec(4, "process"))
        assert res.rank_results[0] == [0, 7, 14, 21]
        assert res.rank_results[1:] == [None, None, None]

    def test_scatter(self):
        def prog(c):
            lanes = (
                [np.full(1000, k, dtype=np.float64) for k in range(c.size)]
                if c.rank == 2
                else None
            )
            return float(c.scatter(lanes, root=2)[0])

        res = run_spmd(prog, det_spec(4, "process"))
        assert res.rank_results == [0.0, 1.0, 2.0, 3.0]

    def test_alltoall(self):
        def prog(c):
            lanes = [
                np.full(600, c.rank * 10 + k, dtype=np.int64)
                for k in range(c.size)
            ]
            return [int(g[0]) for g in c.alltoall(lanes)]

        res = run_spmd(prog, det_spec(3, "process"))
        for k, got in enumerate(res.rank_results):
            assert got == [j * 10 + k for j in range(3)]

    def test_sendrecv_left_and_barrier(self):
        def prog(c):
            c.barrier()
            return c.sendrecv_left(("tok", c.rank))

        res = run_spmd(prog, det_spec(4, "process"))
        assert res.rank_results == [("tok", 1), ("tok", 2), ("tok", 3), None]

    def test_allreduce(self):
        def prog(c):
            return (c.allreduce(c.rank, "sum"), c.allreduce(c.rank, "max"))

        res = run_spmd(prog, det_spec(4, "process"))
        assert res.rank_results == [(6.0, 3.0)] * 4

    def test_rank_failure_propagates_original(self):
        def prog(c):
            if c.rank == 1:
                raise KeyError("worker blew up")
            c.barrier()
            c.allgather(c.rank)

        with pytest.raises(KeyError, match="worker blew up"):
            run_spmd(prog, det_spec(3, "process"))

    def test_mismatched_collectives_rejected(self):
        def prog(c):
            if c.rank == 0:
                c.bcast(1, root=0)
            else:
                c.gather(1, root=0)

        with pytest.raises(CollectiveMisuse, match="disagree"):
            run_spmd(prog, det_spec(2, "process"))

    def test_early_exit_vs_collective_rejected(self):
        def prog(c):
            if c.rank == 0:
                return "done"
            c.barrier()

        with pytest.raises(CollectiveMisuse):
            run_spmd(prog, det_spec(2, "process"))


class TestAllreduceMetering:
    """Satellite: allreduce must meter like a reduction, not an object
    allgather — one 8-byte float lane per off-diagonal pair."""

    @pytest.mark.parametrize(
        "backend",
        ["thread", pytest.param("process", marks=requires_fork)],
    )
    def test_comm_bytes(self, backend):
        p = 4
        res = run_spmd(
            lambda c: c.allreduce(c.rank * 1.5, "sum"),
            det_spec(p, backend),
        )
        assert res.stats.total_bytes == p * (p - 1) * 8
        assert set(res.stats.bytes_by_kind) == {"allreduce"}

    def test_value_independent(self):
        # Metering must not depend on the Python repr of the floats.
        a = run_spmd(lambda c: c.allreduce(0.0), det_spec(3, "thread"))
        b = run_spmd(
            lambda c: c.allreduce(1.23456789e300), det_spec(3, "thread")
        )
        assert a.stats.total_bytes == b.stats.total_bytes == 3 * 2 * 8


def _cube_fingerprint(cube):
    """Everything observable about a build except host wall-clock."""
    m = cube.metrics
    per_view = {}
    for j, rv in enumerate(cube.rank_views):
        for view, vd in sorted(rv.items()):
            per_view[(j, view)] = (
                vd.order,
                vd.keys.tobytes(),
                vd.measure.tobytes(),
            )
    return {
        "simulated_seconds": m.simulated_seconds,
        "comm_bytes": m.comm_bytes,
        "disk_blocks": m.disk_blocks,
        "output_rows": m.output_rows,
        "view_count": m.view_count,
        "phase_seconds": m.phase_seconds,
        "views": per_view,
    }


CONFIGS = [
    # (n, cards, p, machine kwargs, cube kwargs)
    pytest.param(
        600, (8, 6, 4), 2, {}, {}, id="small-p2"
    ),
    pytest.param(
        1500, (12, 8, 6, 4), 4, {}, {"agg": "max"}, id="d4-p4-max"
    ),
    pytest.param(
        1200,
        (16, 9, 5),
        3,
        {"memory_budget": 1 << 12, "block_size": 1 << 6},
        {},
        id="external-memory-p3",
    ),
]


@requires_fork
class TestBackendEquivalence:
    """Tentpole acceptance: identical RunResult metering across backends."""

    @pytest.mark.parametrize("n,cards,p,mkw,ckw", CONFIGS)
    def test_cube_builds_identical(self, n, cards, p, mkw, ckw):
        data = make_relation(n, cards, seed=n)
        config = CubeConfig(**ckw)
        fingerprints = {}
        for backend in ("thread", "process"):
            cube = build_data_cube(
                data, cards, det_spec(p, backend, **mkw), config
            )
            fingerprints[backend] = _cube_fingerprint(cube)
        assert fingerprints["thread"] == fingerprints["process"]

    def test_backend_override_argument(self):
        data = make_relation(400, (6, 4), seed=9)
        base = det_spec(2, "thread")
        a = build_data_cube(data, (6, 4), base)
        b = build_data_cube(data, (6, 4), base, backend="process")
        assert _cube_fingerprint(a) == _cube_fingerprint(b)

    def test_rank_failure_equivalence(self):
        def prog(c):
            c.set_phase("warmup")
            c.allgather(np.arange(700, dtype=np.int64) + c.rank)
            if c.rank == c.size - 1:
                raise ValueError("injected fault")
            c.barrier()

        errors = {}
        for backend in ("thread", "process"):
            with pytest.raises(ValueError, match="injected fault") as exc:
                run_spmd(prog, det_spec(3, backend))
            errors[backend] = str(exc.value)
        assert errors["thread"] == errors["process"]


class TestShmCodec:
    def test_roundtrip_nested(self):
        big = np.arange(4096, dtype=np.int64)
        obj = {
            "big": big,
            "small": np.arange(3, dtype=np.float64),
            "shell": [("x", 1.5), None, {"y": big[:10].copy()}],
        }
        blob = shm.encode(obj)
        try:
            out = shm.decode(blob)
        finally:
            shm.unlink_segments(blob.segments)
        np.testing.assert_array_equal(out["big"], obj["big"])
        np.testing.assert_array_equal(out["small"], obj["small"])
        assert out["shell"][0] == ("x", 1.5)
        assert out["shell"][1] is None

    def test_large_arrays_spill_small_stay_inline(self):
        big = np.zeros(shm.SHM_MIN_BYTES // 8, dtype=np.float64)
        small = np.zeros(4, dtype=np.float64)
        blob_big = shm.encode(big)
        try:
            assert len(blob_big.segments) == 1
            assert blob_big.nbytes < big.nbytes  # descriptor, not the data
        finally:
            shm.unlink_segments(blob_big.segments)
        blob_small = shm.encode(small)
        assert blob_small.segments == ()
        np.testing.assert_array_equal(shm.decode(blob_small), small)

    def test_shared_array_encoded_once(self):
        arr = np.arange(2048, dtype=np.int64)
        blob = shm.encode([arr, arr, {"again": arr}])
        try:
            assert len(blob.segments) == 1
            out = shm.decode(blob)
        finally:
            shm.unlink_segments(blob.segments)
        np.testing.assert_array_equal(out[0], arr)
        np.testing.assert_array_equal(out[2]["again"], arr)

    def test_non_contiguous_array(self):
        base = np.arange(8192, dtype=np.int64).reshape(64, 128)
        view = base[::2, ::4]
        blob = shm.encode(view)
        try:
            out = shm.decode(blob)
        finally:
            shm.unlink_segments(blob.segments)
        np.testing.assert_array_equal(out, view)

    def test_object_dtype_stays_inline(self):
        arr = np.array([{"a": 1}, None, "s"] * 800, dtype=object)
        blob = shm.encode(arr)
        assert blob.segments == ()
        out = shm.decode(blob)
        assert out[0] == {"a": 1}

    def test_decoded_arrays_are_private_copies(self):
        arr = np.arange(1024, dtype=np.int64)
        blob = shm.encode(arr)
        try:
            out = shm.decode(blob)
        finally:
            shm.unlink_segments(blob.segments)
        out[0] = -1  # segment already unlinked; copy must survive
        assert out[0] == -1 and arr[0] == 0

    def test_unlink_idempotent(self):
        blob = shm.encode(np.zeros(1024, dtype=np.int64))
        shm.unlink_segments(blob.segments)
        shm.unlink_segments(blob.segments)  # second pass: no-op
