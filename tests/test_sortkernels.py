"""Tests for the adaptive sort-kernel engine (repro.storage.sortkernels).

The load-bearing contract: every kernel is stable, so every kernel
produces the **bit-identical** (keys, values) output — and a full cube
built under any forced kernel equals the auto-built cube bit for bit,
with identical simulated metering.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import CubeConfig, MachineSpec
from repro.core.cube import build_data_cube
from repro.core.viewdata import codec_for_order
from repro.storage.codec import KeyCodec
from repro.storage.scan import aggregate_sorted_keys
from repro.storage.sortkernels import (
    ENV_KERNEL,
    KERNEL_NAMES,
    SMALL_N,
    choose_kernel,
    force_kernel,
    get_default_kernel,
    is_sorted_int64,
    resolve_kernel,
    set_default_kernel,
    sort_pairs,
)
from tests.conftest import make_relation

REAL_KERNELS = tuple(k for k in KERNEL_NAMES if k != "auto")


def baseline(keys, values):
    """The reference output every kernel must match bit for bit."""
    order = np.argsort(keys, kind="stable")
    return keys[order], values[order]


def check_kernel(kernel, keys, values, **hints):
    keys = np.asarray(keys, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    want_k, want_v = baseline(keys, values)
    got_k, got_v = sort_pairs(keys, values, kernel, **hints)
    np.testing.assert_array_equal(got_k, want_k)
    np.testing.assert_array_equal(got_v, want_v)
    # Returned arrays are fresh — never aliases of the input.
    assert got_k.base is not keys and got_k is not keys
    return got_k, got_v


# ---------------------------------------------------------------------------
# kernel equivalence on the edge-case menagerie
# ---------------------------------------------------------------------------


EDGE_CASES = {
    "empty": np.empty(0, dtype=np.int64),
    "single": np.array([7], dtype=np.int64),
    "all_equal": np.full(600, 42, dtype=np.int64),
    "already_sorted": np.arange(600, dtype=np.int64) * 3,
    "reverse_sorted": np.arange(600, dtype=np.int64)[::-1].copy(),
    "duplicate_heavy": np.repeat(np.arange(12, dtype=np.int64), 50),
    # Keys at the top of the packable range (~2^62).
    "max_width": (np.int64(2) ** 62 - 1)
    - np.random.default_rng(3).integers(0, 5, 600, dtype=np.int64),
    "random": np.random.default_rng(4).integers(
        0, 1 << 40, 600, dtype=np.int64
    ),
}


@pytest.mark.parametrize("kernel", REAL_KERNELS + ("auto",))
@pytest.mark.parametrize("case", sorted(EDGE_CASES))
def test_kernel_matches_argsort(kernel, case):
    keys = EDGE_CASES[case]
    values = np.arange(keys.shape[0], dtype=np.float64)
    check_kernel(kernel, keys, values)


@pytest.mark.parametrize("kernel", REAL_KERNELS + ("auto",))
def test_kernel_then_aggregate_matches(kernel):
    """Sorted output feeds aggregate_sorted_keys identically per kernel."""
    rng = np.random.default_rng(11)
    keys = rng.integers(0, 50, 2000, dtype=np.int64)
    values = rng.random(2000)
    want = aggregate_sorted_keys(*baseline(keys, values), "sum")
    got = aggregate_sorted_keys(*sort_pairs(keys, values, kernel), "sum")
    np.testing.assert_array_equal(got[0], want[0])
    np.testing.assert_array_equal(got[1], want[1])


@pytest.mark.parametrize("kernel", REAL_KERNELS + ("auto",))
def test_stability_of_pairing(kernel):
    """Equal keys keep their input order — per-kernel, bit-identical."""
    rng = np.random.default_rng(5)
    keys = rng.integers(0, 7, 5000, dtype=np.int64)  # heavy duplication
    values = np.arange(5000, dtype=np.float64)  # input position as payload
    got_k, got_v = check_kernel(kernel, keys, values)
    # Within each equal-key block the payloads must ascend (stability).
    for key in np.unique(got_k):
        block = got_v[got_k == key]
        assert np.all(np.diff(block) > 0)


@given(
    st.lists(st.integers(min_value=0, max_value=1 << 45), max_size=300),
    st.sampled_from(REAL_KERNELS),
)
def test_kernel_equivalence_randomized(key_list, kernel):
    keys = np.asarray(key_list, dtype=np.int64)
    values = np.arange(keys.shape[0], dtype=np.float64)
    check_kernel(kernel, keys, values)


def test_radix_with_key_bound_hint():
    rng = np.random.default_rng(6)
    keys = rng.integers(0, 1000, 3000, dtype=np.int64)
    values = rng.random(3000)
    check_kernel("radix", keys, values, key_bound=1000)


def test_radix_negative_keys_falls_back():
    keys = np.array([3, -1, 2, -5, 0] * 200, dtype=np.int64)
    values = np.arange(1000, dtype=np.float64)
    check_kernel("radix", keys, values)


# ---------------------------------------------------------------------------
# segmented kernel
# ---------------------------------------------------------------------------


def make_segmented_input(nseg=40, seg_rows=60, suffix_cap=1 << 20, seed=7):
    """Keys clustered by a non-decreasing prefix with shuffled suffixes —
    exactly what a shared-prefix remap of sorted data produces."""
    rng = np.random.default_rng(seed)
    prefixes = np.sort(rng.integers(0, 1 << 30, nseg, dtype=np.int64))
    keys = np.concatenate(
        [
            p * suffix_cap
            + rng.integers(0, suffix_cap, seg_rows, dtype=np.int64)
            for p in prefixes
        ]
    )
    return keys, suffix_cap


def test_segmented_sorts_clustered_input():
    keys, w = make_segmented_input()
    values = np.arange(keys.shape[0], dtype=np.float64)
    check_kernel("segmented", keys, values, seg_divisor=w)


def test_segmented_verifies_promise_and_falls_back():
    """A violated clustering promise must not corrupt the output."""
    keys, w = make_segmented_input()
    keys = keys[::-1].copy()  # prefix values now decreasing: promise broken
    values = np.arange(keys.shape[0], dtype=np.float64)
    check_kernel("segmented", keys, values, seg_divisor=w)


def test_segmented_without_divisor_falls_back():
    rng = np.random.default_rng(8)
    keys = rng.integers(0, 1 << 30, 1000, dtype=np.int64)
    values = rng.random(1000)
    check_kernel("segmented", keys, values)  # no seg_divisor


def test_auto_uses_segment_hint_correctly():
    keys, w = make_segmented_input(nseg=200, seg_rows=20)
    values = np.arange(keys.shape[0], dtype=np.float64)
    check_kernel("auto", keys, values, seg_divisor=w, key_bound=1 << 51)


# ---------------------------------------------------------------------------
# presorted detection
# ---------------------------------------------------------------------------


class TestIsSorted:
    def test_trivial(self):
        assert is_sorted_int64(np.empty(0, dtype=np.int64))
        assert is_sorted_int64(np.array([5], dtype=np.int64))

    def test_sorted_with_ties(self):
        assert is_sorted_int64(np.array([1, 1, 2, 2, 3], dtype=np.int64))

    def test_unsorted(self):
        assert not is_sorted_int64(np.array([1, 3, 2], dtype=np.int64))

    def test_inversion_across_chunk_boundary(self):
        n = 5000
        keys = np.arange(n, dtype=np.int64)
        keys[4097] = 0  # violation right past a 4096-window edge
        assert not is_sorted_int64(keys, chunk=1 << 12)
        assert is_sorted_int64(np.arange(n, dtype=np.int64), chunk=1 << 12)

    def test_matches_two_temporary_check(self, rng):
        for _ in range(20):
            keys = rng.integers(0, 4, 50)
            want = bool(np.all(keys[1:] >= keys[:-1]))
            assert is_sorted_int64(keys, chunk=16) == want


def test_presorted_kernel_skips_and_falls_back():
    keys = np.arange(1000, dtype=np.int64)
    values = np.arange(1000, dtype=np.float64)
    check_kernel("presorted", keys, values)
    check_kernel("presorted", keys[::-1].copy(), values)


# ---------------------------------------------------------------------------
# selection plumbing
# ---------------------------------------------------------------------------


class TestResolution:
    def test_priority_env_beats_everything(self, monkeypatch):
        monkeypatch.setenv(ENV_KERNEL, "radix")
        with force_kernel("argsort"):
            assert resolve_kernel("segmented") == "radix"

    def test_forced_default_beats_hint(self, monkeypatch):
        # The CI kernel matrix exports ENV_KERNEL suite-wide; clear it so
        # this test observes the process-default tier, not the env tier.
        monkeypatch.delenv(ENV_KERNEL, raising=False)
        with force_kernel("argsort"):
            assert resolve_kernel("presorted") == "argsort"

    def test_hint_wins_when_default_auto(self, monkeypatch):
        monkeypatch.delenv(ENV_KERNEL, raising=False)
        assert get_default_kernel() == "auto"
        assert resolve_kernel("presorted") == "presorted"
        assert resolve_kernel(None) == "auto"

    def test_bad_names_rejected(self):
        with pytest.raises(ValueError):
            set_default_kernel("quicksort")
        with pytest.raises(ValueError):
            sort_pairs(
                np.zeros(3, dtype=np.int64), np.zeros(3), "quicksort"
            )

    def test_force_kernel_restores(self):
        before = get_default_kernel()
        with force_kernel("radix"):
            assert get_default_kernel() == "radix"
        assert get_default_kernel() == before

    def test_spec_validates_kernel(self):
        with pytest.raises(ValueError):
            MachineSpec(sort_kernel="bogus")
        assert MachineSpec(sort_kernel="radix").sort_kernel == "radix"


class TestChooseKernel:
    def test_tiny_input_is_argsort(self):
        assert choose_kernel(SMALL_N - 1, key_bound=1 << 40) == "argsort"

    def test_no_hints_is_argsort(self):
        assert choose_kernel(1 << 20) == "argsort"

    def test_narrow_bound_prefers_radix(self):
        # One 16-bit pass vs 20 comparison levels: radix must win.
        assert choose_kernel(1 << 20, key_bound=1 << 16) == "radix"

    def test_segment_bound_beats_wide_radix(self):
        got = choose_kernel(
            1 << 20, key_bound=1 << 60, seg_bound=1 << 12
        )
        assert got == "segmented"


def test_sort_pairs_rejects_mismatched_shapes():
    with pytest.raises(ValueError):
        sort_pairs(np.zeros(3, dtype=np.int64), np.zeros(2))


# ---------------------------------------------------------------------------
# KeyCodec.remap
# ---------------------------------------------------------------------------


class TestRemap:
    def reference(self, codec, keys, src_order, dst_order):
        """unpack → select/permute → repack under the destination codec."""
        dims = codec.unpack(keys)
        col_of = {dim: pos for pos, dim in enumerate(src_order)}
        cols = [col_of[d] for d in dst_order]
        dst_codec = KeyCodec([codec.cardinalities[c] for c in cols])
        return dst_codec.pack(dims[:, cols])

    @given(st.integers(0, 2**32 - 1))
    def test_matches_reference_fixed_orders(self, seed):
        rng = np.random.default_rng(seed)
        cards = tuple(int(c) for c in rng.integers(2, 9, 5))
        src = tuple(rng.permutation(5).tolist())
        take = int(rng.integers(0, 6))
        dst = tuple(rng.permutation(5)[:take].tolist())
        codec = KeyCodec([cards[d] for d in src])
        dims = np.stack(
            [
                rng.integers(0, cards[d], 200, dtype=np.int64)
                for d in src
            ],
            axis=1,
        )
        keys = codec.pack(dims)
        got, shared = codec.remap(keys, src, dst)
        want = self.reference(codec, keys, src, dst)
        np.testing.assert_array_equal(got, want)
        k = 0
        while k < min(len(src), len(dst)) and src[k] == dst[k]:
            k += 1
        assert shared == k

    def test_shared_prefix_clustering(self):
        """Sorted source keys stay clustered by the shared prefix."""
        cards = (6, 5, 4, 3)
        src, dst = (0, 1, 2, 3), (0, 1, 3, 2)
        codec = codec_for_order(src, cards)
        rng = np.random.default_rng(9)
        dims = np.stack(
            [rng.integers(0, c, 500, dtype=np.int64) for c in cards],
            axis=1,
        )
        keys = np.sort(codec.pack(dims))
        new_keys, shared = codec.remap(keys, src, dst)
        assert shared == 2
        dst_codec = codec_for_order(dst, cards)
        w = int(dst_codec.weights[shared - 1])
        assert is_sorted_int64(new_keys // w)

    def test_identity_remap(self):
        codec = KeyCodec((4, 3))
        keys = np.array([0, 5, 11], dtype=np.int64)
        got, shared = codec.remap(keys, (0, 1), (0, 1))
        np.testing.assert_array_equal(got, keys)
        assert shared == 2
        assert got is not keys

    def test_projection_to_empty(self):
        codec = KeyCodec((4, 3))
        got, shared = codec.remap(
            np.array([3, 7], dtype=np.int64), (0, 1), ()
        )
        np.testing.assert_array_equal(got, [0, 0])
        assert shared == 0

    def test_rejects_bad_orders(self):
        codec = KeyCodec((4, 3))
        with pytest.raises(ValueError):
            codec.remap(np.zeros(1, dtype=np.int64), (0,), (0,))
        with pytest.raises(ValueError):
            codec.remap(np.zeros(1, dtype=np.int64), (0, 1), (2,))
        with pytest.raises(ValueError):
            codec.remap(np.zeros(1, dtype=np.int64), (0, 0), (0,))


def test_codec_cache_keys_on_selected_cards():
    """Orders selecting the same cardinality sequence share one codec."""
    assert codec_for_order((0,), (4, 5)) is codec_for_order((1,), (5, 4))
    assert codec_for_order((0, 1), (4, 5, 99)) is codec_for_order(
        (0, 1), (4, 5, 7)
    )
    assert codec_for_order((0,), (4, 5)) is not codec_for_order(
        (1,), (4, 5)
    )


# ---------------------------------------------------------------------------
# end-to-end: forced kernels produce the identical cube
# ---------------------------------------------------------------------------


CARDS = (10, 6, 4, 3)


@pytest.fixture(scope="module")
def dataset():
    return make_relation(3000, CARDS, seed=33)


@pytest.fixture(scope="module")
def auto_cube(dataset):
    return build_data_cube(
        dataset, CARDS, MachineSpec(p=4, compute_scale=0.0)
    )


def assert_same_cube(a, b):
    assert a.views == b.views
    for rank_a, rank_b in zip(a.rank_views, b.rank_views):
        for view in rank_a:
            np.testing.assert_array_equal(
                rank_a[view].keys, rank_b[view].keys
            )
            np.testing.assert_array_equal(
                rank_a[view].measure, rank_b[view].measure
            )
    # The simulated cost model must be kernel-independent.
    assert a.metrics.simulated_seconds == b.metrics.simulated_seconds
    assert a.metrics.disk_blocks == b.metrics.disk_blocks
    assert a.metrics.comm_bytes == b.metrics.comm_bytes


@pytest.mark.parametrize("kernel", REAL_KERNELS)
def test_forced_kernel_cube_bit_identical(dataset, auto_cube, kernel):
    cube = build_data_cube(
        dataset,
        CARDS,
        MachineSpec(p=4, compute_scale=0.0, sort_kernel=kernel),
    )
    assert_same_cube(cube, auto_cube)


def test_forced_kernel_external_memory_cube(dataset, auto_cube):
    """Tight memory forces spill paths; kernels still agree bit for bit."""
    tight = dict(p=4, compute_scale=0.0, memory_budget=1 << 9,
                 block_size=1 << 6)
    base = build_data_cube(dataset, CARDS, MachineSpec(**tight))
    for kernel in ("radix", "segmented"):
        cube = build_data_cube(
            dataset, CARDS, MachineSpec(sort_kernel=kernel, **tight)
        )
        assert_same_cube(cube, base)


def test_prefix_discount_flag_builds_valid_cube(dataset):
    """Paper-faithful cost model (discount off) must agree on content."""
    on = build_data_cube(
        dataset, CARDS,
        MachineSpec(p=2, compute_scale=0.0),
        CubeConfig(sort_prefix_discount=True),
    )
    off = build_data_cube(
        dataset, CARDS,
        MachineSpec(p=2, compute_scale=0.0),
        CubeConfig(sort_prefix_discount=False),
    )
    assert on.views == off.views
    for view in on.views:
        assert on.view_relation(view).same_content(off.view_relation(view))


def test_count_equals_sum_of_ones_bitwise(dataset):
    """COUNT must ride the exact float64-ones path SUM would see."""
    ones = dataset.__class__(
        dataset.dims, np.ones(dataset.nrows, dtype=np.float64)
    )
    spec = MachineSpec(p=4, compute_scale=0.0)
    count_cube = build_data_cube(
        dataset, CARDS, spec, CubeConfig(agg="count")
    )
    sum_cube = build_data_cube(ones, CARDS, spec, CubeConfig(agg="sum"))
    assert_same_cube(count_cube, sum_cube)
