"""Tests for view identifiers, the lattice, and Di-partitions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.lattice import Lattice
from repro.core.partitions import (
    partition_all,
    partition_index,
    partition_root,
    partition_views,
)
from repro.core.views import (
    all_views,
    canonical_view,
    is_prefix,
    is_subset,
    parse_view_name,
    view_name,
)


class TestViews:
    def test_canonical_sorts_and_dedups(self):
        assert canonical_view([3, 1, 3, 0]) == (0, 1, 3)

    def test_canonical_rejects_negative(self):
        with pytest.raises(ValueError):
            canonical_view([-1])

    def test_all_views_count(self):
        for d in range(6):
            assert len(all_views(d)) == 2**d

    def test_all_views_rejects_negative(self):
        with pytest.raises(ValueError):
            all_views(-1)

    def test_subset(self):
        assert is_subset((0, 2), (0, 1, 2))
        assert not is_subset((0, 3), (0, 1, 2))
        assert is_subset((), (0,))

    def test_prefix_on_orders(self):
        assert is_prefix((0, 2), (0, 2, 1))
        assert not is_prefix((2, 0), (0, 2, 1))
        assert is_prefix((), (5, 1))

    def test_names(self):
        assert view_name((0, 2, 3)) == "ACD"
        assert view_name(()) == "ALL"
        assert parse_view_name("ACD") == (0, 2, 3)
        assert parse_view_name("ALL") == ()

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_view_name("A1")

    def test_name_roundtrip(self):
        for view in all_views(5):
            assert parse_view_name(view_name(view)) == view


class TestLattice:
    def test_full_lattice_shape(self):
        lat = Lattice.full(4)
        assert len(lat) == 16
        assert lat.top_level == 4
        assert [len(lat.level(k)) for k in range(5)] == [1, 4, 6, 4, 1]

    def test_edge_count_full(self):
        # sum over views of |view| = d * 2^(d-1)
        assert Lattice.full(4).edge_count() == 4 * 8

    def test_children_parents_inverse(self):
        lat = Lattice.full(4)
        for view in lat.views:
            for child in lat.children_of(view):
                assert view in lat.parents_of(child)

    def test_children_drop_one_dim(self):
        lat = Lattice.full(3)
        assert sorted(lat.children_of((0, 1, 2))) == [(0, 1), (0, 2), (1, 2)]
        assert lat.children_of(()) == []

    def test_parents_of_all(self):
        lat = Lattice.full(3)
        assert sorted(lat.parents_of(())) == [(0,), (1,), (2,)]

    def test_ancestors_descendants(self):
        lat = Lattice.full(3)
        assert set(lat.ancestors_of((0,))) == {
            (0, 1), (0, 2), (0, 1, 2)
        }
        assert set(lat.descendants_of((0, 1))) == {(), (0,), (1,)}

    def test_restricted_lattice(self):
        lat = Lattice(3, views=[(0, 1, 2), (0, 1), (0,)])
        assert len(lat) == 3
        assert lat.children_of((0, 1, 2)) == [(0, 1)]
        assert lat.parents_of((0,)) == [(0, 1)]

    def test_restricted_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Lattice(2, views=[(0, 5)])

    def test_below(self):
        lat = Lattice.below((0, 2), 3)
        assert set(lat.views) == {(), (0,), (2,), (0, 2)}

    def test_membership(self):
        lat = Lattice.full(3)
        assert (0, 1) in lat
        assert (0, 1, 2, 3) not in lat

    def test_rejects_negative_d(self):
        with pytest.raises(ValueError):
            Lattice(-1)


class TestPartitions:
    def test_paper_figure3_exact(self):
        """Figure 3: partitions of the d=4 cube."""
        d = 4
        parts = partition_all(d)
        assert [p[0] for p in parts] == [0, 1, 2, 3]
        by_i = {i: set(views) for i, _, views in parts}
        name = parse_view_name
        assert by_i[0] == {
            name(s) for s in
            ["ABCD", "ABC", "ABD", "ACD", "AB", "AC", "AD", "A"]
        }
        assert by_i[1] == {name(s) for s in ["BCD", "BC", "BD", "B"]}
        assert by_i[2] == {name(s) for s in ["CD", "C"]}
        assert by_i[3] == {name("D"), ()}  # ALL rides with the last partition

    def test_roots(self):
        assert partition_root(0, 4) == (0, 1, 2, 3)
        assert partition_root(2, 4) == (2, 3)
        with pytest.raises(ValueError):
            partition_root(4, 4)

    def test_partitions_tile_the_cube(self):
        d = 5
        seen = []
        for _, _, views in partition_all(d):
            seen.extend(views)
        assert sorted(seen) == sorted(all_views(d))

    def test_partition_index(self):
        assert partition_index((2, 3), 4) == 2
        assert partition_index((), 4) == 3
        with pytest.raises(ValueError):
            partition_index((5,), 4)
        with pytest.raises(ValueError):
            partition_index((), 0)

    def test_views_sorted_largest_first(self):
        views = partition_views(0, 4)
        sizes = [len(v) for v in views]
        assert sizes == sorted(sizes, reverse=True)
        assert views[0] == (0, 1, 2, 3)

    def test_partial_selection(self):
        selected = [(0, 1), (1, 2), (2,), ()]
        parts = partition_all(3, selected)
        by_i = {i: set(views) for i, _, views in parts}
        assert by_i[0] == {(0, 1)}
        assert by_i[1] == {(1, 2)}
        assert by_i[2] == {(2,), ()}

    def test_empty_partitions_skipped(self):
        parts = partition_all(3, selected=[(0,)])
        assert len(parts) == 1
        assert parts[0][0] == 0

    @given(st.integers(1, 7))
    def test_partition_sizes_formula(self, d):
        """|Si| = 2^(d-1-i), plus ALL in the last partition."""
        for i, _, views in partition_all(d):
            expected = 2 ** (d - 1 - i) + (1 if i == d - 1 else 0)
            assert len(views) == expected
