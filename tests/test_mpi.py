"""Tests for the simulated MPI substrate: comm, engine, clock, stats."""

import numpy as np
import pytest

from repro.config import MachineSpec
from repro.mpi.comm import Comm
from repro.mpi.engine import MAX_RANKS, Cluster, run_spmd
from repro.mpi.errors import CollectiveMisuse, MPIError, RankFailure
from repro.mpi.stats import CommStats, payload_nbytes


def spec(p, **kw):
    return MachineSpec(p=p, **kw)


class TestCollectives:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
    def test_allgather(self, p):
        res = run_spmd(lambda c: c.allgather(c.rank * 2), spec(p))
        for ranks in res.rank_results:
            assert ranks == [2 * j for j in range(p)]

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_bcast_from_each_root(self, p):
        for root in range(p):
            def prog(c, root=root):
                obj = {"v": c.rank} if c.rank == root else None
                return c.bcast(obj, root=root)

            res = run_spmd(prog, spec(p))
            assert all(r == {"v": root} for r in res.rank_results)

    def test_gather(self):
        def prog(c):
            return c.gather(c.rank ** 2, root=2)

        res = run_spmd(prog, spec(4))
        assert res.rank_results[2] == [0, 1, 4, 9]
        assert res.rank_results[0] is None

    def test_scatter(self):
        def prog(c):
            values = [f"item{k}" for k in range(c.size)] if c.rank == 1 else None
            return c.scatter(values, root=1)

        res = run_spmd(prog, spec(3))
        assert res.rank_results == ["item0", "item1", "item2"]

    def test_scatter_requires_list_at_root(self):
        def prog(c):
            return c.scatter([1] if c.rank == 0 else None, root=0)

        with pytest.raises(CollectiveMisuse):
            run_spmd(prog, spec(3))

    def test_alltoall_numpy(self):
        def prog(c):
            lanes = [
                np.full(2, c.rank * 10 + k, dtype=np.int64)
                for k in range(c.size)
            ]
            got = c.alltoall(lanes)
            return [int(g[0]) for g in got]

        res = run_spmd(prog, spec(4))
        for k, got in enumerate(res.rank_results):
            assert got == [j * 10 + k for j in range(4)]

    def test_alltoall_wrong_lane_count(self):
        with pytest.raises(CollectiveMisuse):
            run_spmd(lambda c: c.alltoall([None]), spec(3))

    def test_allreduce_ops(self):
        def prog(c):
            return (
                c.allreduce(c.rank, "sum"),
                c.allreduce(c.rank, "max"),
                c.allreduce(c.rank, "min"),
            )

        res = run_spmd(prog, spec(4))
        assert res.rank_results[0] == (6.0, 3.0, 0.0)

    def test_allreduce_bad_op(self):
        with pytest.raises(CollectiveMisuse):
            run_spmd(lambda c: c.allreduce(1.0, "median"), spec(2))

    def test_sendrecv_left(self):
        def prog(c):
            return c.sendrecv_left(("tok", c.rank))

        res = run_spmd(prog, spec(4))
        assert res.rank_results == [("tok", 1), ("tok", 2), ("tok", 3), None]

    def test_barrier_and_order(self):
        def prog(c):
            out = []
            for step in range(3):
                c.barrier()
                out.append(c.allreduce(step, "sum"))
            return out

        res = run_spmd(prog, spec(3))
        assert res.rank_results[0] == [0.0, 3.0, 6.0]

    def test_bad_root_rejected(self):
        with pytest.raises(CollectiveMisuse):
            run_spmd(lambda c: c.bcast(1, root=99), spec(2))

    def test_p1_degenerate(self):
        def prog(c):
            assert c.allgather("x") == ["x"]
            assert c.alltoall(["self"]) == ["self"]
            assert c.bcast("y") == "y"
            return c.allreduce(5, "sum")

        res = run_spmd(prog, spec(1))
        assert res.rank_results == [5.0]


class TestFailures:
    def test_error_propagates_original(self):
        def prog(c):
            if c.rank == 1:
                raise KeyError("the original failure")
            c.barrier()

        with pytest.raises(KeyError, match="the original failure"):
            run_spmd(prog, spec(4))

    def test_error_before_any_collective(self):
        def prog(c):
            if c.rank == 0:
                raise RuntimeError("early")
            c.allgather(1)

        with pytest.raises(RuntimeError, match="early"):
            run_spmd(prog, spec(3))

    def test_too_many_ranks(self):
        with pytest.raises(MPIError):
            Cluster(spec(MAX_RANKS + 1))


class TestAccounting:
    def test_alltoall_bytes_exclude_self(self):
        def prog(c):
            lanes = [np.zeros(100, dtype=np.int64) for _ in range(c.size)]
            c.alltoall(lanes)

        res = run_spmd(prog, spec(4))
        # each rank sends 3 off-rank lanes of 800 bytes
        assert res.stats.total_bytes == 4 * 3 * 800

    def test_bcast_bytes(self):
        payload = np.zeros(10, dtype=np.float64)  # 80 bytes

        def prog(c):
            c.bcast(payload if c.rank == 0 else None, root=0)

        res = run_spmd(prog, spec(5))
        assert res.stats.total_bytes == 4 * 80

    def test_barrier_is_free(self):
        res = run_spmd(lambda c: c.barrier(), spec(3))
        assert res.stats.total_bytes == 0
        assert res.stats.collectives == 1

    def test_bytes_by_kind_and_phase(self):
        def prog(c):
            c.set_phase("alpha")
            c.allgather(np.zeros(10, dtype=np.int64))
            c.set_phase("beta")
            c.allgather(np.zeros(20, dtype=np.int64))

        res = run_spmd(prog, spec(2))
        assert set(res.stats.bytes_by_phase) == {"alpha", "beta"}
        assert res.stats.bytes_by_phase["beta"] == 2 * res.stats.bytes_by_phase["alpha"]
        assert set(res.stats.bytes_by_kind) == {"allgather"}

    def test_peak_rank_bytes(self):
        def prog(c):
            # rank 0 sends 1000 bytes to rank 1 only
            lanes = [None, np.zeros(125, dtype=np.float64)] if c.rank == 0 else [None, None]
            c.alltoall(lanes)

        res = run_spmd(prog, spec(2))
        assert res.stats.peak_rank_bytes == 1000


class TestClock:
    def test_superstep_count(self):
        def prog(c):
            for _ in range(5):
                c.barrier()

        res = run_spmd(prog, spec(3))
        assert res.clock.superstep_count() == 5

    def test_comm_cost_model(self):
        m = spec(2, latency_sec=0.5, beta_sec_per_mb=1.0)

        def prog(c):
            lanes = [None, np.zeros(125_000, dtype=np.float64)] if c.rank == 0 else [None, None]
            c.alltoall(lanes)

        res = run_spmd(prog, m)
        # one superstep: latency 0.5 + 1 MB at 1 s/MB (busiest rank: 1 MB out)
        assert res.clock.comm_time == pytest.approx(1.5, rel=0.01)

    def test_modelled_work_enters_clock(self):
        m = spec(2, latency_sec=0.0, beta_sec_per_mb=0.0)

        def prog(c):
            if c.rank == 0:
                c.disk.work.charge_scan(1_000_000)  # 0.2 s at default rate
            c.barrier()

        res = run_spmd(prog, m)
        assert res.clock.compute_time >= 0.19  # max over ranks picks rank 0

    def test_disk_blocks_enter_clock(self):
        m = spec(2, latency_sec=0.0, disk_sec_per_block=0.01)

        def prog(c):
            c.disk.charge_scan(c.disk.block_size * 10)  # 10 blocks
            c.barrier()

        res = run_spmd(prog, m)
        assert res.clock.compute_time >= 0.1

    def test_phase_breakdown(self):
        def prog(c):
            c.set_phase("one")
            c.barrier()
            c.set_phase("two")
            c.barrier()

        res = run_spmd(prog, spec(2))
        assert set(res.clock.phase_breakdown()) >= {"one", "two"}

    def test_tail_segment_counted(self):
        m = spec(2, latency_sec=0.0)

        def prog(c):
            c.barrier()
            c.disk.work.charge_scan(10_000_000)  # 2 s after last collective

        res = run_spmd(prog, m)
        assert res.clock.sim_time >= 1.9

    def test_comm_fraction_bounds(self):
        res = run_spmd(lambda c: c.barrier(), spec(2))
        assert 0.0 <= res.clock.comm_fraction() <= 1.0


class TestPayloadNbytes:
    def test_none(self):
        assert payload_nbytes(None) == 0

    def test_ndarray(self):
        assert payload_nbytes(np.zeros(10, dtype=np.int64)) == 80

    def test_nested_containers(self):
        payload = [np.zeros(2, dtype=np.int64), (np.zeros(1), None)]
        assert payload_nbytes(payload) == 16 + 8

    def test_scalars_and_strings(self):
        assert payload_nbytes(5) == 8
        assert payload_nbytes(2.5) == 8
        assert payload_nbytes("abcd") == 4

    def test_dict(self):
        assert payload_nbytes({"a": 1}) == 1 + 8

    def test_arbitrary_object_uses_pickle(self):
        class Thing:
            x = 1

        assert payload_nbytes(Thing()) > 0

    def test_stats_record_matrix(self):
        stats = CommStats()
        matrix = np.array([[5, 10], [20, 5]])
        total, max_rank = stats.record("alltoall", "ph", matrix)
        assert total == 30  # diagonal excluded
        assert max_rank == 30  # each rank: 10 out + 20 in
        assert stats.peak_rank_bytes == 30
