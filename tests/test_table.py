"""Tests for repro.storage.table.Relation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.table import Relation


def rel(rows, measures):
    return Relation.from_rows(rows, measures)


class TestConstruction:
    def test_basic(self):
        r = rel([(1, 2), (3, 4)], [1.0, 2.0])
        assert r.nrows == 2
        assert r.width == 2
        assert len(r) == 2

    def test_dtype_coercion(self):
        r = Relation(
            np.array([[1, 2]], dtype=np.int32),
            np.array([1], dtype=np.int64),
        )
        assert r.dims.dtype == np.int64
        assert r.measure.dtype == np.float64

    def test_rejects_mismatched_rows(self):
        with pytest.raises(ValueError, match="row count mismatch"):
            Relation(np.zeros((3, 2), dtype=np.int64), np.zeros(2))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="dims must be 2-D"):
            Relation(np.zeros(3, dtype=np.int64), np.zeros(3))
        with pytest.raises(ValueError, match="measure must be 1-D"):
            Relation(np.zeros((3, 2), dtype=np.int64), np.zeros((3, 1)))

    def test_empty(self):
        r = Relation.empty(5)
        assert r.nrows == 0 and r.width == 5

    def test_empty_rejects_negative_width(self):
        with pytest.raises(ValueError):
            Relation.empty(-1)

    def test_zero_width_rows(self):
        r = Relation.from_rows([], [1.0, 2.0])
        assert r.width == 0 and r.nrows == 2

    def test_nbytes_positive(self):
        assert rel([(1,)], [1.0]).nbytes > 0


class TestConcat:
    def test_two_parts(self):
        a = rel([(1,)], [1.0])
        b = rel([(2,)], [2.0])
        c = Relation.concat([a, b])
        assert c.nrows == 2
        assert c.dims[:, 0].tolist() == [1, 2]

    def test_single_part_returns_same(self):
        a = rel([(1,)], [1.0])
        assert Relation.concat([a]) is a

    def test_rejects_empty_list(self):
        with pytest.raises(ValueError):
            Relation.concat([])

    def test_rejects_width_mismatch(self):
        a = rel([(1,)], [1.0])
        b = rel([(1, 2)], [1.0])
        with pytest.raises(ValueError, match="width mismatch"):
            Relation.concat([a, b])

    def test_skips_none_entries(self):
        a = rel([(1,)], [1.0])
        assert Relation.concat([None, a]).nrows == 1


class TestRowOps:
    def test_take(self):
        r = rel([(1,), (2,), (3,)], [1.0, 2.0, 3.0])
        t = r.take(np.array([2, 0]))
        assert t.dims[:, 0].tolist() == [3, 1]
        assert t.measure.tolist() == [3.0, 1.0]

    def test_slice_is_view(self):
        r = rel([(1,), (2,), (3,)], [1.0, 2.0, 3.0])
        s = r.slice(1, 3)
        assert s.nrows == 2
        assert s.dims.base is not None  # zero-copy view

    def test_project(self):
        r = rel([(1, 2, 3)], [1.0])
        p = r.project([2, 0])
        assert p.dims[0].tolist() == [3, 1]

    def test_project_rejects_out_of_range(self):
        r = rel([(1, 2)], [1.0])
        with pytest.raises(IndexError):
            r.project([2])


class TestSorting:
    def test_sort_lex_primary_first_column(self):
        r = rel([(2, 0), (1, 9), (1, 3)], [1.0, 2.0, 3.0])
        s = r.sort_lex()
        assert s.dims.tolist() == [[1, 3], [1, 9], [2, 0]]
        assert s.measure.tolist() == [3.0, 2.0, 1.0]

    def test_is_sorted_lex(self):
        assert rel([(1, 1), (1, 2), (2, 0)], [0, 0, 0]).is_sorted_lex()
        assert not rel([(1, 2), (1, 1)], [0, 0]).is_sorted_lex()

    def test_trivially_sorted(self):
        assert Relation.empty(3).is_sorted_lex()
        assert rel([(5, 5)], [1.0]).is_sorted_lex()
        assert Relation.from_rows([], [1.0, 2.0]).is_sorted_lex()

    def test_sort_idempotent_on_sorted(self):
        r = rel([(1, 1), (1, 2)], [0, 0])
        assert r.sort_lex() is r or r.sort_lex().same_content(r)

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)),
            min_size=0,
            max_size=50,
        )
    )
    def test_sort_lex_property(self, rows):
        r = rel(rows, [float(i) for i in range(len(rows))])
        s = r.sort_lex()
        assert s.is_sorted_lex()
        assert sorted(map(tuple, s.dims.tolist())) == sorted(
            map(tuple, r.dims.tolist())
        )


class TestComparison:
    def test_same_content_order_independent(self):
        a = rel([(1, 1), (2, 2)], [1.0, 2.0])
        b = rel([(2, 2), (1, 1)], [2.0, 1.0])
        assert a.same_content(b)

    def test_same_content_detects_measure_diff(self):
        a = rel([(1, 1)], [1.0])
        b = rel([(1, 1)], [1.5])
        assert not a.same_content(b)

    def test_same_content_detects_row_diff(self):
        a = rel([(1, 1)], [1.0])
        b = rel([(1, 2)], [1.0])
        assert not a.same_content(b)

    def test_same_content_detects_size_diff(self):
        a = rel([(1, 1)], [1.0])
        b = rel([(1, 1), (1, 1)], [0.5, 0.5])
        assert not a.same_content(b)

    def test_canonical_is_hashable_and_stable(self):
        a = rel([(2, 2), (1, 1)], [2.0, 1.0])
        b = rel([(1, 1), (2, 2)], [1.0, 2.0])
        assert a.canonical() == b.canonical()
        assert hash(a.canonical()) == hash(b.canonical())
