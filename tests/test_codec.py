"""Tests for repro.storage.codec.KeyCodec (mixed-radix key packing)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.codec import KeyCodec


class TestBasics:
    def test_roundtrip(self):
        codec = KeyCodec([4, 3, 2])
        dims = np.array([[0, 0, 0], [3, 2, 1], [1, 1, 1]], dtype=np.int64)
        assert np.array_equal(codec.unpack(codec.pack(dims)), dims)

    def test_capacity(self):
        assert KeyCodec([4, 3, 2]).capacity == 24
        assert KeyCodec([7]).capacity == 7

    def test_zero_width(self):
        codec = KeyCodec([])
        keys = codec.pack(np.empty((3, 0), dtype=np.int64))
        assert keys.tolist() == [0, 0, 0]
        assert codec.capacity == 1

    def test_column_zero_most_significant(self):
        codec = KeyCodec([10, 10])
        a = codec.pack(np.array([[1, 0]]))
        b = codec.pack(np.array([[0, 9]]))
        assert a[0] > b[0]

    def test_rejects_bad_cardinalities(self):
        with pytest.raises(ValueError):
            KeyCodec([0, 3])
        with pytest.raises(ValueError):
            KeyCodec([-2])

    def test_overflow_raises(self):
        with pytest.raises(OverflowError, match="63 bits"):
            KeyCodec([2**32, 2**32])

    def test_big_but_fitting(self):
        codec = KeyCodec([2**31, 2**30])  # 2^61 < 2^62
        dims = np.array([[2**31 - 1, 2**30 - 1]], dtype=np.int64)
        assert np.array_equal(codec.unpack(codec.pack(dims)), dims)

    def test_pack_shape_validation(self):
        codec = KeyCodec([4, 3])
        with pytest.raises(ValueError, match="expected"):
            codec.pack(np.zeros((2, 3), dtype=np.int64))
        with pytest.raises(ValueError):
            codec.unpack(np.zeros((2, 2), dtype=np.int64))

    def test_prefix_codec(self):
        codec = KeyCodec([4, 3, 2])
        pre = codec.prefix_codec(2)
        assert pre.cardinalities.tolist() == [4, 3]
        with pytest.raises(ValueError):
            codec.prefix_codec(4)

    def test_prefix_key_is_integer_division(self):
        """The pipeline fast path: prefix key = full key // suffix capacity."""
        codec = KeyCodec([5, 4, 3, 2])
        rng = np.random.default_rng(1)
        dims = np.column_stack(
            [rng.integers(0, c, 100) for c in (5, 4, 3, 2)]
        )
        full = codec.pack(dims)
        for k in range(1, 4):
            pre = codec.prefix_codec(k)
            divisor = codec.weights[k - 1]
            assert np.array_equal(full // divisor, pre.pack(dims[:, :k]))


@st.composite
def cards_and_rows(draw):
    width = draw(st.integers(1, 6))
    cards = draw(
        st.lists(st.integers(1, 50), min_size=width, max_size=width)
    )
    n = draw(st.integers(0, 40))
    rows = [
        [draw(st.integers(0, c - 1)) for c in cards] for _ in range(n)
    ]
    return cards, np.array(rows, dtype=np.int64).reshape(n, width)


class TestProperties:
    @given(cards_and_rows())
    def test_roundtrip_property(self, cr):
        cards, dims = cr
        codec = KeyCodec(cards)
        assert np.array_equal(codec.unpack(codec.pack(dims)), dims)

    @given(cards_and_rows())
    def test_order_preservation(self, cr):
        """Integer order of packed keys == lexicographic order of rows."""
        cards, dims = cr
        if dims.shape[0] < 2:
            return
        codec = KeyCodec(cards)
        keys = codec.pack(dims)
        order_by_key = np.argsort(keys, kind="stable")
        order_lex = np.lexsort(
            tuple(dims[:, c] for c in range(dims.shape[1] - 1, -1, -1))
        )
        assert np.array_equal(
            dims[order_by_key], dims[order_lex]
        )

    @given(cards_and_rows())
    def test_keys_within_capacity(self, cr):
        cards, dims = cr
        codec = KeyCodec(cards)
        keys = codec.pack(dims)
        if keys.size:
            assert keys.min() >= 0
            assert keys.max() < codec.capacity
