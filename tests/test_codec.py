"""Tests for repro.storage.codec.KeyCodec (mixed-radix key packing)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.codec import KeyCodec


class TestBasics:
    def test_roundtrip(self):
        codec = KeyCodec([4, 3, 2])
        dims = np.array([[0, 0, 0], [3, 2, 1], [1, 1, 1]], dtype=np.int64)
        assert np.array_equal(codec.unpack(codec.pack(dims)), dims)

    def test_capacity(self):
        assert KeyCodec([4, 3, 2]).capacity == 24
        assert KeyCodec([7]).capacity == 7

    def test_zero_width(self):
        codec = KeyCodec([])
        keys = codec.pack(np.empty((3, 0), dtype=np.int64))
        assert keys.tolist() == [0, 0, 0]
        assert codec.capacity == 1

    def test_column_zero_most_significant(self):
        codec = KeyCodec([10, 10])
        a = codec.pack(np.array([[1, 0]]))
        b = codec.pack(np.array([[0, 9]]))
        assert a[0] > b[0]

    def test_rejects_bad_cardinalities(self):
        with pytest.raises(ValueError):
            KeyCodec([0, 3])
        with pytest.raises(ValueError):
            KeyCodec([-2])

    def test_overflow_raises(self):
        with pytest.raises(OverflowError, match="63 bits"):
            KeyCodec([2**32, 2**32])

    def test_big_but_fitting(self):
        codec = KeyCodec([2**31, 2**30])  # 2^61 < 2^62
        dims = np.array([[2**31 - 1, 2**30 - 1]], dtype=np.int64)
        assert np.array_equal(codec.unpack(codec.pack(dims)), dims)

    def test_pack_shape_validation(self):
        codec = KeyCodec([4, 3])
        with pytest.raises(ValueError, match="expected"):
            codec.pack(np.zeros((2, 3), dtype=np.int64))
        with pytest.raises(ValueError):
            codec.unpack(np.zeros((2, 2), dtype=np.int64))

    def test_prefix_codec(self):
        codec = KeyCodec([4, 3, 2])
        pre = codec.prefix_codec(2)
        assert pre.cardinalities.tolist() == [4, 3]
        with pytest.raises(ValueError):
            codec.prefix_codec(4)

    def test_prefix_key_is_integer_division(self):
        """The pipeline fast path: prefix key = full key // suffix capacity."""
        codec = KeyCodec([5, 4, 3, 2])
        rng = np.random.default_rng(1)
        dims = np.column_stack(
            [rng.integers(0, c, 100) for c in (5, 4, 3, 2)]
        )
        full = codec.pack(dims)
        for k in range(1, 4):
            pre = codec.prefix_codec(k)
            divisor = codec.weights[k - 1]
            assert np.array_equal(full // divisor, pre.pack(dims[:, :k]))


class TestRemapEdges:
    """Degenerate permutations that the format-3 manifest machinery
    leans on: identity remaps, cardinality-1 digits, and the
    unpack-permute-repack reference semantics."""

    @staticmethod
    def _reference(codec, keys, src_order, dst_order):
        dims = codec.unpack(keys)
        pos = {dim: p for p, dim in enumerate(src_order)}
        cols = [pos[dim] for dim in dst_order]
        sub = KeyCodec([int(codec.cardinalities[c]) for c in cols])
        return sub.pack(dims[:, cols])

    def test_identity_remap_returns_copy(self):
        codec = KeyCodec([5, 4, 3])
        keys = codec.pack(
            np.array([[4, 3, 2], [0, 0, 0], [2, 1, 1]], dtype=np.int64)
        )
        out, shared = codec.remap(keys, (0, 1, 2), (0, 1, 2))
        assert shared == 3
        assert np.array_equal(out, keys)
        assert out is not keys  # a copy, safe to mutate
        out[0] = -1
        assert keys[0] != -1

    def test_cardinality_one_digits(self):
        """Cardinality-1 dims contribute nothing to the key but must
        survive arbitrary permutation."""
        cards = [4, 1, 3, 1]
        codec = KeyCodec(cards)
        rng = np.random.default_rng(0)
        dims = np.column_stack(
            [rng.integers(0, c, 50) for c in cards]
        ).astype(np.int64)
        keys = codec.pack(dims)
        src = (0, 1, 2, 3)
        for dst in [(3, 1, 0, 2), (1, 3), (2, 0), (1,), ()]:
            out, _ = codec.remap(keys, src, dst)
            ref = self._reference(codec, keys, src, dst)
            assert np.array_equal(out, ref), dst

    def test_all_cardinality_one(self):
        codec = KeyCodec([1, 1, 1])
        keys = codec.pack(np.zeros((7, 3), dtype=np.int64))
        out, shared = codec.remap(keys, (0, 1, 2), (2, 0))
        assert np.array_equal(out, np.zeros(7, dtype=np.int64))
        assert shared == 0
        assert codec.capacity == 1

    def test_projection_matches_reference(self):
        cards = [6, 5, 4, 3]
        codec = KeyCodec(cards)
        rng = np.random.default_rng(7)
        dims = np.column_stack(
            [rng.integers(0, c, 200) for c in cards]
        ).astype(np.int64)
        src = (2, 0, 3, 1)  # codec cards are aligned with src positions
        src_codec = KeyCodec([cards[0], cards[1], cards[2], cards[3]])
        keys = src_codec.pack(dims)
        for dst in [(2, 0), (2, 0, 3, 1), (1, 3, 0), (0,), ()]:
            out, shared = src_codec.remap(keys, src, dst)
            ref = self._reference(src_codec, keys, src, dst)
            assert np.array_equal(out, ref), dst
            # shared prefix really is the common leading run
            k = 0
            while (
                k < min(len(src), len(dst)) and src[k] == dst[k]
            ):
                k += 1
            assert shared == k

    def test_remap_validation(self):
        codec = KeyCodec([4, 3])
        keys = np.array([0, 5], dtype=np.int64)
        with pytest.raises(ValueError, match="repeats"):
            codec.remap(keys, (0, 0), (0,))
        with pytest.raises(ValueError, match="repeats"):
            codec.remap(keys, (0, 1), (1, 1))
        with pytest.raises(ValueError, match="not present"):
            codec.remap(keys, (0, 1), (2,))
        with pytest.raises(ValueError, match="packs"):
            codec.remap(keys, (0, 1, 2), (0,))


@st.composite
def cards_and_rows(draw):
    width = draw(st.integers(1, 6))
    cards = draw(
        st.lists(st.integers(1, 50), min_size=width, max_size=width)
    )
    n = draw(st.integers(0, 40))
    rows = [
        [draw(st.integers(0, c - 1)) for c in cards] for _ in range(n)
    ]
    return cards, np.array(rows, dtype=np.int64).reshape(n, width)


class TestProperties:
    @given(cards_and_rows())
    def test_roundtrip_property(self, cr):
        cards, dims = cr
        codec = KeyCodec(cards)
        assert np.array_equal(codec.unpack(codec.pack(dims)), dims)

    @given(cards_and_rows())
    def test_order_preservation(self, cr):
        """Integer order of packed keys == lexicographic order of rows."""
        cards, dims = cr
        if dims.shape[0] < 2:
            return
        codec = KeyCodec(cards)
        keys = codec.pack(dims)
        order_by_key = np.argsort(keys, kind="stable")
        order_lex = np.lexsort(
            tuple(dims[:, c] for c in range(dims.shape[1] - 1, -1, -1))
        )
        assert np.array_equal(
            dims[order_by_key], dims[order_lex]
        )

    @given(cards_and_rows())
    def test_keys_within_capacity(self, cr):
        cards, dims = cr
        codec = KeyCodec(cards)
        keys = codec.pack(dims)
        if keys.size:
            assert keys.min() >= 0
            assert keys.max() < codec.capacity
