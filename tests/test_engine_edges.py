"""Engine edge cases: real disk roots, cluster reuse, misuse guards,
example-script health."""

import compileall
import pathlib

import numpy as np
import pytest

from repro.config import MachineSpec
from repro.core.cube import build_data_cube
from repro.mpi.engine import Cluster, run_spmd
from repro.mpi.errors import CollectiveMisuse
from tests.conftest import make_relation


class TestDiskRoots:
    def test_cube_with_real_spill_files(self, tmp_path):
        """disk_root routes every rank's spills to real files."""
        cards = (10, 6, 4)
        rel = make_relation(1500, cards, seed=50)
        spec = MachineSpec(p=2, memory_budget=256, block_size=32)
        cube = build_data_cube(
            rel, cards, spec, disk_root=str(tmp_path / "spills")
        )
        # external sorts actually spilled to the filesystem
        rank_dirs = list((tmp_path / "spills").iterdir())
        assert len(rank_dirs) == 2
        from repro.baselines.reference import reference_cube

        ref = reference_cube(rel, cards)
        for view, want in ref.items():
            assert cube.view_relation(view).same_content(want), view


class TestClusterReuse:
    def test_two_runs_accumulate(self):
        cluster = Cluster(MachineSpec(p=3))
        cluster.run(lambda c: c.barrier())
        first_steps = cluster.clock.superstep_count()
        cluster.run(lambda c: c.barrier())
        assert cluster.clock.superstep_count() == first_steps + 1

    def test_comm_endpoint_direct(self):
        """Tests may drive a rank endpoint directly at p=1."""
        cluster = Cluster(MachineSpec(p=1))
        comm = cluster.comm(0)
        assert comm.allgather("v") == ["v"]


class TestMisuse:
    def test_mismatched_collectives_detected(self):
        def prog(comm):
            if comm.rank == 0:
                comm.bcast("x", root=0)
            else:
                comm.gather("x", root=0)

        with pytest.raises(CollectiveMisuse, match="disagree"):
            run_spmd(prog, MachineSpec(p=2))

    def test_mismatch_after_agreeing_steps(self):
        def prog(comm):
            comm.barrier()
            comm.allgather(comm.rank)
            if comm.rank == 1:
                comm.barrier()
            else:
                comm.allgather(0)

        with pytest.raises(CollectiveMisuse):
            run_spmd(prog, MachineSpec(p=3))

    def test_single_rank_never_mismatches(self):
        def prog(comm):
            comm.barrier()
            comm.allgather(1)

        run_spmd(prog, MachineSpec(p=1))  # no raise


class TestReturnShapes:
    def test_rank_results_ordered_by_rank(self):
        res = run_spmd(lambda c: c.rank * 11, MachineSpec(p=5))
        assert res.rank_results == [0, 11, 22, 33, 44]

    def test_host_seconds_positive(self):
        res = run_spmd(lambda c: None, MachineSpec(p=2))
        assert res.host_seconds > 0

    def test_numpy_payload_isolation(self):
        """Payloads travel by reference; receivers must see consistent
        values even when the sender keeps using its array."""

        def prog(comm):
            mine = np.full(4, comm.rank, dtype=np.int64)
            got = comm.allgather(mine)
            return [int(g[0]) for g in got]

        res = run_spmd(prog, MachineSpec(p=4))
        assert res.rank_results[0] == [0, 1, 2, 3]


class TestExamplesHealth:
    def test_examples_compile(self):
        """Every example must at least be import-clean Python."""
        examples = pathlib.Path(__file__).parent.parent / "examples"
        for script in sorted(examples.glob("*.py")):
            assert compileall.compile_file(
                str(script), quiet=2, force=True
            ), script
