"""Tests for repro.config: machine and algorithm configuration."""

import math

import pytest

from repro.config import CubeConfig, MachineSpec, RunResult


class TestMachineSpec:
    def test_defaults_valid(self):
        spec = MachineSpec()
        assert spec.p >= 1
        assert spec.block_size <= spec.memory_budget

    def test_rejects_zero_processors(self):
        with pytest.raises(ValueError, match="p must be"):
            MachineSpec(p=0)

    def test_rejects_negative_processors(self):
        with pytest.raises(ValueError):
            MachineSpec(p=-3)

    def test_rejects_tiny_memory(self):
        with pytest.raises(ValueError, match="memory_budget"):
            MachineSpec(memory_budget=2)

    def test_rejects_block_larger_than_memory(self):
        with pytest.raises(ValueError, match="block_size"):
            MachineSpec(memory_budget=16, block_size=32)

    def test_rejects_zero_block(self):
        with pytest.raises(ValueError, match="block_size"):
            MachineSpec(block_size=0)

    def test_rejects_negative_network_costs(self):
        with pytest.raises(ValueError):
            MachineSpec(beta_sec_per_mb=-1.0)
        with pytest.raises(ValueError):
            MachineSpec(latency_sec=-0.1)

    def test_rejects_negative_disk_cost(self):
        with pytest.raises(ValueError):
            MachineSpec(disk_sec_per_block=-1.0)

    def test_rejects_negative_compute_scale(self):
        with pytest.raises(ValueError):
            MachineSpec(compute_scale=-0.5)

    def test_zero_compute_scale_is_deterministic_mode(self):
        # 0.0 disables the measured-CPU term entirely (bit-identical
        # simulated time across runs and backends).
        assert MachineSpec(compute_scale=0.0).compute_scale == 0.0

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            MachineSpec(backend="mpi")

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_accepts_supported_backends(self, backend):
        assert MachineSpec(backend=backend).backend == backend

    def test_with_backend_copies(self):
        spec = MachineSpec(p=4, block_size=128)
        other = spec.with_backend("process")
        assert other.backend == "process"
        assert other.p == 4
        assert other.block_size == 128
        assert spec.backend == "thread"  # original untouched

    def test_rejects_bad_bytes_per_row(self):
        with pytest.raises(ValueError):
            MachineSpec(bytes_per_row=0)

    def test_with_processors_copies(self):
        spec = MachineSpec(p=4, block_size=128)
        other = spec.with_processors(9)
        assert other.p == 9
        assert other.block_size == 128
        assert spec.p == 4  # original untouched

    def test_frozen(self):
        spec = MachineSpec()
        with pytest.raises(Exception):
            spec.p = 10  # type: ignore[misc]

    def test_rows_to_mb(self):
        spec = MachineSpec(bytes_per_row=36)
        assert spec.rows_to_mb(1_000_000) == pytest.approx(36.0)

    def test_comm_cost_latency_only_for_empty(self):
        spec = MachineSpec(latency_sec=0.01, beta_sec_per_mb=0.1)
        assert spec.comm_cost(0) == pytest.approx(0.01)

    def test_comm_cost_linear_in_bytes(self):
        spec = MachineSpec(latency_sec=0.0, beta_sec_per_mb=0.5)
        assert spec.comm_cost(2_000_000) == pytest.approx(1.0)


class TestCubeConfig:
    def test_defaults_match_paper(self):
        config = CubeConfig()
        assert config.gamma_partition == pytest.approx(0.01)
        assert config.gamma_merge == pytest.approx(0.03)
        assert config.sample_factor == 100
        assert config.global_schedule_tree is True

    @pytest.mark.parametrize("gamma", [0.0, -0.5, 1.5])
    def test_rejects_bad_gamma_partition(self, gamma):
        with pytest.raises(ValueError):
            CubeConfig(gamma_partition=gamma)

    @pytest.mark.parametrize("gamma", [0.0, -1.0, 2.0])
    def test_rejects_bad_gamma_merge(self, gamma):
        with pytest.raises(ValueError):
            CubeConfig(gamma_merge=gamma)

    def test_rejects_bad_sample_factor(self):
        with pytest.raises(ValueError):
            CubeConfig(sample_factor=0)

    def test_rejects_unknown_aggregate(self):
        with pytest.raises(ValueError, match="aggregate"):
            CubeConfig(agg="median")

    @pytest.mark.parametrize("agg", ["sum", "count", "min", "max"])
    def test_accepts_supported_aggregates(self, agg):
        assert CubeConfig(agg=agg).agg == agg


class TestRunResult:
    def test_summary_mentions_key_numbers(self):
        result = RunResult(
            simulated_seconds=12.5,
            host_seconds=1.0,
            output_rows=1000,
            view_count=16,
            comm_bytes=2_000_000,
            disk_blocks=42,
        )
        text = result.summary()
        assert "16 views" in text
        assert "1000 rows" in text
        assert "12.50" in text
        assert "2.0 MB" in text

    def test_phase_seconds_default_empty(self):
        result = RunResult(1.0, 1.0, 0, 0, 0, 0)
        assert result.phase_seconds == {}
        assert not math.isnan(result.simulated_seconds)
