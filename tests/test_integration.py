"""End-to-end integration tests: determinism, metering consistency,
distribution contracts, and cross-layer flows."""

import numpy as np
import pytest

from repro.baselines.reference import reference_cube
from repro.config import CubeConfig, MachineSpec
from repro.core.cube import build_data_cube
from repro.core.overlap import analyze_overlap
from repro.core.sample_sort import relative_imbalance
from repro.data.generator import generate_dataset, paper_preset
from repro.olap import CubeStore, Query, QueryEngine
from tests.conftest import make_relation


@pytest.fixture(scope="module")
def p8_small():
    spec = paper_preset(6000, seed=4)
    return generate_dataset(spec), spec.cardinalities


class TestPaperPresetEndToEnd:
    def test_full_d8_cube_correct(self, p8_small):
        """The paper's own parameter vector, all 256 views, vs oracle."""
        data, cards = p8_small
        cube = build_data_cube(data, cards, MachineSpec(p=8))
        assert cube.view_count == 256
        ref = reference_cube(data, cards)
        # validate a representative sample of views of every size
        probes = [
            (), (7,), (0,), (0, 1), (3, 6), (0, 1, 2), (2, 5, 7),
            (0, 1, 2, 3), (4, 5, 6, 7), (0, 2, 4, 6), tuple(range(8)),
            (1, 2, 3, 4, 5, 6, 7), (0, 1, 2, 3, 4, 5, 6, 7)[:7],
        ]
        for view in probes:
            assert cube.view_relation(view).same_content(ref[view]), view

    def test_output_row_accounting(self, p8_small):
        data, cards = p8_small
        cube = build_data_cube(data, cards, MachineSpec(p=4))
        assert cube.metrics.output_rows == cube.total_rows()
        assert cube.metrics.view_count == 256


class TestDeterminism:
    """The modelled quantities must be bit-identical across runs; only the
    (minor) measured host-CPU term may vary."""

    def test_modelled_meters_deterministic(self):
        rel = make_relation(4000, (12, 8, 5), seed=6)
        runs = [
            build_data_cube(rel, (12, 8, 5), MachineSpec(p=4))
            for _ in range(2)
        ]
        assert runs[0].metrics.comm_bytes == runs[1].metrics.comm_bytes
        assert runs[0].metrics.disk_blocks == runs[1].metrics.disk_blocks
        assert runs[0].metrics.output_rows == runs[1].metrics.output_rows
        for view in runs[0].views:
            assert np.array_equal(
                runs[0].distribution(view), runs[1].distribution(view)
            )

    def test_merge_cases_deterministic(self):
        rel = make_relation(4000, (12, 8, 5), seed=6)
        runs = [
            build_data_cube(rel, (12, 8, 5), MachineSpec(p=4))
            for _ in range(2)
        ]
        cases_a = [r.cases for r in runs[0].merge_reports]
        cases_b = [r.cases for r in runs[1].merge_reports]
        assert cases_a == cases_b


class TestBalanceContract:
    def test_case3_views_balanced_within_gamma(self):
        """Stored rows of every re-sorted view obey the γ bound (plus the
        integer granularity of one row per rank)."""
        rel = make_relation(8000, (16, 10, 6, 4), seed=7,
                            alphas=(1.5, 0.5, 0.0, 0.0))
        gamma = 0.03
        cube = build_data_cube(
            rel, (16, 10, 6, 4), MachineSpec(p=8),
            CubeConfig(gamma_merge=gamma),
        )
        for report in cube.merge_reports:
            for view, case in report.cases.items():
                if case != "case3":
                    continue
                dist = cube.distribution(view)
                if dist.sum() < 100:
                    continue  # integer granularity dominates tiny views
                assert relative_imbalance(dist) <= gamma + 8 / dist.mean(), (
                    view, dist.tolist()
                )

    def test_root_views_balanced(self):
        rel = make_relation(8000, (16, 10, 6), seed=3)
        cube = build_data_cube(rel, (16, 10, 6), MachineSpec(p=8))
        top = (0, 1, 2)
        dist = cube.distribution(top)
        assert relative_imbalance(dist) < 0.1


class TestCrossLayerFlow:
    def test_build_store_query_overlap(self, tmp_path, p8_small):
        """The full product loop in one test."""
        data, cards = p8_small
        cube = build_data_cube(data, cards, MachineSpec(p=4))
        path = CubeStore.save(cube, str(tmp_path / "cube"))
        warehouse = CubeStore.load(path)
        engine = QueryEngine(warehouse)
        q = Query(group_by=(1, 5), filters={0: (0, 100)})
        gathered = engine.answer(q)
        parallel, latency = engine.answer_parallel(q)
        assert gathered.same_content(parallel)
        assert latency > 0
        report = analyze_overlap(cube)
        assert report.measured_seconds > 0

    def test_partial_cube_query_flow(self, p8_small):
        data, cards = p8_small
        from repro.core.cube import build_partial_cube

        selected = [(0,), (0, 1), (5,), (5, 6), ()]
        cube = build_partial_cube(data, cards, selected, MachineSpec(p=4))
        engine = QueryEngine(cube)
        # answerable from the selection
        assert engine.answer(Query(group_by=(0,))).nrows > 0
        assert engine.answer(Query(group_by=(5,), filters={6: (0, 2)})).nrows > 0
        # not answerable
        with pytest.raises(LookupError):
            engine.answer(Query(group_by=(3,)))


class TestPhaseAccounting:
    def test_phases_cover_sim_time(self):
        rel = make_relation(4000, (12, 8, 5), seed=6)
        cube = build_data_cube(rel, (12, 8, 5), MachineSpec(p=4))
        total = sum(cube.metrics.phase_seconds.values())
        assert total == pytest.approx(cube.metrics.simulated_seconds, rel=0.02)

    def test_comm_breakdown_bounded_by_total(self):
        rel = make_relation(4000, (12, 8, 5), seed=6)
        cube = build_data_cube(rel, (12, 8, 5), MachineSpec(p=4))
        for phase, comm in cube.metrics.phase_comm_seconds.items():
            assert comm <= cube.metrics.phase_seconds.get(phase, 0) + 1e-9

    def test_expected_phases_present(self):
        rel = make_relation(3000, (10, 6, 4), seed=2)
        cube = build_data_cube(rel, (10, 6, 4), MachineSpec(p=3))
        kinds = {k.split("[")[0] for k in cube.metrics.phase_seconds}
        assert {"partition-sort", "compute", "merge"} <= kinds
