"""Tests for the cube validator."""

import numpy as np
import pytest

from repro.config import CubeConfig, MachineSpec
from repro.core.cube import build_data_cube
from repro.core.validate import validate_cube
from repro.core.viewdata import ViewData
from tests.conftest import make_relation

CARDS = (10, 6, 4)


@pytest.fixture()
def cube():
    rel = make_relation(2500, CARDS, seed=15)
    return build_data_cube(rel, CARDS, MachineSpec(p=3))


class TestValidateCube:
    def test_fresh_cube_valid(self, cube):
        report = validate_cube(cube)
        assert report.ok, report.describe()
        assert report.views_checked == 8

    def test_shallow_mode(self, cube):
        assert validate_cube(cube, deep=False).ok

    def test_detects_unsorted_piece(self, cube):
        data = cube.rank_views[0][(0,)]
        if data.nrows >= 2:
            corrupted = ViewData(
                data.order, data.keys[::-1].copy(), data.measure[::-1].copy()
            )
            cube.rank_views[0][(0,)] = corrupted
            report = validate_cube(cube)
            assert not report.ok
            assert any("not sorted" in e for e in report.errors)

    def test_detects_duplicate_keys_across_ranks(self, cube):
        a = cube.rank_views[0][(0, 1)]
        b = cube.rank_views[1][(0, 1)]
        if a.nrows and b.nrows:
            stolen = ViewData(
                b.order,
                np.concatenate(([a.keys[0]], b.keys)),
                np.concatenate(([1.0], b.measure)),
            )
            cube.rank_views[1][(0, 1)] = stolen
            report = validate_cube(cube)
            assert not report.ok
            assert any("duplicate" in e for e in report.errors)

    def test_detects_total_mismatch(self, cube):
        data = cube.rank_views[0][(1,)]
        if data.nrows:
            tweaked = ViewData(
                data.order, data.keys, data.measure + 100.0
            )
            cube.rank_views[0][(1,)] = tweaked
            report = validate_cube(cube)
            assert not report.ok
            assert any("grand total" in e for e in report.errors)

    def test_detects_out_of_space_keys(self, cube):
        data = cube.rank_views[2][(2,)]
        bad = ViewData(
            data.order,
            np.append(data.keys, np.int64(10**6)),
            np.append(data.measure, 0.0),
        )
        cube.rank_views[2][(2,)] = bad
        report = validate_cube(cube)
        assert not report.ok
        assert any("key space" in e for e in report.errors)

    def test_describe_formats(self, cube):
        good = validate_cube(cube)
        assert "cube valid" in good.describe()
        cube.rank_views[0].pop((0,))
        bad = validate_cube(cube)
        assert "INVALID" in bad.describe()
        assert any("missing on rank" in e for e in bad.errors)

    def test_non_sum_cubes_skip_total_check(self):
        rel = make_relation(1500, CARDS, seed=2)
        cube = build_data_cube(
            rel, CARDS, MachineSpec(p=2), CubeConfig(agg="min")
        )
        assert validate_cube(cube).ok
