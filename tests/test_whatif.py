"""Tests for the what-if network projection."""

import pytest

from repro.config import MachineSpec
from repro.core.cube import build_data_cube
from repro.mpi.whatif import gigabit_upgrade, recost_cube, recost_network
from repro.mpi.engine import run_spmd
from tests.conftest import make_relation

import numpy as np


def traffic_prog(comm):
    lanes = [np.zeros(50_000, dtype=np.int64) for _ in range(comm.size)]
    comm.alltoall(lanes)
    comm.allgather(np.zeros(1000, dtype=np.int64))


class TestRecost:
    def test_identity_projection(self):
        spec = MachineSpec(p=4)
        res = run_spmd(traffic_prog, spec)
        proj = recost_network(res.clock, spec)
        assert proj.projected_seconds == pytest.approx(
            proj.measured_seconds, rel=1e-9
        )
        assert proj.speedup_gain == pytest.approx(1.0)

    def test_faster_network_helps(self):
        spec = MachineSpec(p=4)
        res = run_spmd(traffic_prog, spec)
        proj = recost_network(res.clock, gigabit_upgrade(spec))
        assert proj.projected_seconds < proj.measured_seconds
        assert proj.projected_comm_seconds < proj.measured_comm_seconds

    def test_slower_network_hurts(self):
        from dataclasses import replace

        spec = MachineSpec(p=4)
        res = run_spmd(traffic_prog, spec)
        worse = replace(spec, beta_sec_per_mb=spec.beta_sec_per_mb * 10)
        proj = recost_network(res.clock, worse)
        assert proj.projected_seconds > proj.measured_seconds

    def test_projection_exact_against_rerun(self):
        """Re-costing must equal actually running on the other machine,
        for the deterministic (modelled) part of the clock."""
        from dataclasses import replace

        base = MachineSpec(p=4, latency_sec=0.01, beta_sec_per_mb=0.5)
        fast = replace(base, latency_sec=0.002, beta_sec_per_mb=0.05)
        r_base = run_spmd(traffic_prog, base)
        r_fast = run_spmd(traffic_prog, fast)
        proj = recost_network(r_base.clock, fast)
        assert proj.projected_comm_seconds == pytest.approx(
            r_fast.clock.comm_time, rel=1e-9
        )

    def test_cube_projection(self):
        rel = make_relation(4000, (12, 8, 5), seed=3)
        spec = MachineSpec(p=8)
        cube = build_data_cube(rel, (12, 8, 5), spec)
        proj = recost_cube(cube, gigabit_upgrade(spec))
        assert proj.supersteps == len(cube.metrics.superstep_log)
        assert 1.0 <= proj.speedup_gain < 3.0
        assert "network projection" in proj.describe()

    def test_gigabit_upgrade_factors(self):
        spec = MachineSpec()
        up = gigabit_upgrade(spec)
        assert up.beta_sec_per_mb == pytest.approx(spec.beta_sec_per_mb / 10)
        assert up.latency_sec == pytest.approx(spec.latency_sec / 2)

    def test_paper_gigabit_claim_shape(self):
        """Section 4: the gigabit upgrade 'will further improve the
        relative speedup' — the projection must show a real gain at
        p=16 where communication matters."""
        rel = make_relation(10_000, (16, 12, 8, 6), seed=9)
        spec = MachineSpec(p=16)
        cube = build_data_cube(rel, (16, 12, 8, 6), spec)
        proj = recost_cube(cube, gigabit_upgrade(spec))
        assert proj.speedup_gain > 1.02
