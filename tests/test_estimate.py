"""Tests for repro.core.estimate: view-size estimators."""

import numpy as np
import pytest

from repro.core.estimate import (
    cardenas_size,
    estimate_view_sizes,
    fm_distinct,
    sample_distinct,
    scale_estimates,
    splitmix64,
)


class TestCardenas:
    def test_zero_rows(self):
        assert cardenas_size(0, 100) == 0.0

    def test_single_slot(self):
        assert cardenas_size(50, 1) == 1.0

    def test_bounded_by_space_and_rows(self):
        for n, k in [(10, 1000), (1000, 10), (500, 500)]:
            est = cardenas_size(n, k)
            assert 0 < est <= min(n, k) + 1e-9

    def test_dense_limit(self):
        # many more rows than slots: essentially all slots hit
        assert cardenas_size(10**6, 100) == pytest.approx(100, rel=1e-6)

    def test_sparse_limit(self):
        # far fewer rows than slots: essentially all rows distinct
        assert cardenas_size(100, 10**9) == pytest.approx(100, rel=1e-3)

    def test_monotone_in_rows(self):
        vals = [cardenas_size(n, 1000) for n in (10, 100, 1000, 10000)]
        assert vals == sorted(vals)

    def test_stable_for_huge_space(self):
        # must not overflow/underflow for spaces beyond float precision
        est = cardenas_size(1e6, 1e30)
        assert est == pytest.approx(1e6, rel=1e-3)


class TestSplitmix:
    def test_deterministic(self):
        x = np.arange(10, dtype=np.int64).view(np.uint64)
        assert np.array_equal(splitmix64(x), splitmix64(x))

    def test_mixes_consecutive_inputs(self):
        x = np.arange(1000, dtype=np.int64).view(np.uint64)
        h = splitmix64(x)
        assert np.unique(h).size == 1000
        # low bits should look uniform: each of 16 buckets within 3 sigma
        buckets = np.bincount((h & np.uint64(15)).astype(int), minlength=16)
        assert buckets.min() > 20


class TestFM:
    def test_empty(self):
        assert fm_distinct(np.empty(0, dtype=np.int64)) == 0.0

    def test_reasonable_accuracy(self):
        rng = np.random.default_rng(3)
        for true in (100, 1000, 20000):
            keys = rng.integers(0, true, true * 5).astype(np.int64) % true
            # force exactly `true` distinct values
            keys = np.concatenate([np.arange(true, dtype=np.int64), keys])
            est = fm_distinct(keys)
            assert true / 2.2 <= est <= true * 2.2  # FM-grade accuracy

    def test_duplicates_do_not_inflate(self):
        # PCSA's floor is ~m/phi (~83 with 64 buckets); a single distinct
        # value must estimate near that floor, never near n.
        keys = np.zeros(10_000, dtype=np.int64)
        assert fm_distinct(keys) < 200


class TestSampleDistinct:
    def test_empty(self):
        assert sample_distinct(np.empty(0, dtype=np.int64), 100, 10) == 0.0

    def test_all_distinct_falls_back(self):
        keys = np.arange(50, dtype=np.int64)
        est = sample_distinct(keys, 5000, key_space=10**9)
        assert est == pytest.approx(cardenas_size(5000, 10**9), rel=1e-6)

    def test_dense_sample(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 20, 500).astype(np.int64)
        est = sample_distinct(keys, 50_000, key_space=20)
        assert 15 <= est <= 20


class TestEstimateViewSizes:
    @pytest.fixture
    def data(self):
        rng = np.random.default_rng(9)
        cards = (16, 8, 4)
        dims = np.column_stack(
            [rng.integers(0, c, 3000) for c in cards]
        ).astype(np.int64)
        return dims, cards

    @pytest.mark.parametrize("method", ["sample", "fm", "analytic", "exact"])
    def test_methods_give_sane_sizes(self, data, method):
        dims, cards = data
        views = [(0,), (1, 2), (0, 1, 2), ()]
        est = estimate_view_sizes(dims, cards, views, method=method)
        assert est[()] == 1.0
        assert 10 <= est[(0,)] <= 16.5
        assert 20 <= est[(1, 2)] <= 32.5
        assert est[(0, 1, 2)] <= 3000 * 1.2

    def test_exact_matches_unique(self, data):
        dims, cards = data
        est = estimate_view_sizes(dims, cards, [(0, 1)], method="exact")
        true = len({(a, b) for a, b in dims[:, :2].tolist()})
        assert est[(0, 1)] == true

    def test_extrapolation_scales_up_sparse_view(self):
        rng = np.random.default_rng(4)
        cards = (64, 32, 16)  # space 32768 >> sample: extrapolation matters
        dims = np.column_stack(
            [rng.integers(0, c, 2000) for c in cards]
        ).astype(np.int64)
        small = estimate_view_sizes(dims, cards, [(0, 1, 2)], method="sample")
        big = estimate_view_sizes(
            dims, cards, [(0, 1, 2)], total_rows=20_000, method="sample"
        )
        assert big[(0, 1, 2)] > small[(0, 1, 2)] * 1.5

    def test_sample_exact_at_population_size(self):
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 50, 1000).astype(np.int64)
        est = sample_distinct(keys, 1000, key_space=10**6)
        assert est == pytest.approx(np.unique(keys).size, rel=0.01)

    def test_unknown_method_rejected(self, data):
        dims, cards = data
        with pytest.raises(ValueError, match="unknown estimation"):
            estimate_view_sizes(dims, cards, [(0,)], method="magic")

    def test_scale_estimates(self):
        scaled = scale_estimates({(0,): 10.0}, 4.0)
        assert scaled[(0,)] == 40.0

    def test_estimates_only_steer_never_break(self, data):
        """Deliberately absurd estimates must not break tree building."""
        from repro.core.pipesort import build_schedule_tree
        from repro.core.views import all_views

        views = all_views(3)
        bogus = {v: 1e9 if len(v) % 2 else 0.001 for v in views}
        tree = build_schedule_tree(views, (0, 1, 2), bogus)
        tree.validate()
        assert len(tree) == 8
