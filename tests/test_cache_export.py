"""Tests for the query cache and the series export."""

import csv
import json

import pytest

from repro.bench.export import series_to_csv, series_to_json
from repro.bench.harness import Series, SeriesPoint
from repro.config import MachineSpec
from repro.core.cube import build_data_cube
from repro.olap import Query
from repro.olap.cache import CachedQueryEngine
from tests.conftest import make_relation

CARDS = (8, 5, 3)


@pytest.fixture(scope="module")
def cube():
    rel = make_relation(1500, CARDS, seed=20)
    return build_data_cube(rel, CARDS, MachineSpec(p=2))


class TestCachedEngine:
    def test_hit_returns_same_result(self, cube):
        engine = CachedQueryEngine(cube)
        q = Query(group_by=(0, 1))
        first = engine.answer(q)
        second = engine.answer(q)
        assert second is first  # cached object
        assert engine.stats.hits == 1
        assert engine.stats.misses == 1
        assert engine.stats.hit_rate == pytest.approx(0.5)

    def test_distinct_queries_miss(self, cube):
        engine = CachedQueryEngine(cube)
        engine.answer(Query(group_by=(0,)))
        engine.answer(Query(group_by=(1,)))
        engine.answer(Query(group_by=(0,), filters={1: (0, 2)}))
        engine.answer(Query(group_by=(0,), having=(">=", 1.0)))
        assert engine.stats.misses == 4
        assert engine.stats.hits == 0

    def test_lru_eviction(self, cube):
        engine = CachedQueryEngine(cube, capacity=2)
        q1, q2, q3 = (Query(group_by=(i,)) for i in range(3))
        engine.answer(q1)
        engine.answer(q2)
        engine.answer(q3)  # evicts q1
        assert engine.stats.evictions == 1
        assert len(engine) == 2
        engine.answer(q1)  # miss again
        assert engine.stats.misses == 4

    def test_lru_recency(self, cube):
        engine = CachedQueryEngine(cube, capacity=2)
        q1, q2, q3 = (Query(group_by=(i,)) for i in range(3))
        engine.answer(q1)
        engine.answer(q2)
        engine.answer(q1)  # refresh q1
        engine.answer(q3)  # evicts q2, not q1
        engine.answer(q1)
        assert engine.stats.hits == 2

    def test_attach_invalidates(self, cube):
        engine = CachedQueryEngine(cube)
        q = Query(group_by=(0,))
        engine.answer(q)
        engine.attach(cube)
        engine.answer(q)
        assert engine.stats.misses == 2
        assert engine.stats.hits == 0

    def test_rejects_bad_capacity(self, cube):
        with pytest.raises(ValueError):
            CachedQueryEngine(cube, capacity=0)

    def test_explain_passthrough(self, cube):
        engine = CachedQueryEngine(cube)
        plan = engine.explain(Query(group_by=(0,)))
        assert plan.view == (0,)


def demo_series():
    s = Series(label="curve", x_name="p")
    s.points.append(SeriesPoint(x=1, seconds=2.0, speedup=1.0, comm_mb=0.0))
    s.points.append(
        SeriesPoint(x=4, seconds=0.5, speedup=4.0, comm_mb=1.5,
                    extra={"note": 1})
    )
    return [s]


class TestExport:
    def test_csv_roundtrip(self, tmp_path):
        path = series_to_csv(str(tmp_path / "s.csv"), demo_series())
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        assert rows[0]["series"] == "curve"
        assert float(rows[1]["speedup"]) == pytest.approx(4.0)

    def test_json_roundtrip(self, tmp_path):
        path = series_to_json(str(tmp_path / "s.json"), "title", demo_series())
        with open(path) as fh:
            payload = json.load(fh)
        assert payload["title"] == "title"
        assert payload["series"][0]["points"][1]["comm_mb"] == 1.5
        assert payload["series"][0]["points"][1]["extra"] == {"note": 1}

    def test_none_fields_serialise(self, tmp_path):
        s = Series(label="n", x_name="x",
                   points=[SeriesPoint(x=0, seconds=1.0)])
        series_to_csv(str(tmp_path / "n.csv"), [s])
        series_to_json(str(tmp_path / "n.json"), "t", [s])
